//! AMPI-style virtualization of the MPI version — the paper's stated
//! future work ("MPI processes are virtualized as chare objects, allowing
//! an arbitrary number of 'processes' to be run on a set number of PEs").

use gaat::jacobi3d::{mpi_app, run_mpi, CommMode, Dims, JacobiConfig};
use gaat::rt::MachineConfig;

#[test]
fn virtualized_ranks_match_reference() {
    let mut cfg = JacobiConfig::new(MachineConfig::validation(2, 2), Dims::cube(12));
    cfg.comm = CommMode::GpuAware;
    cfg.virtual_ranks = 3; // 12 ranks on 4 PEs
    cfg.iters = 4;
    cfg.warmup = 1;
    let (mut sim, ids, sh) = mpi_app::build(cfg);
    assert_eq!(ids.len(), 12);
    mpi_app::run(&mut sim, &ids, &sh);
    let compared = mpi_app::validate_against_reference(&sim, &ids, &sh);
    assert_eq!(compared, 12 * 12 * 12);
}

#[test]
fn virtualization_checksum_matches_plain_mpi() {
    let mk = |vr| {
        let mut cfg = JacobiConfig::new(MachineConfig::validation(2, 2), Dims::cube(12));
        cfg.comm = CommMode::HostStaging;
        cfg.virtual_ranks = vr;
        cfg.iters = 4;
        cfg.warmup = 1;
        run_mpi(cfg)
    };
    let plain = mk(1);
    let ampi = mk(4);
    assert_eq!(
        plain.checksum.expect("real").to_bits(),
        ampi.checksum.expect("real").to_bits()
    );
}

#[test]
fn virtualization_buys_overlap_where_plain_mpi_stalls() {
    // Coarse blocks with heavy host staging: plain MPI spends a large
    // fraction of each iteration blocked on transfers; a co-located
    // virtual rank fills those stalls with its own compute, like the
    // task runtime's ODF does.
    let mk = |vr| {
        let mut cfg = JacobiConfig::new(MachineConfig::summit(4), Dims::cube(768));
        cfg.comm = CommMode::HostStaging;
        cfg.virtual_ranks = vr;
        cfg.iters = 10;
        cfg.warmup = 2;
        run_mpi(cfg)
    };
    let plain = mk(1);
    let ampi = mk(4);
    assert!(
        ampi.time_per_iter < plain.time_per_iter,
        "AMPI {} should beat plain MPI {}",
        ampi.time_per_iter,
        plain.time_per_iter
    );
}

#[test]
fn deep_virtualization_eventually_pays_overheads() {
    // Like high ODF in Fig. 7b: at small granularity, more virtual ranks
    // mean more per-rank overheads than overlap gains.
    let mk = |vr| {
        let mut cfg = JacobiConfig::new(MachineConfig::summit(1), Dims::cube(96));
        cfg.comm = CommMode::GpuAware;
        cfg.virtual_ranks = vr;
        cfg.iters = 10;
        cfg.warmup = 2;
        run_mpi(cfg)
    };
    let light = mk(1);
    let deep = mk(8);
    assert!(
        deep.time_per_iter > light.time_per_iter,
        "8-way virtualization of tiny blocks should cost: {} vs {}",
        deep.time_per_iter,
        light.time_per_iter
    );
}
