//! Shape tests: quick-effort versions of every figure must reproduce the
//! paper's qualitative claims (who wins, where, and in which direction
//! the knobs move performance). The acceptance criteria are the ones
//! listed in DESIGN.md's experiment index.

use gaat_bench::{best_per_point, fig6, fig7a, fig7b, fig8, fig9, Effort, Row};
use gaat_jacobi3d::{run_charm, run_mpi, CommMode, Dims, JacobiConfig};
use gaat_rt::MachineConfig;

fn quick() -> Effort {
    Effort::quick()
}

fn find<'a>(rows: &'a [Row], series: &str, nodes: usize) -> &'a Row {
    rows.iter()
        .find(|r| r.series == series && r.nodes == nodes)
        .unwrap_or_else(|| panic!("missing row {series} @ {nodes}"))
}

#[test]
fn fig6_optimizations_never_hurt_much_and_help_at_scale() {
    let rows = fig6(&quick());
    // 6a (weak scaling, huge blocks): the sync optimization is mostly
    // hidden behind 16 ms updates — it must at least never hurt beyond
    // noise.
    for r in rows.iter().filter(|r| r.figure == "6a") {
        if r.series.contains("optimized") {
            let orig = rows
                .iter()
                .find(|o| o.figure == "6a" && o.nodes == r.nodes && o.series.contains("original"))
                .expect("paired row");
            assert!(
                r.time_us <= orig.time_us * 1.05,
                "6a @{}: optimized {} vs original {}",
                r.nodes,
                r.time_us,
                orig.time_us
            );
        }
    }
    // 6b at the paper's exact sizes is a statistical tie in our model
    // (overlap hides the sync/transfer costs behind 16 ms updates; see
    // EXPERIMENTS.md) — assert only no-regression there.
    let opt = find(&rows, "Charm-H (optimized)", 8);
    let orig = find(&rows, "Charm-H (original)", 8);
    assert!(
        opt.time_us <= orig.time_us * 1.02,
        "6b @8: optimized {} should not lose to original {}",
        opt.time_us,
        orig.time_us
    );
    // Where transfers sit on the critical path (smaller blocks), the
    // optimizations must win visibly.
    let run = |sync| {
        let mut c = JacobiConfig::new(MachineConfig::summit(4), Dims::cube(768));
        c.comm = CommMode::HostStaging;
        c.odf = 4;
        c.sync = sync;
        c.iters = 10;
        c.warmup = 2;
        run_charm(c).time_per_iter.as_micros_f64()
    };
    let orig_small = run(gaat_jacobi3d::SyncMode::Original);
    let opt_small = run(gaat_jacobi3d::SyncMode::Optimized);
    assert!(
        opt_small < orig_small * 0.95,
        "transfer-bound: optimized {opt_small} should clearly beat original {orig_small}"
    );
}

#[test]
fn fig7a_large_halos_gpu_aware_loses_and_charm_wins() {
    let rows = best_per_point(&fig7a(&quick()));
    let nodes = 8;
    let mpi_h = find(&rows, "MPI-H", nodes);
    let charm_h = find(&rows, "Charm-H", nodes);
    let charm_d = find(&rows, "Charm-D", nodes);
    // Overdecomposition-driven overlap beats MPI.
    assert!(
        charm_h.time_us < mpi_h.time_us,
        "Charm-H {} should beat MPI-H {}",
        charm_h.time_us,
        mpi_h.time_us
    );
    // 9.4 MB halos hit the pipelined-staging protocol: GPU-aware does NOT
    // help (the paper's counterintuitive Fig. 7a result).
    assert!(
        charm_d.time_us >= charm_h.time_us * 0.97,
        "Charm-D {} should not beat Charm-H {} on 9 MB halos",
        charm_d.time_us,
        charm_h.time_us
    );
    // Flatter scaling for the overlap versions: Charm-H grows less from
    // 1 to 8 nodes than MPI-H.
    let charm_growth = find(&rows, "Charm-H", 8).time_us / find(&rows, "Charm-H", 1).time_us;
    let mpi_growth = find(&rows, "MPI-H", 8).time_us / find(&rows, "MPI-H", 1).time_us;
    assert!(
        charm_growth <= mpi_growth * 1.02,
        "Charm-H growth {charm_growth} vs MPI-H growth {mpi_growth}"
    );
}

#[test]
fn fig7b_small_halos_gpu_aware_wins_and_odf1_is_best() {
    let e = quick();
    let rows = fig7b(&e);
    let best = best_per_point(&rows);
    let nodes = 8;
    for (h, d) in [("MPI-H", "MPI-D"), ("Charm-H", "Charm-D")] {
        let th = find(&best, h, nodes).time_us;
        let td = find(&best, d, nodes).time_us;
        assert!(td < th, "{d} ({td}) should beat {h} ({th}) on 96 KB halos");
    }
    // ODF-1 beats ODF-4 for both task-runtime versions (overheads beat
    // the overlap potential at this granularity).
    for series in ["Charm-H", "Charm-D"] {
        let odf1 = rows
            .iter()
            .find(|r| r.series == series && r.nodes == nodes && r.odf == 1)
            .expect("odf1 row");
        let odf4 = rows
            .iter()
            .find(|r| r.series == series && r.nodes == nodes && r.odf == 4)
            .expect("odf4 row");
        assert!(
            odf1.time_us < odf4.time_us,
            "{series}: odf1 {} should beat odf4 {}",
            odf1.time_us,
            odf4.time_us
        );
    }
}

#[test]
fn fig7c_mechanism_strong_scaling_favors_charm_d_once_halos_shrink() {
    // The paper's Fig. 7c crossover logic, tested directly at a scale
    // where halos are already below the pipeline threshold: Charm-D must
    // be at least as good as Charm-H and clearly better than MPI-H.
    let nodes = 16;
    let base = |comm| {
        let mut c = JacobiConfig::new(MachineConfig::summit(nodes), Dims::cube(768));
        c.comm = comm;
        c.iters = 8;
        c.warmup = 2;
        c
    };
    let mpi_h = run_mpi(base(CommMode::HostStaging))
        .time_per_iter
        .as_micros_f64();
    let best = |comm| {
        [1usize, 2, 4]
            .iter()
            .map(|&odf| {
                let mut c = base(comm);
                c.odf = odf;
                run_charm(c).time_per_iter.as_micros_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let charm_h = best(CommMode::HostStaging);
    let charm_d = best(CommMode::GpuAware);
    assert!(
        charm_d < mpi_h,
        "Charm-D {charm_d} should beat MPI-H {mpi_h}"
    );
    assert!(
        charm_d <= charm_h * 1.05,
        "Charm-D {charm_d} should be at least on par with Charm-H {charm_h}"
    );
}

#[test]
fn fig8_fusion_helps_most_at_high_odf() {
    // Launch overheads dominate from ~16 nodes at this grid size, and
    // the effect needs enough timed iterations to reach steady state.
    let mut e = quick();
    e.max_nodes = 16;
    e.iters = 15;
    e.warmup = 3;
    let rows = fig8(&e);
    let nodes = 16;
    let t = |series: &str| find(&rows, series, nodes).time_us;
    // Aggressive fusion wins at ODF-8 (many fine-grained launches).
    let base8 = t("Baseline (ODF-8)");
    let c8 = t("Fusion-C (ODF-8)");
    assert!(
        c8 < base8 * 0.8,
        "fusion C at ODF-8 should win big: {c8} vs {base8}"
    );
    // Monotone-ish ordering C <= B <= A <= baseline at ODF-8.
    let a8 = t("Fusion-A (ODF-8)");
    let b8 = t("Fusion-B (ODF-8)");
    assert!(a8 <= base8 * 1.02, "A {a8} vs base {base8}");
    assert!(b8 <= a8 * 1.02, "B {b8} vs A {a8}");
    assert!(c8 <= b8 * 1.02, "C {c8} vs B {b8}");
    // At ODF-1 fusion must not hurt.
    let base1 = t("Baseline (ODF-1)");
    let c1 = t("Fusion-C (ODF-1)");
    assert!(c1 <= base1 * 1.02, "fusion C at ODF-1: {c1} vs {base1}");
    // The relative win is larger at ODF-8 than at ODF-1 (paper: 51% vs
    // 20% at full scale).
    assert!(
        base8 / c8 > base1 / c1,
        "ODF-8 win {} should exceed ODF-1 win {}",
        base8 / c8,
        base1 / c1
    );
}

#[test]
fn fig9_graphs_help_high_odf_and_fusion_erodes_the_benefit() {
    let mut e = quick();
    e.max_nodes = 16;
    e.iters = 15;
    e.warmup = 3;
    let rows = fig9(&e);
    let speedups = gaat_bench::figures::fig9_speedups(&rows);
    let sp = |series: &str, nodes: usize| {
        speedups
            .iter()
            .find(|(s, n, _)| s == series && *n == nodes)
            .map(|&(_, _, v)| v)
            .unwrap_or_else(|| panic!("missing speedup {series} @ {nodes}"))
    };
    let nodes = 16;
    // Graphs pay off where the CPU is saturated with launches (ODF-8,
    // no fusion)...
    let s_none8 = sp("NoFusion (ODF-8)", nodes);
    assert!(s_none8 > 1.15, "ODF-8 graphs speedup {s_none8} too small");
    // ...and the benefit shrinks as fusion removes the launches.
    let s_c8 = sp("Fusion-C (ODF-8)", nodes);
    assert!(
        s_c8 < s_none8,
        "fusion C speedup {s_c8} should be below no-fusion {s_none8}"
    );
    // At ODF-1 the impact is marginal either way.
    let s_none1 = sp("NoFusion (ODF-1)", nodes);
    assert!(
        (0.85..1.15).contains(&s_none1),
        "ODF-1 speedup {s_none1} should be ~1"
    );
    // CPU utilization rises with ODF (the paper's explanation for where
    // graphs help).
    let cpu1 = find(&rows, "NoFusion (ODF-1)", nodes).cpu_util;
    let cpu8 = find(&rows, "NoFusion (ODF-8)", nodes).cpu_util;
    assert!(
        cpu8 > cpu1 + 0.2,
        "CPU utilization should rise with ODF: {cpu1} -> {cpu8}"
    );
}
