//! Whole-stack determinism: identical configurations must give
//! bit-identical traces, and the only seed-dependence is the modeled
//! jitter.

use gaat::jacobi3d::{run_charm, run_mpi, CommMode, Dims, Fusion, JacobiConfig};
use gaat::rt::MachineConfig;

fn cfg() -> JacobiConfig {
    let mut c = JacobiConfig::new(MachineConfig::summit(2), Dims::cube(192));
    c.iters = 8;
    c.warmup = 2;
    c
}

#[test]
fn charm_runs_replay_exactly() {
    for comm in [CommMode::HostStaging, CommMode::GpuAware] {
        let mk = || {
            let mut c = cfg();
            c.comm = comm;
            c.odf = 4;
            c
        };
        let a = run_charm(mk());
        let b = run_charm(mk());
        assert_eq!(a.time_per_iter, b.time_per_iter, "{comm:?}");
        assert_eq!(a.total, b.total);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.kernels, b.kernels);
    }
}

#[test]
fn mpi_runs_replay_exactly() {
    let a = run_mpi(cfg());
    let b = run_mpi(cfg());
    assert_eq!(a.time_per_iter, b.time_per_iter);
    assert_eq!(a.entries, b.entries);
}

#[test]
fn graph_and_fusion_paths_replay_exactly() {
    let mk = || {
        let mut c = cfg();
        c.comm = CommMode::GpuAware;
        c.fusion = Fusion::B;
        c.graphs = true;
        c.odf = 2;
        c
    };
    let a = run_charm(mk());
    let b = run_charm(mk());
    assert_eq!(a.total, b.total);
    assert_eq!(a.graph_launches, b.graph_launches);
}

/// Golden fingerprints recorded on the seed `BinaryHeap` + boxed-closure
/// engine (commit 3c05e51) for the exact configurations above. The
/// slab-arena/calendar-queue rewrite must reproduce the seed's
/// (time, seq) firing order bit for bit, so these totals may never move
/// unless the *model* (latencies, topology) changes — in which case the
/// change must be deliberate and these constants re-recorded.
///
/// Re-recorded once (PR 2, deliberate model change): network jitter is
/// now a pure hash of each message's `(src, dst, token)` identity
/// instead of a draw from the fabric's shared RNG stream, so unrelated
/// traffic can no longer perturb an existing message's latency through
/// RNG draw order. Totals moved by tens of nanoseconds on a
/// multi-millisecond run (HostStaging 5_375_583 -> 5_375_600, GpuAware
/// 3_115_437 -> 3_115_454, mpi 985_297 -> 986_355, graphs+fusionB
/// 604_716 -> 604_747); entry/kernel/launch counts — the structural
/// fingerprint — are unchanged. The refactor to the `Topology` backend
/// was verified bit-identical against the old jitter model before the
/// hash switch, so these constants isolate exactly the jitter change.
#[test]
fn firing_order_matches_seed_engine_goldens() {
    let golden = [
        (
            CommMode::HostStaging,
            5_375_600u64,
            509_822u64,
            4_736u64,
            4_640u64,
        ),
        (CommMode::GpuAware, 3_115_454, 295_779, 4_736, 4_640),
    ];
    for (comm, total_ns, per_iter_ns, entries, kernels) in golden {
        let mut c = cfg();
        c.comm = comm;
        c.odf = 4;
        let r = run_charm(c);
        assert_eq!(r.total.as_ns(), total_ns, "{comm:?} total");
        assert_eq!(r.time_per_iter.as_ns(), per_iter_ns, "{comm:?} per-iter");
        assert_eq!(r.entries, entries, "{comm:?} entries");
        assert_eq!(r.kernels, kernels, "{comm:?} kernels");
    }

    let r = run_mpi(cfg());
    assert_eq!(r.total.as_ns(), 986_355, "mpi total");
    assert_eq!(r.time_per_iter.as_ns(), 97_886, "mpi per-iter");
    assert_eq!(r.entries, 1_172, "mpi entries");

    let mut c = cfg();
    c.comm = CommMode::GpuAware;
    c.fusion = Fusion::B;
    c.graphs = true;
    c.odf = 2;
    let r = run_charm(c);
    assert_eq!(r.total.as_ns(), 604_747, "graphs+fusionB total");
    assert_eq!(r.entries, 2_128, "graphs+fusionB entries");
    assert_eq!(r.graph_launches, 240, "graphs+fusionB graph launches");
}

#[test]
fn seeds_change_timing_but_not_structure() {
    let mk = |seed| {
        let mut c = cfg();
        c.machine.seed = seed;
        c.comm = CommMode::GpuAware;
        c.odf = 2;
        c
    };
    let a = run_charm(mk(1));
    let b = run_charm(mk(99));
    // Timing differs (jitter), structure does not.
    assert_ne!(a.total, b.total);
    assert_eq!(a.entries, b.entries);
    assert_eq!(a.kernels, b.kernels);
    let ratio = a.total.as_ns() as f64 / b.total.as_ns() as f64;
    assert!((0.9..1.1).contains(&ratio), "jitter is small: {ratio}");
}

/// A fault plan with every stochastic knob at zero is `!is_active()` and
/// must be *behaviourally invisible*: the run takes the no-fault fast
/// paths and reproduces the golden totals bit for bit, even though the
/// plan's seed is nonzero.
#[test]
fn inert_fault_plan_matches_goldens() {
    let mut c = cfg();
    c.machine.faults = gaat::sim::FaultPlan {
        seed: 7,
        drop_prob: 0.0,
        ..gaat::sim::FaultPlan::none()
    };
    c.comm = CommMode::HostStaging;
    c.odf = 4;
    let r = run_charm(c);
    assert_eq!(r.total.as_ns(), 5_375_600, "inert plan must not move time");
    assert_eq!(r.entries, 4_736);
    assert_eq!(r.kernels, 4_640);
}

/// Fault injection is part of the deterministic state: the same lossy
/// seed replays the same drops, retransmissions, and final timing.
#[test]
fn lossy_runs_replay_exactly() {
    let mk = || {
        let mut c = cfg();
        c.machine.faults = gaat::sim::FaultPlan {
            seed: 42,
            drop_prob: 0.05,
            corrupt_prob: 0.01,
            ..gaat::sim::FaultPlan::none()
        };
        c.machine.ucx.reliability.enabled = true;
        c.comm = CommMode::HostStaging;
        c.odf = 4;
        c
    };
    let a = run_charm(mk());
    let b = run_charm(mk());
    assert_eq!(a.total, b.total);
    assert_eq!(a.entries, b.entries);
    assert_eq!(a.kernels, b.kernels);
    // And the faults genuinely fired: loss costs time over the clean run.
    let mut clean = cfg();
    clean.comm = CommMode::HostStaging;
    clean.odf = 4;
    let c = run_charm(clean);
    assert!(a.total > c.total, "{} vs {}", a.total, c.total);
}

#[test]
fn zero_jitter_makes_seeds_irrelevant() {
    let mk = |seed| {
        let mut c = cfg();
        c.machine.seed = seed;
        c.machine.net.jitter = 0.0;
        c.comm = CommMode::GpuAware;
        c
    };
    let a = run_charm(mk(1));
    let b = run_charm(mk(2));
    assert_eq!(a.total, b.total);
}
