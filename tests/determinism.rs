//! Whole-stack determinism: identical configurations must give
//! bit-identical traces, and the only seed-dependence is the modeled
//! jitter.

use gaat::jacobi3d::{run_charm, run_mpi, CommMode, Dims, Fusion, JacobiConfig};
use gaat::rt::MachineConfig;

fn cfg() -> JacobiConfig {
    let mut c = JacobiConfig::new(MachineConfig::summit(2), Dims::cube(192));
    c.iters = 8;
    c.warmup = 2;
    c
}

#[test]
fn charm_runs_replay_exactly() {
    for comm in [CommMode::HostStaging, CommMode::GpuAware] {
        let mk = || {
            let mut c = cfg();
            c.comm = comm;
            c.odf = 4;
            c
        };
        let a = run_charm(mk());
        let b = run_charm(mk());
        assert_eq!(a.time_per_iter, b.time_per_iter, "{comm:?}");
        assert_eq!(a.total, b.total);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.kernels, b.kernels);
    }
}

#[test]
fn mpi_runs_replay_exactly() {
    let a = run_mpi(cfg());
    let b = run_mpi(cfg());
    assert_eq!(a.time_per_iter, b.time_per_iter);
    assert_eq!(a.entries, b.entries);
}

#[test]
fn graph_and_fusion_paths_replay_exactly() {
    let mk = || {
        let mut c = cfg();
        c.comm = CommMode::GpuAware;
        c.fusion = Fusion::B;
        c.graphs = true;
        c.odf = 2;
        c
    };
    let a = run_charm(mk());
    let b = run_charm(mk());
    assert_eq!(a.total, b.total);
    assert_eq!(a.graph_launches, b.graph_launches);
}

/// Golden fingerprints recorded on the seed `BinaryHeap` + boxed-closure
/// engine (commit 3c05e51) for the exact configurations above. The
/// slab-arena/calendar-queue rewrite must reproduce the seed's
/// (time, seq) firing order bit for bit, so these totals may never move
/// unless the *model* (latencies, topology) changes — in which case the
/// change must be deliberate and these constants re-recorded.
///
/// Re-recorded once (PR 2, deliberate model change): network jitter is
/// now a pure hash of each message's `(src, dst, token)` identity
/// instead of a draw from the fabric's shared RNG stream, so unrelated
/// traffic can no longer perturb an existing message's latency through
/// RNG draw order. Totals moved by tens of nanoseconds on a
/// multi-millisecond run (HostStaging 5_375_583 -> 5_375_600, GpuAware
/// 3_115_437 -> 3_115_454, mpi 985_297 -> 986_355, graphs+fusionB
/// 604_716 -> 604_747); entry/kernel/launch counts — the structural
/// fingerprint — are unchanged. The refactor to the `Topology` backend
/// was verified bit-identical against the old jitter model before the
/// hash switch, so these constants isolate exactly the jitter change.
#[test]
fn firing_order_matches_seed_engine_goldens() {
    let golden = [
        (
            CommMode::HostStaging,
            5_375_600u64,
            509_822u64,
            4_736u64,
            4_640u64,
        ),
        (CommMode::GpuAware, 3_115_454, 295_779, 4_736, 4_640),
    ];
    for (comm, total_ns, per_iter_ns, entries, kernels) in golden {
        let mut c = cfg();
        c.comm = comm;
        c.odf = 4;
        let r = run_charm(c);
        assert_eq!(r.total.as_ns(), total_ns, "{comm:?} total");
        assert_eq!(r.time_per_iter.as_ns(), per_iter_ns, "{comm:?} per-iter");
        assert_eq!(r.entries, entries, "{comm:?} entries");
        assert_eq!(r.kernels, kernels, "{comm:?} kernels");
    }

    let r = run_mpi(cfg());
    assert_eq!(r.total.as_ns(), 986_355, "mpi total");
    assert_eq!(r.time_per_iter.as_ns(), 97_886, "mpi per-iter");
    assert_eq!(r.entries, 1_172, "mpi entries");

    let mut c = cfg();
    c.comm = CommMode::GpuAware;
    c.fusion = Fusion::B;
    c.graphs = true;
    c.odf = 2;
    let r = run_charm(c);
    assert_eq!(r.total.as_ns(), 604_747, "graphs+fusionB total");
    assert_eq!(r.entries, 2_128, "graphs+fusionB entries");
    assert_eq!(r.graph_launches, 240, "graphs+fusionB graph launches");
}

#[test]
fn seeds_change_timing_but_not_structure() {
    let mk = |seed| {
        let mut c = cfg();
        c.machine.seed = seed;
        c.comm = CommMode::GpuAware;
        c.odf = 2;
        c
    };
    let a = run_charm(mk(1));
    let b = run_charm(mk(99));
    // Timing differs (jitter), structure does not.
    assert_ne!(a.total, b.total);
    assert_eq!(a.entries, b.entries);
    assert_eq!(a.kernels, b.kernels);
    let ratio = a.total.as_ns() as f64 / b.total.as_ns() as f64;
    assert!((0.9..1.1).contains(&ratio), "jitter is small: {ratio}");
}

/// A fault plan with every stochastic knob at zero is `!is_active()` and
/// must be *behaviourally invisible*: the run takes the no-fault fast
/// paths and reproduces the golden totals bit for bit, even though the
/// plan's seed is nonzero.
#[test]
fn inert_fault_plan_matches_goldens() {
    let mut c = cfg();
    c.machine.faults = gaat::sim::FaultPlan {
        seed: 7,
        drop_prob: 0.0,
        ..gaat::sim::FaultPlan::none()
    };
    c.comm = CommMode::HostStaging;
    c.odf = 4;
    let r = run_charm(c);
    assert_eq!(r.total.as_ns(), 5_375_600, "inert plan must not move time");
    assert_eq!(r.entries, 4_736);
    assert_eq!(r.kernels, 4_640);
}

/// Fault injection is part of the deterministic state: the same lossy
/// seed replays the same drops, retransmissions, and final timing.
#[test]
fn lossy_runs_replay_exactly() {
    let mk = || {
        let mut c = cfg();
        c.machine.faults = gaat::sim::FaultPlan {
            seed: 42,
            drop_prob: 0.05,
            corrupt_prob: 0.01,
            ..gaat::sim::FaultPlan::none()
        };
        c.machine.ucx.reliability.enabled = true;
        c.comm = CommMode::HostStaging;
        c.odf = 4;
        c
    };
    let a = run_charm(mk());
    let b = run_charm(mk());
    assert_eq!(a.total, b.total);
    assert_eq!(a.entries, b.entries);
    assert_eq!(a.kernels, b.kernels);
    // And the faults genuinely fired: loss costs time over the clean run.
    let mut clean = cfg();
    clean.comm = CommMode::HostStaging;
    clean.odf = 4;
    let c = run_charm(clean);
    assert!(a.total > c.total, "{} vs {}", a.total, c.total);
}

#[test]
fn zero_jitter_makes_seeds_irrelevant() {
    let mk = |seed| {
        let mut c = cfg();
        c.machine.seed = seed;
        c.machine.net.jitter = 0.0;
        c.comm = CommMode::GpuAware;
        c
    };
    let a = run_charm(mk(1));
    let b = run_charm(mk(2));
    assert_eq!(a.total, b.total);
}

/// The tentpole guarantee of windowed parallel runs: the worker count is
/// observably invisible. Every golden from
/// [`firing_order_matches_seed_engine_goldens`] must replay bit for bit
/// at workers 2 and 4 (4 clamps to the 2 nodes of this machine) — the
/// cross-shard staging/merge path reproduces the sequential `(time, seq)`
/// firing order exactly, not approximately.
#[test]
fn worker_counts_replay_goldens_bit_identically() {
    for workers in [2usize, 4] {
        let wcfg = || {
            let mut c = cfg();
            c.machine.workers = workers;
            c
        };
        let golden = [
            (
                CommMode::HostStaging,
                5_375_600u64,
                509_822u64,
                4_736u64,
                4_640u64,
            ),
            (CommMode::GpuAware, 3_115_454, 295_779, 4_736, 4_640),
        ];
        for (comm, total_ns, per_iter_ns, entries, kernels) in golden {
            let mut c = wcfg();
            c.comm = comm;
            c.odf = 4;
            let r = run_charm(c);
            assert_eq!(
                r.total.as_ns(),
                total_ns,
                "workers={workers} {comm:?} total"
            );
            assert_eq!(
                r.time_per_iter.as_ns(),
                per_iter_ns,
                "workers={workers} {comm:?} per-iter"
            );
            assert_eq!(r.entries, entries, "workers={workers} {comm:?} entries");
            assert_eq!(r.kernels, kernels, "workers={workers} {comm:?} kernels");
        }

        let r = run_mpi(wcfg());
        assert_eq!(r.total.as_ns(), 986_355, "workers={workers} mpi total");
        assert_eq!(r.entries, 1_172, "workers={workers} mpi entries");

        let mut c = wcfg();
        c.comm = CommMode::GpuAware;
        c.fusion = Fusion::B;
        c.graphs = true;
        c.odf = 2;
        let r = run_charm(c);
        assert_eq!(r.total.as_ns(), 604_747, "workers={workers} graphs total");
        assert_eq!(r.entries, 2_128, "workers={workers} graphs entries");
    }
}

/// Same property on the second proxy app: a sweep3d run is bit-identical
/// across worker counts, and the windowed runs genuinely exchange
/// cross-shard traffic (the agreement is not vacuous).
#[test]
fn sweep3d_worker_counts_agree_bit_identically() {
    use gaat::sweep3d::{build, run, SweepConfig};

    let go = |workers: usize| {
        let mut m = MachineConfig::summit(4);
        m.workers = workers;
        let mut c = SweepConfig::new(m, Dims::cube(96));
        c.odf = 2;
        c.sweeps = 4;
        c.warmup = 1;
        let (mut sim, ids, sh) = build(c);
        let r = run(&mut sim, &ids, &sh);
        (
            r.total,
            r.time_per_sweep,
            sim.window_stats.windows,
            sim.window_stats.staged,
        )
    };
    let (total, per_sweep, w1, s1) = go(1);
    assert_eq!(w1, 0, "workers=1 must take the plain fast path");
    assert_eq!(s1, 0);
    for workers in [2usize, 4] {
        let (t, p, windows, staged) = go(workers);
        assert_eq!(t, total, "workers={workers} total");
        assert_eq!(p, per_sweep, "workers={workers} per-sweep");
        assert!(windows > 0, "workers={workers} must run windowed");
        assert!(
            staged > 0,
            "workers={workers} must stage cross-shard traffic"
        );
    }
}

/// Golden fingerprints for the collective-traffic proxy apps (gaat-coll
/// under gaat-dptrain), recorded when they landed: one data-parallel
/// training scenario and one skew-routed MoE scenario, replayed at
/// workers 1 and 2 on the Flat 2-node machine. Totals may only move on a
/// deliberate model change; the traffic counters (bytes/chunks/steps)
/// are the structural fingerprint and pin the schedules themselves.
#[test]
fn coll_proxy_apps_replay_goldens_across_worker_counts() {
    use gaat::dptrain::moe::{run_moe_app, MoeConfig};
    use gaat::dptrain::train::{train, TrainConfig};

    for workers in [1usize, 2] {
        let mut m = MachineConfig::summit(2);
        m.workers = workers;
        let mut c = TrainConfig::new(m, 1 << 16);
        c.steps = 2;
        c.warmup = 1;
        let r = train(c);
        assert_eq!(r.total.as_ns(), 1_904_268, "workers={workers} train total");
        assert_eq!(
            r.time_per_step.as_ns(),
            633_748,
            "workers={workers} train per-step"
        );
        assert_eq!(r.coll_stats.bytes, 34_603_008, "workers={workers} bytes");
        assert_eq!(r.coll_stats.chunks, 3_168, "workers={workers} chunks");
        assert_eq!(r.coll_stats.steps, 3_168, "workers={workers} steps");
        assert_eq!(
            r.coll_stats.reduced_elems, 2_162_688,
            "workers={workers} reduced"
        );
        assert_eq!(r.coll_stats.rounds, 144, "workers={workers} rounds");
    }

    for workers in [1usize, 2] {
        let mut m = MachineConfig::summit(2);
        m.workers = workers;
        let mut c = MoeConfig::new(m, 512, 64);
        c.hot_experts = 3;
        c.hot_frac = 0.7;
        c.rounds = 2;
        c.warmup = 1;
        let r = run_moe_app(c);
        assert_eq!(r.total.as_ns(), 924_567, "workers={workers} moe total");
        assert_eq!(
            r.time_per_round.as_ns(),
            307_777,
            "workers={workers} moe per-round"
        );
        for (name, s) in [
            ("dispatch", &r.dispatch_stats),
            ("combine", &r.combine_stats),
        ] {
            assert_eq!(s.bytes, 8_623_104, "workers={workers} {name} bytes");
            assert_eq!(s.chunks, 396, "workers={workers} {name} chunks");
            assert_eq!(s.steps, 396, "workers={workers} {name} steps");
        }
    }
}

fn partition_base_cfg() -> JacobiConfig {
    let mut c = JacobiConfig::new(MachineConfig::summit(4), Dims::cube(96));
    c.iters = 4;
    c.warmup = 1;
    c.comm = CommMode::GpuAware;
    c.odf = 2;
    c
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig { cases: 6, ..Default::default() })]

    /// Randomized node→shard partitions (node-aligned, as every PE of a
    /// node shares its shard) never change the fingerprint: any dense
    /// 2-shard split of the 4 nodes replays the 1-worker run bit for bit.
    #[test]
    fn random_partitions_never_change_the_fingerprint(bits in 1u8..7) {
        use gaat::jacobi3d::charm;

        // 1-worker baseline, computed once across cases.
        static BASE: std::sync::OnceLock<(gaat::sim::SimDuration, u64, u64)> =
            std::sync::OnceLock::new();
        let &(total, entries, kernels) = BASE.get_or_init(|| {
            let (mut sim, ids, sh) = charm::build(partition_base_cfg());
            let r = charm::run(&mut sim, &ids, &sh);
            (r.total, r.entries, r.kernels)
        });

        // `bits` encodes a non-trivial split of nodes 1..3 (node 0 stays
        // on shard 0), so both shard ids always appear.
        let map: Vec<usize> = (0usize..4)
            .map(|n| usize::from(n > 0 && bits & (1u8 << (n - 1)) != 0))
            .collect();
        let mut c = partition_base_cfg();
        c.machine.workers = 2;
        let (mut sim, ids, sh) = charm::build(c);
        let got = charm::run_with_partition(&mut sim, &ids, &sh, map);
        proptest::prop_assert_eq!(total, got.total);
        proptest::prop_assert_eq!(entries, got.entries);
        proptest::prop_assert_eq!(kernels, got.kernels);
        proptest::prop_assert!(sim.window_stats.staged > 0);
    }
}
