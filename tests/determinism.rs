//! Whole-stack determinism: identical configurations must give
//! bit-identical traces, and the only seed-dependence is the modeled
//! jitter.

use gaat::jacobi3d::{run_charm, run_mpi, CommMode, Dims, Fusion, JacobiConfig};
use gaat::rt::MachineConfig;

fn cfg() -> JacobiConfig {
    let mut c = JacobiConfig::new(MachineConfig::summit(2), Dims::cube(192));
    c.iters = 8;
    c.warmup = 2;
    c
}

#[test]
fn charm_runs_replay_exactly() {
    for comm in [CommMode::HostStaging, CommMode::GpuAware] {
        let mk = || {
            let mut c = cfg();
            c.comm = comm;
            c.odf = 4;
            c
        };
        let a = run_charm(mk());
        let b = run_charm(mk());
        assert_eq!(a.time_per_iter, b.time_per_iter, "{comm:?}");
        assert_eq!(a.total, b.total);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.kernels, b.kernels);
    }
}

#[test]
fn mpi_runs_replay_exactly() {
    let a = run_mpi(cfg());
    let b = run_mpi(cfg());
    assert_eq!(a.time_per_iter, b.time_per_iter);
    assert_eq!(a.entries, b.entries);
}

#[test]
fn graph_and_fusion_paths_replay_exactly() {
    let mk = || {
        let mut c = cfg();
        c.comm = CommMode::GpuAware;
        c.fusion = Fusion::B;
        c.graphs = true;
        c.odf = 2;
        c
    };
    let a = run_charm(mk());
    let b = run_charm(mk());
    assert_eq!(a.total, b.total);
    assert_eq!(a.graph_launches, b.graph_launches);
}

#[test]
fn seeds_change_timing_but_not_structure() {
    let mk = |seed| {
        let mut c = cfg();
        c.machine.seed = seed;
        c.comm = CommMode::GpuAware;
        c.odf = 2;
        c
    };
    let a = run_charm(mk(1));
    let b = run_charm(mk(99));
    // Timing differs (jitter), structure does not.
    assert_ne!(a.total, b.total);
    assert_eq!(a.entries, b.entries);
    assert_eq!(a.kernels, b.kernels);
    let ratio = a.total.as_ns() as f64 / b.total.as_ns() as f64;
    assert!((0.9..1.1).contains(&ratio), "jitter is small: {ratio}");
}

#[test]
fn zero_jitter_makes_seeds_irrelevant() {
    let mk = |seed| {
        let mut c = cfg();
        c.machine.seed = seed;
        c.machine.net.jitter = 0.0;
        c.comm = CommMode::GpuAware;
        c
    };
    let a = run_charm(mk(1));
    let b = run_charm(mk(2));
    assert_eq!(a.total, b.total);
}
