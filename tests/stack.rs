//! Cross-crate integration: the full stack (engine → GPU → fabric → UCX →
//! runtime → application) wired together in ways the per-crate tests
//! don't cover.

use gaat::jacobi3d::{charm, run_charm, run_mpi, CommMode, Dims, Fusion, JacobiConfig, SyncMode};
use gaat::rt::MachineConfig;

fn real_cfg(global: usize) -> JacobiConfig {
    let mut c = JacobiConfig::new(MachineConfig::validation(2, 2), Dims::cube(global));
    c.iters = 4;
    c.warmup = 1;
    c
}

#[test]
fn charm_and_mpi_agree_bit_for_bit() {
    let mut c1 = real_cfg(12);
    c1.comm = CommMode::GpuAware;
    c1.odf = 2;
    let a = run_charm(c1);
    let mut c2 = real_cfg(12);
    c2.comm = CommMode::HostStaging;
    let b = run_mpi(c2);
    assert_eq!(
        a.checksum.expect("real").to_bits(),
        b.checksum.expect("real").to_bits(),
        "different runtimes and transports, same numerics"
    );
}

#[test]
fn every_optimization_layer_stacks_functionally() {
    // Fusion C + graphs + ODF + GPU-aware, all at once, against the
    // plainest possible configuration.
    let mut plain = real_cfg(16);
    plain.comm = CommMode::HostStaging;
    plain.sync = SyncMode::Original;
    let a = run_charm(plain);

    let mut fancy = real_cfg(16);
    fancy.comm = CommMode::GpuAware;
    fancy.fusion = Fusion::C;
    fancy.graphs = true;
    fancy.odf = 4;
    let b = run_charm(fancy);

    assert_eq!(
        a.checksum.expect("real").to_bits(),
        b.checksum.expect("real").to_bits()
    );
    // Graph launches actually happened in the fancy config.
    assert!(b.graph_launches > 0);
    assert_eq!(a.graph_launches, 0);
}

#[test]
fn device_stats_reflect_fusion() {
    // Fusion C collapses ~13 kernels per block-iteration into 1.
    let run = |fusion| {
        let mut c = real_cfg(16);
        c.comm = CommMode::GpuAware;
        c.fusion = fusion;
        c.odf = 2;
        run_charm(c)
    };
    let base = run(Fusion::None);
    let fused = run(Fusion::C);
    assert!(
        fused.kernels * 3 < base.kernels,
        "fusion C should slash kernel count: {} vs {}",
        fused.kernels,
        base.kernels
    );
    assert_eq!(
        base.checksum.expect("real").to_bits(),
        fused.checksum.expect("real").to_bits()
    );
}

#[test]
fn graphs_replace_stream_launches() {
    let run = |graphs| {
        let mut c = real_cfg(16);
        c.comm = CommMode::GpuAware;
        c.graphs = graphs;
        c.odf = 2;
        run_charm(c)
    };
    let stream = run(false);
    let graphed = run(true);
    // With graphs the per-iteration unpack/update/pack kernels move into
    // graph nodes; only the initial packs remain as stream launches.
    assert!(graphed.kernels < stream.kernels / 2);
    assert!(graphed.graph_launches > 0);
}

#[test]
fn odd_grid_and_pe_combinations_work() {
    // Non-power-of-two grids with remainders, PEs that don't divide the
    // grid, high ODF.
    for (nodes, pes, global, odf) in [(1, 3, 13, 3), (3, 2, 17, 2), (2, 3, 11, 1)] {
        let mut c = JacobiConfig::new(MachineConfig::validation(nodes, pes), Dims::cube(global));
        c.comm = CommMode::GpuAware;
        c.odf = odf;
        c.iters = 3;
        c.warmup = 1;
        let (mut sim, ids, sh) = charm::build(c);
        charm::run(&mut sim, &ids, &sh);
        let compared = charm::validate_against_reference(&sim, &ids, &sh);
        assert_eq!(compared, global * global * global);
    }
}

#[test]
fn anisotropic_grids_work() {
    let mut c = JacobiConfig::new(MachineConfig::validation(2, 2), Dims::new(24, 6, 10));
    c.comm = CommMode::HostStaging;
    c.odf = 2;
    c.iters = 3;
    c.warmup = 0;
    let (mut sim, ids, sh) = charm::build(c);
    charm::run(&mut sim, &ids, &sh);
    charm::validate_against_reference(&sim, &ids, &sh);
}

#[test]
fn zero_warmup_runs() {
    let mut c = real_cfg(8);
    c.warmup = 0;
    c.comm = CommMode::GpuAware;
    let r = run_charm(c);
    assert!(r.time_per_iter.as_ns() > 0);
}

#[test]
fn protocol_statistics_match_transport() {
    // Host-staging never exercises the GPU-aware protocols; GPU-aware at
    // small halo sizes only uses GPUDirect.
    let mut c = real_cfg(12);
    c.comm = CommMode::HostStaging;
    let (mut sim, ids, sh) = charm::build(c);
    charm::run(&mut sim, &ids, &sh);
    let s = sim.machine.ucx.stats();
    assert_eq!(s.gpudirect, 0);
    assert_eq!(s.pipelined, 0);
    assert!(s.active_messages > 0, "halos travel as runtime messages");

    let mut c = real_cfg(12);
    c.comm = CommMode::GpuAware;
    let (mut sim, ids, sh) = charm::build(c);
    charm::run(&mut sim, &ids, &sh);
    let s = sim.machine.ucx.stats();
    assert!(s.gpudirect > 0);
    assert_eq!(s.pipelined, 0, "12^3 halos stay under the threshold");
}

#[test]
fn cpu_utilization_increases_with_odf() {
    let run = |odf| {
        let mut c = JacobiConfig::new(MachineConfig::summit(2), Dims::cube(384));
        c.comm = CommMode::GpuAware;
        c.odf = odf;
        c.iters = 6;
        c.warmup = 1;
        run_charm(c)
    };
    let low = run(1);
    let high = run(8);
    assert!(
        high.cpu_utilization > low.cpu_utilization,
        "ODF-8 {} should use more CPU than ODF-1 {}",
        high.cpu_utilization,
        low.cpu_utilization
    );
}

#[test]
fn mpi_manual_overlap_helps_and_stays_correct() {
    // The Fig. 1b manual-overlap pattern must not change numerics and
    // should not be slower where communication is substantial.
    let mk = |overlap| {
        let mut c = JacobiConfig::new(MachineConfig::summit(4), Dims::cube(384));
        c.comm = CommMode::GpuAware;
        c.overlap = overlap;
        c.iters = 8;
        c.warmup = 2;
        c
    };
    let plain = run_mpi(mk(false));
    let overlapped = run_mpi(mk(true));
    assert!(
        overlapped.time_per_iter.as_ns() <= plain.time_per_iter.as_ns() * 102 / 100,
        "overlap {} should not lose to plain {}",
        overlapped.time_per_iter,
        plain.time_per_iter
    );
}

#[test]
fn updating_graph_params_every_iteration_voids_the_benefit() {
    // Paper §III-D2: "This avoids the overhead of updating all graph
    // nodes for each iteration, which would void the benefits from using
    // CUDA Graphs." Measure all three at a launch-bound configuration.
    use gaat::jacobi3d::app::GraphStrategy;
    let mk = |graphs: bool, strategy: GraphStrategy| {
        let mut c = JacobiConfig::new(MachineConfig::summit(16), Dims::cube(768));
        c.comm = CommMode::GpuAware;
        c.odf = 8;
        c.graphs = graphs;
        c.graph_strategy = strategy;
        c.iters = 12;
        c.warmup = 3;
        run_charm(c).time_per_iter.as_micros_f64()
    };
    let no_graphs = mk(false, GraphStrategy::TwoGraphs);
    let two_graphs = mk(true, GraphStrategy::TwoGraphs);
    let updating = mk(true, GraphStrategy::UpdateParams);
    // The paper's solution wins clearly over plain streams...
    assert!(
        two_graphs < no_graphs * 0.85,
        "two-graphs {two_graphs} should beat no-graphs {no_graphs}"
    );
    // ...and per-iteration node updates give some of that win back (in
    // our model the erosion is partial — ~13 cheap node updates per
    // launch — where the paper's blanket statement says "void"; the
    // direction and mechanism match).
    assert!(
        updating > two_graphs * 1.03,
        "updating {updating} should be measurably behind two-graphs {two_graphs}"
    );
    assert!(
        updating < no_graphs,
        "updating {updating} should still beat no graphs {no_graphs}"
    );
}
