//! The Channel API: two-sided GPU-aware communication between a pair of
//! chares (paper §II-B and Fig. 5).
//!
//! A channel connects two chares; `send`/`recv` calls go through a thin
//! pass-through to the UCX layer, which picks the transport (GPUDirect or
//! pipelined staging for device buffers, eager/rendezvous for host
//! buffers) by message size and memory space. Completion is reported by
//! invoking a [`Callback`] — enabling asynchronous completion detection
//! and keeping the receiving PE's scheduler free, unlike the older GPU
//! Messaging API (see [`crate::gpu_msg`]).
//!
//! Matching: the n-th `send` on one end matches the n-th `recv` posted on
//! the other end for that direction; both sides advance their sequence
//! numbers in program order, exactly like the Jacobi3D usage in the paper
//! where one send and one receive per direction happen per iteration.

use gaat_ucx::{MemLoc, Tag};

use crate::machine::{Ctx, Machine};
use crate::msg::{Callback, ChareId};

/// One end of a channel, stored inside a chare's state.
#[derive(Debug, Clone)]
pub struct ChannelEnd {
    id: u64,
    me: ChareId,
    peer: ChareId,
    send_seq: u64,
    recv_seq: u64,
}

/// Create a channel between chares `a` and `b`; returns the two ends.
pub fn create_channel(m: &mut Machine, a: ChareId, b: ChareId) -> (ChannelEnd, ChannelEnd) {
    let id = m.alloc_channel_id();
    (
        ChannelEnd {
            id,
            me: a,
            peer: b,
            send_seq: 0,
            recv_seq: 0,
        },
        ChannelEnd {
            id,
            me: b,
            peer: a,
            send_seq: 0,
            recv_seq: 0,
        },
    )
}

/// Matching tag layout: channel id | direction | sequence.
fn make_tag(id: u64, from_low_end: bool, seq: u64) -> Tag {
    debug_assert!(seq < (1 << 23), "channel sequence overflow");
    Tag((id << 24) | ((from_low_end as u64) << 23) | seq)
}

impl ChannelEnd {
    /// The chare on the other end.
    pub fn peer(&self) -> ChareId {
        self.peer
    }

    /// Nonblocking send of `loc` to the peer; `cb` is invoked (high
    /// priority) when the buffer is reusable.
    pub fn send(&mut self, ctx: &mut Ctx<'_>, loc: MemLoc, cb: Callback) {
        debug_assert_eq!(ctx.me(), self.me, "channel end used by wrong chare");
        let from_low = self.me < self.peer;
        let tag = make_tag(self.id, from_low, self.send_seq);
        self.send_seq += 1;
        let peer_pe = ctx.machine.pe_of(self.peer);
        ctx.ucx_isend(peer_pe, tag, loc, cb);
    }

    /// Nonblocking receive into `loc` from the peer; `cb` is invoked (high
    /// priority) when the data has landed.
    pub fn recv(&mut self, ctx: &mut Ctx<'_>, loc: MemLoc, cb: Callback) {
        debug_assert_eq!(ctx.me(), self.me, "channel end used by wrong chare");
        let from_low = self.peer < self.me;
        let tag = make_tag(self.id, from_low, self.recv_seq);
        self.recv_seq += 1;
        let peer_pe = ctx.machine.pe_of(self.peer);
        ctx.ucx_irecv(peer_pe, tag, loc, cb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_distinguish_direction_and_seq() {
        let t1 = make_tag(5, true, 0);
        let t2 = make_tag(5, false, 0);
        let t3 = make_tag(5, true, 1);
        let t4 = make_tag(6, true, 0);
        let all = [t1, t2, t3, t4];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn create_channel_wires_both_ends() {
        let mut m = Machine::new(crate::config::MachineConfig::validation(1, 2));
        let (ea, eb) = create_channel(&mut m, ChareId(3), ChareId(7));
        assert_eq!(ea.peer(), ChareId(7));
        assert_eq!(eb.peer(), ChareId(3));
        assert_eq!(ea.id, eb.id);
        let (ec, _) = create_channel(&mut m, ChareId(1), ChareId(2));
        assert_ne!(ea.id, ec.id, "channel ids unique");
    }
}
