//! Processing elements: one scheduler per PE, message-driven.
//!
//! A PE repeatedly pops the highest-priority pending message and executes
//! the target chare's entry method, staying busy for the simulated CPU
//! time the method charges. A PE can also be *blocked* — the state a
//! synchronous `cudaStreamSynchronize` puts the host thread in (paper
//! Fig. 4): a blocked PE does not process its queue at all, which is
//! exactly why synchronous completion destroys overlap.

use std::collections::VecDeque;

use gaat_sim::{SimDuration, SimTime};

use crate::msg::{ChareId, Envelope, MsgPriority};

/// Per-PE statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeStats {
    /// Messages executed.
    pub messages: u64,
    /// High-priority messages executed.
    pub high_priority: u64,
    /// Total CPU time charged by entry methods (for utilization reports,
    /// cf. the paper's discussion of CUDA Graphs benefiting
    /// high-CPU-utilization runs).
    pub cpu_time: SimDuration,
}

/// One processing element.
#[derive(Debug, Clone, Default)]
pub struct Pe {
    high: VecDeque<(ChareId, Envelope)>,
    normal: VecDeque<(ChareId, Envelope)>,
    /// The PE is executing an entry method until this time.
    pub busy_until: Option<SimTime>,
    /// Blocked on a synchronous GPU wait; the queue is frozen.
    pub blocked: bool,
    /// A dispatch event is pending (dedup flag for the machine).
    pub dispatch_scheduled: bool,
    /// Counters.
    pub stats: PeStats,
}

impl Pe {
    /// Idle PE.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a message for `chare`.
    pub fn push(&mut self, chare: ChareId, env: Envelope) {
        match env.priority {
            MsgPriority::High => self.high.push_back((chare, env)),
            MsgPriority::Normal => self.normal.push_back((chare, env)),
        }
    }

    /// Pop the next message (high priority first).
    pub fn pop(&mut self) -> Option<(ChareId, Envelope)> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }

    /// Number of queued messages.
    pub fn queued(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Drop all queued messages and execution state (failure recovery).
    /// Counters survive. A dispatch event already in flight will find an
    /// empty queue and do nothing; clearing `dispatch_scheduled` lets
    /// post-recovery traffic schedule a fresh one.
    pub fn clear(&mut self) {
        self.high.clear();
        self.normal.clear();
        self.busy_until = None;
        self.blocked = false;
        self.dispatch_scheduled = false;
    }

    /// Whether the PE can start executing a message right now.
    pub fn ready(&self, now: SimTime) -> bool {
        !self.blocked
            && self.queued() > 0
            && match self.busy_until {
                None => true,
                Some(t) => t <= now,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::EntryId;

    #[test]
    fn priority_order() {
        let mut pe = Pe::new();
        pe.push(ChareId(0), Envelope::empty(EntryId(0)));
        pe.push(ChareId(1), Envelope::empty(EntryId(1)).high_priority());
        pe.push(ChareId(2), Envelope::empty(EntryId(2)));
        let order: Vec<usize> = std::iter::from_fn(|| pe.pop().map(|(c, _)| c.0)).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn ready_logic() {
        let mut pe = Pe::new();
        assert!(!pe.ready(SimTime::ZERO), "empty queue is not ready");
        pe.push(ChareId(0), Envelope::empty(EntryId(0)));
        assert!(pe.ready(SimTime::ZERO));
        pe.busy_until = Some(SimTime::from_ns(100));
        assert!(!pe.ready(SimTime::from_ns(50)));
        assert!(pe.ready(SimTime::from_ns(100)));
        pe.blocked = true;
        assert!(!pe.ready(SimTime::from_ns(200)));
    }

    #[test]
    fn fifo_within_class() {
        let mut pe = Pe::new();
        for i in 0..5 {
            pe.push(ChareId(i), Envelope::empty(EntryId(0)));
        }
        let order: Vec<usize> = std::iter::from_fn(|| pe.pop().map(|(c, _)| c.0)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
