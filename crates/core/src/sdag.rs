//! Structured-Dagger-style helpers.
//!
//! Charm++ expresses control flow like *"wait for six `recvHalo`
//! messages whose reference number matches my iteration"* with SDAG
//! `when` clauses. In this runtime, chares are explicit state machines;
//! [`WhenSet`] provides the message-buffering half of SDAG: out-of-order
//! messages (e.g. halos from a neighbour that is an iteration ahead) are
//! parked until the chare's own progress catches up.

use std::collections::HashMap;

use crate::msg::{EntryId, Envelope};

/// Buffers envelopes keyed by (entry, refnum) until the owner asks for
/// them.
#[derive(Debug, Clone, Default)]
pub struct WhenSet {
    buffered: HashMap<(EntryId, u64), Vec<Envelope>>,
}

impl WhenSet {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a message for later.
    pub fn deposit(&mut self, env: Envelope) {
        self.buffered
            .entry((env.entry, env.refnum))
            .or_default()
            .push(env);
    }

    /// Take one buffered message matching (entry, refnum), FIFO.
    pub fn take(&mut self, entry: EntryId, refnum: u64) -> Option<Envelope> {
        let key = (entry, refnum);
        let v = self.buffered.get_mut(&key)?;
        let env = if v.is_empty() {
            None
        } else {
            Some(v.remove(0))
        };
        if v.is_empty() {
            self.buffered.remove(&key);
        }
        env
    }

    /// Number of buffered messages matching (entry, refnum).
    pub fn count(&self, entry: EntryId, refnum: u64) -> usize {
        self.buffered.get(&(entry, refnum)).map_or(0, |v| v.len())
    }

    /// Total buffered messages.
    pub fn len(&self) -> usize {
        self.buffered.values().map(|v| v.len()).sum()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_take_roundtrip() {
        let mut w = WhenSet::new();
        w.deposit(Envelope::new(EntryId(1), 10u32).with_refnum(5));
        w.deposit(Envelope::new(EntryId(1), 20u32).with_refnum(5));
        w.deposit(Envelope::new(EntryId(1), 30u32).with_refnum(6));
        assert_eq!(w.len(), 3);
        assert_eq!(w.count(EntryId(1), 5), 2);
        // FIFO within a key.
        assert_eq!(w.take(EntryId(1), 5).expect("buffered").take::<u32>(), 10);
        assert_eq!(w.take(EntryId(1), 5).expect("buffered").take::<u32>(), 20);
        assert!(w.take(EntryId(1), 5).is_none());
        assert_eq!(w.take(EntryId(1), 6).expect("buffered").take::<u32>(), 30);
        assert!(w.is_empty());
    }

    #[test]
    fn keys_are_disjoint() {
        let mut w = WhenSet::new();
        w.deposit(Envelope::new(EntryId(1), 1u32).with_refnum(0));
        w.deposit(Envelope::new(EntryId(2), 2u32).with_refnum(0));
        assert!(w.take(EntryId(3), 0).is_none());
        assert_eq!(w.take(EntryId(2), 0).expect("buffered").take::<u32>(), 2);
        assert_eq!(w.count(EntryId(1), 0), 1);
    }
}
