//! World-slot reuse: amortizing per-run allocation across many runs.
//!
//! Every [`Simulation::new`] pays for the event engine's ~1.5 MB
//! calendar wheel, the slab arena, and (on a fat tree) the route
//! machinery — costs that dwarf the useful work of a small scenario and
//! repeat thousands of times in a sweep. A [`WorldSlot`] is one
//! reusable simulation cell: it parks the engine between runs and
//! rebuilds only the per-scenario [`Machine`] on top of it, and it
//! caches [`SharedTopology`] state (the pre-built all-pairs route
//! table) per machine shape so repeated shapes never re-derive routing.
//!
//! Reuse is *bit-invisible*: [`gaat_sim::Sim::reset`] restores the
//! engine to the observable state of a fresh one (slot indices,
//! generations, sequence numbers, and the clock all restart at zero),
//! and the shared route table replays exactly what the fabric would
//! compute itself. `crates/sweep/tests` pin this with a
//! reset-slot-vs-fresh-world bit-identity test.

use crate::config::MachineConfig;
use crate::machine::{Machine, Simulation};
use gaat_net::SharedTopology;
use gaat_sim::Sim;

/// Usage counters of one slot (how often reuse actually happened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Simulations prepared by this slot.
    pub prepared: u64,
    /// Of those, how many reused a retired engine's allocations.
    pub reused: u64,
}

/// A reusable arena/World cell: park an engine with [`WorldSlot::retire`]
/// after a run, get it back (reset, allocations intact) from the next
/// [`WorldSlot::prepare`].
#[derive(Default)]
pub struct WorldSlot {
    engine: Option<Sim<Machine>>,
    /// Shared immutable topology state, one entry per machine shape this
    /// slot has seen (a sweep typically has one or two). Entries
    /// installed by [`WorldSlot::install_topology`] carry `Arc`s shared
    /// with other slots; lazily built entries are slot-local.
    topos: Vec<SharedTopology>,
    stats: SlotStats,
}

impl WorldSlot {
    /// An empty slot; the first `prepare` builds everything fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt pre-built shared topology state (an `Arc` clone of state
    /// built once by the sweep driver) so this slot never derives its
    /// own copy for that shape.
    pub fn install_topology(&mut self, topo: SharedTopology) {
        self.topos.push(topo);
    }

    /// Build a ready-to-run simulation for `cfg`, reusing the retired
    /// engine's allocations when one is parked and any cached topology
    /// state matching the config's shape. Bit-identical to
    /// `Simulation::new(cfg)`.
    pub fn prepare(&mut self, cfg: MachineConfig) -> Simulation {
        let engine = match self.engine.take() {
            Some(mut e) => {
                e.reset();
                self.stats.reused += 1;
                e
            }
            None => Sim::new(),
        };
        self.stats.prepared += 1;
        if !self.topos.iter().any(|t| t.matches(cfg.nodes, &cfg.net)) {
            self.topos.push(SharedTopology::build(cfg.nodes, &cfg.net));
        }
        let shared = self
            .topos
            .iter()
            .find(|t| t.matches(cfg.nodes, &cfg.net))
            .expect("just inserted");
        Simulation::new_in(engine, cfg, Some(shared))
    }

    /// Park a finished simulation's engine for the next `prepare`. The
    /// machine (chares, buffers, stats) is dropped; only the engine's
    /// heap survives. Accepts stalled runs too — `prepare` resets any
    /// still-pending events away.
    pub fn retire(&mut self, sim: Simulation) {
        self.engine = Some(sim.sim);
    }

    /// Usage counters.
    pub fn stats(&self) -> SlotStats {
        self.stats
    }
}
