//! The simulated machine: devices, fabric, communication layer, PEs, and
//! the chare table — plus the message-driven execution engine.
//!
//! Entry methods are ordinary Rust code that runs instantly in wall-clock
//! time while *charging* simulated CPU time to its PE through [`Ctx`]:
//! scheduler and dispatch overheads, kernel-launch CPU costs, send
//! overheads, and any declared compute. Side effects (GPU enqueues,
//! message sends) take effect at the simulated instant the charging
//! reaches, so a method that launches 13 kernels occupies its PE for
//! 13 × `cpu_launch` — the CPU-side overhead that kernel fusion and graph
//! launch eliminate in the paper's Figs. 8 and 9.

use std::collections::HashMap;

use gaat_gpu::{CompletionTag, Device, DeviceId, GpuHost, GraphId, Op, StreamId};
use gaat_net::{Fabric, NetHost, NetMsg, NodeId, SharedTopology};
use gaat_sim::{RunOutcome, Sim, SimDuration, SimRng, SimTime, Tracer};
use gaat_ucx::{MemLoc, UcxEvent, UcxHost, UcxState, WorkerId};

use crate::config::{LbPolicy, MachineConfig, ShardPlan};
use crate::msg::{Callback, ChareId, Envelope};
use crate::pe::Pe;

/// A migratable, message-driven task object (the chare analogue).
///
/// All behaviour goes through [`Chare::receive`]; applications match on
/// `env.entry` the way a Charm Interface file declares entry methods.
/// The `Any` supertrait enables post-run state inspection via
/// [`Machine::chare_as`].
pub trait Chare: std::any::Any {
    /// Handle one message.
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope);

    /// Reinstall checkpointed state during failure recovery (the unpack
    /// half of the PUP analogue). Called outside any entry method; the
    /// resume entry registered with
    /// [`Machine::set_recovery_resume`] is broadcast afterwards with the
    /// recovery epoch as its refnum. The default panics: applications
    /// that arm PE failures must implement it.
    fn restore(&mut self, _snap: crate::ckpt::ChareSnapshot) {
        panic!("chare does not implement Chare::restore for checkpoint recovery");
    }

    /// Deep-copy this chare for a world snapshot (the memoizer's fork
    /// primitive, distinct from [`Chare::restore`]'s iteration-boundary
    /// checkpoints: a fork captures *mid-flight* state exactly). The
    /// default declines, which makes [`Machine::fork`] — and with it
    /// the sweep's prefix memoization — fall back to fresh
    /// per-scenario execution for applications that don't opt in.
    fn fork(&self) -> Option<Box<dyn Chare>> {
        None
    }
}

/// Where a fired GPU completion tag is routed.
#[derive(Clone)]
enum TagRoute {
    /// Deliver a callback message.
    Callback(Callback),
    /// Unblock a PE that issued a synchronous stream wait, then deliver.
    UnblockPe { pe: usize, then: Callback },
    /// Hand to the communication layer (staging-pipeline copies).
    Ucx(u64),
}

/// What an in-flight runtime active message carries.
#[derive(Clone)]
enum AmKind {
    /// An entry-method invocation.
    Chare(ChareId, Envelope),
    /// A reduction contribution travelling to the root.
    Contribution {
        reducer: u64,
        round: u64,
        value: f64,
        expected: usize,
        cb: Callback,
    },
    /// A broadcast-tree fragment: deliver to the local targets of the
    /// first PE, forward the rest down the binomial tree.
    Broadcast {
        entry: crate::msg::EntryId,
        refnum: u64,
        /// (pe, chares-on-that-pe) groups still to cover; the first group
        /// is this fragment's destination.
        groups: Vec<(usize, Vec<ChareId>)>,
    },
    /// A chare snapshot travelling to its buddy PE's memory.
    Checkpoint {
        chare: ChareId,
        epoch: u64,
        /// PE whose memory will hold the copy: snapshots stored on a PE
        /// that later fails are lost with it.
        stored_on: usize,
        snap: crate::ckpt::ChareSnapshot,
    },
}

#[derive(Debug, Clone, Default)]
struct ReductionSlot {
    count: usize,
    sum: f64,
}

/// Payload of a runtime action deferred to a later simulated instant.
///
/// These are the events the machine schedules on its own hot paths; the
/// payload parks in [`Machine::deferred`] and the event carries only the
/// slot index through the engine's closure-free fast path, so scheduling
/// them allocates nothing in steady state. Deferred events are never
/// cancelled, so plain index recycling (no generations) is safe.
#[derive(Clone)]
enum Deferred {
    /// Local chare-to-chare delivery after `local_latency`.
    LocalMsg { to: ChareId, env: Envelope },
    /// A send leaving the sending entry method at its charge offset.
    Route {
        src_pe: usize,
        from: ChareId,
        to: ChareId,
        env: Envelope,
    },
    /// Enqueue an operation on a device stream and pump the device.
    Enqueue {
        dev: DeviceId,
        stream: StreamId,
        op: Op,
    },
    /// Reset a CUDA-style event on a device.
    EventReset {
        dev: DeviceId,
        ev: gaat_gpu::CudaEventId,
    },
    /// Update one kernel node of a captured graph.
    GraphUpdate {
        dev: DeviceId,
        graph: GraphId,
        node: usize,
        spec: gaat_gpu::KernelSpec,
    },
    /// A reduction contribution leaving its entry method.
    Contribute {
        src_pe: usize,
        reducer: u64,
        round: u64,
        value: f64,
        expected: usize,
        cb: Callback,
    },
    /// A two-sided UCX send issued at the entry method's charge offset.
    Isend {
        from: usize,
        to_worker: usize,
        tag: gaat_ucx::Tag,
        loc: MemLoc,
        user: u64,
    },
    /// A two-sided UCX receive posted at the entry method's charge offset.
    Irecv {
        me: usize,
        from_worker: usize,
        tag: gaat_ucx::Tag,
        loc: MemLoc,
        user: u64,
    },
    /// A chare snapshot leaving its entry method for the buddy PE.
    Checkpoint {
        src_pe: usize,
        chare: ChareId,
        epoch: u64,
        snap: crate::ckpt::ChareSnapshot,
    },
}

/// Fired deferred-action event: reclaims the slot, then performs the
/// action.
fn run_deferred(m: &mut Machine, sim: &mut Sim<Machine>, idx: u64) {
    let Some(d) = m.deferred[idx as usize].take() else {
        // Recovery voids parked payloads in place; the already-scheduled
        // event still fires and reclaims the slot here. Slots are only
        // voided (never handed out) between the voiding and this firing,
        // so the reclaim cannot double-free.
        assert!(m.incarnation > 0, "deferred slot empty");
        m.deferred_free.push(idx as u32);
        return;
    };
    m.deferred_free.push(idx as u32);
    match d {
        Deferred::LocalMsg { to, env } => m.enqueue_to_chare(sim, to, env),
        Deferred::Route {
            src_pe,
            from,
            to,
            env,
        } => m.route_msg(sim, src_pe, from, to, env),
        Deferred::Enqueue { dev, stream, op } => {
            m.devices[dev.0].enqueue(stream, op);
            gaat_gpu::pump(m, sim, dev);
        }
        Deferred::EventReset { dev, ev } => m.devices[dev.0].reset_event(ev),
        Deferred::GraphUpdate {
            dev,
            graph,
            node,
            spec,
        } => m.devices[dev.0].update_graph_kernel(graph, node, spec),
        Deferred::Contribute {
            src_pe,
            reducer,
            round,
            value,
            expected,
            cb,
        } => {
            let token = m.next_am;
            m.next_am += 1;
            m.am_store.insert(
                token,
                AmKind::Contribution {
                    reducer,
                    round,
                    value,
                    expected,
                    cb,
                },
            );
            // Contributions go to the root PE (PE 0).
            gaat_ucx::am_send(m, sim, WorkerId(src_pe), WorkerId(0), 48, token);
        }
        Deferred::Isend {
            from,
            to_worker,
            tag,
            loc,
            user,
        } => gaat_ucx::isend(m, sim, WorkerId(from), WorkerId(to_worker), tag, loc, user),
        Deferred::Irecv {
            me,
            from_worker,
            tag,
            loc,
            user,
        } => gaat_ucx::irecv(m, sim, WorkerId(me), WorkerId(from_worker), tag, loc, user),
        Deferred::Checkpoint {
            src_pe,
            chare,
            epoch,
            snap,
        } => {
            // Local half of the double checkpoint: a copy in the owner
            // PE's own memory, no wire cost. It covers the case where the
            // *buddy* is the PE that fails.
            m.store_ckpt_copy(chare, epoch, src_pe, snap.clone());
            let buddy = m.buddy_of(src_pe);
            if buddy == src_pe {
                return;
            }
            let bytes = snap.wire_bytes() + m.cfg.rt.envelope_bytes;
            let token = m.next_am;
            m.next_am += 1;
            m.am_store.insert(
                token,
                AmKind::Checkpoint {
                    chare,
                    epoch,
                    stored_on: buddy,
                    snap,
                },
            );
            gaat_ucx::am_send(m, sim, WorkerId(src_pe), WorkerId(buddy), bytes, token);
        }
    }
}

/// Fired scheduled-PE-failure event: the process at
/// `cfg.faults.pe_failures[idx]` vanishes.
fn pe_fail_fire(m: &mut Machine, sim: &mut Sim<Machine>, idx: u64) {
    m.pe_fail(sim, idx as usize);
}

/// Fired failure-detection event: begin global rollback recovery.
fn recover_fire(m: &mut Machine, sim: &mut Sim<Machine>, failed_pe: u64) {
    m.recover(sim, failed_pe as usize);
}

/// Fired PE-dispatch event (the scheduled half of [`Machine::kick_pe`]).
fn run_pe_ev(m: &mut Machine, sim: &mut Sim<Machine>, pe: u64) {
    m.run_pe(sim, pe as usize);
}

/// Fired periodic load-balancing event (`round` counts ticks).
fn lb_tick_fire(m: &mut Machine, sim: &mut Sim<Machine>, round: u64) {
    m.lb_tick(sim, round);
}

/// Aggregate machine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineStats {
    /// Entry methods executed.
    pub entries: u64,
    /// Runtime messages sent chare-to-chare.
    pub sends: u64,
    /// Chare migrations performed.
    pub migrations: u64,
    /// Checkpoint snapshots accepted into buddy memory.
    pub checkpoints_stored: u64,
    /// PE failures injected by the fault plan.
    pub pe_failures: u64,
    /// Global rollback recoveries performed.
    pub recoveries: u64,
    /// Chares restored from snapshots across all recoveries.
    pub chares_restored: u64,
}

/// Closed-loop load-balancer counters (all zero with the balancer off).
#[derive(Debug, Clone, Copy, Default)]
pub struct LbStats {
    /// LB tick events that ran.
    pub rounds: u64,
    /// Rounds whose plan was applied (migrations executed).
    pub applied: u64,
    /// Rounds whose plan was declined at apply time (no complete
    /// checkpoint cut, or no resume entry registered).
    pub declined: u64,
    /// Chares moved across all applied plans.
    pub migrations: u64,
    /// Host (wall-clock) nanoseconds spent scoring plans.
    pub plan_host_ns: u64,
    /// Host (wall-clock) nanoseconds spent applying plans (purge +
    /// restore + resume broadcast).
    pub apply_host_ns: u64,
    /// Hottest-link utilization read at the most recent applied plan's
    /// tick (the "before" half of the post-LB delta).
    pub last_util_before: f64,
    /// Hottest-link utilization read one period after the most recent
    /// applied plan (the "after" half; 0 until that tick fires).
    pub last_util_after: f64,
}

/// One cross-shard delivery recorded by the windowed run's ledger. The
/// fabric has priced the message (its delivery instant is fixed at
/// admission); the barrier drains the ledger in `(time, src_node, token)`
/// order — a total order independent of shard count — and asserts the
/// conservative-window invariant on every entry.
#[derive(Debug, Clone, Copy)]
struct StagedDelivery {
    at: SimTime,
    src_node: usize,
    token: u64,
    flight: u32,
}

/// Windowed-execution state installed on the machine while a
/// `workers > 1` run is in progress (see [`Simulation::run`]).
struct WindowState {
    plan: ShardPlan,
    parked: Vec<StagedDelivery>,
}

/// The world type of every simulation in this stack.
pub struct Machine {
    /// Configuration the machine was built from.
    pub cfg: MachineConfig,
    /// One device per PE.
    pub devices: Vec<Device>,
    /// The interconnect.
    pub fabric: Fabric,
    /// The communication layer.
    pub ucx: UcxState,
    /// Per-PE schedulers.
    pub pes: Vec<Pe>,
    chares: Vec<Option<Box<dyn Chare>>>,
    chare_pe: Vec<usize>,
    chare_load: Vec<SimDuration>,
    /// Per-chare ns (CPU charge + estimated kernel/DMA time) accrued
    /// since the last LB tick folded it; pure bookkeeping, so metering
    /// is bit-invisible while the balancer is off.
    lb_recent: Vec<u64>,
    /// Per-chare EWMA of `lb_recent` per LB period (integer fold).
    lb_ewma: Vec<u64>,
    /// Per-chare bytes sent to each partner chare (comm-affinity meter;
    /// BTreeMap for deterministic iteration order).
    lb_bytes: Vec<std::collections::BTreeMap<usize, u64>>,
    lb_stats: LbStats,
    /// True between an applied plan and the next tick's "after"
    /// utilization reading.
    lb_await_after: bool,
    tag_routes: HashMap<u64, TagRoute>,
    next_tag: u64,
    am_store: HashMap<u64, AmKind>,
    next_am: u64,
    ucx_routes: HashMap<u64, Callback>,
    next_ucx_user: u64,
    reductions: HashMap<(u64, u64), ReductionSlot>,
    next_reducer: u64,
    next_channel: u64,
    /// Parked payloads of scheduled runtime actions (see [`Deferred`]).
    deferred: Vec<Option<Deferred>>,
    deferred_free: Vec<u32>,
    /// Liveness of each PE (all true until a planned failure fires).
    pe_alive: Vec<bool>,
    /// Recovery generation: 0 until the first rollback. Event-layer
    /// lookups stay strict (panic on unknown ids) while this is 0 and
    /// tolerate post-purge stragglers afterwards.
    incarnation: u64,
    /// Buddy-held snapshots per chare: up to the last two epochs in
    /// ascending order, each tagged with the PE whose memory holds it.
    ckpts: HashMap<ChareId, Vec<(u64, usize, crate::ckpt::ChareSnapshot)>>,
    /// Broadcast issued after every recovery to restart the application.
    recovery_resume: Option<(Vec<ChareId>, crate::msg::EntryId)>,
    /// Root RNG (split per subsystem at construction).
    pub rng: SimRng,
    /// Entry-method span recorder, one lane per PE (enabled by
    /// `MachineConfig::trace`). Device-side spans live in each device's
    /// own tracer.
    pub tracer: Tracer,
    stats: MachineStats,
    /// `Some` only while a windowed (`workers > 1`) run is in progress.
    window: Option<WindowState>,
}

impl Machine {
    /// Build a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::new_shared(cfg, None)
    }

    /// Like [`Machine::new`], but reusing pre-built immutable topology
    /// state (an all-pairs route table) from a [`SharedTopology`] —
    /// sweep workers build that state once per machine shape and share
    /// it read-only across thousands of runs. Bit-identical to
    /// [`Machine::new`].
    pub fn new_shared(cfg: MachineConfig, shared: Option<&SharedTopology>) -> Self {
        let rng = SimRng::new(cfg.seed);
        let pes = cfg.total_pes();
        let devices: Vec<Device> = (0..pes)
            .map(|i| {
                let mut d = Device::new(DeviceId(i), cfg.gpu.clone());
                d.tracer.set_enabled(cfg.trace);
                if !cfg.faults.stragglers.is_empty() {
                    d.set_fault_plan(cfg.faults.clone());
                }
                d
            })
            .collect();
        let mut fabric = Fabric::new_shared(cfg.nodes, cfg.net.clone(), rng.stream(1), shared);
        fabric.set_tracing(cfg.trace);
        if cfg.faults.is_active() {
            fabric.set_faults(cfg.faults.clone());
        }
        let ucx = UcxState::new(pes, cfg.ucx.clone());
        Machine {
            devices,
            fabric,
            ucx,
            pes: (0..pes).map(|_| Pe::new()).collect(),
            chares: Vec::new(),
            chare_pe: Vec::new(),
            chare_load: Vec::new(),
            lb_recent: Vec::new(),
            lb_ewma: Vec::new(),
            lb_bytes: Vec::new(),
            lb_stats: LbStats::default(),
            lb_await_after: false,
            tag_routes: HashMap::new(),
            next_tag: 0,
            am_store: HashMap::new(),
            next_am: 0,
            ucx_routes: HashMap::new(),
            next_ucx_user: 0,
            reductions: HashMap::new(),
            next_reducer: 0,
            next_channel: 0,
            deferred: Vec::new(),
            deferred_free: Vec::new(),
            pe_alive: vec![true; pes],
            incarnation: 0,
            ckpts: HashMap::new(),
            recovery_resume: None,
            rng,
            tracer: if cfg.trace {
                Tracer::enabled()
            } else {
                Tracer::new()
            },
            cfg,
            stats: MachineStats::default(),
            window: None,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Whether a PE is still alive (false after a planned failure fires).
    pub fn pe_alive(&self, pe: usize) -> bool {
        self.pe_alive[pe]
    }

    /// Recovery generation: 0 until the first rollback.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Register the entry broadcast to `targets` after every recovery
    /// (refnum = the recovery epoch). Applications that arm PE failures
    /// must call this during setup.
    pub fn set_recovery_resume(&mut self, targets: Vec<ChareId>, entry: crate::msg::EntryId) {
        self.recovery_resume = Some((targets, entry));
    }

    /// Schedule the fault plan's time-triggered faults (link and PE
    /// failures). Called once by [`Simulation::new`]; drivers that build
    /// a raw [`Machine`] and want faults must call it before running.
    pub fn arm_faults(&mut self, sim: &mut Sim<Machine>) {
        if !self.cfg.faults.is_active() {
            return;
        }
        gaat_net::arm_link_faults(self, sim);
        if !self.cfg.faults.pe_failures.is_empty() {
            // After a purge, fabric-stashed deliveries for cancelled
            // transfers must be tolerated, which only the reliable
            // transport's token tracking can do.
            assert!(
                self.cfg.ucx.reliability.enabled,
                "PE-failure recovery requires ucx.reliability.enabled"
            );
            for (i, pf) in self.cfg.faults.pe_failures.iter().enumerate() {
                sim.at_call1(pf.at, pe_fail_fire, i as u64);
            }
        }
    }

    /// Arm the periodic load-balancing tick. Called once by
    /// [`Simulation::new`] after [`Machine::arm_faults`]; inert unless
    /// `cfg.lb.enabled()`, so existing configurations replay
    /// bit-identically.
    pub fn arm_lb(&mut self, sim: &mut Sim<Machine>) {
        if !self.cfg.lb.enabled() {
            return;
        }
        assert!(
            self.cfg.workers <= 1,
            "adaptive LB requires workers == 1 (run scenario pools in \
             parallel instead: a mid-window rollback cannot be merged \
             deterministically across shards)"
        );
        assert!(
            self.cfg.ucx.reliability.enabled,
            "adaptive LB migration requires ucx.reliability.enabled: the \
             post-apply purge leaves fabric-stashed deliveries that only \
             the reliable transport's token tracking can identify as stale"
        );
        sim.after_call1(self.cfg.lb.period, lb_tick_fire, 0);
    }

    /// Load-balancer counters so far.
    pub fn lb_stats(&self) -> LbStats {
        self.lb_stats
    }

    /// One closed-loop LB round: fold meters, read sensors, score a
    /// plan, and (maybe) apply it through the checkpoint/restore path.
    fn lb_tick(&mut self, sim: &mut Sim<Machine>, round: u64) {
        // `pending` excludes this firing event, so zero means nothing
        // else can ever happen: the run is over. Let the world drain
        // instead of keeping it alive with an endless tick chain.
        if sim.pending() == 0 {
            return;
        }
        sim.after_call1(self.cfg.lb.period, lb_tick_fire, round + 1);
        self.lb_stats.rounds += 1;
        let now = sim.now();
        // Fold the per-period accumulators into the EWMAs. Integer
        // arithmetic (`e += (r - e) >> 1`) keeps the meters — and with
        // them every migration decision — bit-identical across
        // platforms and repeated runs.
        for c in 0..self.chares.len() {
            let e = self.lb_ewma[c] as i64;
            let r = self.lb_recent[c] as i64;
            self.lb_ewma[c] = (e + ((r - e) >> 1)) as u64;
            self.lb_recent[c] = 0;
        }
        // Sensors: link heat from the fabric, retry distress from the
        // transport. Pure reads — polling cannot perturb the run.
        let heat = self.fabric.heat(now);
        if self.lb_await_after {
            self.lb_stats.last_util_after = heat.max_link_utilization;
            self.lb_await_after = false;
        }
        let ucx = self.ucx.stats();
        let distressed = heat.distressed() || ucx.retransmits > 0 || ucx.timeouts > 0;
        let t0 = std::time::Instant::now();
        let plan = self.lb_plan(now, distressed);
        self.lb_stats.plan_host_ns += t0.elapsed().as_nanos() as u64;
        let Some(plan) = plan else {
            return;
        };
        let t0 = std::time::Instant::now();
        if self.lb_apply(sim, &plan.moves) {
            self.lb_stats.applied += 1;
            self.lb_stats.migrations += plan.moves.len() as u64;
            self.lb_stats.last_util_before = heat.max_link_utilization;
            self.lb_await_after = true;
        } else {
            self.lb_stats.declined += 1;
        }
        self.lb_stats.apply_host_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Gather sensor inputs and run the configured planner.
    fn lb_plan(&self, now: SimTime, distressed: bool) -> Option<crate::lb::LbPlan> {
        let n_pes = self.pes.len();
        let adaptive = self.cfg.lb.policy == LbPolicy::Adaptive;
        // Straggler awareness: a chare's projected cost on PE `p` is its
        // EWMA meter stretched by `p`'s active slowdown window.
        let pe_slow: Vec<f64> = if adaptive {
            (0..n_pes)
                .map(|p| self.cfg.faults.straggler_slowdown(p, now))
                .collect()
        } else {
            vec![1.0; n_pes]
        };
        let affinity: Vec<Vec<(usize, u64)>> = if adaptive {
            self.lb_bytes
                .iter()
                .map(|m| m.iter().map(|(&k, &v)| (k, v)).collect())
                .collect()
        } else {
            vec![Vec::new(); self.chares.len()]
        };
        let node_of: Vec<usize> = (0..n_pes).map(|p| self.cfg.node_of_pe(p)).collect();
        let sensors = crate::lb::LbSensors {
            pe_of: &self.chare_pe,
            base_ns: &self.lb_ewma,
            pe_slow: &pe_slow,
            alive: &self.pe_alive,
            affinity: &affinity,
            node_of: &node_of,
            distressed: adaptive && distressed,
        };
        crate::lb::periodic_plan(&sensors, &self.cfg.lb)
    }

    /// Execute a migration plan mid-run through the checkpoint/restore
    /// path (the recovery machinery, minus the dead PE): purge every
    /// layer's in-flight state, move the chares, restore all chares
    /// from the newest collectively-held epoch, and broadcast the
    /// registered resume entry. In-flight messages need no explicit
    /// forwarding: anything the fabric still delivers afterwards is
    /// dropped as a stale token, and the reliable transport's purge
    /// guarantees the application sees a consistent restart. Returns
    /// `false` — decline, leaving the world untouched — when the
    /// application has not published the preconditions (a resume entry
    /// plus a complete checkpoint cut).
    fn lb_apply(&mut self, sim: &mut Sim<Machine>, moves: &[(ChareId, usize)]) -> bool {
        if self.recovery_resume.is_none() || self.chares.is_empty() {
            return false;
        }
        let mut epoch = u64::MAX;
        for c in 0..self.chares.len() {
            match self.ckpts.get(&ChareId(c)).and_then(|s| s.last()) {
                Some(&(e, _, _)) => epoch = epoch.min(e),
                None => return false,
            }
        }
        // Asynchronous execution lets chares drift further apart than
        // the two retained checkpoint epochs, so a chare may hold
        // nothing at or before the collective cut. Resolve the whole
        // cut up front and decline — before touching any state — if it
        // is incomplete; a later round will catch a complete wave.
        let mut snaps = Vec::with_capacity(self.chares.len());
        for c in 0..self.chares.len() {
            match self.ckpts[&ChareId(c)]
                .iter()
                .rev()
                .find(|&&(e, _, _)| e <= epoch)
            {
                Some((_, _, s)) => snaps.push(s.clone()),
                None => return false,
            }
        }
        self.incarnation += 1;
        for timer in self.ucx.purge() {
            sim.cancel(timer);
        }
        self.tag_routes.clear();
        self.am_store.clear();
        self.ucx_routes.clear();
        self.reductions.clear();
        // Void parked deferred payloads in place; each voided slot's
        // already-scheduled event reclaims it (see `run_deferred`).
        for slot in &mut self.deferred {
            *slot = None;
        }
        let now = sim.now();
        for pe in 0..self.pes.len() {
            self.pes[pe].clear();
            self.devices[pe].purge(now);
        }
        for &(c, pe) in moves {
            self.migrate(c, pe);
        }
        for (c, snap) in snaps.into_iter().enumerate() {
            self.chares[c]
                .as_mut()
                .expect("chare resident during LB apply")
                .restore(snap);
            self.stats.chares_restored += 1;
        }
        // Migration marker in the trace (one dedicated lane above the
        // per-PE lanes).
        self.tracer.record(
            self.pes.len() as u32,
            "lb",
            "migrate",
            now,
            now + SimDuration::from_ns(1),
        );
        let (targets, entry) = self.recovery_resume.clone().expect("checked above");
        self.broadcast(sim, &targets, entry, epoch);
        true
    }

    /// Accept one copy of a chare snapshot into `stored_on`'s memory.
    /// Epochs older than the newest two are discarded: keeping two
    /// guarantees a collectively complete cut survives a failure that
    /// lands mid-checkpoint-wave.
    fn store_ckpt_copy(
        &mut self,
        chare: ChareId,
        epoch: u64,
        stored_on: usize,
        snap: crate::ckpt::ChareSnapshot,
    ) {
        self.stats.checkpoints_stored += 1;
        // Recovery and the balancer restore from the newest epoch every
        // chare holds (the global cut). Asynchrony lets fast chares run
        // several epochs ahead of a straggler, so pruning to the newest
        // two alone would evict the cut from the fast chares' stores.
        // Clamp pruning so each chare also keeps its newest epoch at or
        // below the cut; retention stays bounded by the drift the
        // application's dependences allow.
        let global_cut = (0..self.chares.len())
            .map(|c| {
                let newest = self
                    .ckpts
                    .get(&ChareId(c))
                    .and_then(|s| s.last())
                    .map_or(0, |&(e, _, _)| e);
                if ChareId(c) == chare {
                    newest.max(epoch)
                } else {
                    newest
                }
            })
            .min()
            .unwrap_or(0);
        let slots = self.ckpts.entry(chare).or_default();
        slots.retain(|&(e, on, _)| !(e == epoch && on == stored_on));
        slots.push((epoch, stored_on, snap));
        slots.sort_by_key(|&(e, on, _)| (e, on));
        let mut epochs: Vec<u64> = slots.iter().map(|&(e, _, _)| e).collect();
        epochs.dedup();
        if epochs.len() > 2 {
            let newest_two = epochs[epochs.len() - 2];
            let held_cut = epochs
                .iter()
                .rev()
                .find(|&&e| e <= global_cut)
                .copied()
                .unwrap_or(0);
            let cutoff = newest_two.min(held_cut);
            slots.retain(|&(e, _, _)| e >= cutoff);
        }
    }

    /// Next live PE after `pe` in ring order: the buddy that holds its
    /// chares' checkpoints.
    fn buddy_of(&self, pe: usize) -> usize {
        let n = self.pes.len();
        (1..=n)
            .map(|k| (pe + k) % n)
            .find(|&q| self.pe_alive[q])
            .unwrap_or(pe)
    }

    /// A planned PE failure fires: the process vanishes. Queued work and
    /// in-flight GPU work on it are gone; recovery begins once the
    /// failure detector notices.
    fn pe_fail(&mut self, sim: &mut Sim<Machine>, idx: usize) {
        let pe = self.cfg.faults.pe_failures[idx].pe;
        assert!(self.pe_alive[pe], "PE {pe} failed twice");
        self.pe_alive[pe] = false;
        self.stats.pe_failures += 1;
        let now = sim.now();
        self.devices[pe].purge(now);
        self.pes[pe].clear();
        sim.after_call1(self.cfg.faults.detection_delay, recover_fire, pe as u64);
    }

    /// Global rollback recovery after `failed` died (the restart half of
    /// double in-memory checkpointing): tear down every layer's in-flight
    /// state, re-place the dead PE's chares onto live PEs, restore all
    /// chares from the newest collectively-held epoch, and broadcast the
    /// registered resume entry.
    fn recover(&mut self, sim: &mut Sim<Machine>, failed: usize) {
        self.stats.recoveries += 1;
        self.incarnation += 1;
        // Communication layer first: cancel its retry timers, forget all
        // in-flight transfers and routes. Anything the fabric still
        // delivers afterwards is dropped as a stale token.
        for timer in self.ucx.purge() {
            sim.cancel(timer);
        }
        self.tag_routes.clear();
        self.am_store.clear();
        self.ucx_routes.clear();
        self.reductions.clear();
        // Void parked deferred payloads in place. The free list is NOT
        // touched: each voided slot's already-scheduled event reclaims it
        // when it fires (see `run_deferred`).
        for slot in &mut self.deferred {
            *slot = None;
        }
        let now = sim.now();
        for pe in 0..self.pes.len() {
            self.pes[pe].clear();
            // Purge live devices too: in-flight kernels from before the
            // rollback must not apply their effects to restored buffers.
            self.devices[pe].purge(now);
        }
        // Snapshots held in the failed PE's memory died with it.
        for slots in self.ckpts.values_mut() {
            slots.retain(|&(_, on, _)| on != failed);
        }
        // Recovery epoch: the newest epoch every chare can restore.
        let epoch = (0..self.chares.len())
            .map(|c| {
                self.ckpts
                    .get(&ChareId(c))
                    .and_then(|s| s.last())
                    .map(|&(e, _, _)| e)
                    .unwrap_or_else(|| panic!("chare {c} has no surviving checkpoint"))
            })
            .min()
            .expect("machine has chares");
        // Re-place chares stranded on the dead PE: heaviest first onto
        // the least-loaded live PE (the greedy-LB rule, restricted to
        // the refugees).
        let mut pe_load = vec![0u64; self.pes.len()];
        for c in 0..self.chares.len() {
            let pe = self.chare_pe[c];
            if self.pe_alive[pe] {
                pe_load[pe] += self.chare_load[c].as_ns();
            }
        }
        let mut refugees: Vec<usize> = (0..self.chares.len())
            .filter(|&c| !self.pe_alive[self.chare_pe[c]])
            .collect();
        refugees.sort_by(|&a, &b| self.chare_load[b].cmp(&self.chare_load[a]).then(a.cmp(&b)));
        for c in refugees {
            let (target, _) = pe_load
                .iter()
                .enumerate()
                .filter(|&(p, _)| self.pe_alive[p])
                .min_by_key(|&(p, &l)| (l, p))
                .expect("a live PE remains");
            pe_load[target] += self.chare_load[c].as_ns();
            self.migrate(ChareId(c), target);
        }
        // Restore every chare (global rollback) in id order.
        for c in 0..self.chares.len() {
            let snap = self.ckpts[&ChareId(c)]
                .iter()
                .rev()
                .find(|&&(e, _, _)| e <= epoch)
                .map(|(_, _, s)| s.clone())
                .unwrap_or_else(|| panic!("chare {c} has no snapshot at or before epoch {epoch}"));
            self.chares[c]
                .as_mut()
                .expect("chare resident during recovery")
                .restore(snap);
            self.stats.chares_restored += 1;
        }
        let (targets, entry) = self
            .recovery_resume
            .clone()
            .expect("set_recovery_resume not called before a PE failure");
        self.broadcast(sim, &targets, entry, epoch);
    }

    /// Number of registered chares.
    pub fn chare_count(&self) -> usize {
        self.chares.len()
    }

    /// Current PE of a chare.
    pub fn pe_of(&self, c: ChareId) -> usize {
        self.chare_pe[c.0]
    }

    /// Accumulated CPU time charged by a chare (the load metric used by
    /// the greedy load balancer).
    pub fn load_of(&self, c: ChareId) -> SimDuration {
        self.chare_load[c.0]
    }

    /// Overwrite a chare's measured load (test support for the load
    /// balancer).
    #[doc(hidden)]
    pub fn set_load_for_test(&mut self, c: ChareId, load: SimDuration) {
        self.chare_load[c.0] = load;
    }

    /// Device owned by a PE (non-SMP: one GPU per PE).
    pub fn pe_device(&self, pe: usize) -> DeviceId {
        DeviceId(pe)
    }

    /// Register a chare on a PE. Done during setup, before the simulation
    /// runs.
    pub fn create_chare(&mut self, pe: usize, chare: Box<dyn Chare>) -> ChareId {
        assert!(pe < self.pes.len(), "PE {pe} out of range");
        let id = ChareId(self.chares.len());
        self.chares.push(Some(chare));
        self.chare_pe.push(pe);
        self.chare_load.push(SimDuration::ZERO);
        self.lb_recent.push(0);
        self.lb_ewma.push(0);
        self.lb_bytes.push(std::collections::BTreeMap::new());
        id
    }

    /// Borrow a chare's state (for post-run inspection). Panics if the
    /// chare is currently executing.
    pub fn chare(&self, id: ChareId) -> &dyn Chare {
        self.chares[id.0].as_deref().expect("chare not executing")
    }

    /// Downcast helper for post-run inspection.
    pub fn chare_as<T: Chare>(&self, id: ChareId) -> &T {
        let c: &dyn std::any::Any = self.chare(id);
        c.downcast_ref::<T>().expect("chare type mismatch")
    }

    /// Mutable access to a chare's state during setup (before the
    /// simulation runs) — e.g. to hand it buffers or channel ends.
    pub fn chare_for_setup(&mut self, id: ChareId) -> &mut dyn std::any::Any {
        self.chares[id.0]
            .as_deref_mut()
            .expect("chare not executing")
    }

    /// Deliver `env` to `chare` at simulation start (used by drivers to
    /// seed the initial broadcast without charging runtime costs).
    pub fn inject(&mut self, sim: &mut Sim<Machine>, chare: ChareId, env: Envelope) {
        self.enqueue_to_chare(sim, chare, env);
    }

    /// Broadcast an empty message with `entry`/`refnum` to `targets` over
    /// a binomial tree of the involved PEs (the proxy-broadcast analogue
    /// of `block_proxy.run()` in the paper's Fig. 3). Unlike
    /// [`Machine::inject`], every hop pays real messaging costs.
    pub fn broadcast(
        &mut self,
        sim: &mut Sim<Machine>,
        targets: &[ChareId],
        entry: crate::msg::EntryId,
        refnum: u64,
    ) {
        // Group targets by current PE, deterministically ordered.
        let mut by_pe: std::collections::BTreeMap<usize, Vec<ChareId>> =
            std::collections::BTreeMap::new();
        for &c in targets {
            by_pe.entry(self.pe_of(c)).or_default().push(c);
        }
        let groups: Vec<(usize, Vec<ChareId>)> = by_pe.into_iter().collect();
        self.deliver_broadcast(sim, entry, refnum, groups);
    }

    /// Deliver a broadcast fragment: enqueue to the head group's chares,
    /// split the tail across two child fragments (binomial tree).
    fn deliver_broadcast(
        &mut self,
        sim: &mut Sim<Machine>,
        entry: crate::msg::EntryId,
        refnum: u64,
        mut groups: Vec<(usize, Vec<ChareId>)>,
    ) {
        if groups.is_empty() {
            return;
        }
        let (head_pe, locals) = groups.remove(0);
        // Forward the two halves of the remainder first (wire time
        // overlaps with local delivery).
        let mid = groups.len() / 2;
        let right = groups.split_off(mid);
        for child in [groups, right] {
            if let Some(&(child_pe, _)) = child.first() {
                let token = self.next_am;
                self.next_am += 1;
                let bytes = 64 + child.len() as u64 * 16;
                self.am_store.insert(
                    token,
                    AmKind::Broadcast {
                        entry,
                        refnum,
                        groups: child,
                    },
                );
                gaat_ucx::am_send(
                    self,
                    sim,
                    WorkerId(head_pe),
                    WorkerId(child_pe),
                    bytes,
                    token,
                );
            }
        }
        for c in locals {
            self.enqueue_to_chare(sim, c, Envelope::empty(entry).with_refnum(refnum));
        }
    }

    /// Move a chare to another PE (load balancing). Only safe between
    /// phases when the chare has no in-flight communication.
    pub fn migrate(&mut self, chare: ChareId, to_pe: usize) {
        assert!(to_pe < self.pes.len());
        self.stats.migrations += 1;
        self.chare_pe[chare.0] = to_pe;
    }

    /// Park a deferred action, returning the slot index its event carries.
    fn defer(&mut self, d: Deferred) -> u64 {
        match self.deferred_free.pop() {
            Some(i) => {
                self.deferred[i as usize] = Some(d);
                i as u64
            }
            None => {
                self.deferred.push(Some(d));
                (self.deferred.len() - 1) as u64
            }
        }
    }

    /// Allocate a completion-tag route.
    fn alloc_tag(&mut self, route: TagRoute) -> CompletionTag {
        let t = self.next_tag;
        self.next_tag += 1;
        self.tag_routes.insert(t, route);
        CompletionTag(t)
    }

    /// Allocate a UCX user cookie mapped to a callback.
    fn alloc_ucx_route(&mut self, cb: Callback) -> u64 {
        let u = self.next_ucx_user;
        self.next_ucx_user += 1;
        self.ucx_routes.insert(u, cb);
        u
    }

    /// Create a fresh reducer id.
    pub fn create_reducer(&mut self) -> u64 {
        let r = self.next_reducer;
        self.next_reducer += 1;
        r
    }

    /// Create a fresh channel id (used by [`crate::channel`]).
    pub(crate) fn alloc_channel_id(&mut self) -> u64 {
        let c = self.next_channel;
        self.next_channel += 1;
        c
    }

    fn deliver_callback(&mut self, sim: &mut Sim<Machine>, cb: Callback, value: Option<f64>) {
        match cb {
            Callback::Ignore => {}
            Callback::ToChare {
                chare,
                entry,
                refnum,
            } => {
                let env = match value {
                    Some(v) => Envelope::new(entry, v),
                    None => Envelope::empty(entry),
                }
                .with_refnum(refnum)
                .high_priority();
                self.enqueue_to_chare(sim, chare, env);
            }
        }
    }

    /// Queue a message at the chare's current PE and make sure the PE will
    /// dispatch.
    pub(crate) fn enqueue_to_chare(
        &mut self,
        sim: &mut Sim<Machine>,
        chare: ChareId,
        env: Envelope,
    ) {
        let pe = self.chare_pe[chare.0];
        self.pes[pe].push(chare, env);
        self.kick_pe(sim, pe);
    }

    /// Schedule a dispatch event for the PE if none is pending.
    fn kick_pe(&mut self, sim: &mut Sim<Machine>, pe: usize) {
        if !self.pe_alive[pe] || self.pes[pe].dispatch_scheduled || self.pes[pe].blocked {
            return;
        }
        let at = match self.pes[pe].busy_until {
            Some(t) if t > sim.now() => t,
            _ => sim.now(),
        };
        self.pes[pe].dispatch_scheduled = true;
        sim.at_call1(at, run_pe_ev, pe as u64);
    }

    /// Execute at most one message on the PE and reschedule.
    fn run_pe(&mut self, sim: &mut Sim<Machine>, pe: usize) {
        self.pes[pe].dispatch_scheduled = false;
        if !self.pe_alive[pe] {
            return;
        }
        let now = sim.now();
        if !self.pes[pe].ready(now) {
            if self.pes[pe].queued() > 0 && !self.pes[pe].blocked {
                self.kick_pe(sim, pe);
            }
            return;
        }
        let Some((chare_id, env)) = self.pes[pe].pop() else {
            // A recovery cleared the queue between the kick and this
            // dispatch event.
            assert!(self.incarnation > 0, "ready implies nonempty");
            return;
        };
        self.pes[pe].stats.messages += 1;
        let env_priority_high = env.priority == crate::msg::MsgPriority::High;
        if env_priority_high {
            self.pes[pe].stats.high_priority += 1;
        }
        self.stats.entries += 1;
        let mut chare = self.chares[chare_id.0]
            .take()
            .expect("chare executing reentrantly");
        let mut ctx = Ctx {
            machine: self,
            sim,
            pe,
            chare: chare_id,
            charged: SimDuration::ZERO,
            block: None,
        };
        ctx.charged = ctx.machine.cfg.rt.sched_per_msg + ctx.machine.cfg.rt.entry_dispatch;
        chare.receive(&mut ctx, env);
        let charged = ctx.charged;
        let block = ctx.block.take();
        self.chares[chare_id.0] = Some(chare);
        self.chare_load[chare_id.0] += charged;
        self.lb_recent[chare_id.0] += charged.as_ns();
        self.pes[pe].stats.cpu_time += charged;
        let end = now + charged;
        self.pes[pe].busy_until = Some(end);
        self.tracer.record(
            pe as u32,
            "pe",
            if env_priority_high {
                "callback"
            } else {
                "entry"
            },
            now,
            end,
        );
        if let Some((dev, stream, then)) = block {
            // Synchronous stream wait: freeze the PE, enqueue a marker
            // whose completion unblocks it (paper Fig. 4, "sync" lane).
            self.pes[pe].blocked = true;
            let tag = self.alloc_tag(TagRoute::UnblockPe { pe, then });
            let idx = self.defer(Deferred::Enqueue {
                dev,
                stream,
                op: Op::marker().with_tag(tag),
            });
            sim.at_call1(end, run_deferred, idx);
        } else if self.pes[pe].queued() > 0 {
            self.kick_pe(sim, pe);
        }
    }

    /// Route a chare-to-chare message (runs at the instant the sending
    /// entry method reaches the send call). The destination PE is
    /// resolved *here*, not at the send call, so messages to a chare
    /// migrated in between are forwarded to its new home automatically.
    fn route_msg(
        &mut self,
        sim: &mut Sim<Machine>,
        src_pe: usize,
        from: ChareId,
        to: ChareId,
        env: Envelope,
    ) {
        self.stats.sends += 1;
        *self.lb_bytes[from.0].entry(to.0).or_insert(0) += env.wire_bytes;
        let dst_pe = self.chare_pe[to.0];
        if dst_pe == src_pe {
            let delay = self.cfg.rt.local_latency;
            let idx = self.defer(Deferred::LocalMsg { to, env });
            sim.after_call1(delay, run_deferred, idx);
        } else {
            let bytes = env.wire_bytes + self.cfg.rt.envelope_bytes;
            let token = self.next_am;
            self.next_am += 1;
            self.am_store.insert(token, AmKind::Chare(to, env));
            gaat_ucx::am_send(self, sim, WorkerId(src_pe), WorkerId(dst_pe), bytes, token);
        }
    }

    /// CPU utilization of a PE over `[0, now]`.
    pub fn pe_utilization(&self, pe: usize, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.pes[pe].stats.cpu_time.as_ns() as f64 / now.as_ns() as f64
    }

    /// Deep-copy the whole machine mid-flight: devices (stream queues,
    /// engines, memory, graph instances), fabric (NIC clocks / flow
    /// state, in-flight messages), communication layer (transfers, retry
    /// timers, token counters), PEs (message queues, busy clocks), and
    /// every chare via [`Chare::fork`]. Returns `None` — decline to
    /// fork — if any chare does not implement `fork`, or while a
    /// windowed (`workers > 1`) run is in progress.
    pub fn fork(&self) -> Option<Machine> {
        if self.window.is_some() {
            return None;
        }
        let mut chares = Vec::with_capacity(self.chares.len());
        for c in &self.chares {
            chares.push(Some(
                c.as_ref().expect("chare executing during fork").fork()?,
            ));
        }
        Some(Machine {
            cfg: self.cfg.clone(),
            devices: self.devices.clone(),
            fabric: self.fabric.clone(),
            ucx: self.ucx.clone(),
            pes: self.pes.clone(),
            chares,
            chare_pe: self.chare_pe.clone(),
            chare_load: self.chare_load.clone(),
            lb_recent: self.lb_recent.clone(),
            lb_ewma: self.lb_ewma.clone(),
            lb_bytes: self.lb_bytes.clone(),
            lb_stats: self.lb_stats,
            lb_await_after: self.lb_await_after,
            tag_routes: self.tag_routes.clone(),
            next_tag: self.next_tag,
            am_store: self.am_store.clone(),
            next_am: self.next_am,
            ucx_routes: self.ucx_routes.clone(),
            next_ucx_user: self.next_ucx_user,
            reductions: self.reductions.clone(),
            next_reducer: self.next_reducer,
            next_channel: self.next_channel,
            deferred: self.deferred.clone(),
            deferred_free: self.deferred_free.clone(),
            pe_alive: self.pe_alive.clone(),
            incarnation: self.incarnation,
            ckpts: self.ckpts.clone(),
            recovery_resume: self.recovery_resume.clone(),
            rng: self.rng.clone(),
            tracer: self.tracer.clone(),
            stats: self.stats,
            window: None,
        })
    }
}

impl GpuHost for Machine {
    fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }

    fn on_gpu_complete(&mut self, sim: &mut Sim<Self>, _dev: DeviceId, tag: CompletionTag) {
        let Some(route) = self.tag_routes.remove(&tag.0) else {
            assert!(self.incarnation > 0, "unknown completion tag");
            return;
        };
        match route {
            TagRoute::Callback(cb) => self.deliver_callback(sim, cb, None),
            TagRoute::UnblockPe { pe, then } => {
                self.pes[pe].blocked = false;
                self.deliver_callback(sim, then, None);
                self.kick_pe(sim, pe);
            }
            TagRoute::Ucx(cookie) => gaat_ucx::on_gpu_tag(self, sim, cookie),
        }
    }
}

impl NetHost for Machine {
    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
        gaat_ucx::on_net_deliver(self, sim, msg);
    }

    fn on_net_dropped(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
        // A link failure aborted the flow (or admission found no route):
        // tell the reliability layer so it retransmits immediately
        // instead of waiting out the ack timeout.
        gaat_ucx::on_net_dropped(self, sim, msg);
    }

    fn stage_delivery(&mut self, at: SimTime, msg: &NetMsg, flight: u32) -> bool {
        // Single branch on the workers == 1 fast path (`window` is None).
        let Some(ws) = &mut self.window else {
            return false;
        };
        if !ws.plan.is_cross_shard(msg.src.0, msg.dst.0) {
            return false;
        }
        ws.parked.push(StagedDelivery {
            at,
            src_node: msg.src.0,
            token: msg.token,
            flight,
        });
        // Record only — returning false lets `send` schedule the event
        // eagerly. Deferring the schedule to the barrier would hand the
        // delivery a later `seq` than window-local events created after
        // the send, flipping same-nanosecond ties and, through the global
        // token counter those ties feed, the jitter draws themselves —
        // measured as a 38 ns drift on the MPI golden. The window ledger
        // instead *verifies* the exchange at the barrier (sorted merge,
        // lookahead assertion) while execution order stays exactly the
        // sequential one.
        false
    }
}

impl UcxHost for Machine {
    fn ucx_mut(&mut self) -> &mut UcxState {
        &mut self.ucx
    }

    fn worker_node(&self, w: WorkerId) -> NodeId {
        NodeId(self.cfg.node_of_pe(w.0))
    }

    fn worker_alive(&self, w: WorkerId) -> bool {
        self.pe_alive[w.0]
    }

    fn on_ucx_event(&mut self, sim: &mut Sim<Self>, ev: UcxEvent) {
        match ev {
            UcxEvent::AmDelivered { at: _, user } => {
                let Some(kind) = self.am_store.remove(&user) else {
                    assert!(self.incarnation > 0, "unknown AM token");
                    return;
                };
                match kind {
                    AmKind::Chare(to, env) => self.enqueue_to_chare(sim, to, env),
                    AmKind::Contribution {
                        reducer,
                        round,
                        value,
                        expected,
                        cb,
                    } => {
                        let slot = self.reductions.entry((reducer, round)).or_default();
                        slot.count += 1;
                        slot.sum += value;
                        if slot.count == expected {
                            let sum = slot.sum;
                            self.reductions.remove(&(reducer, round));
                            self.deliver_callback(sim, cb, Some(sum));
                        }
                    }
                    AmKind::Broadcast {
                        entry,
                        refnum,
                        groups,
                    } => self.deliver_broadcast(sim, entry, refnum, groups),
                    AmKind::Checkpoint {
                        chare,
                        epoch,
                        stored_on,
                        snap,
                    } => self.store_ckpt_copy(chare, epoch, stored_on, snap),
                }
            }
            UcxEvent::SendDone { worker: _, user } | UcxEvent::RecvDone { worker: _, user } => {
                let Some(cb) = self.ucx_routes.remove(&user) else {
                    assert!(self.incarnation > 0, "unknown UCX route");
                    return;
                };
                self.deliver_callback(sim, cb, None);
            }
            UcxEvent::PeerDead { worker: _ } => {
                // The transport gave up on a peer after max_retries. With
                // planned faults, recovery is driven by the armed failure
                // events (the simulated failure detector), so escalation
                // here is advisory; the attempt is already counted in
                // `UcxStats::peers_dead`.
            }
        }
    }

    fn alloc_gpu_tag(&mut self, cookie: u64) -> CompletionTag {
        self.alloc_tag(TagRoute::Ucx(cookie))
    }
}

/// The API surface an entry method sees (the `this`/proxy environment).
pub struct Ctx<'a> {
    /// The machine (public so setup-style code can reach devices).
    pub machine: &'a mut Machine,
    /// The simulator (for scheduling custom events).
    pub sim: &'a mut Sim<Machine>,
    pe: usize,
    chare: ChareId,
    charged: SimDuration,
    block: Option<(DeviceId, StreamId, Callback)>,
}

impl<'a> Ctx<'a> {
    /// The executing chare's id.
    pub fn me(&self) -> ChareId {
        self.chare
    }

    /// The PE this entry method runs on.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// The GPU owned by this PE.
    pub fn device(&self) -> DeviceId {
        self.machine.pe_device(self.pe)
    }

    /// Simulated time at which this entry method started.
    pub fn start_time(&self) -> SimTime {
        self.sim.now()
    }

    /// Simulated time charged so far (entry start offset of the next
    /// action).
    pub fn elapsed(&self) -> SimDuration {
        self.charged
    }

    /// Charge pure CPU work.
    pub fn compute(&mut self, work: SimDuration) {
        self.charged += work;
    }

    /// Send a message to another chare (asynchronous, like a proxy entry
    /// method invocation).
    pub fn send(&mut self, to: ChareId, env: Envelope) {
        self.charged += self.machine.cfg.rt.send_overhead;
        let src_pe = self.pe;
        let from = self.chare;
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::Route {
            src_pe,
            from,
            to,
            env,
        });
        self.sim.at_call1(at, run_deferred, idx);
    }

    /// Enqueue a GPU operation on this PE's device, charging the CPU
    /// launch cost.
    pub fn launch(&mut self, stream: StreamId, op: Op) {
        self.charged += self.machine.cfg.gpu.cpu_launch;
        self.gpu_enqueue_at(stream, op);
    }

    /// Enqueue a lightweight stream operation (event record/wait, marker)
    /// at the reduced CPU cost.
    pub fn launch_light(&mut self, stream: StreamId, op: Op) {
        self.charged += self.machine.cfg.gpu.cpu_light;
        self.gpu_enqueue_at(stream, op);
    }

    /// Reset a CUDA-style event so it can be re-recorded this iteration.
    /// Takes effect at the current charge offset, before subsequently
    /// enqueued operations.
    pub fn gpu_event_reset(&mut self, ev: gaat_gpu::CudaEventId) {
        let dev = self.device();
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::EventReset { dev, ev });
        self.sim.at_call1(at, run_deferred, idx);
    }

    /// Launch a captured graph (one cheap CPU call for the whole DAG,
    /// plus a small per-node submit cost).
    pub fn launch_graph(&mut self, stream: StreamId, graph: GraphId, cb: Callback) {
        let nodes = self.machine.devices[self.device().0].graph_len(graph) as u64;
        let gpu = &self.machine.cfg.gpu;
        self.charged += gpu.graph_launch_cpu + gpu.graph_launch_cpu_per_node * nodes;
        let tag = self.machine.alloc_tag(TagRoute::Callback(cb));
        self.gpu_enqueue_at(stream, Op::graph(graph).with_tag(tag));
    }

    /// Update one kernel node of a captured graph
    /// (`cudaGraphExecKernelNodeSetParams`), charging the per-node CPU
    /// update cost. The paper's §III-D2 alternates two pre-built graphs
    /// precisely to avoid paying this for every node every iteration.
    pub fn update_graph_kernel(&mut self, graph: GraphId, node: usize, spec: gaat_gpu::KernelSpec) {
        self.charged += self.machine.cfg.gpu.graph_node_update_cpu;
        let dev = self.device();
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::GraphUpdate {
            dev,
            graph,
            node,
            spec,
        });
        self.sim.at_call1(at, run_deferred, idx);
    }

    /// HAPI-style asynchronous completion detection: when the stream
    /// reaches this point, deliver `cb` (at high priority) — without
    /// blocking the PE.
    pub fn hapi(&mut self, stream: StreamId, cb: Callback) {
        self.charged += self.machine.cfg.gpu.cpu_light;
        let tag = self.machine.alloc_tag(TagRoute::Callback(cb));
        self.gpu_enqueue_at(stream, Op::marker().with_tag(tag));
    }

    /// Synchronous stream wait (`cudaStreamSynchronize`): after this entry
    /// method returns, the PE *blocks* — processing no further messages —
    /// until everything currently in `stream` completes, then `resume` is
    /// delivered. This is the synchronous-completion baseline of the
    /// paper's Fig. 4.
    pub fn stream_sync(&mut self, stream: StreamId, resume: Callback) {
        self.charged += self.machine.cfg.gpu.cpu_light;
        self.block = Some((self.device(), stream, resume));
    }

    /// Contribute to a reduction over `expected` participants; when all
    /// have contributed (for this `round`), `cb` receives the sum as an
    /// `f64` payload.
    pub fn contribute(
        &mut self,
        reducer: u64,
        round: u64,
        value: f64,
        expected: usize,
        cb: Callback,
    ) {
        self.charged += self.machine.cfg.rt.send_overhead;
        let src_pe = self.pe;
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::Contribute {
            src_pe,
            reducer,
            round,
            value,
            expected,
            cb,
        });
        self.sim.at_call1(at, run_deferred, idx);
    }

    /// Ship a snapshot of the executing chare's state at logical `epoch`
    /// to its buddy PE's memory (double in-memory checkpointing). Costs a
    /// real runtime message sized by the snapshot; the buddy retains the
    /// last two epochs. Typically called from a collective point (an
    /// iteration boundary every `checkpoint_every` iterations).
    pub fn store_checkpoint(&mut self, epoch: u64, snap: crate::ckpt::ChareSnapshot) {
        self.charged += self.machine.cfg.rt.send_overhead;
        let src_pe = self.pe;
        let chare = self.chare;
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::Checkpoint {
            src_pe,
            chare,
            epoch,
            snap,
        });
        self.sim.at_call1(at, run_deferred, idx);
    }

    /// Enqueue with no extra charge (internal; charge added by callers).
    fn gpu_enqueue_at(&mut self, stream: StreamId, op: Op) {
        // Meter the dedicated-device cost of the work this chare puts on
        // the GPU (kernel work as declared, DMA priced by the timing
        // model) into its LB load meter. Pure bookkeeping: bit-invisible
        // while the balancer is off. Graph launches are not metered
        // per-node here; graph-heavy apps still meter their CPU charge.
        let gpu_ns = match &op.kind {
            gaat_gpu::OpKind::Kernel(spec) => spec.work.as_ns(),
            gaat_gpu::OpKind::MemcpyD2H { src, .. } | gaat_gpu::OpKind::MemcpyH2D { src, .. } => {
                self.machine.cfg.gpu.dma_time(src.bytes()).as_ns()
            }
            _ => 0,
        };
        self.machine.lb_recent[self.chare.0] += gpu_ns;
        let dev = self.device();
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::Enqueue { dev, stream, op });
        self.sim.at_call1(at, run_deferred, idx);
    }

    /// Issue a two-sided UCX send with explicit worker addressing. Used
    /// by the Channel API, the GPU Messaging API, and the MPI layer;
    /// applications normally go through those instead.
    pub fn ucx_isend(&mut self, to_worker: usize, tag: gaat_ucx::Tag, loc: MemLoc, cb: Callback) {
        self.charged += self.machine.cfg.rt.channel_call;
        let from = self.pe;
        let user = self.machine.alloc_ucx_route(cb);
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::Isend {
            from,
            to_worker,
            tag,
            loc,
            user,
        });
        self.sim.at_call1(at, run_deferred, idx);
    }

    /// Issue a two-sided UCX receive with explicit worker addressing.
    /// See [`Ctx::ucx_isend`].
    pub fn ucx_irecv(&mut self, from_worker: usize, tag: gaat_ucx::Tag, loc: MemLoc, cb: Callback) {
        self.charged += self.machine.cfg.rt.channel_call;
        let me = self.pe;
        let user = self.machine.alloc_ucx_route(cb);
        let at = self.sim.now() + self.charged;
        let idx = self.machine.defer(Deferred::Irecv {
            me,
            from_worker,
            tag,
            loc,
            user,
        });
        self.sim.at_call1(at, run_deferred, idx);
    }
}

/// Counters from windowed (`workers > 1`) execution; all zero after a
/// single-threaded run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowStats {
    /// Lookahead windows executed.
    pub windows: u64,
    /// Cross-shard deliveries staged and merged at window barriers.
    pub staged: u64,
}

/// A ready-to-run simulation: the engine plus the machine.
pub struct Simulation {
    /// The event engine.
    pub sim: Sim<Machine>,
    /// The machine state.
    pub machine: Machine,
    /// Windowed-execution counters (all zero at `workers == 1`).
    pub window_stats: WindowStats,
}

impl Simulation {
    /// Build a simulation from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::new_in(Sim::new(), cfg, None)
    }

    /// Build a simulation inside an existing (fresh or [`Sim::reset`])
    /// engine, optionally reusing pre-built topology state. This is the
    /// world-slot construction path (see [`crate::slot::WorldSlot`]):
    /// the engine keeps its heap allocations across runs, and the route
    /// table is shared across workers. Bit-identical to
    /// [`Simulation::new`] — the engine's observable state after a
    /// reset equals a fresh engine's, and the shared route table replays
    /// the same routes the fabric would derive itself.
    pub fn new_in(
        engine: Sim<Machine>,
        cfg: MachineConfig,
        shared: Option<&SharedTopology>,
    ) -> Self {
        let mut sim = engine.with_event_limit(5_000_000_000);
        let mut machine = Machine::new_shared(cfg, shared);
        machine.arm_faults(&mut sim);
        machine.arm_lb(&mut sim);
        Simulation {
            sim,
            machine,
            window_stats: WindowStats::default(),
        }
    }

    /// Run to quiescence (the drained event queue *is* quiescence
    /// detection: no pending work anywhere in the machine).
    ///
    /// At `workers == 1` this is exactly the sequential engine loop. At
    /// `workers > 1` the machine's nodes are partitioned into contiguous
    /// shards ([`ShardPlan::contiguous`]) and the run proceeds in
    /// conservative lookahead windows with cross-shard deliveries merged
    /// deterministically at window barriers — bit-identical to the
    /// sequential run for any worker count.
    pub fn run(&mut self) -> RunOutcome {
        if self.machine.cfg.workers <= 1 {
            return self.sim.run(&mut self.machine);
        }
        self.run_windowed(None)
    }

    /// [`Simulation::run`] under an explicit node→shard map (must be
    /// dense over `0..workers`; tests randomize it to show the partition
    /// cannot change results).
    pub fn run_with_partition(&mut self, node_to_shard: Vec<usize>) -> RunOutcome {
        self.run_windowed(Some(node_to_shard))
    }

    fn run_windowed(&mut self, map: Option<Vec<usize>>) -> RunOutcome {
        let cfg = &self.machine.cfg;
        assert!(
            !cfg.faults.is_active(),
            "fault plans are not yet supported with workers > 1: \
             fault draws are ordered by global execution, which shards do \
             not reproduce — run with workers = 1"
        );
        let lookahead = self.machine.fabric.lookahead().expect(
            "workers > 1 is not yet supported on closed-loop topologies \
             (fat tree): flow completion times depend on later admissions, \
             so no admission-time lookahead exists — run with workers = 1",
        );
        let plan = match map {
            Some(m) => ShardPlan::with_map(cfg, lookahead, m),
            None => ShardPlan::contiguous(cfg, lookahead),
        };
        self.machine.window = Some(WindowState {
            plan,
            parked: Vec::new(),
        });
        let outcome = loop {
            // Window start: the earliest pending event anywhere. Staged
            // deliveries are always drained before this peek, so an empty
            // queue really is quiescence.
            let Some(t0) = self.sim.peek_time() else {
                break RunOutcome::Drained;
            };
            let deadline = t0 + lookahead - SimDuration::from_ns(1);
            match self.sim.run_until(&mut self.machine, deadline) {
                RunOutcome::Drained => {}
                other => break other,
            }
            self.window_stats.windows += 1;
            // Window barrier: drain the ledger of cross-shard deliveries
            // this window produced, in a total order independent of the
            // partition, and check the conservative-window invariant —
            // no cross-shard message may land inside the window that sent
            // it (its delivery event already exists; see
            // `Machine::stage_delivery` for why scheduling is eager).
            let ws = self.machine.window.as_mut().expect("windowed run");
            if ws.parked.is_empty() {
                continue;
            }
            let mut parked = std::mem::take(&mut ws.parked);
            self.window_stats.staged += parked.len() as u64;
            parked.sort_by_key(|d| (d.at, d.src_node, d.token));
            for d in &parked {
                assert!(
                    d.at > deadline,
                    "lookahead violation: cross-shard delivery (flight {}) \
                     at {} inside the window ending at {}",
                    d.flight,
                    d.at,
                    deadline
                );
            }
            parked.clear();
            self.machine.window.as_mut().expect("windowed run").parked = parked;
        };
        self.machine.window = None;
        outcome
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Run until simulated time would exceed `deadline` (events at
    /// exactly `deadline` still run), the queue drains, or the event
    /// limit trips. Sequential path only: the pause-and-snapshot flows
    /// this serves (sweep prefix memoization) do not combine with
    /// windowed multi-worker execution, which [`Machine::fork`] declines
    /// anyway.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        assert!(
            self.machine.cfg.workers <= 1,
            "run_until requires workers == 1 (windowed runs cannot pause mid-window)"
        );
        self.sim.run_until(&mut self.machine, deadline)
    }

    /// Capture the complete world — engine pending-event state plus a
    /// deep machine fork — for later [`Simulation::restore`]. Returns
    /// `None` (decline to fork) when the engine holds a pending boxed
    /// closure, any chare does not implement [`Chare::fork`], or a
    /// windowed run is in progress. Declining costs nothing: callers
    /// simply keep executing the live world.
    pub fn snapshot(&self) -> Option<WorldSnapshot> {
        let engine = self.sim.snapshot().ok()?;
        let machine = self.machine.fork()?;
        Some(WorldSnapshot {
            machine,
            engine,
            window_stats: self.window_stats,
        })
    }

    /// Rewind this simulation to the state captured by
    /// [`Simulation::snapshot`]. The restored world replays
    /// bit-identically to one that ran fresh to the snapshot point; one
    /// snapshot can be restored any number of times (each restore
    /// re-forks the captured machine).
    pub fn restore(&mut self, snap: &WorldSnapshot) {
        self.sim.restore(&snap.engine);
        self.machine = snap
            .machine
            .fork()
            .expect("a captured machine must re-fork");
        self.window_stats = snap.window_stats;
    }

    /// Swap the stochastic portion of the fault plan in place — a pure
    /// data write, no events armed or cancelled. This is how the sweep
    /// memoizer applies a branch's late-diverging fault axis (onset,
    /// drop/corrupt probability, seed) after a restore; time-triggered
    /// faults (link faults, PE failures, stragglers) are armed as build
    /// time events and must be identical across branches sharing a
    /// prefix, so they are deliberately NOT re-armed here.
    pub fn set_stochastic_faults(&mut self, faults: gaat_sim::FaultPlan) {
        if !faults.stragglers.is_empty() {
            for d in &mut self.machine.devices {
                d.set_fault_plan(faults.clone());
            }
        }
        self.machine.fabric.set_faults(faults.clone());
        self.machine.cfg.faults = faults;
    }
}

/// A complete point-in-time capture of a [`Simulation`]: the engine's
/// pending-event state ([`gaat_sim::SimSnapshot`]) plus a deep fork of
/// the [`Machine`] — chares, device queues, fabric flow state, UCX
/// transfer/retry tables, PE queues, RNG, and counters. The fork
/// primitive behind the sweep engine's prefix memoization; conceptually
/// the in-memory half of the paper's double in-memory checkpoint, reused
/// for memoization instead of recovery.
pub struct WorldSnapshot {
    machine: Machine,
    engine: gaat_sim::SimSnapshot<Machine>,
    window_stats: WindowStats,
}

impl WorldSnapshot {
    /// Simulated time at which the snapshot was taken.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Live pending events captured in the snapshot.
    pub fn pending(&self) -> usize {
        self.engine.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{EntryId, MsgPriority};

    /// A chare that counts pings and pongs back.
    struct Ping {
        got: u64,
        peer: Option<ChareId>,
        limit: u64,
    }

    const E_PING: EntryId = EntryId(0);

    impl Chare for Ping {
        fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
            assert_eq!(env.entry, E_PING);
            self.got += 1;
            if self.got < self.limit {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Envelope::empty(E_PING).with_bytes(64));
                }
            }
        }
    }

    fn two_chare_setup(same_pe: bool) -> (Simulation, ChareId, ChareId) {
        let cfg = MachineConfig::validation(if same_pe { 1 } else { 2 }, 1);
        let mut s = Simulation::new(cfg);
        let a = s.machine.create_chare(
            0,
            Box::new(Ping {
                got: 0,
                peer: None,
                limit: 10,
            }),
        );
        let b_pe = if same_pe { 0 } else { 1 };
        let b = s.machine.create_chare(
            b_pe,
            Box::new(Ping {
                got: 0,
                peer: Some(a),
                limit: 10,
            }),
        );
        // wire a -> b
        {
            let a_ref = s.machine.chares[a.0].as_mut().expect("a");
            // Downcast through Any to set the peer.
            let any = a_ref.as_mut() as &mut dyn std::any::Any;
            any.downcast_mut::<Ping>().expect("ping").peer = Some(b);
        }
        (s, a, b)
    }

    #[test]
    fn ping_pong_across_nodes() {
        let (mut s, a, b) = two_chare_setup(false);
        let Simulation { sim, machine, .. } = &mut s;
        machine.inject(sim, a, Envelope::empty(E_PING));
        assert_eq!(s.run(), RunOutcome::Drained);
        let pa = s.machine.chare_as::<Ping>(a);
        let pb = s.machine.chare_as::<Ping>(b);
        // a receives the injected ping + pongs; b receives a's sends.
        assert_eq!(pa.got + pb.got, 10 + 9);
        assert!(s.now() > SimTime::ZERO);
        assert_eq!(s.machine.stats().entries, 19);
    }

    #[test]
    fn ping_pong_same_pe_is_faster() {
        let (mut s1, a1, _) = two_chare_setup(false);
        {
            let Simulation { sim, machine, .. } = &mut s1;
            machine.inject(sim, a1, Envelope::empty(E_PING));
        }
        s1.run();
        let remote = s1.now();

        let (mut s2, a2, _) = two_chare_setup(true);
        {
            let Simulation { sim, machine, .. } = &mut s2;
            machine.inject(sim, a2, Envelope::empty(E_PING));
        }
        s2.run();
        let local = s2.now();
        assert!(local < remote, "local {local} should beat remote {remote}");
    }

    /// A chare that records the order in which its entries ran.
    struct Recorder {
        order: Vec<(u16, u64)>,
    }
    impl Chare for Recorder {
        fn receive(&mut self, _ctx: &mut Ctx<'_>, env: Envelope) {
            self.order.push((env.entry.0, env.refnum));
        }
    }

    #[test]
    fn high_priority_messages_jump_the_queue() {
        let cfg = MachineConfig::validation(1, 1);
        let mut s = Simulation::new(cfg);
        let c = s
            .machine
            .create_chare(0, Box::new(Recorder { order: vec![] }));
        let Simulation { sim, machine, .. } = &mut s;
        // Three normal messages then one high-priority one, all at t=0.
        machine.inject(sim, c, Envelope::empty(EntryId(1)));
        machine.inject(sim, c, Envelope::empty(EntryId(2)));
        machine.inject(sim, c, Envelope::empty(EntryId(3)));
        machine.inject(sim, c, Envelope::empty(EntryId(4)).high_priority());
        s.run();
        let r = s.machine.chare_as::<Recorder>(c);
        // All four are queued before the first dispatch event fires, so
        // the high-priority message runs first.
        assert_eq!(
            r.order.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![4, 1, 2, 3]
        );
    }

    /// Chare that launches a kernel and asks for HAPI completion.
    struct GpuUser {
        stream: Option<StreamId>,
        done_at: Option<SimTime>,
        launched_at: Option<SimTime>,
    }
    const E_GO: EntryId = EntryId(0);
    const E_DONE: EntryId = EntryId(1);

    impl Chare for GpuUser {
        fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
            match env.entry {
                E_GO => {
                    self.launched_at = Some(ctx.start_time());
                    let s = self.stream.expect("stream created in setup");
                    ctx.launch(
                        s,
                        Op::kernel(gaat_gpu::KernelSpec::phantom(
                            "work",
                            SimDuration::from_us(50),
                        )),
                    );
                    ctx.hapi(s, Callback::to(ctx.me(), E_DONE));
                }
                E_DONE => {
                    assert_eq!(env.priority, MsgPriority::High);
                    self.done_at = Some(ctx.start_time());
                }
                other => panic!("unexpected entry {other:?}"),
            }
        }
    }

    #[test]
    fn hapi_detects_gpu_completion_asynchronously() {
        let cfg = MachineConfig::validation(1, 1);
        let mut s = Simulation::new(cfg);
        let stream = s.machine.devices[0].create_stream(0);
        let c = s.machine.create_chare(
            0,
            Box::new(GpuUser {
                stream: Some(stream),
                done_at: None,
                launched_at: None,
            }),
        );
        let Simulation { sim, machine, .. } = &mut s;
        machine.inject(sim, c, Envelope::empty(E_GO));
        assert_eq!(s.run(), RunOutcome::Drained);
        let g = s.machine.chare_as::<GpuUser>(c);
        let done = g.done_at.expect("completion callback ran");
        // Kernel work of 50us must have elapsed before the callback.
        assert!(done.as_ns() > 50_000, "done at {done}");
    }

    #[test]
    fn stream_sync_blocks_other_chares() {
        // Two chares on one PE. Chare 0 launches a long kernel with a
        // synchronous wait; chare 1's message gets stuck behind the block.
        struct Blocker {
            stream: StreamId,
            resumed_at: Option<SimTime>,
        }
        impl Chare for Blocker {
            fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
                match env.entry {
                    EntryId(0) => {
                        ctx.launch(
                            self.stream,
                            Op::kernel(gaat_gpu::KernelSpec::phantom(
                                "long",
                                SimDuration::from_ms(1),
                            )),
                        );
                        ctx.stream_sync(self.stream, Callback::to(ctx.me(), EntryId(1)));
                    }
                    EntryId(1) => self.resumed_at = Some(ctx.start_time()),
                    _ => unreachable!(),
                }
            }
        }
        struct Bystander {
            ran_at: Option<SimTime>,
        }
        impl Chare for Bystander {
            fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
                self.ran_at = Some(ctx.start_time());
            }
        }
        let cfg = MachineConfig::validation(1, 1);
        let mut s = Simulation::new(cfg);
        let stream = s.machine.devices[0].create_stream(0);
        let blocker = s.machine.create_chare(
            0,
            Box::new(Blocker {
                stream,
                resumed_at: None,
            }),
        );
        let bystander = s
            .machine
            .create_chare(0, Box::new(Bystander { ran_at: None }));
        let Simulation { sim, machine, .. } = &mut s;
        machine.inject(sim, blocker, Envelope::empty(EntryId(0)));
        machine.inject(sim, bystander, Envelope::empty(EntryId(0)));
        s.run();
        let ran = s
            .machine
            .chare_as::<Bystander>(bystander)
            .ran_at
            .expect("ran");
        // The bystander could not run until the ~1ms kernel finished.
        assert!(ran.as_ns() > 1_000_000, "bystander ran at {ran}");
        assert!(s.machine.chare_as::<Blocker>(blocker).resumed_at.is_some());
    }

    /// With HAPI (async completion) instead of stream_sync, the bystander
    /// runs immediately — the overlap benefit of Fig. 4.
    #[test]
    fn async_completion_does_not_block_other_chares() {
        struct AsyncUser {
            stream: StreamId,
        }
        impl Chare for AsyncUser {
            fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
                if env.entry == EntryId(0) {
                    ctx.launch(
                        self.stream,
                        Op::kernel(gaat_gpu::KernelSpec::phantom(
                            "long",
                            SimDuration::from_ms(1),
                        )),
                    );
                    ctx.hapi(self.stream, Callback::to(ctx.me(), EntryId(1)));
                }
            }
        }
        struct Bystander {
            ran_at: Option<SimTime>,
        }
        impl Chare for Bystander {
            fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
                self.ran_at = Some(ctx.start_time());
            }
        }
        let cfg = MachineConfig::validation(1, 1);
        let mut s = Simulation::new(cfg);
        let stream = s.machine.devices[0].create_stream(0);
        let a = s.machine.create_chare(0, Box::new(AsyncUser { stream }));
        let b = s
            .machine
            .create_chare(0, Box::new(Bystander { ran_at: None }));
        let Simulation { sim, machine, .. } = &mut s;
        machine.inject(sim, a, Envelope::empty(EntryId(0)));
        machine.inject(sim, b, Envelope::empty(EntryId(0)));
        s.run();
        let ran = s.machine.chare_as::<Bystander>(b).ran_at.expect("ran");
        assert!(
            ran.as_ns() < 100_000,
            "bystander overlapped with GPU work, ran at {ran}"
        );
    }

    #[test]
    fn reduction_sums_contributions() {
        struct Contributor {
            reducer: u64,
            n: usize,
            root_cb: Callback,
            value: f64,
        }
        impl Chare for Contributor {
            fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
                if env.entry == EntryId(0) {
                    ctx.contribute(self.reducer, 1, self.value, self.n, self.root_cb);
                }
            }
        }
        struct Root {
            got: Option<f64>,
        }
        impl Chare for Root {
            fn receive(&mut self, _ctx: &mut Ctx<'_>, env: Envelope) {
                self.got = Some(env.take::<f64>());
            }
        }
        let cfg = MachineConfig::validation(2, 2);
        let mut s = Simulation::new(cfg);
        let reducer = s.machine.create_reducer();
        let root = s.machine.create_chare(0, Box::new(Root { got: None }));
        let cb = Callback::to(root, EntryId(9));
        let n = 4;
        let mut ids = vec![];
        for pe in 0..4 {
            ids.push(s.machine.create_chare(
                pe,
                Box::new(Contributor {
                    reducer,
                    n,
                    root_cb: cb,
                    value: (pe + 1) as f64,
                }),
            ));
        }
        let Simulation { sim, machine, .. } = &mut s;
        for &c in &ids {
            machine.inject(sim, c, Envelope::empty(EntryId(0)));
        }
        s.run();
        assert_eq!(s.machine.chare_as::<Root>(root).got, Some(10.0));
    }

    #[test]
    fn migration_moves_execution() {
        struct WhichPe {
            ran_on: Vec<usize>,
        }
        impl Chare for WhichPe {
            fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
                self.ran_on.push(ctx.pe());
            }
        }
        let cfg = MachineConfig::validation(1, 2);
        let mut s = Simulation::new(cfg);
        let c = s
            .machine
            .create_chare(0, Box::new(WhichPe { ran_on: vec![] }));
        {
            let Simulation { sim, machine, .. } = &mut s;
            machine.inject(sim, c, Envelope::empty(EntryId(0)));
        }
        s.run();
        s.machine.migrate(c, 1);
        {
            let Simulation { sim, machine, .. } = &mut s;
            machine.inject(sim, c, Envelope::empty(EntryId(0)));
        }
        s.run();
        assert_eq!(s.machine.chare_as::<WhichPe>(c).ran_on, vec![0, 1]);
        assert_eq!(s.machine.stats().migrations, 1);
    }

    #[test]
    fn windowed_run_matches_sequential_on_ping_pong() {
        let (mut s1, a1, b1) = two_chare_setup(false);
        {
            let Simulation { sim, machine, .. } = &mut s1;
            machine.inject(sim, a1, Envelope::empty(E_PING));
        }
        assert_eq!(s1.run(), RunOutcome::Drained);

        let (mut s2, a2, b2) = two_chare_setup(false);
        s2.machine.cfg.workers = 2;
        {
            let Simulation { sim, machine, .. } = &mut s2;
            machine.inject(sim, a2, Envelope::empty(E_PING));
        }
        assert_eq!(s2.run(), RunOutcome::Drained);
        assert_eq!(s2.now(), s1.now(), "windowed run must be bit-identical");
        assert_eq!(
            s2.machine.chare_as::<Ping>(a2).got,
            s1.machine.chare_as::<Ping>(a1).got
        );
        assert_eq!(
            s2.machine.chare_as::<Ping>(b2).got,
            s1.machine.chare_as::<Ping>(b1).got
        );
        assert!(s2.window_stats.windows > 0, "cross-node run uses windows");
        assert!(
            s1.window_stats.windows == 0,
            "workers=1 takes the fast path"
        );
    }

    #[test]
    #[should_panic(expected = "fault plans are not yet supported with workers > 1")]
    fn workers_with_fault_plan_fails_fast() {
        let mut cfg = MachineConfig::summit(2);
        cfg.workers = 2;
        cfg.faults = gaat_sim::FaultPlan {
            seed: 7,
            drop_prob: 0.01,
            ..gaat_sim::FaultPlan::none()
        };
        Simulation::new(cfg).run();
    }

    #[test]
    #[should_panic(expected = "closed-loop topologies")]
    fn workers_on_fat_tree_fails_fast() {
        let mut cfg = MachineConfig::summit_fattree(2);
        cfg.workers = 2;
        Simulation::new(cfg).run();
    }
}
