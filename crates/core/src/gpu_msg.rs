//! The GPU Messaging API — the older GPU-aware mechanism the paper
//! contrasts with the Channel API (§II-B).
//!
//! It keeps message-driven semantics but needs an extra *post entry
//! method* on the receiver: the sender first ships metadata; the runtime
//! schedules the receiver's post entry method, which registers the
//! destination GPU buffer; only then can the receive be posted and a
//! ready notification travel back to the sender, which finally moves the
//! data. The added round trip and scheduler hop delay the receive posting
//! — the performance disadvantage that motivated the Channel API.
//!
//! The pieces here are app-coordinated: the sending chare embeds a
//! [`GpuMsgSender`] and handles a "ready" entry; the receiving chare
//! handles the post entry method and calls [`post_recv`].

use std::collections::HashMap;

use gaat_ucx::{MemLoc, Tag};

use crate::machine::Ctx;
use crate::msg::{Callback, ChareId, EntryId, Envelope};

/// Metadata shipped ahead of the GPU payload.
#[derive(Debug, Clone, Copy)]
pub struct GpuMsgMeta {
    /// Transfer id, unique per sending chare.
    pub id: u64,
    /// The sending chare.
    pub from: ChareId,
    /// The sending chare's PE at send time.
    pub from_pe: usize,
    /// Entry on the sender that receives the ready notification.
    pub ready_entry: EntryId,
    /// Payload size in bytes.
    pub bytes: u64,
}

fn gpu_tag(from: ChareId, id: u64) -> Tag {
    Tag((1u64 << 63) | ((from.0 as u64) << 24) | (id & 0xFF_FFFF))
}

/// Sender-side state for in-flight GPU messages.
#[derive(Debug, Default)]
pub struct GpuMsgSender {
    pending: HashMap<u64, (MemLoc, Callback)>,
    next: u64,
}

impl GpuMsgSender {
    /// Fresh sender state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a GPU message: ships metadata to `to`'s `post_entry`. The
    /// payload in `loc` is sent once the receiver posts its buffer;
    /// `done` fires when the send completes.
    pub fn send(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: ChareId,
        post_entry: EntryId,
        ready_entry: EntryId,
        loc: MemLoc,
        done: Callback,
    ) {
        let id = self.next;
        self.next += 1;
        self.pending.insert(id, (loc, done));
        let meta = GpuMsgMeta {
            id,
            from: ctx.me(),
            from_pe: ctx.pe(),
            ready_entry,
            bytes: loc.range.bytes(),
        };
        ctx.send(to, Envelope::new(post_entry, meta).with_bytes(64));
    }

    /// Handle the ready notification (the app routes its `ready_entry`
    /// here): the receiver has posted its buffer, so move the data. The
    /// ready envelope's refnum carries the receiver's PE.
    pub fn on_ready(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let peer_pe = env.refnum as usize;
        let id = env.take::<u64>();
        let (loc, done) = self
            .pending
            .remove(&id)
            .expect("ready for unknown GPU message");
        let me = ctx.me();
        ctx.ucx_isend(peer_pe, gpu_tag(me, id), loc, done);
    }

    /// In-flight sends (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

/// Receiver side: called from the post entry method with the delivered
/// metadata. Posts the UCX receive into `loc` (completion → `recv_cb`)
/// and notifies the sender that the buffer is ready. The ready message's
/// refnum carries this PE so the sender addresses the right worker.
pub fn post_recv(ctx: &mut Ctx<'_>, meta: &GpuMsgMeta, loc: MemLoc, recv_cb: Callback) {
    assert_eq!(
        meta.bytes,
        loc.range.bytes(),
        "posted buffer must match advertised size"
    );
    ctx.ucx_irecv(meta.from_pe, gpu_tag(meta.from, meta.id), loc, recv_cb);
    let pe = ctx.pe();
    ctx.send(
        meta.from,
        Envelope::new(meta.ready_entry, meta.id)
            .with_refnum(pe as u64)
            .with_bytes(16)
            .high_priority(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_tags_are_unique_per_sender_and_id() {
        let a = gpu_tag(ChareId(1), 0);
        let b = gpu_tag(ChareId(1), 1);
        let c = gpu_tag(ChareId(2), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Top bit set: disjoint from channel tags.
        assert!(a.0 & (1 << 63) != 0);
    }
}
