//! Greedy load balancing — the runtime adaptivity that overdecomposition
//! enables (one of the paper's motivations for tolerating ODF overheads).
//!
//! The machine records per-chare CPU load (total charged entry time);
//! [`greedy_rebalance`] reassigns the heaviest chares first onto the
//! least-loaded PEs, the classic Charm++ GreedyLB strategy. Migration is
//! only safe at phase boundaries when chares have no in-flight
//! communication; the caller decides when.

use gaat_sim::SimDuration;

use crate::machine::Machine;
use crate::msg::ChareId;

/// Outcome of one rebalance pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Chares whose PE changed.
    pub migrations: usize,
    /// Max per-PE load before, in ns.
    pub max_before_ns: u64,
    /// Max per-PE load after (predicted), in ns.
    pub max_after_ns: u64,
}

/// Greedily reassign `chares` across all PEs by descending measured load.
/// Returns what changed. Loads are the cumulative per-chare charged CPU
/// times since simulation start.
pub fn greedy_rebalance(m: &mut Machine, chares: &[ChareId]) -> RebalanceReport {
    let npes = m.pes.len();
    let mut loads: Vec<(ChareId, SimDuration)> =
        chares.iter().map(|&c| (c, m.load_of(c))).collect();
    // Descending by load; ties broken by id for determinism.
    loads.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut before = vec![0u64; npes];
    for &(c, l) in &loads {
        before[m.pe_of(c)] += l.as_ns();
    }

    let max_before_ns = before.into_iter().max().unwrap_or(0);

    // Plan first, migrate second. LPT is a 4/3-approximation, not an
    // optimum: on an input that is already well placed it can *raise*
    // the makespan, so the plan is only applied when it strictly
    // improves on the current placement — rebalancing never degrades.
    let mut assigned = vec![0u64; npes];
    let mut plan: Vec<(ChareId, usize)> = Vec::with_capacity(loads.len());
    for &(c, l) in &loads {
        // Least-loaded PE (lowest index wins ties — deterministic).
        let (target, _) = assigned
            .iter()
            .enumerate()
            .min_by_key(|&(i, &v)| (v, i))
            .expect("at least one PE");
        assigned[target] += l.as_ns();
        plan.push((c, target));
    }
    let max_planned_ns = assigned.into_iter().max().unwrap_or(0);
    if max_planned_ns >= max_before_ns {
        return RebalanceReport {
            migrations: 0,
            max_before_ns,
            max_after_ns: max_before_ns,
        };
    }

    let mut migrations = 0;
    for (c, target) in plan {
        if m.pe_of(c) != target {
            m.migrate(c, target);
            migrations += 1;
        }
    }
    RebalanceReport {
        migrations,
        max_before_ns,
        max_after_ns: max_planned_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::machine::{Chare, Ctx};
    use crate::msg::Envelope;

    struct Dummy;
    impl Chare for Dummy {
        fn receive(&mut self, _ctx: &mut Ctx<'_>, _env: Envelope) {}
    }

    #[test]
    fn rebalance_spreads_skewed_load() {
        let mut m = Machine::new(MachineConfig::validation(1, 4));
        // 8 chares all crammed on PE 0 with loads 8,7,...,1 (ms).
        let mut chares = vec![];
        for i in 0..8u64 {
            let c = m.create_chare(0, Box::new(Dummy));
            // Inject synthetic load measurements.
            m.set_load_for_test(c, SimDuration::from_ms(8 - i));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        assert!(report.migrations > 0);
        assert!(report.max_after_ns < report.max_before_ns);
        // Greedy on 8,7,..,1 over 4 PEs achieves the optimal makespan 9.
        assert_eq!(report.max_after_ns, 9_000_000);
        // Every PE got at least one chare.
        for pe in 0..4 {
            assert!(chares.iter().any(|&c| m.pe_of(c) == pe), "PE {pe} empty");
        }
    }

    #[test]
    fn balanced_load_needs_no_migration() {
        let mut m = Machine::new(MachineConfig::validation(1, 2));
        let a = m.create_chare(0, Box::new(Dummy));
        let b = m.create_chare(1, Box::new(Dummy));
        m.set_load_for_test(a, SimDuration::from_ms(5));
        m.set_load_for_test(b, SimDuration::from_ms(5));
        let report = greedy_rebalance(&mut m, &[a, b]);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, report.max_after_ns);
    }

    #[test]
    fn empty_chare_set_is_a_noop() {
        let mut m = Machine::new(MachineConfig::validation(1, 4));
        let report = greedy_rebalance(&mut m, &[]);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, 0);
        assert_eq!(report.max_after_ns, 0);
    }

    #[test]
    fn single_pe_cannot_migrate() {
        let mut m = Machine::new(MachineConfig::validation(1, 1));
        let mut chares = vec![];
        for i in 1..=4u64 {
            let c = m.create_chare(0, Box::new(Dummy));
            m.set_load_for_test(c, SimDuration::from_ms(i));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, report.max_after_ns);
        assert_eq!(report.max_before_ns, 10_000_000);
    }

    #[test]
    fn lpt_worsening_input_is_left_alone() {
        // Loads 3,3,2,2,2 optimally pre-placed on 2 PEs at makespan 6;
        // raw LPT would produce 7. The plan must be discarded.
        let mut m = Machine::new(MachineConfig::validation(1, 2));
        let mut chares = vec![];
        for (pe, ms) in [(0, 3), (0, 3), (1, 2), (1, 2), (1, 2)] {
            let c = m.create_chare(pe, Box::new(Dummy));
            m.set_load_for_test(c, SimDuration::from_ms(ms));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, 6_000_000);
        assert_eq!(report.max_after_ns, 6_000_000);
        assert!(chares.iter().take(2).all(|&c| m.pe_of(c) == 0));
    }
}
