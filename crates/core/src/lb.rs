//! Load balancing — the runtime adaptivity that overdecomposition
//! enables (one of the paper's motivations for tolerating ODF overheads).
//!
//! Two planners live here:
//!
//! - [`greedy_rebalance`] — the classic Charm++ GreedyLB strategy:
//!   reassign the heaviest chares first onto the least-loaded PEs,
//!   applied only when the LPT plan strictly improves the makespan.
//!   Callers invoke it at phase boundaries.
//! - [`periodic_plan`] — the closed-loop planner behind the machine's
//!   periodic LB tick (`MachineConfig::lb`). It scores *incremental*
//!   migrations from live sensor inputs ([`LbSensors`]): per-chare EWMA
//!   load meters, per-PE straggler slowdown factors, per-chare
//!   communication bytes, and a fabric-distress flag. Up to
//!   `LbConfig::budget` single-chare moves are accepted, each only if
//!   it strictly lowers the projected makespan; the whole plan is then
//!   gated behind `LbConfig::hysteresis_pct`. The same never-degrade
//!   contract as `greedy_rebalance`, extended with comm affinity:
//!   among destinations whose projected load is within a slack band of
//!   the minimum, the planner prefers the node holding the chare's
//!   heaviest communication partners — and fabric distress (a hot or
//!   degraded link, retransmits) widens the band, trading perfect
//!   compute balance for less inter-node traffic over hot spines.
//!
//! Every choice breaks ties deterministically (lowest PE index, lowest
//! chare id), so a plan is a pure function of its sensor inputs and the
//! balancer replays bit-identically at a fixed seed.

use gaat_sim::SimDuration;

use crate::config::LbConfig;
use crate::machine::Machine;
use crate::msg::ChareId;

/// Sensor block the machine gathers for one periodic LB round. All
/// slices are indexed by chare id except `pe_slow`, `alive`, and
/// `node_of`, which are indexed by PE.
pub struct LbSensors<'a> {
    /// Current PE of each chare.
    pub pe_of: &'a [usize],
    /// Per-chare EWMA load meter (CPU charge + estimated kernel/DMA ns
    /// per LB period).
    pub base_ns: &'a [u64],
    /// Per-PE straggler slowdown factor currently in effect (≥ 1; a
    /// chare's projected cost on PE `p` is `base_ns × pe_slow[p]`).
    pub pe_slow: &'a [f64],
    /// Per-PE liveness (failed PEs are never migration targets).
    pub alive: &'a [bool],
    /// Per-chare communication partners: `(partner chare, bytes sent)`.
    pub affinity: &'a [Vec<(usize, u64)>],
    /// Node of each PE (comm affinity is scored at node granularity:
    /// colocating partners on one node takes their traffic off the
    /// inter-node links entirely).
    pub node_of: &'a [usize],
    /// Fabric distress (hot link, retransmits, failovers): widens the
    /// affinity slack band so colocation can win over perfect balance.
    pub distressed: bool,
}

/// A scored migration proposal from [`periodic_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbPlan {
    /// Moves to execute, in decision order: `(chare, destination PE)`.
    pub moves: Vec<(ChareId, usize)>,
    /// Projected makespan of the current placement, in ns.
    pub max_before_ns: u64,
    /// Projected makespan after the moves, in ns (strictly lower).
    pub max_after_ns: u64,
}

/// Score up to `cfg.budget` incremental migrations from live sensors.
/// Returns `None` when no plan clears the never-degrade + hysteresis
/// bar — every returned plan satisfies
/// `max_after_ns < max_before_ns`, improves by at least
/// `cfg.hysteresis_pct` percent, and holds `moves.len() ≤ cfg.budget`.
pub fn periodic_plan(s: &LbSensors<'_>, cfg: &LbConfig) -> Option<LbPlan> {
    let n_pes = s.pe_slow.len();
    let n = s.base_ns.len();
    if n == 0 || n_pes < 2 || cfg.budget == 0 {
        return None;
    }
    // Projected cost of chare `c` on PE `p`: the EWMA meter stretched by
    // the PE's active straggler window. f64 multiply + round is IEEE-
    // deterministic, so plans replay bit-identically.
    let cost = |c: usize, p: usize| -> u64 { (s.base_ns[c] as f64 * s.pe_slow[p]).round() as u64 };
    let mut pe_of: Vec<usize> = s.pe_of.to_vec();
    let mut load = vec![0u64; n_pes];
    for c in 0..n {
        load[pe_of[c]] += cost(c, pe_of[c]);
    }
    let max_before = load.iter().copied().max().unwrap_or(0);
    if max_before == 0 {
        return None;
    }
    // Affinity slack band: a destination qualifies if its projected
    // load is within `num/den` of the best destination's. Distress
    // widens the band — colocating chatter matters more than the last
    // few percent of compute balance when a spine is hot or degraded.
    let (slack_num, slack_den): (u64, u64) = if s.distressed { (110, 100) } else { (102, 100) };
    // Bytes chare `c` exchanges with partners resident on PE `p`'s node
    // under the (virtual) placement `pe_of`.
    let node_aff = |c: usize, p: usize, pe_of: &[usize]| -> u64 {
        s.affinity[c]
            .iter()
            .filter(|&&(partner, _)| partner != c && s.node_of[pe_of[partner]] == s.node_of[p])
            .map(|&(_, b)| b)
            .sum()
    };
    let mut moved = vec![false; n];
    let mut moves: Vec<(ChareId, usize)> = Vec::new();
    let mut cur_max = max_before;
    'rounds: while moves.len() < cfg.budget {
        // Most-loaded live PE (tie: lowest index).
        let (src, _) = load
            .iter()
            .enumerate()
            .filter(|&(p, _)| s.alive[p])
            .max_by_key(|&(p, &l)| (l, std::cmp::Reverse(p)))?;
        // Try its chares heaviest-first (tie: lowest id) until one has
        // a destination that strictly lowers the global makespan.
        let mut residents: Vec<usize> = (0..n).filter(|&c| pe_of[c] == src && !moved[c]).collect();
        residents.sort_by_key(|&c| (std::cmp::Reverse(s.base_ns[c]), c));
        for c in residents {
            // Best destination by projected load (tie: lowest index).
            let min_after = (0..n_pes)
                .filter(|&p| s.alive[p] && p != src)
                .map(|p| load[p] + cost(c, p))
                .min();
            let Some(min_after) = min_after else {
                break 'rounds;
            };
            // Among destinations within the slack band, prefer the one
            // whose node holds the chare's heaviest partners, then the
            // lighter load, then the lower index.
            let dst = (0..n_pes)
                .filter(|&p| s.alive[p] && p != src)
                .filter_map(|p| {
                    let after = load[p] + cost(c, p);
                    (after.saturating_mul(slack_den) <= min_after.saturating_mul(slack_num))
                        .then_some((node_aff(c, p, &pe_of), std::cmp::Reverse(after), p))
                })
                .max_by_key(|&(aff, after, p)| (aff, after, std::cmp::Reverse(p)));
            let Some((_, _, dst)) = dst else {
                continue;
            };
            // Never-degrade: accept only if the move strictly lowers
            // the projected global makespan.
            let mut trial = load.clone();
            trial[src] -= cost(c, src);
            trial[dst] += cost(c, dst);
            let new_max = trial.iter().copied().max().unwrap_or(0);
            if new_max >= cur_max {
                continue;
            }
            load = trial;
            pe_of[c] = dst;
            moved[c] = true;
            moves.push((ChareId(c), dst));
            cur_max = new_max;
            continue 'rounds;
        }
        // No chare on the hottest PE has an improving move: converged.
        break;
    }
    if moves.is_empty() {
        return None;
    }
    let max_after = cur_max;
    // Hysteresis: ignore plans whose win is below the configured
    // fraction of the current makespan (migration is not free — a
    // rollback to the last checkpoint rides on every applied plan).
    let hyst = (cfg.hysteresis_pct as u64).min(100);
    if max_after.saturating_mul(100) > max_before.saturating_mul(100 - hyst) {
        return None;
    }
    Some(LbPlan {
        moves,
        max_before_ns: max_before,
        max_after_ns: max_after,
    })
}

/// Outcome of one rebalance pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Chares whose PE changed.
    pub migrations: usize,
    /// Max per-PE load before, in ns.
    pub max_before_ns: u64,
    /// Max per-PE load after (predicted), in ns.
    pub max_after_ns: u64,
}

/// Greedily reassign `chares` across all PEs by descending measured load.
/// Returns what changed. Loads are the cumulative per-chare charged CPU
/// times since simulation start.
pub fn greedy_rebalance(m: &mut Machine, chares: &[ChareId]) -> RebalanceReport {
    let npes = m.pes.len();
    let mut loads: Vec<(ChareId, SimDuration)> =
        chares.iter().map(|&c| (c, m.load_of(c))).collect();
    // Descending by load; ties broken by id for determinism.
    loads.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut before = vec![0u64; npes];
    for &(c, l) in &loads {
        before[m.pe_of(c)] += l.as_ns();
    }

    let max_before_ns = before.into_iter().max().unwrap_or(0);

    // Plan first, migrate second. LPT is a 4/3-approximation, not an
    // optimum: on an input that is already well placed it can *raise*
    // the makespan, so the plan is only applied when it strictly
    // improves on the current placement — rebalancing never degrades.
    let mut assigned = vec![0u64; npes];
    let mut plan: Vec<(ChareId, usize)> = Vec::with_capacity(loads.len());
    for &(c, l) in &loads {
        // Least-loaded PE (lowest index wins ties — deterministic).
        let (target, _) = assigned
            .iter()
            .enumerate()
            .min_by_key(|&(i, &v)| (v, i))
            .expect("at least one PE");
        assigned[target] += l.as_ns();
        plan.push((c, target));
    }
    let max_planned_ns = assigned.into_iter().max().unwrap_or(0);
    if max_planned_ns >= max_before_ns {
        return RebalanceReport {
            migrations: 0,
            max_before_ns,
            max_after_ns: max_before_ns,
        };
    }

    let mut migrations = 0;
    for (c, target) in plan {
        if m.pe_of(c) != target {
            m.migrate(c, target);
            migrations += 1;
        }
    }
    RebalanceReport {
        migrations,
        max_before_ns,
        max_after_ns: max_planned_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::machine::{Chare, Ctx};
    use crate::msg::Envelope;

    struct Dummy;
    impl Chare for Dummy {
        fn receive(&mut self, _ctx: &mut Ctx<'_>, _env: Envelope) {}
    }

    #[test]
    fn rebalance_spreads_skewed_load() {
        let mut m = Machine::new(MachineConfig::validation(1, 4));
        // 8 chares all crammed on PE 0 with loads 8,7,...,1 (ms).
        let mut chares = vec![];
        for i in 0..8u64 {
            let c = m.create_chare(0, Box::new(Dummy));
            // Inject synthetic load measurements.
            m.set_load_for_test(c, SimDuration::from_ms(8 - i));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        assert!(report.migrations > 0);
        assert!(report.max_after_ns < report.max_before_ns);
        // Greedy on 8,7,..,1 over 4 PEs achieves the optimal makespan 9.
        assert_eq!(report.max_after_ns, 9_000_000);
        // Every PE got at least one chare.
        for pe in 0..4 {
            assert!(chares.iter().any(|&c| m.pe_of(c) == pe), "PE {pe} empty");
        }
    }

    #[test]
    fn balanced_load_needs_no_migration() {
        let mut m = Machine::new(MachineConfig::validation(1, 2));
        let a = m.create_chare(0, Box::new(Dummy));
        let b = m.create_chare(1, Box::new(Dummy));
        m.set_load_for_test(a, SimDuration::from_ms(5));
        m.set_load_for_test(b, SimDuration::from_ms(5));
        let report = greedy_rebalance(&mut m, &[a, b]);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, report.max_after_ns);
    }

    #[test]
    fn empty_chare_set_is_a_noop() {
        let mut m = Machine::new(MachineConfig::validation(1, 4));
        let report = greedy_rebalance(&mut m, &[]);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, 0);
        assert_eq!(report.max_after_ns, 0);
    }

    #[test]
    fn single_pe_cannot_migrate() {
        let mut m = Machine::new(MachineConfig::validation(1, 1));
        let mut chares = vec![];
        for i in 1..=4u64 {
            let c = m.create_chare(0, Box::new(Dummy));
            m.set_load_for_test(c, SimDuration::from_ms(i));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, report.max_after_ns);
        assert_eq!(report.max_before_ns, 10_000_000);
    }

    fn flat_sensors<'a>(
        pe_of: &'a [usize],
        base: &'a [u64],
        slow: &'a [f64],
        alive: &'a [bool],
        affinity: &'a [Vec<(usize, u64)>],
        node_of: &'a [usize],
    ) -> LbSensors<'a> {
        LbSensors {
            pe_of,
            base_ns: base,
            pe_slow: slow,
            alive,
            affinity,
            node_of,
            distressed: false,
        }
    }

    #[test]
    fn periodic_plan_unloads_the_hot_pe() {
        let pe_of = [0, 0, 0, 0];
        let base = [4_000u64, 3_000, 2_000, 1_000];
        let slow = [1.0, 1.0];
        let alive = [true, true];
        let aff: Vec<Vec<(usize, u64)>> = vec![vec![]; 4];
        let node_of = [0, 0];
        let s = flat_sensors(&pe_of, &base, &slow, &alive, &aff, &node_of);
        let cfg = LbConfig {
            policy: crate::config::LbPolicy::Adaptive,
            period: SimDuration::from_us(10),
            budget: 4,
            hysteresis_pct: 5,
        };
        let plan = periodic_plan(&s, &cfg).expect("skewed load must plan");
        assert!(plan.max_after_ns < plan.max_before_ns);
        assert!(plan.moves.len() <= 4);
        assert_eq!(plan.max_before_ns, 10_000);
        // Optimal split is 5000/5000.
        assert_eq!(plan.max_after_ns, 5_000);
    }

    #[test]
    fn periodic_plan_respects_budget_and_hysteresis() {
        let pe_of = [0, 0, 0, 0];
        let base = [4_000u64, 3_000, 2_000, 1_000];
        let slow = [1.0, 1.0];
        let alive = [true, true];
        let aff: Vec<Vec<(usize, u64)>> = vec![vec![]; 4];
        let node_of = [0, 0];
        let s = flat_sensors(&pe_of, &base, &slow, &alive, &aff, &node_of);
        let mut cfg = LbConfig {
            policy: crate::config::LbPolicy::Adaptive,
            period: SimDuration::from_us(10),
            budget: 1,
            hysteresis_pct: 5,
        };
        let plan = periodic_plan(&s, &cfg).expect("one move still helps");
        assert_eq!(plan.moves.len(), 1);
        // An absurd hysteresis bar rejects every plan.
        cfg.hysteresis_pct = 90;
        cfg.budget = 4;
        assert_eq!(periodic_plan(&s, &cfg), None);
    }

    #[test]
    fn periodic_plan_avoids_straggling_pes() {
        // PE 1 is the only other PE but runs 10x slow: moving there
        // would raise the makespan, so the planner must stay put.
        let pe_of = [0, 0];
        let base = [4_000u64, 4_000];
        let slow = [1.0, 10.0];
        let alive = [true, true];
        let aff: Vec<Vec<(usize, u64)>> = vec![vec![]; 2];
        let node_of = [0, 0];
        let s = flat_sensors(&pe_of, &base, &slow, &alive, &aff, &node_of);
        let cfg = LbConfig {
            policy: crate::config::LbPolicy::Adaptive,
            period: SimDuration::from_us(10),
            budget: 4,
            hysteresis_pct: 0,
        };
        assert_eq!(periodic_plan(&s, &cfg), None);

        // Flip the straggler onto PE 0 and the same loads must move.
        let slow = [10.0, 1.0];
        let s = flat_sensors(&pe_of, &base, &slow, &alive, &aff, &node_of);
        let plan = periodic_plan(&s, &cfg).expect("escape the straggler");
        assert!(plan.moves.iter().all(|&(_, p)| p == 1));
    }

    #[test]
    fn periodic_plan_prefers_communication_partners_under_distress() {
        // Chares 0..3 sit on PE 0 (node 0). Chare 0 chats with chare 3,
        // which lives on node 1 (PE 2). Destinations PE 1 (node 0) and
        // PE 2 (node 1) are both empty; under distress the affinity
        // term must pull chare 0 toward its partner's node even though
        // both destinations project identical load.
        let pe_of = [0, 0, 0, 2];
        let base = [4_000u64, 3_000, 2_000, 100];
        let slow = [1.0, 1.0, 1.0];
        let alive = [true, true, true];
        let aff: Vec<Vec<(usize, u64)>> =
            vec![vec![(3, 1 << 20)], vec![], vec![], vec![(0, 1 << 20)]];
        let node_of = [0, 0, 1];
        let mut s = flat_sensors(&pe_of, &base, &slow, &alive, &aff, &node_of);
        s.distressed = true;
        let cfg = LbConfig {
            policy: crate::config::LbPolicy::Adaptive,
            period: SimDuration::from_us(10),
            budget: 1,
            hysteresis_pct: 0,
        };
        let plan = periodic_plan(&s, &cfg).expect("skew must plan");
        assert_eq!(plan.moves, vec![(ChareId(0), 2)], "chase the partner");
    }

    #[test]
    fn periodic_plan_never_targets_dead_pes() {
        let pe_of = [0, 0, 0];
        let base = [3_000u64, 2_000, 1_000];
        let slow = [1.0, 1.0, 1.0];
        let alive = [true, false, true];
        let aff: Vec<Vec<(usize, u64)>> = vec![vec![]; 3];
        let node_of = [0, 0, 0];
        let s = flat_sensors(&pe_of, &base, &slow, &alive, &aff, &node_of);
        let cfg = LbConfig {
            policy: crate::config::LbPolicy::Adaptive,
            period: SimDuration::from_us(10),
            budget: 4,
            hysteresis_pct: 0,
        };
        let plan = periodic_plan(&s, &cfg).expect("plan exists");
        assert!(plan.moves.iter().all(|&(_, p)| p == 2));
    }

    #[test]
    fn lpt_worsening_input_is_left_alone() {
        // Loads 3,3,2,2,2 optimally pre-placed on 2 PEs at makespan 6;
        // raw LPT would produce 7. The plan must be discarded.
        let mut m = Machine::new(MachineConfig::validation(1, 2));
        let mut chares = vec![];
        for (pe, ms) in [(0, 3), (0, 3), (1, 2), (1, 2), (1, 2)] {
            let c = m.create_chare(pe, Box::new(Dummy));
            m.set_load_for_test(c, SimDuration::from_ms(ms));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.max_before_ns, 6_000_000);
        assert_eq!(report.max_after_ns, 6_000_000);
        assert!(chares.iter().take(2).all(|&c| m.pe_of(c) == 0));
    }
}
