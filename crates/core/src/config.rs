//! Machine and runtime configuration.

use gaat_gpu::GpuTimingModel;
use gaat_net::NetParams;
use gaat_sim::SimDuration;
use gaat_ucx::UcxParams;

/// CPU-side costs of the task runtime (the analogue of Charm++ scheduler
/// and messaging overheads). These are what make fine-grained
/// overdecomposition expensive — the effect that bounds the useful ODF in
/// the paper's Figs. 7–9.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RtCosts {
    /// Scheduler cost of popping one message and locating its target
    /// chare.
    pub sched_per_msg: SimDuration,
    /// Cost of dispatching into an entry method (unpacking, invoking).
    pub entry_dispatch: SimDuration,
    /// CPU cost of a proxy send (marshalling, envelope setup).
    pub send_overhead: SimDuration,
    /// CPU cost of a Channel API send/recv call (thin UCX pass-through).
    pub channel_call: SimDuration,
    /// Latency of a same-PE message (queue reinsertion, no network).
    pub local_latency: SimDuration,
    /// Envelope bytes added to every runtime message on the wire.
    pub envelope_bytes: u64,
}

impl Default for RtCosts {
    fn default() -> Self {
        RtCosts {
            sched_per_msg: SimDuration::from_ns(900),
            entry_dispatch: SimDuration::from_ns(400),
            send_overhead: SimDuration::from_ns(750),
            channel_call: SimDuration::from_ns(500),
            local_latency: SimDuration::from_ns(250),
            envelope_bytes: 96,
        }
    }
}

/// Which migration planner the periodic load-balancing step runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LbPolicy {
    /// No load balancing: the LB tick is never armed.
    #[default]
    Off,
    /// Load-only LPT repacking (the `greedy_rebalance` planner), run
    /// periodically on the live EWMA load meters.
    Greedy,
    /// Congestion-, straggler-, and comm-affinity-aware planner: loads
    /// are inflated by active straggler windows and migration targets
    /// are biased toward the chare's heaviest communication partners.
    Adaptive,
}

/// Closed-loop load-balancer knobs. Inert by default: with
/// [`LbPolicy::Off`] or a zero period no tick is armed, no meters feed
/// a planner, and every run replays bit-identically to builds that
/// predate the balancer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(default))]
pub struct LbConfig {
    /// Planner run on each tick.
    pub policy: LbPolicy,
    /// Virtual time between LB steps; `ZERO` disables the balancer
    /// regardless of policy.
    pub period: SimDuration,
    /// Maximum chares migrated per LB round (thrash bound).
    pub budget: usize,
    /// A plan is applied only if it improves the projected makespan by
    /// at least this percentage of the current one (hysteresis).
    pub hysteresis_pct: u32,
}

impl Default for LbConfig {
    fn default() -> Self {
        LbConfig {
            policy: LbPolicy::Off,
            period: SimDuration::ZERO,
            budget: 4,
            hysteresis_pct: 5,
        }
    }
}

impl LbConfig {
    /// Whether the periodic LB step should be armed at all.
    pub fn enabled(&self) -> bool {
        self.policy != LbPolicy::Off && self.period > SimDuration::ZERO
    }
}

/// Full description of the simulated machine: topology, device timing,
/// fabric, communication-layer and runtime costs.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MachineConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// PEs per node; each PE owns one GPU (the paper's non-SMP
    /// one-process-per-GPU configuration; 6 on Summit).
    pub pes_per_node: usize,
    /// GPU timing model (same for every device).
    pub gpu: GpuTimingModel,
    /// Fabric constants.
    pub net: NetParams,
    /// Communication-layer constants.
    pub ucx: UcxParams,
    /// Runtime CPU costs.
    pub rt: RtCosts,
    /// Root RNG seed (a "run" in the paper's three-trial averages).
    pub seed: u64,
    /// Deterministic fault plan: message loss/corruption, link and PE
    /// failures, straggler windows. Inert by default, so fault-free runs
    /// are bit-identical to builds that predate fault injection.
    pub faults: gaat_sim::FaultPlan,
    /// Allocate real (functional) buffers instead of phantom ones.
    pub real_buffers: bool,
    /// Record execution traces (entry spans per PE, kernel/memcpy spans
    /// per device engine) for Nsight-style analysis. Off by default —
    /// tracing a 3,072-GPU run would record millions of spans.
    pub trace: bool,
    /// Host worker shards for parallel DES. `1` (the default) runs the
    /// plain single-threaded engine; `N > 1` partitions the machine's
    /// nodes into `N` shards and executes in conservative lookahead
    /// windows with a deterministic cross-shard merge, so results are
    /// bit-identical for every worker count (see `ShardPlan`).
    #[cfg_attr(feature = "serde", serde(default = "default_workers"))]
    pub workers: usize,
    /// Closed-loop load balancer. Inert by default (policy `Off`,
    /// period zero) so existing runs replay bit-identically.
    #[cfg_attr(feature = "serde", serde(default))]
    pub lb: LbConfig,
}

#[cfg(feature = "serde")]
fn default_workers() -> usize {
    1
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            nodes: 1,
            pes_per_node: 6,
            gpu: GpuTimingModel::default(),
            net: NetParams::default(),
            ucx: UcxParams::default(),
            rt: RtCosts::default(),
            seed: 1,
            faults: gaat_sim::FaultPlan::none(),
            real_buffers: false,
            trace: false,
            workers: 1,
            lb: LbConfig::default(),
        }
    }
}

impl MachineConfig {
    /// A Summit-like machine of `nodes` nodes (6 GPUs each).
    pub fn summit(nodes: usize) -> Self {
        MachineConfig {
            nodes,
            ..Default::default()
        }
    }

    /// A Summit-like machine whose interconnect is the explicit
    /// fat-tree topology model (`gaat-topo`): messages contend for
    /// NVLink, NIC ports, and leaf/spine trunks under max-min fair
    /// sharing, instead of the flat per-NIC model of [`Self::summit`].
    pub fn summit_fattree(nodes: usize) -> Self {
        let mut cfg = Self::summit(nodes);
        cfg.net.topology = gaat_net::TopologyKind::FatTree(gaat_net::FatTreeParams::default());
        cfg
    }

    /// Small functional-validation machine: `nodes` nodes × `pes` PEs with
    /// real buffers and no jitter (bit-exact numerics).
    pub fn validation(nodes: usize, pes: usize) -> Self {
        let mut cfg = MachineConfig {
            nodes,
            pes_per_node: pes,
            real_buffers: true,
            ..Default::default()
        };
        cfg.net.jitter = 0.0;
        cfg
    }

    /// Total PE (= GPU = worker) count.
    pub fn total_pes(&self) -> usize {
        self.nodes * self.pes_per_node
    }

    /// Node of a PE.
    pub fn node_of_pe(&self, pe: usize) -> usize {
        pe / self.pes_per_node
    }
}

/// Partition of the machine for windowed parallel DES: which shard owns
/// each node (and therefore each PE, device, and UCX endpoint — a node's
/// PEs always share a shard, because intra-node traffic has a latency
/// floor below the network lookahead and must stay shard-local).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard count (= configured `workers`).
    pub workers: usize,
    /// Shard owning each node, indexed by node id. Shard ids are dense:
    /// every value in `0..workers` appears (no empty shards).
    pub node_to_shard: Vec<usize>,
    /// Conservative window width: every cross-node message is delivered
    /// at least this long after it is sent, under any jitter draw.
    pub lookahead: SimDuration,
}

impl ShardPlan {
    /// The default partition: contiguous blocks of nodes, as equal as
    /// integer division allows. A `workers` larger than the node count is
    /// clamped — a node is the finest shardable unit, so extra workers
    /// would own nothing.
    pub fn contiguous(cfg: &MachineConfig, lookahead: SimDuration) -> Self {
        let workers = cfg.workers.clamp(1, cfg.nodes);
        let map = (0..cfg.nodes).map(|n| n * workers / cfg.nodes).collect();
        let mut clamped = cfg.clone();
        clamped.workers = workers;
        Self::with_map(&clamped, lookahead, map)
    }

    /// A plan with an explicit node→shard map (tests randomize this to
    /// show the partition cannot affect results). Panics unless the map
    /// covers every node and uses every shard id in `0..workers`.
    pub fn with_map(
        cfg: &MachineConfig,
        lookahead: SimDuration,
        node_to_shard: Vec<usize>,
    ) -> Self {
        assert!(cfg.workers >= 1, "at least one worker");
        assert!(
            cfg.workers <= cfg.nodes,
            "cannot split {} node(s) into {} shards",
            cfg.nodes,
            cfg.workers
        );
        assert_eq!(node_to_shard.len(), cfg.nodes, "one shard per node");
        let mut used = vec![false; cfg.workers];
        for &s in &node_to_shard {
            assert!(s < cfg.workers, "shard id {s} out of range");
            used[s] = true;
        }
        assert!(used.iter().all(|&u| u), "every shard must own a node");
        assert!(lookahead.as_ns() >= 1, "lookahead must be positive");
        ShardPlan {
            workers: cfg.workers,
            node_to_shard,
            lookahead,
        }
    }

    /// Shard owning a node.
    pub fn shard_of_node(&self, node: usize) -> usize {
        self.node_to_shard[node]
    }

    /// Whether a `src -> dst` node pair crosses a shard boundary.
    pub fn is_cross_shard(&self, src: usize, dst: usize) -> bool {
        self.node_to_shard[src] != self.node_to_shard[dst]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_topology() {
        let c = MachineConfig::summit(8);
        assert_eq!(c.total_pes(), 48);
        assert_eq!(c.node_of_pe(0), 0);
        assert_eq!(c.node_of_pe(5), 0);
        assert_eq!(c.node_of_pe(6), 1);
        assert_eq!(c.node_of_pe(47), 7);
    }

    #[test]
    fn validation_config_is_deterministic() {
        let c = MachineConfig::validation(1, 2);
        assert!(c.real_buffers);
        assert_eq!(c.net.jitter, 0.0);
        assert_eq!(c.total_pes(), 2);
    }
}
