//! Machine and runtime configuration.

use gaat_gpu::GpuTimingModel;
use gaat_net::NetParams;
use gaat_sim::SimDuration;
use gaat_ucx::UcxParams;

/// CPU-side costs of the task runtime (the analogue of Charm++ scheduler
/// and messaging overheads). These are what make fine-grained
/// overdecomposition expensive — the effect that bounds the useful ODF in
/// the paper's Figs. 7–9.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RtCosts {
    /// Scheduler cost of popping one message and locating its target
    /// chare.
    pub sched_per_msg: SimDuration,
    /// Cost of dispatching into an entry method (unpacking, invoking).
    pub entry_dispatch: SimDuration,
    /// CPU cost of a proxy send (marshalling, envelope setup).
    pub send_overhead: SimDuration,
    /// CPU cost of a Channel API send/recv call (thin UCX pass-through).
    pub channel_call: SimDuration,
    /// Latency of a same-PE message (queue reinsertion, no network).
    pub local_latency: SimDuration,
    /// Envelope bytes added to every runtime message on the wire.
    pub envelope_bytes: u64,
}

impl Default for RtCosts {
    fn default() -> Self {
        RtCosts {
            sched_per_msg: SimDuration::from_ns(900),
            entry_dispatch: SimDuration::from_ns(400),
            send_overhead: SimDuration::from_ns(750),
            channel_call: SimDuration::from_ns(500),
            local_latency: SimDuration::from_ns(250),
            envelope_bytes: 96,
        }
    }
}

/// Full description of the simulated machine: topology, device timing,
/// fabric, communication-layer and runtime costs.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MachineConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// PEs per node; each PE owns one GPU (the paper's non-SMP
    /// one-process-per-GPU configuration; 6 on Summit).
    pub pes_per_node: usize,
    /// GPU timing model (same for every device).
    pub gpu: GpuTimingModel,
    /// Fabric constants.
    pub net: NetParams,
    /// Communication-layer constants.
    pub ucx: UcxParams,
    /// Runtime CPU costs.
    pub rt: RtCosts,
    /// Root RNG seed (a "run" in the paper's three-trial averages).
    pub seed: u64,
    /// Deterministic fault plan: message loss/corruption, link and PE
    /// failures, straggler windows. Inert by default, so fault-free runs
    /// are bit-identical to builds that predate fault injection.
    pub faults: gaat_sim::FaultPlan,
    /// Allocate real (functional) buffers instead of phantom ones.
    pub real_buffers: bool,
    /// Record execution traces (entry spans per PE, kernel/memcpy spans
    /// per device engine) for Nsight-style analysis. Off by default —
    /// tracing a 3,072-GPU run would record millions of spans.
    pub trace: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            nodes: 1,
            pes_per_node: 6,
            gpu: GpuTimingModel::default(),
            net: NetParams::default(),
            ucx: UcxParams::default(),
            rt: RtCosts::default(),
            seed: 1,
            faults: gaat_sim::FaultPlan::none(),
            real_buffers: false,
            trace: false,
        }
    }
}

impl MachineConfig {
    /// A Summit-like machine of `nodes` nodes (6 GPUs each).
    pub fn summit(nodes: usize) -> Self {
        MachineConfig {
            nodes,
            ..Default::default()
        }
    }

    /// A Summit-like machine whose interconnect is the explicit
    /// fat-tree topology model (`gaat-topo`): messages contend for
    /// NVLink, NIC ports, and leaf/spine trunks under max-min fair
    /// sharing, instead of the flat per-NIC model of [`Self::summit`].
    pub fn summit_fattree(nodes: usize) -> Self {
        let mut cfg = Self::summit(nodes);
        cfg.net.topology = gaat_net::TopologyKind::FatTree(gaat_net::FatTreeParams::default());
        cfg
    }

    /// Small functional-validation machine: `nodes` nodes × `pes` PEs with
    /// real buffers and no jitter (bit-exact numerics).
    pub fn validation(nodes: usize, pes: usize) -> Self {
        let mut cfg = MachineConfig {
            nodes,
            pes_per_node: pes,
            real_buffers: true,
            ..Default::default()
        };
        cfg.net.jitter = 0.0;
        cfg
    }

    /// Total PE (= GPU = worker) count.
    pub fn total_pes(&self) -> usize {
        self.nodes * self.pes_per_node
    }

    /// Node of a PE.
    pub fn node_of_pe(&self, pe: usize) -> usize {
        pe / self.pes_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_topology() {
        let c = MachineConfig::summit(8);
        assert_eq!(c.total_pes(), 48);
        assert_eq!(c.node_of_pe(0), 0);
        assert_eq!(c.node_of_pe(5), 0);
        assert_eq!(c.node_of_pe(6), 1);
        assert_eq!(c.node_of_pe(47), 7);
    }

    #[test]
    fn validation_config_is_deterministic() {
        let c = MachineConfig::validation(1, 2);
        assert!(c.real_buffers);
        assert_eq!(c.net.jitter, 0.0);
        assert_eq!(c.total_pes(), 2);
    }
}
