//! Messages, chare identity, and callbacks.

use std::any::Any;
use std::fmt;

/// Global identifier of a chare (index into the machine's chare table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChareId(pub usize);

/// Entry method selector within a chare (the analogue of an entry-method
/// index in a Charm Interface file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId(pub u16);

/// Scheduling priority of a message. Communication-completion callbacks
/// run at high priority so a chare's pending kernels never starve
/// communication progress (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MsgPriority {
    /// Ordinary entry-method invocations.
    Normal,
    /// Communication/GPU completion callbacks.
    High,
}

/// A clonable message payload: blanket-implemented for every `'static +
/// Clone` type, so entry methods keep passing plain structs. The clone
/// hook is what lets a world snapshot deep-copy in-flight envelopes for
/// the sweep memoizer's fork/restore; delivery still downcasts exactly
/// as with `Box<dyn Any>`.
pub trait Payload: Any {
    /// Deep-copy into a fresh boxed payload.
    fn clone_boxed(&self) -> Box<dyn Payload>;
    /// Convert to `Any` for by-value downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Clone> Payload for T {
    fn clone_boxed(&self) -> Box<dyn Payload> {
        Box::new(self.clone())
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A message bound for a chare's entry method.
pub struct Envelope {
    /// Target entry method.
    pub entry: EntryId,
    /// Reference number (the paper's mechanism for matching halo messages
    /// to the receiver's iteration).
    pub refnum: u64,
    /// Typed payload; entry methods downcast it.
    pub data: Box<dyn Payload>,
    /// Estimated wire size (payload marshalled), used for network timing
    /// of remote deliveries.
    pub wire_bytes: u64,
    /// Scheduling priority.
    pub priority: MsgPriority,
}

impl Clone for Envelope {
    fn clone(&self) -> Self {
        Envelope {
            entry: self.entry,
            refnum: self.refnum,
            data: self.data.clone_boxed(),
            wire_bytes: self.wire_bytes,
            priority: self.priority,
        }
    }
}

impl Envelope {
    /// An empty-payload message.
    pub fn empty(entry: EntryId) -> Self {
        Envelope {
            entry,
            refnum: 0,
            data: Box::new(()),
            wire_bytes: 0,
            priority: MsgPriority::Normal,
        }
    }

    /// A message with a typed payload.
    pub fn new<T: Any + Clone>(entry: EntryId, data: T) -> Self {
        Envelope {
            entry,
            refnum: 0,
            data: Box::new(data),
            wire_bytes: std::mem::size_of::<T>() as u64,
            priority: MsgPriority::Normal,
        }
    }

    /// Set the reference number.
    pub fn with_refnum(mut self, refnum: u64) -> Self {
        self.refnum = refnum;
        self
    }

    /// Set the marshalled wire size.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.wire_bytes = bytes;
        self
    }

    /// Mark as high priority.
    pub fn high_priority(mut self) -> Self {
        self.priority = MsgPriority::High;
        self
    }

    /// Downcast the payload by value.
    ///
    /// # Panics
    /// Panics when the payload has a different type — an entry-method
    /// signature mismatch, which is a programming error.
    pub fn take<T: Any>(self) -> T {
        *self
            .data
            .into_any()
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("entry {} payload type mismatch", self.entry.0))
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope")
            .field("entry", &self.entry)
            .field("refnum", &self.refnum)
            .field("wire_bytes", &self.wire_bytes)
            .field("priority", &self.priority)
            .finish()
    }
}

/// Where to deliver a completion notification (the CkCallback analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callback {
    /// Invoke an entry method on a chare (empty payload, given refnum).
    ToChare {
        /// Target chare.
        chare: ChareId,
        /// Entry method.
        entry: EntryId,
        /// Reference number carried by the callback message.
        refnum: u64,
    },
    /// Drop the notification.
    Ignore,
}

impl Callback {
    /// Callback invoking `entry` on `chare` with refnum 0.
    pub fn to(chare: ChareId, entry: EntryId) -> Self {
        Callback::ToChare {
            chare,
            entry,
            refnum: 0,
        }
    }

    /// Callback with an explicit refnum.
    pub fn to_ref(chare: ChareId, entry: EntryId, refnum: u64) -> Self {
        Callback::ToChare {
            chare,
            entry,
            refnum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips_payload() {
        let e = Envelope::new(EntryId(3), vec![1u32, 2, 3])
            .with_refnum(9)
            .with_bytes(12)
            .high_priority();
        assert_eq!(e.entry, EntryId(3));
        assert_eq!(e.refnum, 9);
        assert_eq!(e.wire_bytes, 12);
        assert_eq!(e.priority, MsgPriority::High);
        assert_eq!(e.take::<Vec<u32>>(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn wrong_downcast_panics() {
        Envelope::new(EntryId(0), 5u32).take::<String>();
    }

    #[test]
    fn empty_envelope() {
        let e = Envelope::empty(EntryId(1));
        assert_eq!(e.wire_bytes, 0);
        e.take::<()>();
    }

    #[test]
    fn callback_builders() {
        assert_eq!(
            Callback::to(ChareId(1), EntryId(2)),
            Callback::ToChare {
                chare: ChareId(1),
                entry: EntryId(2),
                refnum: 0
            }
        );
        assert_eq!(
            Callback::to_ref(ChareId(1), EntryId(2), 7),
            Callback::ToChare {
                chare: ChareId(1),
                entry: EntryId(2),
                refnum: 7
            }
        );
    }
}
