//! In-memory chare checkpointing.
//!
//! Models the double in-memory checkpoint/restart protocol of Charm++
//! (Zheng et al., "FTC-Charm++"): each chare periodically serializes its
//! state and ships the snapshot to a *buddy* PE's memory. When a PE
//! fails, every chare rolls back to the newest epoch for which all
//! chares hold a surviving snapshot, chares stranded on the dead PE are
//! re-placed onto live PEs, and execution resumes from the restored cut.
//! Keeping the last *two* epochs guarantees a consistent recovery line
//! even when the failure lands in the middle of a checkpoint wave.

/// A serialized chare: the state that survives a PE failure.
///
/// Chares marshal themselves into flat integer and float arrays (the
/// PUP analogue, reduced to the two scalar kinds the simulated
/// applications need). The wire size charged when the snapshot travels
/// to its buddy is derived from these lengths.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChareSnapshot {
    /// Integer state: counters, indices, flags.
    pub ints: Vec<i64>,
    /// Floating-point state: field data.
    pub floats: Vec<f64>,
}

impl ChareSnapshot {
    /// Marshalled size of the snapshot on the wire (header + payload).
    pub fn wire_bytes(&self) -> u64 {
        16 + 8 * (self.ints.len() as u64 + self.floats.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_both_arrays() {
        let s = ChareSnapshot {
            ints: vec![1, 2, 3],
            floats: vec![0.5; 10],
        };
        assert_eq!(s.wire_bytes(), 16 + 8 * 13);
    }
}
