//! # gaat-rt — GPU-aware asynchronous task runtime
//!
//! The paper's primary contribution, implemented as a library: a
//! message-driven task runtime (the Charm++ analogue) where
//! overdecomposed *chares* execute entry methods on per-PE schedulers,
//! GPU work completes asynchronously (HAPI), and GPU-aware communication
//! flows through the Channel API on top of a UCX-like protocol layer —
//! all over a deterministic discrete-event machine model.
//!
//! Key pieces:
//!
//! - [`Machine`] / [`Simulation`]: the simulated cluster and its driver.
//! - [`Chare`] + [`Ctx`]: entry methods charge simulated CPU time for
//!   scheduling, sends, and kernel launches — making overdecomposition
//!   overheads and CPU-side launch costs first-class, as the paper's
//!   strong-scaling analysis requires.
//! - [`channel`]: the Channel API (two-sided GPU-aware transfers with
//!   callback completion).
//! - [`gpu_msg`]: the older GPU Messaging API with its post-entry-method
//!   round trip, kept as a comparison point.
//! - [`sdag`]: SDAG-style message buffering with reference numbers.
//! - [`lb`]: greedy load balancing over measured chare loads — the
//!   runtime adaptivity that overdecomposition enables.
//!
//! # Example: a chare that offloads to the GPU and detects completion
//! asynchronously
//!
//! ```
//! use gaat_rt::{
//!     Callback, Chare, Ctx, EntryId, Envelope, KernelSpec, MachineConfig, Op, Simulation,
//!     StreamId,
//! };
//! use gaat_sim::SimDuration;
//!
//! const E_GO: EntryId = EntryId(0);
//! const E_DONE: EntryId = EntryId(1);
//!
//! struct Offloader {
//!     stream: StreamId,
//!     finished: bool,
//! }
//!
//! impl Chare for Offloader {
//!     fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
//!         match env.entry {
//!             E_GO => {
//!                 // Launch a kernel; the HAPI callback fires E_DONE when
//!                 // it completes — without blocking the PE's scheduler.
//!                 ctx.launch(
//!                     self.stream,
//!                     Op::kernel(KernelSpec::phantom("work", SimDuration::from_us(25))),
//!                 );
//!                 ctx.hapi(self.stream, Callback::to(ctx.me(), E_DONE));
//!             }
//!             E_DONE => self.finished = true,
//!             _ => unreachable!(),
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(MachineConfig::validation(1, 1));
//! let stream = sim.machine.devices[0].create_stream(0);
//! let c = sim.machine.create_chare(0, Box::new(Offloader { stream, finished: false }));
//! {
//!     let Simulation { sim, machine, .. } = &mut sim;
//!     machine.inject(sim, c, Envelope::empty(E_GO));
//! }
//! sim.run();
//! assert!(sim.machine.chare_as::<Offloader>(c).finished);
//! assert!(sim.now().as_ns() > 25_000);
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod ckpt;
pub mod config;
pub mod gpu_msg;
pub mod lb;
pub mod machine;
pub mod msg;
pub mod pe;
pub mod sdag;
pub mod slot;

pub use channel::{create_channel, ChannelEnd};
pub use ckpt::ChareSnapshot;
pub use config::{LbConfig, LbPolicy, MachineConfig, RtCosts, ShardPlan};
pub use lb::{greedy_rebalance, periodic_plan, LbPlan, LbSensors, RebalanceReport};
pub use machine::{
    Chare, Ctx, LbStats, Machine, MachineStats, Simulation, WindowStats, WorldSnapshot,
};
pub use msg::{Callback, ChareId, EntryId, Envelope, MsgPriority};
pub use pe::{Pe, PeStats};
pub use sdag::WhenSet;
pub use slot::{SlotStats, WorldSlot};

// Re-exports for applications.
pub use gaat_gpu::{
    BufRange, BufferId, DeviceId, GraphBuilder, GraphId, KernelSpec, Op, Space, StreamId,
};
pub use gaat_sim::{RunOutcome, SimDuration, SimTime};
pub use gaat_ucx::MemLoc;
