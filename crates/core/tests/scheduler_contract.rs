//! Contract tests for the execution model: simulated-CPU charging, the
//! temporal spreading of side effects, and PE blocking semantics — the
//! mechanics every performance result in this repository rests on.

use gaat_gpu::{KernelSpec, Op, StreamId};
use gaat_rt::{Callback, Chare, ChareId, Ctx, EntryId, Envelope, MachineConfig, Simulation};
use gaat_sim::{SimDuration, SimTime};

const E_GO: EntryId = EntryId(0);
const E_PING: EntryId = EntryId(1);

/// Launches `n` kernels in one entry method; the device must receive them
/// spread by the CPU launch cost, not all at the entry's start.
struct Launcher {
    stream: StreamId,
    n: usize,
}
impl Chare for Launcher {
    fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
        for _ in 0..self.n {
            ctx.launch(
                self.stream,
                Op::kernel(KernelSpec::phantom("k", SimDuration::from_ns(100))),
            );
        }
    }
}

#[test]
fn kernel_launches_are_spread_by_cpu_cost() {
    let mut machine_cfg = MachineConfig::validation(1, 1);
    machine_cfg.trace = true;
    let mut sim = Simulation::new(machine_cfg);
    let stream = sim.machine.devices[0].create_stream(0);
    let c = sim
        .machine
        .create_chare(0, Box::new(Launcher { stream, n: 5 }));
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, c, Envelope::empty(E_GO));
    }
    sim.run();
    // The kernels are tiny (100ns) versus the 4.5us launch cost, so each
    // kernel finishes before the CPU issues the next: submit times in the
    // device trace must be >= cpu_launch apart.
    let spans: Vec<_> = sim.machine.devices[0]
        .tracer
        .spans()
        .iter()
        .filter(|s| s.category == "kernel")
        .map(|s| s.start.as_ns())
        .collect();
    assert_eq!(spans.len(), 5);
    let launch = sim.machine.cfg.gpu.cpu_launch.as_ns();
    for pair in spans.windows(2) {
        assert!(
            pair[1] - pair[0] >= launch,
            "kernel submits {pair:?} should be >= {launch} ns apart"
        );
    }
}

/// An entry method's charged time makes the PE busy: a second message is
/// dispatched only after the charge elapses.
struct Busy {
    work: SimDuration,
    ran_at: Vec<SimTime>,
}
impl Chare for Busy {
    fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
        self.ran_at.push(ctx.start_time());
        ctx.compute(self.work);
    }
}

#[test]
fn charged_time_delays_the_next_dispatch() {
    let mut sim = Simulation::new(MachineConfig::validation(1, 1));
    let c = sim.machine.create_chare(
        0,
        Box::new(Busy {
            work: SimDuration::from_us(100),
            ran_at: vec![],
        }),
    );
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, c, Envelope::empty(E_GO));
        machine.inject(sim, c, Envelope::empty(E_GO));
    }
    sim.run();
    let ran = &sim.machine.chare_as::<Busy>(c).ran_at;
    assert_eq!(ran.len(), 2);
    let gap = ran[1].since(ran[0]);
    assert!(
        gap >= SimDuration::from_us(100),
        "second entry after {gap}, expected >= 100us"
    );
}

/// Sends issued later in an entry method leave later (charge offsets are
/// reflected in message departure, hence arrival order).
struct Sender {
    peers: Vec<ChareId>,
}
impl Chare for Sender {
    fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
        for (i, &p) in self.peers.clone().iter().enumerate() {
            // Interleave compute so each send departs later.
            ctx.compute(SimDuration::from_us(10 * (i as u64 + 1)));
            ctx.send(p, Envelope::empty(E_PING).with_bytes(32));
        }
    }
}
struct Stamp {
    at: Option<SimTime>,
}
impl Chare for Stamp {
    fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
        self.at = Some(ctx.start_time());
    }
}

#[test]
fn send_offsets_respect_program_order() {
    let mut sim = Simulation::new(MachineConfig::validation(1, 2));
    let a = sim.machine.create_chare(1, Box::new(Stamp { at: None }));
    let b = sim.machine.create_chare(1, Box::new(Stamp { at: None }));
    let s = sim
        .machine
        .create_chare(0, Box::new(Sender { peers: vec![a, b] }));
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, s, Envelope::empty(E_GO));
    }
    sim.run();
    let ta = sim.machine.chare_as::<Stamp>(a).at.expect("a ran");
    let tb = sim.machine.chare_as::<Stamp>(b).at.expect("b ran");
    // b's send departed >= 20us after a's (10us vs 10+20us compute).
    assert!(tb > ta, "b at {tb} should be after a at {ta}");
    assert!(
        tb.since(ta) >= SimDuration::from_us(15),
        "gap {}",
        tb.since(ta)
    );
}

/// While a PE is blocked in a synchronous stream wait, even high-priority
/// messages queue; they run immediately on unblock, before normal ones.
struct BlockThenRecord {
    stream: StreamId,
    order: Vec<u16>,
}
impl Chare for BlockThenRecord {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_GO => {
                ctx.launch(
                    self.stream,
                    Op::kernel(KernelSpec::phantom("long", SimDuration::from_ms(1))),
                );
                ctx.stream_sync(self.stream, Callback::Ignore);
            }
            other => self.order.push(other.0),
        }
    }
}

#[test]
fn blocked_pe_preserves_priority_order() {
    let mut sim = Simulation::new(MachineConfig::validation(1, 1));
    let stream = sim.machine.devices[0].create_stream(0);
    let c = sim.machine.create_chare(
        0,
        Box::new(BlockThenRecord {
            stream,
            order: vec![],
        }),
    );
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, c, Envelope::empty(E_GO));
        // These arrive while the PE is blocked on the 1ms kernel.
        machine.inject(sim, c, Envelope::empty(EntryId(10)));
        machine.inject(sim, c, Envelope::empty(EntryId(11)).high_priority());
        machine.inject(sim, c, Envelope::empty(EntryId(12)));
    }
    sim.run();
    assert_eq!(
        sim.machine.chare_as::<BlockThenRecord>(c).order,
        vec![11, 10, 12],
        "high priority first once unblocked"
    );
}

/// Entry counters and per-chare load accounting line up with execution.
#[test]
fn load_accounting_tracks_charged_time() {
    let mut sim = Simulation::new(MachineConfig::validation(1, 2));
    let light = sim.machine.create_chare(
        0,
        Box::new(Busy {
            work: SimDuration::from_us(1),
            ran_at: vec![],
        }),
    );
    let heavy = sim.machine.create_chare(
        1,
        Box::new(Busy {
            work: SimDuration::from_us(500),
            ran_at: vec![],
        }),
    );
    {
        let Simulation { sim, machine, .. } = &mut sim;
        for _ in 0..3 {
            machine.inject(sim, light, Envelope::empty(E_GO));
            machine.inject(sim, heavy, Envelope::empty(E_GO));
        }
    }
    sim.run();
    let l = sim.machine.load_of(light);
    let h = sim.machine.load_of(heavy);
    assert!(h > l * 50, "heavy {h} should dwarf light {l}");
    assert!(h >= SimDuration::from_us(1500), "3 x 500us of compute: {h}");
}
