//! Integration tests of runtime features that the in-crate unit tests
//! don't cover end to end: tree broadcast, the Channel API over many
//! iterations, the GPU Messaging API round trip, and multi-round
//! reductions.

use gaat_gpu::Space;
use gaat_rt::{
    create_channel, gpu_msg, BufRange, Callback, ChannelEnd, Chare, ChareId, Ctx, EntryId,
    Envelope, MachineConfig, MemLoc, Simulation,
};
use gaat_sim::SimTime;

const E_GO: EntryId = EntryId(0);
const E_AUX: EntryId = EntryId(1);
const E_DONE: EntryId = EntryId(2);
const E_POST: EntryId = EntryId(3);
const E_READY: EntryId = EntryId(4);

// ---------------------------------------------------------------------

struct Receiver {
    got: Vec<(u64, SimTime)>,
}
impl Chare for Receiver {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        self.got.push((env.refnum, ctx.start_time()));
    }
}

#[test]
fn broadcast_reaches_every_target_once() {
    let mut sim = Simulation::new(MachineConfig::validation(4, 3));
    let mut ids = Vec::new();
    for pe in 0..12 {
        for _ in 0..2 {
            ids.push(
                sim.machine
                    .create_chare(pe, Box::new(Receiver { got: vec![] })),
            );
        }
    }
    {
        let Simulation { sim, machine, .. } = &mut sim;
        let targets = ids.clone();
        machine.broadcast(sim, &targets, E_GO, 7);
    }
    sim.run();
    for &id in &ids {
        let r = sim.machine.chare_as::<Receiver>(id);
        assert_eq!(r.got.len(), 1, "chare {id:?} should get exactly one copy");
        assert_eq!(r.got[0].0, 7);
    }
}

#[test]
fn broadcast_scales_logarithmically() {
    // Tree fan-out: the last delivery should land at O(log P) hops, far
    // below P serialized sends from the root.
    let time_for = |nodes: usize| {
        let mut sim = Simulation::new(MachineConfig::validation(nodes, 1));
        let ids: Vec<ChareId> = (0..nodes)
            .map(|pe| {
                sim.machine
                    .create_chare(pe, Box::new(Receiver { got: vec![] }))
            })
            .collect();
        {
            let Simulation { sim, machine, .. } = &mut sim;
            machine.broadcast(sim, &ids, E_GO, 0);
        }
        sim.run();
        ids.iter()
            .map(|&id| sim.machine.chare_as::<Receiver>(id).got[0].1)
            .fold(SimTime::ZERO, SimTime::max)
            .as_ns()
    };
    let t16 = time_for(16);
    let t64 = time_for(64);
    // 4x the PEs should cost ~log factor (~1.5x), nowhere near 4x.
    assert!(
        t64 < t16 * 5 / 2,
        "broadcast should scale ~log: 16 PEs {t16} ns, 64 PEs {t64} ns"
    );
}

// ---------------------------------------------------------------------

struct ChannelIterator {
    end: Option<ChannelEnd>,
    send_buf: MemLoc,
    recv_buf: MemLoc,
    rounds_left: u32,
    received: u32,
}

impl Chare for ChannelIterator {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_GO | E_DONE => {
                if env.entry == E_DONE {
                    self.received += 1;
                    if self.rounds_left == 0 {
                        return;
                    }
                    self.rounds_left -= 1;
                }
                let me = ctx.me();
                let mut end = self.end.take().expect("channel");
                end.recv(ctx, self.recv_buf, Callback::to(me, E_DONE));
                end.send(ctx, self.send_buf, Callback::Ignore);
                self.end = Some(end);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn channel_sequences_stay_matched_over_many_rounds() {
    let mut sim = Simulation::new(MachineConfig::validation(2, 1));
    let mk_loc = |sim: &mut Simulation, pe: usize| {
        let dev = sim.machine.pe_device(pe);
        let b = sim.machine.devices[dev.0].mem.alloc_real(Space::Device, 64);
        MemLoc {
            device: dev,
            range: BufRange::whole(b, 64),
        }
    };
    let (s0, r0) = (mk_loc(&mut sim, 0), mk_loc(&mut sim, 0));
    let (s1, r1) = (mk_loc(&mut sim, 1), mk_loc(&mut sim, 1));
    let rounds = 50;
    let a = sim.machine.create_chare(
        0,
        Box::new(ChannelIterator {
            end: None,
            send_buf: s0,
            recv_buf: r0,
            rounds_left: rounds,
            received: 0,
        }),
    );
    let b = sim.machine.create_chare(
        1,
        Box::new(ChannelIterator {
            end: None,
            send_buf: s1,
            recv_buf: r1,
            rounds_left: rounds,
            received: 0,
        }),
    );
    let (ea, eb) = create_channel(&mut sim.machine, a, b);
    sim.machine
        .chare_for_setup(a)
        .downcast_mut::<ChannelIterator>()
        .expect("chare")
        .end = Some(ea);
    sim.machine
        .chare_for_setup(b)
        .downcast_mut::<ChannelIterator>()
        .expect("chare")
        .end = Some(eb);
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, a, Envelope::empty(E_GO));
        machine.inject(sim, b, Envelope::empty(E_GO));
    }
    sim.run();
    assert_eq!(
        sim.machine.chare_as::<ChannelIterator>(a).received,
        rounds + 1
    );
    assert_eq!(
        sim.machine.chare_as::<ChannelIterator>(b).received,
        rounds + 1
    );
    assert_eq!(sim.machine.ucx.in_flight(), 0, "no leaked transfers");
}

// ---------------------------------------------------------------------

struct GpuMsgPair {
    peer: ChareId,
    sender: gpu_msg::GpuMsgSender,
    send_buf: MemLoc,
    recv_buf: MemLoc,
    recv_done: bool,
    send_done: bool,
}

impl Chare for GpuMsgPair {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_GO => {
                let me = ctx.me();
                let _ = me;
                self.sender.send(
                    ctx,
                    self.peer,
                    E_POST,
                    E_READY,
                    self.send_buf,
                    Callback::to(ctx.me(), E_AUX),
                );
            }
            E_POST => {
                let meta = env.take::<gpu_msg::GpuMsgMeta>();
                let me = ctx.me();
                gpu_msg::post_recv(ctx, &meta, self.recv_buf, Callback::to(me, E_DONE));
            }
            E_READY => self.sender.on_ready(ctx, env),
            E_DONE => self.recv_done = true,
            E_AUX => self.send_done = true,
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn gpu_messaging_api_moves_data_with_post_entry() {
    let mut sim = Simulation::new(MachineConfig::validation(2, 1));
    let mk = |sim: &mut Simulation, pe: usize, fill: f64| {
        let dev = sim.machine.pe_device(pe);
        let b = sim.machine.devices[dev.0].mem.alloc_real(Space::Device, 32);
        sim.machine.devices[dev.0]
            .mem
            .write(BufRange::new(b, 0, 1), &[fill]);
        (
            b,
            MemLoc {
                device: dev,
                range: BufRange::whole(b, 32),
            },
        )
    };
    let (_sb, sloc) = mk(&mut sim, 0, 42.0);
    let (rb, rloc) = mk(&mut sim, 1, 0.0);
    let a = ChareId(0);
    let b = ChareId(1);
    let ca = sim.machine.create_chare(
        0,
        Box::new(GpuMsgPair {
            peer: b,
            sender: gpu_msg::GpuMsgSender::new(),
            send_buf: sloc,
            recv_buf: sloc, // unused on the sender
            recv_done: false,
            send_done: false,
        }),
    );
    let cb = sim.machine.create_chare(
        1,
        Box::new(GpuMsgPair {
            peer: a,
            sender: gpu_msg::GpuMsgSender::new(),
            send_buf: rloc, // unused on the receiver
            recv_buf: rloc,
            recv_done: false,
            send_done: false,
        }),
    );
    assert_eq!((ca, cb), (a, b));
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, a, Envelope::empty(E_GO));
    }
    sim.run();
    assert!(sim.machine.chare_as::<GpuMsgPair>(b).recv_done);
    assert!(sim.machine.chare_as::<GpuMsgPair>(a).send_done);
    let got = sim.machine.devices[1]
        .mem
        .read(BufRange::new(rb, 0, 1))
        .expect("real");
    assert_eq!(got[0], 42.0);
}

// ---------------------------------------------------------------------

struct RoundContributor {
    reducer: u64,
    n: usize,
    cb: Callback,
    rounds: u64,
}
impl Chare for RoundContributor {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        if env.entry == E_GO {
            for round in 0..self.rounds {
                ctx.contribute(self.reducer, round, (round + 1) as f64, self.n, self.cb);
            }
        }
    }
}
struct RoundRoot {
    sums: Vec<f64>,
}
impl Chare for RoundRoot {
    fn receive(&mut self, _ctx: &mut Ctx<'_>, env: Envelope) {
        self.sums.push(env.take::<f64>());
    }
}

#[test]
fn reduction_rounds_do_not_mix() {
    let mut sim = Simulation::new(MachineConfig::validation(2, 2));
    let reducer = sim.machine.create_reducer();
    let root = sim
        .machine
        .create_chare(0, Box::new(RoundRoot { sums: vec![] }));
    let cb = Callback::to(root, E_DONE);
    let n = 4;
    let rounds = 3;
    let ids: Vec<ChareId> = (0..n)
        .map(|pe| {
            sim.machine.create_chare(
                pe,
                Box::new(RoundContributor {
                    reducer,
                    n,
                    cb,
                    rounds,
                }),
            )
        })
        .collect();
    {
        let Simulation { sim, machine, .. } = &mut sim;
        for &id in &ids {
            machine.inject(sim, id, Envelope::empty(E_GO));
        }
    }
    sim.run();
    let mut sums = sim.machine.chare_as::<RoundRoot>(root).sums.clone();
    sums.sort_by(f64::total_cmp);
    // round r sums to 4 * (r+1)
    assert_eq!(sums, vec![4.0, 8.0, 12.0]);
}
