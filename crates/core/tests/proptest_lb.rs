//! Property tests for the load balancers: a rebalance pass never
//! predicts a worse makespan than the placement it started from —
//! statically (`greedy_rebalance`) and dynamically (`periodic_plan`
//! across rounds of shifting straggler factors and PE deaths).

use proptest::prelude::*;

use gaat_rt::lb::{greedy_rebalance, periodic_plan};
use gaat_rt::machine::{Chare, Ctx, Machine};
use gaat_rt::msg::Envelope;
use gaat_rt::{LbConfig, LbSensors, MachineConfig};
use gaat_sim::SimDuration;

struct Dummy;
impl Chare for Dummy {
    fn receive(&mut self, _ctx: &mut Ctx<'_>, _env: Envelope) {}
}

proptest! {
    /// `max_after_ns <= max_before_ns` for arbitrary loads and initial
    /// placements — the never-degrade guard discards LPT plans that
    /// would raise the makespan.
    #[test]
    fn rebalance_never_degrades(
        pes in 1usize..6,
        loads in prop::collection::vec((0usize..6, 0u64..20_000), 0..24),
    ) {
        let mut m = Machine::new(MachineConfig::validation(1, pes));
        let mut chares = vec![];
        for &(pe, load_us) in &loads {
            let c = m.create_chare(pe % pes, Box::new(Dummy));
            m.set_load_for_test(c, SimDuration::from_us(load_us));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        prop_assert!(
            report.max_after_ns <= report.max_before_ns,
            "rebalance degraded: {} -> {}",
            report.max_before_ns,
            report.max_after_ns
        );
        // The report's "after" must describe the placement actually in
        // effect: recompute per-PE load from the machine.
        let mut actual = vec![0u64; pes];
        for &c in &chares {
            actual[m.pe_of(c)] += m.load_of(c).as_ns();
        }
        let actual_max = actual.into_iter().max().unwrap_or(0);
        prop_assert_eq!(actual_max, report.max_after_ns);
    }

    /// The dynamic case: rounds of periodic planning against a shifting
    /// fault landscape (fresh straggler factors and PE deaths each
    /// round). Every applied plan must beat staying put under its own
    /// cost model, clear the hysteresis bar, stay within the per-round
    /// migration budget, never target a dead PE — and replay
    /// bit-identically from the same sensors.
    #[test]
    fn periodic_plan_never_degrades_across_rounds(
        pes in 2usize..6,
        chares in prop::collection::vec((0usize..6, 0u64..20_000, 0usize..24, 0u64..4_096), 1..24),
        rounds in prop::collection::vec(
            (
                prop::collection::vec(1u32..40, 6),      // per-PE slowdown, tenths
                prop::collection::vec(any::<bool>(), 6), // per-PE liveness
                any::<bool>(),                           // fabric distress
            ),
            1..4,
        ),
        budget in 1usize..6,
        hysteresis in 0u32..30,
    ) {
        let n = chares.len();
        let mut pe_of: Vec<usize> = chares.iter().map(|&(pe, ..)| pe % pes).collect();
        let base: Vec<u64> = chares.iter().map(|&(_, l, ..)| l).collect();
        let affinity: Vec<Vec<(usize, u64)>> = chares
            .iter()
            .map(|&(.., partner, bytes)| vec![(partner % n, bytes)])
            .collect();
        let node_of: Vec<usize> = (0..pes).map(|p| p / 2).collect();
        let cfg = LbConfig {
            budget,
            hysteresis_pct: hysteresis,
            ..LbConfig::default()
        };

        for (slow_tenths, deaths, distressed) in rounds {
            let pe_slow: Vec<f64> = slow_tenths[..pes].iter().map(|&t| t as f64 / 10.0).collect();
            // PE 0 stays alive so a migration target always exists.
            let alive: Vec<bool> = (0..pes).map(|p| p == 0 || !deaths[p]).collect();
            let sensors = LbSensors {
                pe_of: &pe_of,
                base_ns: &base,
                pe_slow: &pe_slow,
                alive: &alive,
                affinity: &affinity,
                node_of: &node_of,
                distressed,
            };
            let plan = periodic_plan(&sensors, &cfg);
            prop_assert_eq!(&plan, &periodic_plan(&sensors, &cfg), "plan must be deterministic");
            let Some(plan) = plan else { continue };

            prop_assert!(!plan.moves.is_empty());
            prop_assert!(plan.moves.len() <= budget, "budget exceeded");
            for &(_, dst) in &plan.moves {
                prop_assert!(alive[dst], "plan targets dead PE {}", dst);
            }

            // Replay the plan under its own cost model: the projected
            // makespans must be exactly what the plan claims, and the
            // move must beat staying put by the hysteresis margin.
            let cost = |c: usize, p: usize| (base[c] as f64 * pe_slow[p]).round() as u64;
            let mut load = vec![0u64; pes];
            for c in 0..n {
                load[pe_of[c]] += cost(c, pe_of[c]);
            }
            let before = load.iter().copied().max().unwrap_or(0);
            prop_assert_eq!(before, plan.max_before_ns);
            for &(c, dst) in &plan.moves {
                load[pe_of[c.0]] -= cost(c.0, pe_of[c.0]);
                load[dst] += cost(c.0, dst);
                pe_of[c.0] = dst; // applied: next round starts from here
            }
            let after = load.iter().copied().max().unwrap_or(0);
            prop_assert_eq!(after, plan.max_after_ns);
            prop_assert!(after < before, "applied plan degraded: {} -> {}", before, after);
            prop_assert!(
                u128::from(after) * 100 <= u128::from(before) * u128::from(100 - hysteresis.min(100)),
                "hysteresis bar missed: {} -> {} at {}%",
                before,
                after,
                hysteresis
            );
        }
    }
}
