//! Property tests for the greedy load balancer: a rebalance pass never
//! predicts a worse makespan than the placement it started from.

use proptest::prelude::*;

use gaat_rt::lb::greedy_rebalance;
use gaat_rt::machine::{Chare, Ctx, Machine};
use gaat_rt::msg::Envelope;
use gaat_rt::MachineConfig;
use gaat_sim::SimDuration;

struct Dummy;
impl Chare for Dummy {
    fn receive(&mut self, _ctx: &mut Ctx<'_>, _env: Envelope) {}
}

proptest! {
    /// `max_after_ns <= max_before_ns` for arbitrary loads and initial
    /// placements — the never-degrade guard discards LPT plans that
    /// would raise the makespan.
    #[test]
    fn rebalance_never_degrades(
        pes in 1usize..6,
        loads in prop::collection::vec((0usize..6, 0u64..20_000), 0..24),
    ) {
        let mut m = Machine::new(MachineConfig::validation(1, pes));
        let mut chares = vec![];
        for &(pe, load_us) in &loads {
            let c = m.create_chare(pe % pes, Box::new(Dummy));
            m.set_load_for_test(c, SimDuration::from_us(load_us));
            chares.push(c);
        }
        let report = greedy_rebalance(&mut m, &chares);
        prop_assert!(
            report.max_after_ns <= report.max_before_ns,
            "rebalance degraded: {} -> {}",
            report.max_before_ns,
            report.max_after_ns
        );
        // The report's "after" must describe the placement actually in
        // effect: recompute per-PE load from the machine.
        let mut actual = vec![0u64; pes];
        for &c in &chares {
            actual[m.pe_of(c)] += m.load_of(c).as_ns();
        }
        let actual_max = actual.into_iter().max().unwrap_or(0);
        prop_assert_eq!(actual_max, report.max_after_ns);
    }
}
