//! Property-based tests for the device model: FIFO stream semantics,
//! throughput conservation under processor sharing, and graph dependency
//! correctness on random DAGs.

use proptest::prelude::*;

use gaat_gpu::{
    CompletionTag, Device, DeviceId, GpuTimingModel, GraphBuilder, KernelSpec, NodeIndex, Op,
};
use gaat_sim::{SimDuration, SimTime};

/// Drive a device until idle, returning (tag, completion time) in firing
/// order.
fn drain(d: &mut Device) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    loop {
        let wake = d.advance(now);
        for t in d.drain_completions() {
            out.push((t.0, now.as_ns()));
        }
        match wake {
            Some(w) => now = w,
            None => return out,
        }
    }
}

proptest! {
    /// Ops of one stream complete in enqueue order; every tag fires once.
    #[test]
    fn stream_fifo_order(works in prop::collection::vec(1u64..50, 1..30)) {
        let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
        let s = d.create_stream(0);
        for (i, &w) in works.iter().enumerate() {
            d.enqueue(
                s,
                Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(w)))
                    .with_tag(CompletionTag(i as u64)),
            );
        }
        let fired = drain(&mut d);
        prop_assert_eq!(fired.len(), works.len());
        for (i, &(tag, _)) in fired.iter().enumerate() {
            prop_assert_eq!(tag, i as u64);
        }
        // serialized: completion time of last = sum(work + dispatch)
        let total: u64 = works
            .iter()
            .map(|w| w * 1000 + d.timing.kernel_dispatch.as_ns())
            .sum();
        prop_assert_eq!(fired.last().expect("nonempty").1, total);
    }

    /// Processor sharing conserves throughput: with everything submitted
    /// at t=0 in one priority class and enough slots, the last completion
    /// lands exactly at the sum of all work.
    #[test]
    fn processor_sharing_conserves_total_work(
        works in prop::collection::vec(1u64..100, 1..20)
    ) {
        let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
        for &w in &works {
            let s = d.create_stream(0);
            d.enqueue(s, Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(w))));
        }
        let mut now = SimTime::ZERO;
        while let Some(w) = d.advance(now) {
            now = w;
        }
        let total: u64 = works
            .iter()
            .map(|w| w * 1000 + d.timing.kernel_dispatch.as_ns())
            .sum();
        // Rounding of shared-progress wakeups may add < 1ns per completion.
        let end = now.as_ns();
        prop_assert!(
            end >= total && end <= total + works.len() as u64,
            "end {end} vs total {total}"
        );
    }

    /// Random DAGs execute all nodes, complete exactly once, and take at
    /// least the critical-path time and at most the serialized time.
    #[test]
    fn graph_respects_dependencies(
        works in prop::collection::vec(1u64..50, 1..25),
        edges in prop::collection::vec((any::<u16>(), any::<u16>()), 0..60),
    ) {
        let n = works.len();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            let (a, b) = ((a as usize) % n, (b as usize) % n);
            if a < b && !deps[b].contains(&a) {
                deps[b].push(a);
            }
        }
        let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
        let s = d.create_stream(0);
        let mut b = GraphBuilder::new();
        for (i, &w) in works.iter().enumerate() {
            let dd: Vec<NodeIndex> = deps[i].iter().map(|&x| NodeIndex(x)).collect();
            b.kernel(KernelSpec::phantom("n", SimDuration::from_us(w)), 0, &dd);
        }
        let g = d.register_graph(b.build());
        d.enqueue(s, Op::graph(g).with_tag(CompletionTag(99)));
        let fired = drain(&mut d);
        prop_assert_eq!(fired.len(), 1);
        let end = fired[0].1;

        let nd = d.timing.graph_node_dispatch.as_ns();
        let node_ns: Vec<u64> = works.iter().map(|w| w * 1000 + nd).collect();
        // critical path via longest path in DAG (deps are all lower-index)
        let mut dist = vec![0u64; n];
        for i in 0..n {
            let base = deps[i].iter().map(|&p| dist[p]).max().unwrap_or(0);
            dist[i] = base + node_ns[i];
        }
        let critical = dist.iter().copied().max().unwrap_or(0);
        let serial: u64 = node_ns.iter().sum();
        prop_assert!(end >= critical, "end {end} < critical path {critical}");
        prop_assert!(
            end <= serial + n as u64,
            "end {end} > serialized bound {serial}"
        );
        prop_assert_eq!(d.stats().graph_nodes, n as u64);
    }

    /// A high-priority kernel submitted while low-priority work runs never
    /// finishes later than it would on an idle device plus one nanosecond
    /// of rounding (strict priority preemption).
    #[test]
    fn priority_latency_is_isolation(
        lo_work in 10u64..1000,
        hi_work in 1u64..100,
        delay in 0u64..500,
    ) {
        let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
        let lo = d.create_stream(0);
        let hi = d.create_stream(3);
        d.enqueue(lo, Op::kernel(KernelSpec::phantom("lo", SimDuration::from_us(lo_work))));
        d.advance(SimTime::ZERO);
        let submit = SimTime::from_ns(delay * 1000);
        d.enqueue(
            hi,
            Op::kernel(KernelSpec::phantom("hi", SimDuration::from_us(hi_work)))
                .with_tag(CompletionTag(1)),
        );
        let mut now = submit;
        let mut hi_done = None;
        loop {
            let wake = d.advance(now);
            for t in d.drain_completions() {
                if t.0 == 1 {
                    hi_done = Some(now);
                }
            }
            match wake {
                Some(w) => now = w,
                None => break,
            }
        }
        let hi_done = hi_done.expect("high-priority kernel finished");
        let ideal = submit + SimDuration::from_us(hi_work) + d.timing.kernel_dispatch;
        prop_assert!(
            hi_done.as_ns() <= ideal.as_ns() + 1,
            "hi finished {hi_done} vs ideal {ideal}"
        );
    }
}
