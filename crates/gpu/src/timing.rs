//! Calibration constants for the simulated GPU, defaulted to a Summit-like
//! NVIDIA V100 as used in the paper's evaluation.
//!
//! The absolute values matter less than the *ratios* between them — kernel
//! launch overhead vs. kernel work is what drives the fusion and graph
//! results (paper Figs. 8 and 9); DMA bandwidth vs. network bandwidth
//! drives the host-staging vs. GPU-aware trade-off (Fig. 7).

use gaat_sim::SimDuration;

/// Timing model of one GPU and its host link.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuTimingModel {
    /// Effective HBM bandwidth in bytes/second (V100: ~900 GB/s).
    pub mem_bw: f64,
    /// Device-side dispatch latency added to each kernel launched from a
    /// stream (queue processing, grid setup).
    pub kernel_dispatch: SimDuration,
    /// Minimum kernel execution time (even an empty kernel occupies the
    /// device briefly).
    pub kernel_min: SimDuration,
    /// CPU-side cost of launching one kernel or memcpy (cudaLaunchKernel /
    /// cudaMemcpyAsync call overhead) — charged to the calling PE.
    pub cpu_launch: SimDuration,
    /// CPU-side cost of lightweight stream operations (event record/wait,
    /// callbacks/markers).
    pub cpu_light: SimDuration,
    /// CPU-side cost of launching a whole captured graph.
    pub graph_launch_cpu: SimDuration,
    /// Additional CPU-side graph launch cost per node of the graph (the
    /// driver still walks the topology on submit).
    pub graph_launch_cpu_per_node: SimDuration,
    /// CPU-side cost of updating one node's parameters in a captured
    /// graph (cudaGraphExecKernelNodeSetParams).
    pub graph_node_update_cpu: SimDuration,
    /// Device-side dispatch latency per node when executed from a graph
    /// (much smaller than `kernel_dispatch`: dependencies are pre-resolved).
    pub graph_node_dispatch: SimDuration,
    /// Host<->device DMA bandwidth in bytes/second (NVLink on Summit:
    /// ~45 GB/s effective per direction).
    pub dma_bw: f64,
    /// Per-operation DMA latency (driver + engine setup).
    pub dma_latency: SimDuration,
    /// Maximum kernels resident per priority class on the compute engine.
    pub compute_slots: usize,
    /// Device memory capacity in bytes (V100 on Summit: 16 GB HBM2).
    pub mem_capacity: u64,
}

impl Default for GpuTimingModel {
    fn default() -> Self {
        GpuTimingModel {
            mem_bw: 900.0e9,
            kernel_dispatch: SimDuration::from_ns(2_500),
            kernel_min: SimDuration::from_ns(1_500),
            cpu_launch: SimDuration::from_ns(4_500),
            cpu_light: SimDuration::from_ns(500),
            graph_launch_cpu: SimDuration::from_ns(8_000),
            graph_launch_cpu_per_node: SimDuration::from_ns(450),
            graph_node_update_cpu: SimDuration::from_ns(1_800),
            graph_node_dispatch: SimDuration::from_ns(800),
            dma_bw: 45.0e9,
            dma_latency: SimDuration::from_ns(9_000),
            compute_slots: 32,
            mem_capacity: 16 << 30,
        }
    }
}

impl GpuTimingModel {
    /// Dedicated-device execution time of a memory-bound kernel that moves
    /// `bytes` of HBM traffic.
    pub fn membound_work(&self, bytes: u64) -> SimDuration {
        let ns = bytes as f64 / self.mem_bw * 1e9;
        SimDuration::from_ns(ns.round() as u64).max(self.kernel_min)
    }

    /// Transfer time of a DMA copy of `bytes` (excluding queueing).
    pub fn dma_time(&self, bytes: u64) -> SimDuration {
        let ns = bytes as f64 / self.dma_bw * 1e9;
        self.dma_latency + SimDuration::from_ns(ns.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membound_work_scales_linearly() {
        let t = GpuTimingModel::default();
        let ten_mb = t.membound_work(10 << 20);
        let twenty_mb = t.membound_work(20 << 20);
        // 10 MiB at 900 GB/s ≈ 11.65 us
        assert!((11_000..12_500).contains(&ten_mb.as_ns()), "{ten_mb}");
        assert!(twenty_mb.as_ns() >= 2 * ten_mb.as_ns() - 2);
    }

    #[test]
    fn membound_work_has_floor() {
        let t = GpuTimingModel::default();
        assert_eq!(t.membound_work(8), t.kernel_min);
    }

    #[test]
    fn dma_time_includes_latency() {
        let t = GpuTimingModel::default();
        assert_eq!(t.dma_time(0), t.dma_latency);
        let nine_mb = t.dma_time(9 << 20);
        // 9 MiB / 45 GB/s ≈ 210 us, plus 9 us latency
        assert!((200_000..240_000).contains(&nine_mb.as_ns()), "{nine_mb}");
    }
}
