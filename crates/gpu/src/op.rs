//! Operations that can be enqueued on a simulated GPU stream.

use std::fmt;
use std::sync::Arc;

use gaat_sim::SimDuration;

use crate::memory::{BufRange, MemoryPool};

/// Opaque completion token routed back to the embedder when the operation
/// carrying it finishes. The task runtime maps tags to callbacks — this is
/// the mechanism behind HAPI-style asynchronous completion detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompletionTag(pub u64);

/// Handle to a stream of a particular device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Handle to a CUDA-event-like synchronization object of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CudaEventId(pub u32);

/// Handle to a captured executable graph of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u32);

/// Functional side effect of a kernel, applied to device memory at the
/// kernel's completion instant. `None` in phantom (timing-only) mode.
pub type KernelFunc = Arc<dyn Fn(&mut MemoryPool) + Send + Sync>;

/// Description of a kernel launch: a name for tracing, the
/// dedicated-device execution time, and an optional functional effect.
#[derive(Clone)]
pub struct KernelSpec {
    /// Short identifier used in traces and stats (e.g. `"update"`).
    pub name: &'static str,
    /// Execution time if the kernel had the whole device to itself; the
    /// compute engine stretches this under processor sharing.
    pub work: SimDuration,
    /// Optional functional effect on memory.
    pub func: Option<KernelFunc>,
}

impl fmt::Debug for KernelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelSpec")
            .field("name", &self.name)
            .field("work", &self.work)
            .field("func", &self.func.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl KernelSpec {
    /// Timing-only kernel.
    pub fn phantom(name: &'static str, work: SimDuration) -> Self {
        KernelSpec {
            name,
            work,
            func: None,
        }
    }

    /// Kernel with a functional effect.
    pub fn with_func(
        name: &'static str,
        work: SimDuration,
        func: impl Fn(&mut MemoryPool) + Send + Sync + 'static,
    ) -> Self {
        KernelSpec {
            name,
            work,
            func: Some(Arc::new(func)),
        }
    }
}

/// What an enqueued operation does.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// Compute kernel.
    Kernel(KernelSpec),
    /// Device-to-host DMA copy.
    MemcpyD2H {
        /// Source range in device memory.
        src: BufRange,
        /// Destination range in pinned host memory.
        dst: BufRange,
    },
    /// Host-to-device DMA copy.
    MemcpyH2D {
        /// Source range in pinned host memory.
        src: BufRange,
        /// Destination range in device memory.
        dst: BufRange,
    },
    /// Record a CUDA event: completes instantly when reached at the head of
    /// the stream, releasing any `WaitEvent` on it.
    EventRecord(CudaEventId),
    /// Block the stream until the given event has been recorded.
    WaitEvent(CudaEventId),
    /// Zero-duration marker; used with a tag for HAPI-style "notify me when
    /// the stream reaches this point".
    Marker,
    /// Launch a captured graph; the stream resumes when the whole graph
    /// instance has executed.
    GraphLaunch(GraphId),
}

/// An operation plus its optional completion tag.
#[derive(Debug, Clone)]
pub struct Op {
    /// The operation.
    pub kind: OpKind,
    /// If set, reported to the embedder when the operation completes.
    pub tag: Option<CompletionTag>,
}

impl Op {
    /// Wrap an [`OpKind`] without a completion tag.
    pub fn new(kind: OpKind) -> Self {
        Op { kind, tag: None }
    }

    /// Kernel launch.
    pub fn kernel(spec: KernelSpec) -> Self {
        Op::new(OpKind::Kernel(spec))
    }

    /// Device-to-host copy.
    pub fn d2h(src: BufRange, dst: BufRange) -> Self {
        Op::new(OpKind::MemcpyD2H { src, dst })
    }

    /// Host-to-device copy.
    pub fn h2d(src: BufRange, dst: BufRange) -> Self {
        Op::new(OpKind::MemcpyH2D { src, dst })
    }

    /// Event record.
    pub fn record(ev: CudaEventId) -> Self {
        Op::new(OpKind::EventRecord(ev))
    }

    /// Event wait.
    pub fn wait(ev: CudaEventId) -> Self {
        Op::new(OpKind::WaitEvent(ev))
    }

    /// Completion marker.
    pub fn marker() -> Self {
        Op::new(OpKind::Marker)
    }

    /// Graph launch.
    pub fn graph(g: GraphId) -> Self {
        Op::new(OpKind::GraphLaunch(g))
    }

    /// Attach a completion tag.
    pub fn with_tag(mut self, tag: CompletionTag) -> Self {
        self.tag = Some(tag);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let op = Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(3)))
            .with_tag(CompletionTag(7));
        assert_eq!(op.tag, Some(CompletionTag(7)));
        match op.kind {
            OpKind::Kernel(spec) => {
                assert_eq!(spec.name, "k");
                assert_eq!(spec.work.as_ns(), 3_000);
                assert!(spec.func.is_none());
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn kernel_func_runs_on_pool() {
        use crate::memory::Space;
        let mut mem = MemoryPool::new();
        let b = mem.alloc_real(Space::Device, 4);
        let spec = KernelSpec::with_func("fill", SimDuration::from_us(1), move |m| {
            for x in m.get_mut(b).as_mut_slice().expect("real") {
                *x = 2.0;
            }
        });
        (spec.func.expect("func"))(&mut mem);
        assert!(mem
            .get(b)
            .as_slice()
            .expect("real")
            .iter()
            .all(|&x| x == 2.0));
    }

    #[test]
    fn debug_impl_hides_closure() {
        let spec = KernelSpec::with_func("k", SimDuration::ZERO, |_| {});
        let s = format!("{spec:?}");
        assert!(s.contains("<fn>"));
    }
}
