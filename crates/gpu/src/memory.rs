//! Device and pinned-host memory for a simulated GPU.
//!
//! Every buffer is either **real** (`Vec<f64>` actually allocated and
//! mutated by functional kernel effects — used in validation mode on small
//! grids) or **phantom** (only a length — used at scale, where a 3072³ grid
//! would never fit in host RAM). The two modes charge identical simulated
//! time; only the data movement differs.

/// Which address space a buffer lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Space {
    /// GPU HBM.
    Device,
    /// Pinned host memory reachable by DMA engines and the NIC.
    Host,
}

/// Handle to a buffer in a device's [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferId(pub u32);

/// Storage behind a buffer: real data or just a size.
#[derive(Debug, Clone)]
enum Storage {
    Real(Vec<f64>),
    Phantom(usize),
}

/// One allocation (device or pinned host).
#[derive(Debug, Clone)]
pub struct Buffer {
    space: Space,
    storage: Storage,
}

impl Buffer {
    /// Number of `f64` elements.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Real(v) => v.len(),
            Storage::Phantom(n) => *n,
        }
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * 8
    }

    /// Address space.
    pub fn space(&self) -> Space {
        self.space
    }

    /// True when the buffer holds real data.
    pub fn is_real(&self) -> bool {
        matches!(self.storage, Storage::Real(_))
    }

    /// Read-only view of real data; `None` for phantom buffers.
    pub fn as_slice(&self) -> Option<&[f64]> {
        match &self.storage {
            Storage::Real(v) => Some(v),
            Storage::Phantom(_) => None,
        }
    }

    /// Mutable view of real data; `None` for phantom buffers.
    pub fn as_mut_slice(&mut self) -> Option<&mut [f64]> {
        match &mut self.storage {
            Storage::Real(v) => Some(v),
            Storage::Phantom(_) => None,
        }
    }
}

/// A contiguous range of elements within a buffer, the unit all copy and
/// communication operations work on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufRange {
    /// Which buffer.
    pub buf: BufferId,
    /// Starting element.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
}

impl BufRange {
    /// Range covering `len` elements of `buf` starting at `offset`.
    pub fn new(buf: BufferId, offset: usize, len: usize) -> Self {
        BufRange { buf, offset, len }
    }

    /// Range covering an entire buffer of `len` elements.
    pub fn whole(buf: BufferId, len: usize) -> Self {
        BufRange {
            buf,
            offset: 0,
            len,
        }
    }

    /// Size of the range in bytes.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * 8
    }
}

/// All allocations belonging to one device (GPU HBM plus the pinned host
/// region used for staging with that GPU).
#[derive(Debug, Clone, Default)]
pub struct MemoryPool {
    bufs: Vec<Buffer>,
}

impl MemoryPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a real, zero-initialized buffer of `len` elements.
    pub fn alloc_real(&mut self, space: Space, len: usize) -> BufferId {
        self.push(Buffer {
            space,
            storage: Storage::Real(vec![0.0; len]),
        })
    }

    /// Allocate a phantom buffer of `len` elements (time-accounting only).
    pub fn alloc_phantom(&mut self, space: Space, len: usize) -> BufferId {
        self.push(Buffer {
            space,
            storage: Storage::Phantom(len),
        })
    }

    /// Allocate real or phantom depending on `real`.
    pub fn alloc(&mut self, space: Space, len: usize, real: bool) -> BufferId {
        if real {
            self.alloc_real(space, len)
        } else {
            self.alloc_phantom(space, len)
        }
    }

    fn push(&mut self, b: Buffer) -> BufferId {
        let id = BufferId(self.bufs.len() as u32);
        self.bufs.push(b);
        id
    }

    /// Shared access to a buffer.
    pub fn get(&self, id: BufferId) -> &Buffer {
        &self.bufs[id.0 as usize]
    }

    /// Mutable access to a buffer.
    pub fn get_mut(&mut self, id: BufferId) -> &mut Buffer {
        &mut self.bufs[id.0 as usize]
    }

    /// Number of allocations.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// True when no allocations exist.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Total allocated bytes (real + phantom).
    pub fn total_bytes(&self) -> u64 {
        self.bufs.iter().map(|b| b.bytes()).sum()
    }

    /// Allocated bytes in one address space.
    pub fn bytes_in(&self, space: Space) -> u64 {
        self.bufs
            .iter()
            .filter(|b| b.space() == space)
            .map(|b| b.bytes())
            .sum()
    }

    /// Copy elements between ranges (possibly of different buffers or the
    /// same buffer with non-overlapping ranges). Phantom endpoints make the
    /// copy a timing-only no-op.
    ///
    /// # Panics
    /// Panics if the ranges have different lengths or exceed buffer bounds
    /// on real buffers.
    pub fn copy(&mut self, src: BufRange, dst: BufRange) {
        assert_eq!(src.len, dst.len, "copy length mismatch");
        if src.len == 0 {
            return;
        }
        if !(self.get(src.buf).is_real() && self.get(dst.buf).is_real()) {
            return;
        }
        if src.buf == dst.buf {
            assert!(
                src.offset + src.len <= dst.offset || dst.offset + dst.len <= src.offset,
                "overlapping same-buffer copy"
            );
            let buf = self.get_mut(src.buf).as_mut_slice().expect("real");
            buf.copy_within(src.offset..src.offset + src.len, dst.offset);
        } else {
            // Split borrows via raw indices into the Vec.
            let (a, b) = (src.buf.0 as usize, dst.buf.0 as usize);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let (first, second) = self.bufs.split_at_mut(hi);
            let (src_slice, dst_slice) = if a < b {
                (
                    first[lo].as_mut_slice().expect("real") as &[f64],
                    second[0].as_mut_slice().expect("real"),
                )
            } else {
                (
                    second[0].as_mut_slice().expect("real") as &[f64],
                    first[lo].as_mut_slice().expect("real"),
                )
            };
            dst_slice[dst.offset..dst.offset + dst.len]
                .copy_from_slice(&src_slice[src.offset..src.offset + src.len]);
        }
    }

    /// Read a range out into an owned vector (`None` if the buffer is
    /// phantom). Used by the communication layer to carry real payloads.
    pub fn read(&self, range: BufRange) -> Option<Vec<f64>> {
        self.get(range.buf)
            .as_slice()
            .map(|s| s[range.offset..range.offset + range.len].to_vec())
    }

    /// Write a payload into a range; a phantom buffer ignores the data.
    pub fn write(&mut self, range: BufRange, data: &[f64]) {
        assert_eq!(range.len, data.len(), "write length mismatch");
        if let Some(s) = self.get_mut(range.buf).as_mut_slice() {
            s[range.offset..range.offset + range.len].copy_from_slice(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_sizes() {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, 100);
        let b = m.alloc_phantom(Space::Host, 50);
        assert_eq!(m.get(a).len(), 100);
        assert_eq!(m.get(a).bytes(), 800);
        assert!(m.get(a).is_real());
        assert_eq!(m.get(a).space(), Space::Device);
        assert!(!m.get(b).is_real());
        assert_eq!(m.get(b).space(), Space::Host);
        assert_eq!(m.total_bytes(), 1200);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn real_buffers_zero_initialized() {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, 8);
        assert!(m.get(a).as_slice().expect("real").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn copy_between_buffers() {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, 8);
        let b = m.alloc_real(Space::Host, 8);
        m.get_mut(a).as_mut_slice().expect("real")[2] = 7.5;
        m.copy(BufRange::new(a, 2, 3), BufRange::new(b, 1, 3));
        assert_eq!(m.get(b).as_slice().expect("real")[1], 7.5);
        // reverse direction (higher index -> lower index buffer)
        m.get_mut(b).as_mut_slice().expect("real")[4] = -1.0;
        m.copy(BufRange::new(b, 4, 1), BufRange::new(a, 0, 1));
        assert_eq!(m.get(a).as_slice().expect("real")[0], -1.0);
    }

    #[test]
    fn copy_within_one_buffer() {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, 10);
        {
            let s = m.get_mut(a).as_mut_slice().expect("real");
            s[0] = 1.0;
            s[1] = 2.0;
        }
        m.copy(BufRange::new(a, 0, 2), BufRange::new(a, 5, 2));
        let s = m.get(a).as_slice().expect("real");
        assert_eq!((s[5], s[6]), (1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_copy_panics() {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, 10);
        m.copy(BufRange::new(a, 0, 5), BufRange::new(a, 3, 5));
    }

    #[test]
    fn phantom_copy_is_noop() {
        let mut m = MemoryPool::new();
        let a = m.alloc_phantom(Space::Device, 8);
        let b = m.alloc_real(Space::Host, 8);
        m.copy(BufRange::new(a, 0, 4), BufRange::new(b, 0, 4));
        assert!(m.get(b).as_slice().expect("real").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, 6);
        m.write(BufRange::new(a, 2, 3), &[1.0, 2.0, 3.0]);
        assert_eq!(
            m.read(BufRange::new(a, 2, 3)).expect("real"),
            vec![1.0, 2.0, 3.0]
        );
        let p = m.alloc_phantom(Space::Device, 6);
        assert!(m.read(BufRange::new(p, 0, 6)).is_none());
        m.write(BufRange::new(p, 0, 1), &[9.0]); // ignored, no panic
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_copy_panics() {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, 10);
        let b = m.alloc_real(Space::Device, 10);
        m.copy(BufRange::new(a, 0, 3), BufRange::new(b, 0, 4));
    }
}
