//! The simulated GPU device: streams with in-order (FIFO) semantics,
//! CUDA-event dependencies across streams, graph instances, and the
//! compute/DMA engines they feed.
//!
//! The device is a passive state machine. [`Device::advance`] is
//! idempotent: it accounts engine progress up to `now`, applies functional
//! effects of finished operations, issues newly-ready stream ops, and
//! returns the next instant at which something will complete. The
//! host-side pump in [`crate::host`] wires this into the event loop.

use std::collections::{HashMap, VecDeque};

use gaat_sim::{FaultPlan, SimDuration, SimTime, Tracer};

use crate::engines::{ComputeEngine, DmaEngine, JobId, PRIORITY_CLASSES};
use crate::graph::{GraphInstance, GraphNodeKind, GraphSpec};
use crate::memory::{BufRange, MemoryPool};
use crate::op::{CompletionTag, CudaEventId, GraphId, KernelFunc, Op, OpKind, StreamId};
use crate::timing::GpuTimingModel;

/// Global identifier of a device (index into the machine's device table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

#[derive(Debug, Clone)]
struct Stream {
    class: usize,
    queue: VecDeque<Op>,
    /// An op from this stream is executing on an engine (or as a graph
    /// instance); FIFO order forbids issuing the next one until it ends.
    in_flight: bool,
}

#[derive(Clone)]
enum Effect {
    None,
    Kernel(KernelFunc),
    Copy { src: BufRange, dst: BufRange },
}

/// Trace metadata carried by every engine job.
#[derive(Debug, Clone, Copy)]
struct JobMeta {
    /// Engine lane: 0 = compute, 1 = D2H, 2 = H2D.
    lane: u32,
    category: &'static str,
    label: &'static str,
    submitted: SimTime,
}

#[derive(Clone)]
enum JobOrigin {
    StreamOp {
        stream: usize,
        effect: Effect,
        tag: Option<CompletionTag>,
        meta: JobMeta,
    },
    GraphNode {
        instance: usize,
        node: usize,
        meta: JobMeta,
    },
}

/// Aggregate statistics of one device.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    /// Kernels launched via streams (not graph nodes).
    pub kernels: u64,
    /// Kernel-equivalents executed as graph nodes.
    pub graph_nodes: u64,
    /// Whole-graph launches.
    pub graph_launches: u64,
    /// DMA transfers (both directions, stream + graph).
    pub memcpys: u64,
    /// Bytes moved by DMA.
    pub memcpy_bytes: u64,
    /// Completion tags fired.
    pub completions: u64,
}

/// One simulated GPU.
#[derive(Clone)]
pub struct Device {
    /// This device's identifier.
    pub id: DeviceId,
    /// Timing model in effect.
    pub timing: GpuTimingModel,
    /// Device + pinned host memory.
    pub mem: MemoryPool,
    streams: Vec<Stream>,
    events: Vec<Option<SimTime>>,
    graphs: Vec<GraphSpec>,
    instances: Vec<Option<GraphInstance>>,
    compute: ComputeEngine,
    d2h: DmaEngine,
    h2d: DmaEngine,
    jobs: HashMap<JobId, JobOrigin>,
    next_job: JobId,
    completions: Vec<CompletionTag>,
    /// Earliest wakeup currently scheduled by the pump (dedup only).
    pub(crate) scheduled_wakeup: Option<SimTime>,
    /// Fault plan consulted for straggler windows (inert by default).
    faults: FaultPlan,
    stats: DeviceStats,
    /// Span recorder (disabled unless the embedder enables it); lanes:
    /// 0 = compute engine, 1 = D2H engine, 2 = H2D engine.
    pub tracer: Tracer,
}

impl Device {
    /// A device with the given timing model and no streams.
    pub fn new(id: DeviceId, timing: GpuTimingModel) -> Self {
        let slots = timing.compute_slots;
        Device {
            id,
            timing,
            mem: MemoryPool::new(),
            streams: Vec::new(),
            events: Vec::new(),
            graphs: Vec::new(),
            instances: Vec::new(),
            compute: ComputeEngine::new(slots),
            d2h: DmaEngine::new(),
            h2d: DmaEngine::new(),
            jobs: HashMap::new(),
            next_job: 0,
            completions: Vec::new(),
            scheduled_wakeup: None,
            faults: FaultPlan::none(),
            stats: DeviceStats::default(),
            tracer: Tracer::new(),
        }
    }

    /// Create a stream with priority class `class` (0 = lowest,
    /// `PRIORITY_CLASSES - 1` = highest).
    pub fn create_stream(&mut self, class: usize) -> StreamId {
        assert!(class < PRIORITY_CLASSES, "priority class out of range");
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(Stream {
            class,
            queue: VecDeque::new(),
            in_flight: false,
        });
        id
    }

    /// Create an (unrecorded) event.
    pub fn create_event(&mut self) -> CudaEventId {
        let id = CudaEventId(self.events.len() as u32);
        self.events.push(None);
        id
    }

    /// Clear an event back to the unrecorded state so it can be reused in
    /// the next iteration.
    pub fn reset_event(&mut self, ev: CudaEventId) {
        self.events[ev.0 as usize] = None;
    }

    /// Instant at which an event was recorded, if it has been.
    pub fn event_time(&self, ev: CudaEventId) -> Option<SimTime> {
        self.events[ev.0 as usize]
    }

    /// Register a captured graph for later launching.
    pub fn register_graph(&mut self, spec: GraphSpec) -> GraphId {
        let id = GraphId(self.graphs.len() as u32);
        self.graphs.push(spec);
        id
    }

    /// Number of nodes in a registered graph.
    pub fn graph_len(&self, g: GraphId) -> usize {
        self.graphs[g.0 as usize].len()
    }

    /// Replace the kernel of one graph node (the analogue of
    /// `cudaGraphExecKernelNodeSetParams`). The structural DAG is fixed;
    /// only the node's payload changes. The *CPU cost* of the update is
    /// charged by the caller (see `GpuTimingModel::graph_node_update_cpu`)
    /// — the paper's §III-D2 point is precisely that paying it for every
    /// node every iteration voids the benefit of graphs.
    ///
    /// # Panics
    /// Panics if the node is not a kernel node or the graph is currently
    /// executing.
    pub fn update_graph_kernel(&mut self, g: GraphId, node: usize, spec: crate::op::KernelSpec) {
        assert!(
            !self
                .instances
                .iter()
                .flatten()
                .any(|i| i.graph == g.0 as usize),
            "cannot update a graph while an instance is executing"
        );
        match &mut self.graphs[g.0 as usize].nodes[node].kind {
            GraphNodeKind::Kernel(k) => *k = spec,
            other => panic!("node {node} is not a kernel node: {other:?}"),
        }
    }

    /// Append an operation to a stream. Call [`crate::host::pump`] (or
    /// [`Device::advance`]) afterwards to let it issue.
    pub fn enqueue(&mut self, stream: StreamId, op: Op) {
        self.streams[stream.0 as usize].queue.push_back(op);
    }

    /// True if the stream has no queued or in-flight work.
    pub fn stream_idle(&self, stream: StreamId) -> bool {
        let s = &self.streams[stream.0 as usize];
        !s.in_flight && s.queue.is_empty()
    }

    /// Device statistics so far.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Bytes of device memory (HBM) currently allocated.
    pub fn device_bytes(&self) -> u64 {
        self.mem.bytes_in(crate::memory::Space::Device)
    }

    /// Panic if allocations exceed the modeled HBM capacity — the check a
    /// real `cudaMalloc` failure would force. Drivers call this after
    /// setting up an application.
    pub fn assert_memory_fits(&self) {
        let used = self.device_bytes();
        assert!(
            used <= self.timing.mem_capacity,
            "device {:?} over capacity: {:.2} GB allocated of {:.2} GB",
            self.id,
            used as f64 / 1e9,
            self.timing.mem_capacity as f64 / 1e9,
        );
    }

    /// Compute-engine utilization over `[start, now]`.
    pub fn compute_utilization(&self, start: SimTime, now: SimTime) -> f64 {
        self.compute.busy.utilization(start, now)
    }

    /// Take all completion tags fired since the last drain.
    pub fn drain_completions(&mut self) -> Vec<CompletionTag> {
        std::mem::take(&mut self.completions)
    }

    /// Install the fault plan consulted for straggler windows. Work
    /// submitted while a window covers this device takes `slowdown`
    /// times as long.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Straggler dilation for work submitted at `now`. Sampled once at
    /// submission: a job that spans a window boundary keeps the factor
    /// it was admitted with.
    fn dilate(&self, now: SimTime, d: SimDuration) -> SimDuration {
        if self.faults.stragglers.is_empty() {
            return d;
        }
        let f = self.faults.straggler_slowdown(self.id.0, now);
        if f == 1.0 {
            d
        } else {
            d.mul_f64(f)
        }
    }

    /// Abandon every piece of queued and in-flight work: stream queues,
    /// engine jobs, graph instances, undrained completion tags, and
    /// recorded events. Used by the runtime's failure recovery, where
    /// work issued before a rollback must neither complete nor apply its
    /// functional effects afterwards.
    pub fn purge(&mut self, now: SimTime) {
        for s in &mut self.streams {
            s.queue.clear();
            s.in_flight = false;
        }
        for e in &mut self.events {
            *e = None;
        }
        for i in &mut self.instances {
            *i = None;
        }
        self.jobs.clear();
        self.completions.clear();
        self.compute.clear(now);
        self.d2h.clear(now);
        self.h2d.clear(now);
        self.scheduled_wakeup = None;
    }

    /// Account progress up to `now`, apply effects, issue ready work, and
    /// return the next completion instant if any work is in flight.
    pub fn advance(&mut self, now: SimTime) -> Option<SimTime> {
        let mut done: Vec<JobId> = Vec::new();
        self.compute.advance(now, &mut done);
        self.d2h.advance(now, &mut done);
        self.h2d.advance(now, &mut done);
        for job in done {
            self.finish_job(job, now);
        }
        self.pump_streams(now);
        self.next_wakeup()
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        [
            self.compute.next_completion(),
            self.d2h.next_completion(),
            self.h2d.next_completion(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn fire_tag(&mut self, tag: Option<CompletionTag>) {
        if let Some(t) = tag {
            self.completions.push(t);
            self.stats.completions += 1;
        }
    }

    fn finish_job(&mut self, job: JobId, now: SimTime) {
        let origin = self.jobs.remove(&job).expect("unknown job finished");
        match origin {
            JobOrigin::StreamOp {
                stream,
                effect,
                tag,
                meta,
            } => {
                self.tracer
                    .record(meta.lane, meta.category, meta.label, meta.submitted, now);
                self.apply_effect(effect);
                self.streams[stream].in_flight = false;
                self.fire_tag(tag);
            }
            JobOrigin::GraphNode {
                instance,
                node,
                meta,
            } => {
                self.tracer
                    .record(meta.lane, meta.category, meta.label, meta.submitted, now);
                // Apply the node's effect, then release its children.
                let spec_idx = self.instances[instance].as_ref().expect("live").graph;
                let effect = Self::node_effect(&self.graphs[spec_idx].nodes[node].kind);
                self.apply_effect(effect);
                let children: Vec<usize> = self.graphs[spec_idx].children[node].clone();
                let mut ready = Vec::new();
                {
                    let inst = self.instances[instance].as_mut().expect("live");
                    for c in children {
                        inst.indegree[c] -= 1;
                        if inst.indegree[c] == 0 {
                            ready.push(c);
                        }
                    }
                    inst.remaining -= 1;
                }
                for c in ready {
                    self.dispatch_node(instance, c, now);
                }
                let finished = {
                    let inst = self.instances[instance].as_ref().expect("live");
                    inst.remaining == 0
                };
                if finished {
                    let inst = self.instances[instance].take().expect("live");
                    self.streams[inst.stream].in_flight = false;
                    self.fire_tag(inst.tag);
                }
            }
        }
    }

    fn apply_effect(&mut self, effect: Effect) {
        match effect {
            Effect::None => {}
            Effect::Kernel(f) => f(&mut self.mem),
            Effect::Copy { src, dst } => self.mem.copy(src, dst),
        }
    }

    fn node_effect(kind: &GraphNodeKind) -> Effect {
        match kind {
            GraphNodeKind::Kernel(spec) => match &spec.func {
                Some(f) => Effect::Kernel(f.clone()),
                None => Effect::None,
            },
            GraphNodeKind::MemcpyD2H { src, dst } | GraphNodeKind::MemcpyH2D { src, dst } => {
                Effect::Copy {
                    src: *src,
                    dst: *dst,
                }
            }
        }
    }

    fn alloc_job(&mut self, origin: JobOrigin) -> JobId {
        let id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(id, origin);
        id
    }

    fn dispatch_node(&mut self, instance: usize, node: usize, now: SimTime) {
        let spec_idx = self.instances[instance].as_ref().expect("live").graph;
        let (kind, class) = {
            let n = &self.graphs[spec_idx].nodes[node];
            (n.kind.clone(), n.class)
        };
        let meta = |lane, label| JobMeta {
            lane,
            category: "graph",
            label,
            submitted: now,
        };
        match kind {
            GraphNodeKind::Kernel(spec) => {
                let job = self.alloc_job(JobOrigin::GraphNode {
                    instance,
                    node,
                    meta: meta(0, spec.name),
                });
                self.stats.graph_nodes += 1;
                let dur = self.dilate(now, spec.work + self.timing.graph_node_dispatch);
                self.compute.submit(now, job, class, dur);
            }
            GraphNodeKind::MemcpyD2H { src, .. } => {
                let job = self.alloc_job(JobOrigin::GraphNode {
                    instance,
                    node,
                    meta: meta(1, "d2h"),
                });
                self.stats.memcpys += 1;
                self.stats.memcpy_bytes += src.bytes();
                let dur = self.dilate(now, self.timing.dma_time(src.bytes()));
                self.d2h.submit(now, job, class, dur, src.bytes());
            }
            GraphNodeKind::MemcpyH2D { src, .. } => {
                let job = self.alloc_job(JobOrigin::GraphNode {
                    instance,
                    node,
                    meta: meta(2, "h2d"),
                });
                self.stats.memcpys += 1;
                self.stats.memcpy_bytes += src.bytes();
                let dur = self.dilate(now, self.timing.dma_time(src.bytes()));
                self.h2d.submit(now, job, class, dur, src.bytes());
            }
        }
    }

    /// Issue every stream op that is ready; loops to a fixpoint because an
    /// `EventRecord` in one stream can unblock a `WaitEvent` in another.
    fn pump_streams(&mut self, now: SimTime) {
        loop {
            let mut progressed = false;
            for s in 0..self.streams.len() {
                progressed |= self.pump_one(s, now);
            }
            if !progressed {
                break;
            }
        }
    }

    /// Issue ready ops from stream `s`; returns whether anything advanced.
    fn pump_one(&mut self, s: usize, now: SimTime) -> bool {
        let mut progressed = false;
        while !self.streams[s].in_flight {
            let Some(op) = self.streams[s].queue.front() else {
                break;
            };
            match &op.kind {
                OpKind::Marker => {
                    let op = self.streams[s].queue.pop_front().expect("front");
                    self.fire_tag(op.tag);
                    progressed = true;
                }
                OpKind::EventRecord(ev) => {
                    let ev = *ev;
                    let op = self.streams[s].queue.pop_front().expect("front");
                    self.events[ev.0 as usize] = Some(now);
                    self.fire_tag(op.tag);
                    progressed = true;
                }
                OpKind::WaitEvent(ev) => {
                    if self.events[ev.0 as usize].is_some() {
                        let op = self.streams[s].queue.pop_front().expect("front");
                        self.fire_tag(op.tag);
                        progressed = true;
                    } else {
                        break;
                    }
                }
                OpKind::Kernel(_) => {
                    let op = self.streams[s].queue.pop_front().expect("front");
                    let OpKind::Kernel(spec) = op.kind else {
                        unreachable!()
                    };
                    let class = self.streams[s].class;
                    let effect = match &spec.func {
                        Some(f) => Effect::Kernel(f.clone()),
                        None => Effect::None,
                    };
                    let job = self.alloc_job(JobOrigin::StreamOp {
                        stream: s,
                        effect,
                        tag: op.tag,
                        meta: JobMeta {
                            lane: 0,
                            category: "kernel",
                            label: spec.name,
                            submitted: now,
                        },
                    });
                    self.stats.kernels += 1;
                    let dur = self.dilate(now, spec.work + self.timing.kernel_dispatch);
                    self.compute.submit(now, job, class, dur);
                    self.streams[s].in_flight = true;
                    progressed = true;
                }
                OpKind::MemcpyD2H { .. } | OpKind::MemcpyH2D { .. } => {
                    let op = self.streams[s].queue.pop_front().expect("front");
                    let class = self.streams[s].class;
                    let (src, dst, to_host) = match op.kind {
                        OpKind::MemcpyD2H { src, dst } => (src, dst, true),
                        OpKind::MemcpyH2D { src, dst } => (src, dst, false),
                        _ => unreachable!(),
                    };
                    let job = self.alloc_job(JobOrigin::StreamOp {
                        stream: s,
                        effect: Effect::Copy { src, dst },
                        tag: op.tag,
                        meta: JobMeta {
                            lane: if to_host { 1 } else { 2 },
                            category: "memcpy",
                            label: if to_host { "d2h" } else { "h2d" },
                            submitted: now,
                        },
                    });
                    self.stats.memcpys += 1;
                    self.stats.memcpy_bytes += src.bytes();
                    let dur = self.dilate(now, self.timing.dma_time(src.bytes()));
                    let engine = if to_host {
                        &mut self.d2h
                    } else {
                        &mut self.h2d
                    };
                    engine.submit(now, job, class, dur, src.bytes());
                    self.streams[s].in_flight = true;
                    progressed = true;
                }
                OpKind::GraphLaunch(g) => {
                    let g = *g;
                    let op = self.streams[s].queue.pop_front().expect("front");
                    self.stats.graph_launches += 1;
                    let spec = &self.graphs[g.0 as usize];
                    if spec.is_empty() {
                        self.fire_tag(op.tag);
                        progressed = true;
                        continue;
                    }
                    let indegree: Vec<usize> = spec.nodes.iter().map(|n| n.deps.len()).collect();
                    let remaining = spec.len();
                    let roots = spec.roots();
                    let inst_idx = self.instances.iter().position(Option::is_none);
                    let inst = GraphInstance {
                        graph: g.0 as usize,
                        stream: s,
                        indegree,
                        remaining,
                        tag: op.tag,
                    };
                    let inst_idx = match inst_idx {
                        Some(i) => {
                            self.instances[i] = Some(inst);
                            i
                        }
                        None => {
                            self.instances.push(Some(inst));
                            self.instances.len() - 1
                        }
                    };
                    for r in roots {
                        self.dispatch_node(inst_idx, r, now);
                    }
                    self.streams[s].in_flight = true;
                    progressed = true;
                }
            }
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::memory::Space;
    use crate::op::KernelSpec;
    use gaat_sim::SimDuration;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn dev() -> Device {
        Device::new(DeviceId(0), GpuTimingModel::default())
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    /// Drive the device to completion with a manual loop; returns the time
    /// at which the last op finished and all tags fired so far.
    fn drain(d: &mut Device, mut now: SimTime) -> (SimTime, Vec<CompletionTag>) {
        let mut tags = Vec::new();
        loop {
            let wake = d.advance(now);
            tags.extend(d.drain_completions());
            match wake {
                Some(w) => now = w,
                None => return (now, tags),
            }
        }
    }

    #[test]
    fn kernel_completes_after_work_plus_dispatch() {
        let mut d = dev();
        let s = d.create_stream(0);
        d.enqueue(
            s,
            Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(10)))
                .with_tag(CompletionTag(1)),
        );
        let (end, tags) = drain(&mut d, t(0));
        assert_eq!(tags, vec![CompletionTag(1)]);
        let expect = SimDuration::from_us(10) + d.timing.kernel_dispatch;
        assert_eq!(end.as_ns(), expect.as_ns());
        assert_eq!(d.stats().kernels, 1);
    }

    #[test]
    fn stream_is_fifo() {
        let mut d = dev();
        let s = d.create_stream(0);
        for i in 0..3 {
            d.enqueue(
                s,
                Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(5)))
                    .with_tag(CompletionTag(i)),
            );
        }
        let (end, tags) = drain(&mut d, t(0));
        assert_eq!(
            tags,
            vec![CompletionTag(0), CompletionTag(1), CompletionTag(2)]
        );
        // serialized: 3 * (5us + dispatch)
        let per = SimDuration::from_us(5) + d.timing.kernel_dispatch;
        assert_eq!(end.as_ns(), 3 * per.as_ns());
    }

    #[test]
    fn independent_streams_share_compute() {
        let mut d = dev();
        let a = d.create_stream(0);
        let b = d.create_stream(0);
        d.enqueue(
            a,
            Op::kernel(KernelSpec::phantom("a", SimDuration::from_us(10))),
        );
        d.enqueue(
            b,
            Op::kernel(KernelSpec::phantom("b", SimDuration::from_us(10))),
        );
        let (end, _) = drain(&mut d, t(0));
        // processor sharing: both complete at 2*(10us+dispatch) — i.e. they
        // ran concurrently, not 2x serialized with an idle device.
        let per = SimDuration::from_us(10) + d.timing.kernel_dispatch;
        assert_eq!(end.as_ns(), 2 * per.as_ns());
    }

    #[test]
    fn marker_fires_in_order() {
        let mut d = dev();
        let s = d.create_stream(0);
        d.enqueue(
            s,
            Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(1))),
        );
        d.enqueue(s, Op::marker().with_tag(CompletionTag(9)));
        // Marker must not fire before the kernel completes.
        d.advance(t(0));
        assert!(d.drain_completions().is_empty());
        let (_, tags) = drain(&mut d, t(0));
        assert_eq!(tags, vec![CompletionTag(9)]);
    }

    #[test]
    fn event_synchronizes_streams() {
        let mut d = dev();
        let a = d.create_stream(0);
        let b = d.create_stream(0);
        let ev = d.create_event();
        // stream b waits for event recorded after a's kernel
        d.enqueue(b, Op::wait(ev));
        d.enqueue(
            b,
            Op::kernel(KernelSpec::phantom("b", SimDuration::from_us(1)))
                .with_tag(CompletionTag(2)),
        );
        d.enqueue(
            a,
            Op::kernel(KernelSpec::phantom("a", SimDuration::from_us(5))),
        );
        d.enqueue(a, Op::record(ev).with_tag(CompletionTag(1)));
        let (_, tags) = drain(&mut d, t(0));
        assert_eq!(tags, vec![CompletionTag(1), CompletionTag(2)]);
        let a_done = SimDuration::from_us(5) + d.timing.kernel_dispatch;
        assert_eq!(d.event_time(ev), Some(SimTime::ZERO + a_done));
    }

    #[test]
    fn event_reset_blocks_again() {
        let mut d = dev();
        let s = d.create_stream(0);
        let ev = d.create_event();
        d.enqueue(s, Op::record(ev));
        d.advance(t(0));
        assert!(d.event_time(ev).is_some());
        d.reset_event(ev);
        d.enqueue(s, Op::wait(ev));
        d.enqueue(s, Op::marker().with_tag(CompletionTag(5)));
        d.advance(t(10));
        assert!(
            d.drain_completions().is_empty(),
            "wait must block after reset"
        );
        d.enqueue(s, Op::record(ev)); // queued behind the wait: deadlock in
                                      // real CUDA too; record from another stream instead
        let s2 = d.create_stream(0);
        d.enqueue(s2, Op::record(ev));
        d.advance(t(20));
        assert_eq!(d.drain_completions(), vec![CompletionTag(5)]);
    }

    #[test]
    fn memcpy_uses_separate_engines() {
        let mut d = dev();
        let dbuf = d.mem.alloc_real(Space::Device, 1024);
        let hbuf = d.mem.alloc_real(Space::Host, 1024);
        let s1 = d.create_stream(0);
        let s2 = d.create_stream(0);
        d.enqueue(
            s1,
            Op::d2h(BufRange::whole(dbuf, 1024), BufRange::whole(hbuf, 1024)),
        );
        d.enqueue(
            s2,
            Op::h2d(BufRange::whole(hbuf, 1024), BufRange::whole(dbuf, 1024)),
        );
        let (end, _) = drain(&mut d, t(0));
        // both directions in parallel: total time = one dma_time
        assert_eq!(end, SimTime::ZERO + d.timing.dma_time(8 * 1024));
        assert_eq!(d.stats().memcpys, 2);
        assert_eq!(d.stats().memcpy_bytes, 2 * 8 * 1024);
    }

    #[test]
    fn memcpy_moves_real_data() {
        let mut d = dev();
        let dbuf = d.mem.alloc_real(Space::Device, 4);
        let hbuf = d.mem.alloc_real(Space::Host, 4);
        d.mem.write(BufRange::whole(dbuf, 4), &[1.0, 2.0, 3.0, 4.0]);
        let s = d.create_stream(0);
        d.enqueue(
            s,
            Op::d2h(BufRange::whole(dbuf, 4), BufRange::whole(hbuf, 4)),
        );
        drain(&mut d, t(0));
        assert_eq!(
            d.mem.read(BufRange::whole(hbuf, 4)).expect("real"),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn kernel_func_applies_at_completion() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        let mut d = dev();
        let s = d.create_stream(0);
        d.enqueue(
            s,
            Op::kernel(KernelSpec {
                name: "count",
                work: SimDuration::from_us(1),
                func: Some(Arc::new(move |_m| {
                    c2.fetch_add(1, Ordering::Relaxed);
                })),
            }),
        );
        d.advance(t(0));
        assert_eq!(counter.load(Ordering::Relaxed), 0, "not before completion");
        drain(&mut d, t(0));
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn high_priority_stream_preempts() {
        let mut d = dev();
        let lo = d.create_stream(0);
        let hi = d.create_stream(3);
        d.enqueue(
            lo,
            Op::kernel(KernelSpec::phantom("big", SimDuration::from_us(100)))
                .with_tag(CompletionTag(1)),
        );
        d.advance(t(0));
        // at t=10us, enqueue a tiny high-priority kernel
        d.enqueue(
            hi,
            Op::kernel(KernelSpec::phantom("small", SimDuration::from_us(2)))
                .with_tag(CompletionTag(2)),
        );
        let (_, tags) = drain(&mut d, t(10_000));
        // The small kernel finishes first despite arriving later.
        assert_eq!(tags, vec![CompletionTag(2), CompletionTag(1)]);
    }

    #[test]
    fn graph_runs_dag_with_dependencies() {
        let mut d = dev();
        let s = d.create_stream(0);
        let mut b = GraphBuilder::new();
        let k = |n| KernelSpec::phantom(n, SimDuration::from_us(10));
        let a = b.kernel(k("a"), 0, &[]);
        let c = b.kernel(k("c"), 0, &[]);
        let join = b.kernel(k("join"), 0, &[a, c]);
        let _ = join;
        let g = d.register_graph(b.build());
        d.enqueue(s, Op::graph(g).with_tag(CompletionTag(7)));
        let (end, tags) = drain(&mut d, t(0));
        assert_eq!(tags, vec![CompletionTag(7)]);
        // a and c run concurrently (PS: 2x10us each stretched to 20us+2*nd),
        // then join runs alone (10us + nd).
        let nd = d.timing.graph_node_dispatch;
        let expect = (SimDuration::from_us(10) + nd) * 2 + (SimDuration::from_us(10) + nd);
        assert_eq!(end.as_ns(), expect.as_ns());
        assert_eq!(d.stats().graph_launches, 1);
        assert_eq!(d.stats().graph_nodes, 3);
    }

    #[test]
    fn graph_blocks_its_stream() {
        let mut d = dev();
        let s = d.create_stream(0);
        let mut b = GraphBuilder::new();
        b.kernel(KernelSpec::phantom("n", SimDuration::from_us(5)), 0, &[]);
        let g = d.register_graph(b.build());
        d.enqueue(s, Op::graph(g));
        d.enqueue(s, Op::marker().with_tag(CompletionTag(1)));
        d.advance(t(0));
        assert!(d.drain_completions().is_empty());
        let (_, tags) = drain(&mut d, t(0));
        assert_eq!(tags, vec![CompletionTag(1)]);
    }

    #[test]
    fn empty_graph_completes_immediately() {
        let mut d = dev();
        let s = d.create_stream(0);
        let g = d.register_graph(GraphBuilder::new().build());
        d.enqueue(s, Op::graph(g).with_tag(CompletionTag(3)));
        d.advance(t(0));
        assert_eq!(d.drain_completions(), vec![CompletionTag(3)]);
    }

    #[test]
    fn graph_node_dispatch_cheaper_than_stream_launch() {
        // The same chain of 10 kernels: graph execution must be faster
        // than stream execution because per-node dispatch is cheaper.
        let chain = 10usize;
        let work = SimDuration::from_us(2);

        let mut d1 = dev();
        let s = d1.create_stream(0);
        for _ in 0..chain {
            d1.enqueue(s, Op::kernel(KernelSpec::phantom("k", work)));
        }
        let (stream_end, _) = drain(&mut d1, t(0));

        let mut d2 = dev();
        let s2 = d2.create_stream(0);
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for _ in 0..chain {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.kernel(KernelSpec::phantom("k", work), 0, &deps));
        }
        let g = d2.register_graph(b.build());
        d2.enqueue(s2, Op::graph(g));
        let (graph_end, _) = drain(&mut d2, t(0));

        assert!(
            graph_end < stream_end,
            "graph {graph_end} should beat stream {stream_end}"
        );
        let saved = d1.timing.kernel_dispatch - d1.timing.graph_node_dispatch;
        assert_eq!(
            stream_end.as_ns() - graph_end.as_ns(),
            saved.as_ns() * chain as u64
        );
    }

    #[test]
    fn instance_slots_are_reused() {
        let mut d = dev();
        let s = d.create_stream(0);
        let mut b = GraphBuilder::new();
        b.kernel(KernelSpec::phantom("n", SimDuration::from_us(1)), 0, &[]);
        let g = d.register_graph(b.build());
        for _ in 0..5 {
            d.enqueue(s, Op::graph(g));
        }
        drain(&mut d, t(0));
        // all instances finished and freed; at most one slot was ever used
        assert!(d.instances.len() <= 1);
        assert_eq!(d.stats().graph_launches, 5);
    }
}
