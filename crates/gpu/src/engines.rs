//! Execution engines inside a device: a processor-sharing compute engine
//! with strict priority classes, and FIFO DMA engines (one per copy
//! direction, like the dual copy engines of a real GPU).
//!
//! Engines know nothing about streams or graphs; they execute opaque jobs
//! identified by `u64` and report completions. The device translates
//! between stream/graph state and engine jobs.

use std::collections::VecDeque;

use gaat_sim::{BusyTracker, SimDuration, SimTime};

/// Number of distinct stream priority classes (0 = lowest).
pub const PRIORITY_CLASSES: usize = 4;

/// Opaque engine job identifier (assigned by the device).
pub type JobId = u64;

#[derive(Debug, Clone)]
struct ComputeJob {
    id: JobId,
    class: usize,
    /// Remaining dedicated-device work, in (fractional) nanoseconds.
    remaining: f64,
}

/// Processor-sharing compute engine with strict priority classes.
///
/// Jobs of the highest priority class present share the device's
/// throughput equally (each progresses at rate `1/n`); lower classes are
/// paused entirely while a higher class is resident. At most
/// `slots` jobs per class are resident; the rest wait in per-class FIFO
/// queues. This approximates how CUDA high-priority streams displace
/// thread blocks of low-priority streams.
#[derive(Debug, Clone)]
pub struct ComputeEngine {
    slots: usize,
    running: Vec<ComputeJob>,
    queued: [VecDeque<ComputeJob>; PRIORITY_CLASSES],
    last: SimTime,
    /// Completions found by the most recent `advance`.
    pub busy: BusyTracker,
    completed_total: u64,
}

impl ComputeEngine {
    /// Engine with `slots` resident jobs per priority class.
    pub fn new(slots: usize) -> Self {
        ComputeEngine {
            slots: slots.max(1),
            running: Vec::new(),
            queued: Default::default(),
            last: SimTime::ZERO,
            busy: BusyTracker::new(),
            completed_total: 0,
        }
    }

    /// Total jobs completed over the engine's lifetime.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Number of currently resident jobs.
    pub fn resident(&self) -> usize {
        self.running.len()
    }

    /// Drop every running and queued job without completing it (failure
    /// recovery). Lifetime counters survive; utilization stops accruing.
    pub fn clear(&mut self, now: SimTime) {
        self.running.clear();
        for q in &mut self.queued {
            q.clear();
        }
        self.last = now;
        self.busy.set_busy(now, false);
    }

    fn top_class(&self) -> Option<usize> {
        self.running.iter().map(|j| j.class).max()
    }

    fn running_in_class(&self, class: usize) -> usize {
        self.running.iter().filter(|j| j.class == class).count()
    }

    /// Account for progress since the last call; must be invoked (via the
    /// device) before any mutation and at every predicted completion time.
    /// Appends finished job ids to `done`.
    pub fn advance(&mut self, now: SimTime, done: &mut Vec<JobId>) {
        let elapsed = now.since(self.last).as_ns() as f64;
        self.last = now;
        if elapsed > 0.0 {
            if let Some(top) = self.top_class() {
                let n = self.running_in_class(top) as f64;
                let share = elapsed / n;
                for j in self.running.iter_mut().filter(|j| j.class == top) {
                    j.remaining -= share;
                }
            }
        }
        // Collect completions (remaining within half a nanosecond of zero
        // counts as done — predicted wakeups are rounded up to integer ns).
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining <= 0.5 {
                let j = self.running.swap_remove(i);
                done.push(j.id);
                self.completed_total += 1;
            } else {
                i += 1;
            }
        }
        self.admit();
        self.busy.set_busy(now, !self.running.is_empty());
    }

    fn admit(&mut self) {
        for class in (0..PRIORITY_CLASSES).rev() {
            while self.running_in_class(class) < self.slots {
                match self.queued[class].pop_front() {
                    Some(j) => self.running.push(j),
                    None => break,
                }
            }
        }
    }

    /// Submit a job with `work` of dedicated-device time at priority
    /// `class`. The caller must have advanced the engine to `now` first
    /// (the device wrapper guarantees this).
    pub fn submit(&mut self, now: SimTime, id: JobId, class: usize, work: SimDuration) {
        let class = class.min(PRIORITY_CLASSES - 1);
        let job = ComputeJob {
            id,
            class,
            remaining: work.as_ns().max(1) as f64,
        };
        if self.running_in_class(class) < self.slots {
            self.running.push(job);
        } else {
            self.queued[class].push_back(job);
        }
        self.busy.set_busy(now, true);
    }

    /// Predicted time of the next job completion, given no further
    /// submissions.
    pub fn next_completion(&self) -> Option<SimTime> {
        let top = self.top_class()?;
        let n = self.running_in_class(top) as f64;
        let min_remaining = self
            .running
            .iter()
            .filter(|j| j.class == top)
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        let ns = (min_remaining * n).ceil().max(1.0) as u64;
        Some(self.last + SimDuration::from_ns(ns))
    }
}

#[derive(Debug, Clone)]
struct DmaJob {
    id: JobId,
    duration: SimDuration,
}

/// FIFO DMA engine with priority-ordered admission: one transfer at a
/// time, back-to-back, higher classes first among the waiting.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    current: Option<(JobId, SimTime)>,
    queued: [VecDeque<DmaJob>; PRIORITY_CLASSES],
    /// Utilization tracking.
    pub busy: BusyTracker,
    completed_total: u64,
    bytes_total: u64,
}

impl Default for DmaEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DmaEngine {
    /// Idle engine.
    pub fn new() -> Self {
        DmaEngine {
            current: None,
            queued: Default::default(),
            busy: BusyTracker::new(),
            completed_total: 0,
            bytes_total: 0,
        }
    }

    /// Total transfers completed.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Total bytes accepted for transfer.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Drop the in-flight transfer and every queued one without
    /// completing them (failure recovery). Lifetime counters survive.
    pub fn clear(&mut self, now: SimTime) {
        self.current = None;
        for q in &mut self.queued {
            q.clear();
        }
        self.busy.set_busy(now, false);
    }

    fn pop_next(&mut self) -> Option<DmaJob> {
        for class in (0..PRIORITY_CLASSES).rev() {
            if let Some(j) = self.queued[class].pop_front() {
                return Some(j);
            }
        }
        None
    }

    /// Account for all completions up to `now`; transfers chain
    /// back-to-back at their exact finish times even if `advance` is called
    /// late. Appends finished job ids to `done`.
    pub fn advance(&mut self, now: SimTime, done: &mut Vec<JobId>) {
        while let Some((id, finish)) = self.current {
            if finish > now {
                break;
            }
            done.push(id);
            self.completed_total += 1;
            self.current = self.pop_next().map(|j| (j.id, finish + j.duration));
        }
        self.busy.set_busy(now, self.current.is_some());
    }

    /// Submit a transfer of the given duration and byte count at priority
    /// `class`. Caller advances first.
    pub fn submit(
        &mut self,
        now: SimTime,
        id: JobId,
        class: usize,
        duration: SimDuration,
        bytes: u64,
    ) {
        let class = class.min(PRIORITY_CLASSES - 1);
        self.bytes_total += bytes;
        if self.current.is_none() {
            self.current = Some((id, now + duration));
        } else {
            self.queued[class].push_back(DmaJob { id, duration });
        }
        self.busy.set_busy(now, true);
    }

    /// Finish time of the in-flight transfer, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.current.map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_ns(ns)
    }

    #[test]
    fn single_kernel_runs_at_full_rate() {
        let mut e = ComputeEngine::new(4);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(1000));
        assert_eq!(e.next_completion(), Some(t(1000)));
        e.advance(t(1000), &mut done);
        assert_eq!(done, vec![1]);
    }

    #[test]
    fn two_equal_kernels_share_throughput() {
        let mut e = ComputeEngine::new(4);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(1000));
        e.submit(t(0), 2, 0, d(1000));
        // each progresses at rate 1/2 → both done at 2000
        assert_eq!(e.next_completion(), Some(t(2000)));
        e.advance(t(2000), &mut done);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn late_arrival_shares_remaining_work() {
        let mut e = ComputeEngine::new(4);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(1000));
        // at t=500, job 1 has 500 left; job 2 arrives with 500
        e.advance(t(500), &mut done);
        e.submit(t(500), 2, 0, d(500));
        // both have 500 remaining at rate 1/2 → complete at 1500
        assert_eq!(e.next_completion(), Some(t(1500)));
        e.advance(t(1500), &mut done);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn high_priority_pauses_low() {
        let mut e = ComputeEngine::new(4);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(1000)); // low priority
        e.advance(t(200), &mut done); // 800 left
        e.submit(t(200), 2, 3, d(300)); // high priority
                                        // job 2 runs alone: completes at 500
        assert_eq!(e.next_completion(), Some(t(500)));
        e.advance(t(500), &mut done);
        assert_eq!(done, vec![2]);
        // job 1 resumes with 800 left → completes at 1300
        assert_eq!(e.next_completion(), Some(t(1300)));
        e.advance(t(1300), &mut done);
        assert_eq!(done, vec![2, 1]);
    }

    #[test]
    fn slots_queue_excess_jobs() {
        let mut e = ComputeEngine::new(2);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        for id in 0..4 {
            e.submit(t(0), id, 0, d(1000));
        }
        assert_eq!(e.resident(), 2);
        // two resident at rate 1/2: first pair completes at 2000
        e.advance(t(2000), &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(e.resident(), 2);
        e.advance(t(4000), &mut done);
        assert_eq!(done.len(), 4);
        assert_eq!(e.completed_total(), 4);
    }

    #[test]
    fn spurious_advance_is_harmless() {
        let mut e = ComputeEngine::new(4);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(1000));
        for now in [100, 250, 600, 999] {
            e.advance(t(now), &mut done);
            assert!(done.is_empty());
        }
        e.advance(t(1000), &mut done);
        assert_eq!(done, vec![1]);
    }

    #[test]
    fn compute_busy_tracker() {
        let mut e = ComputeEngine::new(4);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(1000));
        e.advance(t(1000), &mut done);
        e.advance(t(2000), &mut done);
        assert!((e.busy.utilization(t(0), t(2000)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dma_fifo_back_to_back() {
        let mut e = DmaEngine::new();
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(100), 64);
        e.submit(t(0), 2, 0, d(100), 64);
        assert_eq!(e.next_completion(), Some(t(100)));
        // advance late: both still finish at exact chained times
        e.advance(t(500), &mut done);
        assert_eq!(done, vec![1, 2]);
        assert_eq!(e.bytes_total(), 128);
    }

    #[test]
    fn dma_priority_jumps_queue() {
        let mut e = DmaEngine::new();
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(100), 0);
        e.submit(t(0), 2, 0, d(100), 0);
        e.submit(t(0), 3, 3, d(100), 0); // high priority, queued behind current only
        e.advance(t(300), &mut done);
        assert_eq!(done, vec![1, 3, 2]);
    }

    #[test]
    fn dma_idle_gap_starts_at_submit_time() {
        let mut e = DmaEngine::new();
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        e.submit(t(0), 1, 0, d(100), 0);
        e.advance(t(100), &mut done);
        assert_eq!(done, vec![1]);
        done.clear();
        e.advance(t(1000), &mut done);
        e.submit(t(1000), 2, 0, d(50), 0);
        assert_eq!(e.next_completion(), Some(t(1050)));
    }

    #[test]
    fn processor_sharing_conserves_throughput() {
        // 10 jobs of 1000 ns each on one engine: total completion at
        // 10_000 ns regardless of sharing pattern.
        let mut e = ComputeEngine::new(16);
        let mut done = Vec::new();
        e.advance(t(0), &mut done);
        for id in 0..10 {
            e.submit(t(0), id, 0, d(1000));
        }
        assert_eq!(e.next_completion(), Some(t(10_000)));
        e.advance(t(10_000), &mut done);
        assert_eq!(done.len(), 10);
    }
}
