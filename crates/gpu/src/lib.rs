//! # gaat-gpu — simulated GPU device
//!
//! A discrete-event model of a CUDA-capable GPU with the semantics the
//! paper's techniques rely on:
//!
//! - **Streams** with in-order execution and priority classes; work in
//!   different streams runs concurrently.
//! - **Events** for cross-stream dependencies (`record` / `wait`).
//! - A **compute engine** that processor-shares device throughput within
//!   the highest resident priority class (high-priority packing kernels
//!   displace low-priority update kernels, as in §III-A of the paper).
//! - Two **DMA engines** (device-to-host and host-to-device) that
//!   serialize transfers per direction and overlap with compute.
//! - **Captured graphs** (the CUDA Graphs analogue) whose nodes pay a
//!   reduced dispatch cost and whose launch costs one CPU call.
//! - **Markers** with completion tags — the primitive underneath
//!   HAPI-style asynchronous completion detection.
//!
//! Buffers can hold real `f64` data (validation mode) or be phantom sizes
//! (scale mode); timing is identical either way.
//!
//! # Example: two streams synchronized by an event
//!
//! ```
//! use gaat_gpu::{Device, DeviceId, GpuTimingModel, KernelSpec, Op};
//! use gaat_sim::{SimDuration, SimTime};
//!
//! let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
//! let producer = d.create_stream(0);
//! let consumer = d.create_stream(0);
//! let ev = d.create_event();
//!
//! d.enqueue(producer, Op::kernel(KernelSpec::phantom("produce", SimDuration::from_us(10))));
//! d.enqueue(producer, Op::record(ev));
//! d.enqueue(consumer, Op::wait(ev));
//! d.enqueue(consumer, Op::kernel(KernelSpec::phantom("consume", SimDuration::from_us(5))));
//!
//! // Drive the device manually (the runtime normally does this).
//! let mut now = SimTime::ZERO;
//! while let Some(next) = d.advance(now) {
//!     now = next;
//! }
//! // consume ran strictly after produce: 10us + 5us + 2 dispatches
//! let dispatch = d.timing.kernel_dispatch.as_ns();
//! assert_eq!(now.as_ns(), 15_000 + 2 * dispatch);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod engines;
pub mod graph;
pub mod host;
pub mod memory;
pub mod op;
pub mod timing;

pub use device::{Device, DeviceId, DeviceStats};
pub use engines::PRIORITY_CLASSES;
pub use graph::{GraphBuilder, GraphNodeKind, GraphSpec, NodeIndex};
pub use host::{pump, GpuHost};
pub use memory::{BufRange, Buffer, BufferId, MemoryPool, Space};
pub use op::{CompletionTag, CudaEventId, GraphId, KernelFunc, KernelSpec, Op, OpKind, StreamId};
pub use timing::GpuTimingModel;
