//! Wiring a [`Device`] into a discrete-event loop.
//!
//! The embedding world implements [`GpuHost`]; [`pump`] advances a device,
//! routes completion tags to the host, and keeps exactly enough wakeup
//! events scheduled for the device to make progress. `pump` must be called
//! after any direct mutation of a device (enqueue, graph launch, etc.).

use gaat_sim::{Sim, SimTime};

use crate::device::{Device, DeviceId};
use crate::op::CompletionTag;

/// World-side requirements for hosting simulated GPUs.
pub trait GpuHost: Sized + 'static {
    /// Access a device by id.
    fn device_mut(&mut self, id: DeviceId) -> &mut Device;

    /// Called for every completion tag fired by a device. The handler may
    /// enqueue more GPU work (the pump loops until quiescent) and schedule
    /// simulation events.
    fn on_gpu_complete(&mut self, sim: &mut Sim<Self>, dev: DeviceId, tag: CompletionTag);
}

/// Advance the device at the current simulation time, deliver completions,
/// and schedule the next wakeup.
pub fn pump<W: GpuHost>(w: &mut W, sim: &mut Sim<W>, dev: DeviceId) {
    loop {
        let now = sim.now();
        let d = w.device_mut(dev);
        let wake = d.advance(now);
        let completions = d.drain_completions();
        if completions.is_empty() {
            schedule_wakeup(w, sim, dev, wake);
            return;
        }
        for tag in completions {
            w.on_gpu_complete(sim, dev, tag);
        }
        // Completion handlers may have enqueued more work: loop.
    }
}

fn schedule_wakeup<W: GpuHost>(w: &mut W, sim: &mut Sim<W>, dev: DeviceId, wake: Option<SimTime>) {
    let Some(at) = wake else { return };
    let d = w.device_mut(dev);
    // Deduplicate: only schedule if nothing is pending at or before `at`.
    if let Some(sched) = d.scheduled_wakeup {
        if sched <= at && sched >= sim.now() {
            return;
        }
    }
    d.scheduled_wakeup = Some(at);
    sim.at_call1(at, wakeup::<W>, dev.0 as u64);
}

fn wakeup<W: GpuHost>(w: &mut W, sim: &mut Sim<W>, dev: u64) {
    let dev = DeviceId(dev as usize);
    let d = w.device_mut(dev);
    if d.scheduled_wakeup == Some(sim.now()) {
        d.scheduled_wakeup = None;
    }
    pump(w, sim, dev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{KernelSpec, Op};
    use crate::timing::GpuTimingModel;
    use gaat_sim::SimDuration;

    struct World {
        dev: Device,
        fired: Vec<(u64, SimTime)>,
    }

    impl GpuHost for World {
        fn device_mut(&mut self, _id: DeviceId) -> &mut Device {
            &mut self.dev
        }
        fn on_gpu_complete(&mut self, sim: &mut Sim<Self>, _dev: DeviceId, tag: CompletionTag) {
            self.fired.push((tag.0, sim.now()));
        }
    }

    #[test]
    fn pump_drives_device_to_completion() {
        let mut w = World {
            dev: Device::new(DeviceId(0), GpuTimingModel::default()),
            fired: vec![],
        };
        let s = w.dev.create_stream(0);
        for i in 0..3 {
            w.dev.enqueue(
                s,
                Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(4)))
                    .with_tag(CompletionTag(i)),
            );
        }
        let mut sim: Sim<World> = Sim::new();
        sim.soon(|w: &mut World, sim: &mut Sim<World>| pump(w, sim, DeviceId(0)));
        sim.run(&mut w);
        assert_eq!(w.fired.len(), 3);
        let per = SimDuration::from_us(4) + w.dev.timing.kernel_dispatch;
        for (i, (tag, at)) in w.fired.iter().enumerate() {
            assert_eq!(*tag, i as u64);
            assert_eq!(at.as_ns(), per.as_ns() * (i as u64 + 1));
        }
    }

    #[test]
    fn completion_handler_can_chain_work() {
        struct Chain {
            dev: Device,
            stream: crate::op::StreamId,
            hops: u64,
        }
        impl GpuHost for Chain {
            fn device_mut(&mut self, _id: DeviceId) -> &mut Device {
                &mut self.dev
            }
            fn on_gpu_complete(&mut self, _sim: &mut Sim<Self>, _d: DeviceId, tag: CompletionTag) {
                self.hops += 1;
                if tag.0 < 4 {
                    let s = self.stream;
                    self.dev.enqueue(
                        s,
                        Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(1)))
                            .with_tag(CompletionTag(tag.0 + 1)),
                    );
                    // No explicit pump needed: the outer pump loop continues.
                }
            }
        }
        let mut dev = Device::new(DeviceId(0), GpuTimingModel::default());
        let stream = dev.create_stream(0);
        dev.enqueue(
            stream,
            Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(1)))
                .with_tag(CompletionTag(0)),
        );
        let mut w = Chain {
            dev,
            stream,
            hops: 0,
        };
        let mut sim: Sim<Chain> = Sim::new();
        sim.soon(|w: &mut Chain, sim: &mut Sim<Chain>| pump(w, sim, DeviceId(0)));
        sim.run(&mut w);
        assert_eq!(w.hops, 5);
    }

    #[test]
    fn wakeups_are_deduplicated() {
        let mut w = World {
            dev: Device::new(DeviceId(0), GpuTimingModel::default()),
            fired: vec![],
        };
        let s = w.dev.create_stream(0);
        w.dev.enqueue(
            s,
            Op::kernel(KernelSpec::phantom("k", SimDuration::from_ms(1)))
                .with_tag(CompletionTag(0)),
        );
        let mut sim: Sim<World> = Sim::new();
        // Pump many times at t=0; only one wakeup should be scheduled.
        sim.soon(|w: &mut World, sim: &mut Sim<World>| {
            for _ in 0..10 {
                pump(w, sim, DeviceId(0));
            }
        });
        sim.run(&mut w);
        assert_eq!(w.fired.len(), 1);
        // 1 initial event + 1 wakeup = 2 (plus nothing else)
        assert_eq!(sim.events_executed(), 2);
    }
}
