//! Captured executable graphs (the CUDA Graphs analogue).
//!
//! A graph is a DAG of kernel and memcpy nodes with explicit dependencies.
//! Launching a graph costs one (cheaper) CPU launch instead of one per
//! operation, and each node pays a reduced device-side dispatch latency
//! because dependencies were resolved at capture time — exactly the savings
//! the paper exploits in §III-D2.
//!
//! The paper's pointer-swap limitation is reproduced faithfully: node
//! parameters are frozen at capture time, so the Jacobi3D application
//! builds **two** graphs with the in/out buffers exchanged and alternates
//! between them each iteration.

use crate::memory::BufRange;
use crate::op::KernelSpec;

/// A node of a captured graph.
#[derive(Debug, Clone)]
pub enum GraphNodeKind {
    /// Compute kernel.
    Kernel(KernelSpec),
    /// Device-to-host copy.
    MemcpyD2H {
        /// Source range in device memory.
        src: BufRange,
        /// Destination range in pinned host memory.
        dst: BufRange,
    },
    /// Host-to-device copy.
    MemcpyH2D {
        /// Source range in pinned host memory.
        src: BufRange,
        /// Destination range in device memory.
        dst: BufRange,
    },
}

/// Index of a node within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeIndex(pub usize);

#[derive(Debug, Clone)]
pub(crate) struct GraphNode {
    pub kind: GraphNodeKind,
    /// Priority class the node's work runs at.
    pub class: usize,
    pub deps: Vec<usize>,
}

/// An immutable captured graph.
#[derive(Debug, Clone, Default)]
pub struct GraphSpec {
    pub(crate) nodes: Vec<GraphNode>,
    /// children[i] = nodes that depend on i
    pub(crate) children: Vec<Vec<usize>>,
}

impl GraphSpec {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a graph with no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of nodes with no dependencies.
    pub(crate) fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].deps.is_empty())
            .collect()
    }
}

/// Builder used at "capture time".
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<GraphNode>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with dependencies on previously added nodes.
    ///
    /// # Panics
    /// Panics if a dependency references a node not yet added (which also
    /// rules out cycles by construction).
    pub fn add(&mut self, kind: GraphNodeKind, class: usize, deps: &[NodeIndex]) -> NodeIndex {
        let idx = self.nodes.len();
        for d in deps {
            assert!(d.0 < idx, "dependency on not-yet-added node {}", d.0);
        }
        self.nodes.push(GraphNode {
            kind,
            class,
            deps: deps.iter().map(|d| d.0).collect(),
        });
        NodeIndex(idx)
    }

    /// Convenience: add a kernel node.
    pub fn kernel(&mut self, spec: KernelSpec, class: usize, deps: &[NodeIndex]) -> NodeIndex {
        self.add(GraphNodeKind::Kernel(spec), class, deps)
    }

    /// Finish capture.
    pub fn build(self) -> GraphSpec {
        let mut children = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &d in &n.deps {
                children[d].push(i);
            }
        }
        GraphSpec {
            nodes: self.nodes,
            children,
        }
    }
}

/// Execution state of one launched graph instance (device-internal).
#[derive(Debug, Clone)]
pub(crate) struct GraphInstance {
    pub graph: usize,
    /// Stream the launch op came from (resumed at completion).
    pub stream: usize,
    pub indegree: Vec<usize>,
    pub remaining: usize,
    pub tag: Option<crate::op::CompletionTag>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaat_sim::SimDuration;

    fn k(name: &'static str) -> KernelSpec {
        KernelSpec::phantom(name, SimDuration::from_us(1))
    }

    #[test]
    fn builder_records_edges() {
        let mut b = GraphBuilder::new();
        let a = b.kernel(k("a"), 0, &[]);
        let c = b.kernel(k("c"), 0, &[a]);
        let d = b.kernel(k("d"), 0, &[a, c]);
        let g = b.build();
        assert_eq!(g.len(), 3);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.children[a.0], vec![c.0, d.0]);
        assert_eq!(g.nodes[d.0].deps, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "not-yet-added")]
    fn forward_dependency_panics() {
        let mut b = GraphBuilder::new();
        b.kernel(k("a"), 0, &[NodeIndex(3)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert!(g.roots().is_empty());
    }
}
