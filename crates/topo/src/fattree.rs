//! Two-level fat tree (leaf + spine) with static deterministic routing.
//!
//! Nodes attach to leaf switches in blocks of `leaf_radix`; every leaf
//! connects to every spine by one trunk in each direction. Routing is
//! destination-mod-k: a cross-leaf message always climbs to spine
//! `dst % spines`, so a fixed traffic pattern always stresses the same
//! trunks — deterministic and adversarial-pattern-capable, like the
//! static routing tables on real EDR fabrics.

use crate::{LinkDesc, LinkId, LinkKind};

/// Shape and calibration of the inter-node fat tree. Intra-node NVLink
/// and NIC port bandwidths come from `NetParams` so `Flat` and `FatTree`
/// share the same endpoint calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FatTreeParams {
    /// Nodes per leaf switch.
    pub leaf_radix: usize,
    /// Number of spine switches (each leaf has one up/down trunk pair
    /// per spine).
    pub spines: usize,
    /// Bandwidth of one leaf<->spine trunk, bytes/second.
    pub trunk_bw: f64,
    /// Extra latency per switch hop traversed, nanoseconds.
    pub hop_latency_ns: u64,
}

impl Default for FatTreeParams {
    fn default() -> Self {
        // Summit-like: 18 nodes per director-group leaf, 4 uplink
        // planes, EDR 100 Gb/s trunks, ~150 ns per switch ASIC.
        FatTreeParams {
            leaf_radix: 18,
            spines: 4,
            trunk_bw: 24.0e9,
            hop_latency_ns: 150,
        }
    }
}

/// The link graph plus routing tables for one machine.
///
/// Link layout (indices into the flow simulation's link table):
/// - `[0, nodes)`               per-node NVLink (intra-node loopback)
/// - `[nodes, 2*nodes)`         per-node NIC injection (node -> leaf)
/// - `[2*nodes, 3*nodes)`       per-node NIC ejection (leaf -> node)
/// - `3*nodes + 2*(l*spines+s)` trunk up, leaf `l` -> spine `s`
/// - ... `+ 1`                  trunk down, spine `s` -> leaf `l`
#[derive(Debug, Clone)]
pub struct FatTreeGraph {
    nodes: usize,
    params: FatTreeParams,
    links: Vec<LinkDesc>,
    /// Administrative state per link; a down link carries no routes.
    link_up: Vec<bool>,
}

/// Result of a successful route computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Switch hops traversed (for latency accounting).
    pub hops: u32,
    /// True if the primary D-mod-k spine was down and an alternate
    /// spine carried the route.
    pub failover: bool,
}

impl FatTreeGraph {
    pub fn new(nodes: usize, nvlink_bw: f64, nic_bw: f64, params: FatTreeParams) -> Self {
        assert!(nodes > 0, "fat tree needs at least one node");
        assert!(params.leaf_radix > 0 && params.spines > 0 && params.trunk_bw > 0.0);
        let leaves = nodes.div_ceil(params.leaf_radix);
        let mut links = Vec::with_capacity(3 * nodes + 2 * leaves * params.spines);
        for _ in 0..nodes {
            links.push(LinkDesc {
                kind: LinkKind::NvLink,
                bw: nvlink_bw,
            });
        }
        for _ in 0..nodes {
            links.push(LinkDesc {
                kind: LinkKind::NicUp,
                bw: nic_bw,
            });
        }
        for _ in 0..nodes {
            links.push(LinkDesc {
                kind: LinkKind::NicDown,
                bw: nic_bw,
            });
        }
        for _ in 0..leaves {
            for _ in 0..params.spines {
                links.push(LinkDesc {
                    kind: LinkKind::LeafUp,
                    bw: params.trunk_bw,
                });
                links.push(LinkDesc {
                    kind: LinkKind::LeafDown,
                    bw: params.trunk_bw,
                });
            }
        }
        let n = links.len();
        FatTreeGraph {
            nodes,
            params,
            links,
            link_up: vec![true; n],
        }
    }

    pub fn params(&self) -> &FatTreeParams {
        &self.params
    }

    /// Link descriptors in [`LinkId`] order, for seeding a `FlowSim`.
    pub fn links(&self) -> &[LinkDesc] {
        &self.links
    }

    pub fn leaf_of(&self, node: usize) -> usize {
        node / self.params.leaf_radix
    }

    fn trunk_up(&self, leaf: usize, spine: usize) -> LinkId {
        LinkId((3 * self.nodes + 2 * (leaf * self.params.spines + spine)) as u32)
    }

    fn trunk_down(&self, leaf: usize, spine: usize) -> LinkId {
        LinkId((3 * self.nodes + 2 * (leaf * self.params.spines + spine) + 1) as u32)
    }

    /// Mark a link up or down. Down links carry no new routes; the
    /// caller aborts flows already crossing the link (see
    /// `FlowSim::abort_link`).
    pub fn set_link_state(&mut self, link: LinkId, up: bool) {
        self.link_up[link.0 as usize] = up;
    }

    /// Administrative state of a link.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.0 as usize]
    }

    #[inline]
    fn up(&self, l: LinkId) -> bool {
        self.link_up[l.0 as usize]
    }

    /// Write the static route from `src` to `dst` into `out`, skipping
    /// down links where an alternate exists. Cross-leaf traffic prefers
    /// the D-mod-k spine `dst % spines`; if either trunk of that spine
    /// pair is down, the first higher spine (mod `spines`) with both
    /// trunks up carries the route instead — a deterministic scan, so a
    /// given link-state always produces the same failover. Returns
    /// `None` when no path exists (an endpoint NIC or NVLink is down,
    /// or every spine pair between the leaves is broken).
    pub fn try_route(&self, src: usize, dst: usize, out: &mut Vec<LinkId>) -> Option<RouteInfo> {
        debug_assert!(src < self.nodes && dst < self.nodes);
        out.clear();
        if src == dst {
            let l = LinkId(src as u32);
            if !self.up(l) {
                return None;
            }
            out.push(l);
            return Some(RouteInfo {
                hops: 0,
                failover: false,
            });
        }
        let nic_up = LinkId((self.nodes + src) as u32);
        let nic_down = LinkId((2 * self.nodes + dst) as u32);
        if !self.up(nic_up) || !self.up(nic_down) {
            return None;
        }
        out.push(nic_up);
        let (src_leaf, dst_leaf) = (self.leaf_of(src), self.leaf_of(dst));
        let info = if src_leaf == dst_leaf {
            RouteInfo {
                hops: 1, // one leaf switch
                failover: false,
            }
        } else {
            let spines = self.params.spines;
            let primary = dst % spines;
            let mut chosen = None;
            for k in 0..spines {
                let s = (primary + k) % spines;
                if self.up(self.trunk_up(src_leaf, s)) && self.up(self.trunk_down(dst_leaf, s)) {
                    chosen = Some((s, k > 0));
                    break;
                }
            }
            let (spine, failover) = match chosen {
                Some(c) => c,
                None => {
                    out.clear();
                    return None;
                }
            };
            out.push(self.trunk_up(src_leaf, spine));
            out.push(self.trunk_down(dst_leaf, spine));
            RouteInfo {
                hops: 3, // leaf, spine, leaf
                failover,
            }
        };
        out.push(nic_down);
        Some(info)
    }

    /// Write the static route from `src` to `dst` into `out` and return
    /// the number of switch hops traversed (for latency accounting).
    /// Panics if link failures have disconnected the pair; fallible
    /// callers use [`FatTreeGraph::try_route`].
    pub fn route(&self, src: usize, dst: usize, out: &mut Vec<LinkId>) -> u32 {
        self.try_route(src, dst, out)
            .unwrap_or_else(|| panic!("no route from node {src} to node {dst}"))
            .hops
    }

    /// True while every link is administratively up (the state a
    /// [`RouteTable`] is valid for).
    pub fn all_links_up(&self) -> bool {
        self.link_up.iter().all(|&u| u)
    }
}

/// Pre-computed all-links-up routes for every `(src, dst)` pair.
///
/// Built once per machine shape and shared read-only (behind an `Arc`)
/// by every concurrent simulation in a sweep: while no link fault has
/// fired, a fixed-stride table lookup replaces the per-message D-mod-k
/// spine scan of [`FatTreeGraph::try_route`]. The table is byte-for-byte
/// what `try_route` returns on an all-up graph (it is built by replaying
/// `try_route`), so switching between the two paths can never change an
/// outcome — the fabric simply stops consulting the table after the
/// first link fault of a run.
#[derive(Debug)]
pub struct RouteTable {
    nodes: usize,
    /// `nodes * nodes` entries at a fixed stride of 4 links; routes are
    /// 1 (loopback), 2 (same leaf) or 4 (cross-leaf) links long.
    links: Vec<LinkId>,
    /// Per-entry `(route length, switch hops)`.
    meta: Vec<(u8, u8)>,
}

impl RouteTable {
    /// Replay [`FatTreeGraph::try_route`] for every pair. The graph must
    /// still have every link up (freshly built).
    pub fn build(graph: &FatTreeGraph) -> Self {
        assert!(
            graph.all_links_up(),
            "route table must be built before any link fault"
        );
        let n = graph.nodes;
        let mut links = vec![LinkId(0); n * n * 4];
        let mut meta = vec![(0u8, 0u8); n * n];
        let mut buf = Vec::with_capacity(4);
        for src in 0..n {
            for dst in 0..n {
                let info = graph
                    .try_route(src, dst, &mut buf)
                    .expect("all-up graph is fully connected");
                let e = src * n + dst;
                links[e * 4..e * 4 + buf.len()].copy_from_slice(&buf);
                meta[e] = (buf.len() as u8, info.hops as u8);
            }
        }
        RouteTable {
            nodes: n,
            links,
            meta,
        }
    }

    /// Number of nodes the table was built for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The pre-built route and its switch-hop count.
    #[inline]
    pub fn lookup(&self, src: usize, dst: usize) -> (&[LinkId], u32) {
        debug_assert!(src < self.nodes && dst < self.nodes);
        let e = src * self.nodes + dst;
        let (len, hops) = self.meta[e];
        (&self.links[e * 4..e * 4 + len as usize], hops as u32)
    }
}
