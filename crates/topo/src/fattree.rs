//! Two-level fat tree (leaf + spine) with static deterministic routing.
//!
//! Nodes attach to leaf switches in blocks of `leaf_radix`; every leaf
//! connects to every spine by one trunk in each direction. Routing is
//! destination-mod-k: a cross-leaf message always climbs to spine
//! `dst % spines`, so a fixed traffic pattern always stresses the same
//! trunks — deterministic and adversarial-pattern-capable, like the
//! static routing tables on real EDR fabrics.

use crate::{LinkDesc, LinkId, LinkKind};

/// Shape and calibration of the inter-node fat tree. Intra-node NVLink
/// and NIC port bandwidths come from `NetParams` so `Flat` and `FatTree`
/// share the same endpoint calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FatTreeParams {
    /// Nodes per leaf switch.
    pub leaf_radix: usize,
    /// Number of spine switches (each leaf has one up/down trunk pair
    /// per spine).
    pub spines: usize,
    /// Bandwidth of one leaf<->spine trunk, bytes/second.
    pub trunk_bw: f64,
    /// Extra latency per switch hop traversed, nanoseconds.
    pub hop_latency_ns: u64,
}

impl Default for FatTreeParams {
    fn default() -> Self {
        // Summit-like: 18 nodes per director-group leaf, 4 uplink
        // planes, EDR 100 Gb/s trunks, ~150 ns per switch ASIC.
        FatTreeParams {
            leaf_radix: 18,
            spines: 4,
            trunk_bw: 24.0e9,
            hop_latency_ns: 150,
        }
    }
}

/// The link graph plus routing tables for one machine.
///
/// Link layout (indices into the flow simulation's link table):
/// - `[0, nodes)`               per-node NVLink (intra-node loopback)
/// - `[nodes, 2*nodes)`         per-node NIC injection (node -> leaf)
/// - `[2*nodes, 3*nodes)`       per-node NIC ejection (leaf -> node)
/// - `3*nodes + 2*(l*spines+s)` trunk up, leaf `l` -> spine `s`
/// - ... `+ 1`                  trunk down, spine `s` -> leaf `l`
#[derive(Debug)]
pub struct FatTreeGraph {
    nodes: usize,
    params: FatTreeParams,
    links: Vec<LinkDesc>,
}

impl FatTreeGraph {
    pub fn new(nodes: usize, nvlink_bw: f64, nic_bw: f64, params: FatTreeParams) -> Self {
        assert!(nodes > 0, "fat tree needs at least one node");
        assert!(params.leaf_radix > 0 && params.spines > 0 && params.trunk_bw > 0.0);
        let leaves = nodes.div_ceil(params.leaf_radix);
        let mut links = Vec::with_capacity(3 * nodes + 2 * leaves * params.spines);
        for _ in 0..nodes {
            links.push(LinkDesc {
                kind: LinkKind::NvLink,
                bw: nvlink_bw,
            });
        }
        for _ in 0..nodes {
            links.push(LinkDesc {
                kind: LinkKind::NicUp,
                bw: nic_bw,
            });
        }
        for _ in 0..nodes {
            links.push(LinkDesc {
                kind: LinkKind::NicDown,
                bw: nic_bw,
            });
        }
        for _ in 0..leaves {
            for _ in 0..params.spines {
                links.push(LinkDesc {
                    kind: LinkKind::LeafUp,
                    bw: params.trunk_bw,
                });
                links.push(LinkDesc {
                    kind: LinkKind::LeafDown,
                    bw: params.trunk_bw,
                });
            }
        }
        FatTreeGraph {
            nodes,
            params,
            links,
        }
    }

    pub fn params(&self) -> &FatTreeParams {
        &self.params
    }

    /// Link descriptors in [`LinkId`] order, for seeding a `FlowSim`.
    pub fn links(&self) -> &[LinkDesc] {
        &self.links
    }

    pub fn leaf_of(&self, node: usize) -> usize {
        node / self.params.leaf_radix
    }

    fn trunk_up(&self, leaf: usize, spine: usize) -> LinkId {
        LinkId((3 * self.nodes + 2 * (leaf * self.params.spines + spine)) as u32)
    }

    fn trunk_down(&self, leaf: usize, spine: usize) -> LinkId {
        LinkId((3 * self.nodes + 2 * (leaf * self.params.spines + spine) + 1) as u32)
    }

    /// Write the static route from `src` to `dst` into `out` and return
    /// the number of switch hops traversed (for latency accounting).
    pub fn route(&self, src: usize, dst: usize, out: &mut Vec<LinkId>) -> u32 {
        debug_assert!(src < self.nodes && dst < self.nodes);
        out.clear();
        if src == dst {
            out.push(LinkId(src as u32));
            return 0;
        }
        out.push(LinkId((self.nodes + src) as u32));
        let (src_leaf, dst_leaf) = (self.leaf_of(src), self.leaf_of(dst));
        let hops = if src_leaf == dst_leaf {
            1 // one leaf switch
        } else {
            let spine = dst % self.params.spines;
            out.push(self.trunk_up(src_leaf, spine));
            out.push(self.trunk_down(dst_leaf, spine));
            3 // leaf, spine, leaf
        };
        out.push(LinkId((2 * self.nodes + dst) as u32));
        hops
    }
}
