//! Topology-aware interconnect model.
//!
//! The machine is a graph of directed links (NVLink/X-bus inside a node,
//! NIC injection/ejection ports, and a two-level fat tree of EDR trunks
//! between nodes). Messages become *flows*: a flow occupies every link on
//! its static route and the set of concurrent flows shares each link's
//! bandwidth max-min fairly. Whenever a flow starts or finishes, the
//! affected rates are recomputed and in-flight completion times move —
//! the caller reschedules them through its event queue using the
//! idempotent `FlowSim::advance` / `next_wakeup` state machine.
//!
//! The crate is deliberately free of event-queue types beyond
//! [`gaat_sim::SimTime`]: `gaat-net` owns the wiring into the engine.

mod fattree;
mod flow;

pub use fattree::{FatTreeGraph, FatTreeParams};
pub use flow::{FlowSim, EPS_BYTES};

use gaat_sim::SimTime;

/// Index of a directed link in a topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// What a link physically is; used for labelling stats and trace lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Intra-node GPU/host interconnect (NVLink / X-bus).
    NvLink,
    /// NIC injection port (node -> leaf switch).
    NicUp,
    /// NIC ejection port (leaf switch -> node).
    NicDown,
    /// Leaf-to-spine trunk (up direction).
    LeafUp,
    /// Spine-to-leaf trunk (down direction).
    LeafDown,
}

impl LinkKind {
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::NvLink => "nvlink",
            LinkKind::NicUp => "nic-up",
            LinkKind::NicDown => "nic-down",
            LinkKind::LeafUp => "leaf-up",
            LinkKind::LeafDown => "leaf-down",
        }
    }
}

/// Static description of one directed link.
#[derive(Debug, Clone, Copy)]
pub struct LinkDesc {
    pub kind: LinkKind,
    /// Capacity in bytes/second.
    pub bw: f64,
}

/// Per-link counters accumulated by the flow simulation.
#[derive(Debug, Clone, Copy)]
pub struct LinkUsage {
    pub link: LinkId,
    pub kind: LinkKind,
    /// Total bytes carried.
    pub bytes: f64,
    /// Nanoseconds during which at least one flow crossed the link.
    pub busy_ns: u64,
    /// Highest number of simultaneous flows observed.
    pub peak_flows: u32,
    /// busy_ns / horizon_ns as given to [`FlowSim::link_report`].
    pub utilization: f64,
}

/// Whole-fabric congestion summary, cheap enough to fold into `NetStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CongestionSummary {
    /// Highest simultaneous flow count seen on any single link.
    pub peak_link_flows: u32,
    /// Highest per-link utilization (busy time / horizon).
    pub max_link_utilization: f64,
    /// Link holding `max_link_utilization`, if any traffic flowed.
    pub hottest_link: Option<LinkId>,
}

/// A closed interval during which a link was busy; drained by the caller
/// into tracer lanes.
#[derive(Debug, Clone, Copy)]
pub struct BusySpan {
    pub link: LinkId,
    pub kind: LinkKind,
    pub start: SimTime,
    pub end: SimTime,
}
