//! Topology-aware interconnect model.
//!
//! The machine is a graph of directed links (NVLink/X-bus inside a node,
//! NIC injection/ejection ports, and a two-level fat tree of EDR trunks
//! between nodes). Messages become *flows*: a flow occupies every link on
//! its static route and the set of concurrent flows shares each link's
//! bandwidth max-min fairly. Whenever a flow starts or finishes, the
//! affected rates are recomputed and in-flight completion times move —
//! the caller reschedules them through its event queue using the
//! idempotent `FlowSim::advance` / `next_wakeup` state machine.
//!
//! The crate is deliberately free of event-queue types beyond
//! [`gaat_sim::SimTime`]: `gaat-net` owns the wiring into the engine.

mod fattree;
mod flow;

pub use fattree::{FatTreeGraph, FatTreeParams, RouteInfo, RouteTable};
pub use flow::{FlowSim, EPS_BYTES};

/// Counters of the incremental max-min solver, accumulated over a
/// [`FlowSim`]'s lifetime. One *recompute* is the dirty-set closure plus
/// (unless the closure is empty) a water-filling pass over that
/// component; flows outside the component keep their rate and ETA, which
/// is what [`SolverStats::rate_updates_avoided`] counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Recompute passes run (one per admit, one per completion batch).
    pub recomputes: u64,
    /// Recomputes whose dirty closure held no live flows (the fast
    /// path: the changed route's links are otherwise empty).
    pub empty_recomputes: u64,
    /// Total flows re-water-filled across all recomputes (= per-flow
    /// rate assignments actually performed).
    pub touched_flows: u64,
    /// Total links reset and scanned across all recomputes.
    pub touched_links: u64,
    /// Live flows whose rate/ETA a recompute did *not* have to touch,
    /// summed over recomputes — the work a from-scratch solver would
    /// have redone.
    pub rate_updates_avoided: u64,
    /// Histogram of dirty-component sizes (flows per recompute), in
    /// buckets `0, 1, 2-3, 4-7, 8-15, 16-31, 32-63, >=64`.
    pub dirty_hist: [u64; 8],
}

impl SolverStats {
    /// Bucket labels matching [`SolverStats::dirty_hist`].
    pub const HIST_LABELS: [&'static str; 8] =
        ["0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", ">=64"];

    /// Fold `other` into `self`. Every field is a sum (histogram buckets
    /// included), so the merge is associative and commutative — per-shard
    /// solver counters can be combined in any grouping.
    pub fn merge(&mut self, other: &SolverStats) {
        self.recomputes += other.recomputes;
        self.empty_recomputes += other.empty_recomputes;
        self.touched_flows += other.touched_flows;
        self.touched_links += other.touched_links;
        self.rate_updates_avoided += other.rate_updates_avoided;
        for (a, b) in self.dirty_hist.iter_mut().zip(other.dirty_hist.iter()) {
            *a += b;
        }
    }

    /// Record one recompute that touched `dirty_flows` of the `live`
    /// flows and reset `dirty_links` links.
    pub fn record_component(&mut self, dirty_flows: usize, dirty_links: usize, live: usize) {
        if dirty_flows == 0 {
            self.empty_recomputes += 1;
        }
        self.touched_flows += dirty_flows as u64;
        self.touched_links += dirty_links as u64;
        self.rate_updates_avoided += (live - dirty_flows) as u64;
        let bucket = match dirty_flows {
            0 => 0,
            1 => 1,
            n => (usize::BITS - n.leading_zeros()).min(7) as usize,
        };
        self.dirty_hist[bucket] += 1;
    }

    /// Mean dirty-component size (flows actually re-water-filled per
    /// recompute).
    pub fn touched_flows_per_recompute(&self) -> f64 {
        self.touched_flows as f64 / (self.recomputes.max(1)) as f64
    }
}

use gaat_sim::SimTime;

/// Index of a directed link in a topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// What a link physically is; used for labelling stats and trace lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Intra-node GPU/host interconnect (NVLink / X-bus).
    NvLink,
    /// NIC injection port (node -> leaf switch).
    NicUp,
    /// NIC ejection port (leaf switch -> node).
    NicDown,
    /// Leaf-to-spine trunk (up direction).
    LeafUp,
    /// Spine-to-leaf trunk (down direction).
    LeafDown,
}

impl LinkKind {
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::NvLink => "nvlink",
            LinkKind::NicUp => "nic-up",
            LinkKind::NicDown => "nic-down",
            LinkKind::LeafUp => "leaf-up",
            LinkKind::LeafDown => "leaf-down",
        }
    }
}

/// Static description of one directed link.
#[derive(Debug, Clone, Copy)]
pub struct LinkDesc {
    pub kind: LinkKind,
    /// Capacity in bytes/second.
    pub bw: f64,
}

/// Per-link counters accumulated by the flow simulation.
#[derive(Debug, Clone, Copy)]
pub struct LinkUsage {
    pub link: LinkId,
    pub kind: LinkKind,
    /// Total bytes carried.
    pub bytes: f64,
    /// Nanoseconds during which at least one flow crossed the link.
    pub busy_ns: u64,
    /// Highest number of simultaneous flows observed.
    pub peak_flows: u32,
    /// busy_ns / horizon_ns as given to [`FlowSim::link_report`].
    pub utilization: f64,
}

/// Whole-fabric congestion summary, cheap enough to fold into `NetStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CongestionSummary {
    /// Highest simultaneous flow count seen on any single link.
    pub peak_link_flows: u32,
    /// Highest per-link utilization (busy time / horizon).
    pub max_link_utilization: f64,
    /// Link holding `max_link_utilization`, if any traffic flowed.
    pub hottest_link: Option<LinkId>,
}

/// A closed interval during which a link was busy; drained by the caller
/// into tracer lanes.
#[derive(Debug, Clone, Copy)]
pub struct BusySpan {
    pub link: LinkId,
    pub kind: LinkKind,
    pub start: SimTime,
    pub end: SimTime,
}
