//! Max-min fair flow simulation over a static link graph.
//!
//! Rates are piecewise-constant: they only change when a flow starts or
//! finishes. Between those instants every flow drains at its assigned
//! rate, so the caller can sleep until `next_wakeup()` and then call
//! `advance(now)` — an idempotent settle/complete/recompute step — to
//! collect finished flow tokens and learn the next wakeup instant.
//!
//! Rate assignment is progressive water-filling: find the bottleneck
//! link (smallest capacity-left / unfrozen-flows share), freeze every
//! unfrozen flow crossing it at that share, subtract the frozen rates
//! from every link they cross, repeat. Ties break on the lower link id
//! so the result is independent of iteration order.

use crate::{BusySpan, CongestionSummary, LinkDesc, LinkId, LinkUsage};
use gaat_sim::SimTime;

/// Flows with no more than this many bytes left are complete. Guards the
/// f64 drain arithmetic against never quite reaching zero.
pub const EPS_BYTES: f64 = 1e-6;

#[derive(Debug)]
struct FlowSlot {
    route: Vec<LinkId>,
    /// Bytes still to transfer.
    remaining: f64,
    /// Assigned rate, bytes per nanosecond.
    rate: f64,
    /// Projected completion instant under the current rates.
    eta: SimTime,
    /// Caller's correlation token, returned on completion.
    token: u64,
    /// Water-filling scratch: rate already fixed this round.
    frozen: bool,
    live: bool,
}

#[derive(Debug)]
struct LinkState {
    desc: LinkDesc,
    /// Capacity in bytes per nanosecond.
    cap: f64,
    active: u32,
    bytes: f64,
    busy_ns: u64,
    busy_since: SimTime,
    peak: u32,
    // Water-filling scratch, valid when `mark == FlowSim::epoch`.
    cap_left: f64,
    unfrozen: u32,
    mark: u64,
}

/// The flow-level interconnect state machine. See the module docs.
#[derive(Debug)]
pub struct FlowSim {
    flows: Vec<FlowSlot>,
    free: Vec<u32>,
    /// Live flow slots in admission order (drives deterministic
    /// completion ordering and the water-filling scan).
    live: Vec<u32>,
    links: Vec<LinkState>,
    /// Instant up to which all flows have been drained.
    settled_at: SimTime,
    next_eta: Option<SimTime>,
    epoch: u64,
    closed: Vec<BusySpan>,
    record_spans: bool,
    /// Number of water-filling passes run; exported for the perf bench.
    pub recomputes: u64,
}

impl FlowSim {
    pub fn new(links: Vec<LinkDesc>) -> Self {
        let links = links
            .into_iter()
            .map(|desc| LinkState {
                desc,
                cap: desc.bw / 1e9,
                active: 0,
                bytes: 0.0,
                busy_ns: 0,
                busy_since: SimTime::ZERO,
                peak: 0,
                cap_left: 0.0,
                unfrozen: 0,
                mark: 0,
            })
            .collect();
        FlowSim {
            flows: Vec::new(),
            free: Vec::new(),
            live: Vec::new(),
            links,
            settled_at: SimTime::ZERO,
            next_eta: None,
            epoch: 0,
            closed: Vec::new(),
            record_spans: false,
            recomputes: 0,
        }
    }

    pub fn set_record_spans(&mut self, on: bool) {
        self.record_spans = on;
    }

    pub fn active_flows(&self) -> usize {
        self.live.len()
    }

    /// Instant up to which flows have been drained (the traffic horizon).
    pub fn settled_at(&self) -> SimTime {
        self.settled_at
    }

    /// Earliest instant at which some flow completes, if any are live.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.next_eta
    }

    /// Admit a new flow over `route` carrying `bytes`. The token is
    /// returned by `advance` when the flow finishes. Rates of flows
    /// sharing links shrink immediately; the caller must re-read
    /// `next_wakeup()` afterwards.
    pub fn start(&mut self, now: SimTime, route: &[LinkId], bytes: f64, token: u64) {
        self.settle(now);
        let slot = FlowSlot {
            route: route.to_vec(),
            remaining: bytes.max(0.0),
            rate: 0.0,
            eta: now,
            token,
            frozen: false,
            live: true,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.flows[i as usize] = slot;
                i
            }
            None => {
                self.flows.push(slot);
                (self.flows.len() - 1) as u32
            }
        };
        self.live.push(idx);
        for &LinkId(l) in &self.flows[idx as usize].route {
            let link = &mut self.links[l as usize];
            if link.active == 0 {
                link.busy_since = now;
            }
            link.active += 1;
            link.peak = link.peak.max(link.active);
        }
        self.recompute();
    }

    /// Drain flows to `now`, push tokens of completed flows onto `done`
    /// (admission order), release their links, and recompute rates.
    /// Safe to call at any instant >= the last settle point.
    pub fn advance(&mut self, now: SimTime, done: &mut Vec<u64>) {
        self.settle(now);
        let Self {
            flows,
            free,
            live,
            links,
            closed,
            record_spans,
            ..
        } = self;
        let before = live.len();
        live.retain(|&idx| {
            let flow = &mut flows[idx as usize];
            if flow.remaining > EPS_BYTES {
                return true;
            }
            done.push(flow.token);
            flow.live = false;
            for &LinkId(l) in &flow.route {
                let link = &mut links[l as usize];
                link.active -= 1;
                if link.active == 0 {
                    link.busy_ns += now.since(link.busy_since).as_ns();
                    if *record_spans && now > link.busy_since {
                        closed.push(BusySpan {
                            link: LinkId(l),
                            kind: link.desc.kind,
                            start: link.busy_since,
                            end: now,
                        });
                    }
                }
            }
            free.push(idx);
            false
        });
        if live.len() != before {
            self.recompute();
        }
    }

    /// Move accumulated busy intervals out (for tracer lanes).
    pub fn drain_spans(&mut self, out: &mut Vec<BusySpan>) {
        out.append(&mut self.closed);
    }

    /// Per-link counters; `horizon` is the sim end used both to close
    /// still-busy intervals and as the utilization denominator.
    pub fn link_report(&self, horizon: SimTime) -> Vec<LinkUsage> {
        let total = horizon.as_ns().max(1);
        self.links
            .iter()
            .enumerate()
            .map(|(i, link)| {
                let mut busy = link.busy_ns;
                if link.active > 0 && horizon > link.busy_since {
                    busy += horizon.since(link.busy_since).as_ns();
                }
                LinkUsage {
                    link: LinkId(i as u32),
                    kind: link.desc.kind,
                    bytes: link.bytes,
                    busy_ns: busy,
                    peak_flows: link.peak,
                    utilization: busy as f64 / total as f64,
                }
            })
            .collect()
    }

    pub fn congestion(&self, horizon: SimTime) -> CongestionSummary {
        let mut out = CongestionSummary::default();
        for usage in self.link_report(horizon) {
            out.peak_link_flows = out.peak_link_flows.max(usage.peak_flows);
            if usage.busy_ns > 0 && usage.utilization > out.max_link_utilization {
                out.max_link_utilization = usage.utilization;
                out.hottest_link = Some(usage.link);
            }
        }
        out
    }

    /// Drain every live flow at its current rate up to `now`.
    fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.settled_at, "settle moved backwards");
        let dt = now.since(self.settled_at).as_ns() as f64;
        if dt > 0.0 {
            let Self {
                flows, live, links, ..
            } = self;
            for &idx in live.iter() {
                let flow = &mut flows[idx as usize];
                let carried = (flow.rate * dt).min(flow.remaining);
                flow.remaining -= carried;
                for &LinkId(l) in &flow.route {
                    links[l as usize].bytes += carried;
                }
            }
        }
        self.settled_at = now;
    }

    /// Progressive water-filling over the links touched by live flows.
    fn recompute(&mut self) {
        self.recomputes += 1;
        self.epoch += 1;
        let epoch = self.epoch;
        let Self {
            flows, live, links, ..
        } = self;

        // Reset scratch on touched links; count their unfrozen flows.
        let mut touched: Vec<u32> = Vec::new();
        for &idx in live.iter() {
            let flow = &mut flows[idx as usize];
            flow.frozen = false;
            flow.rate = 0.0;
            for &LinkId(l) in &flow.route {
                let link = &mut links[l as usize];
                if link.mark != epoch {
                    link.mark = epoch;
                    link.cap_left = link.cap;
                    link.unfrozen = 0;
                    touched.push(l);
                }
                link.unfrozen += 1;
            }
        }

        let mut remaining_flows = live.len();
        while remaining_flows > 0 {
            // Bottleneck: smallest per-flow share; ties to the lower id.
            let mut best: Option<(f64, u32)> = None;
            for &l in &touched {
                let link = &links[l as usize];
                if link.unfrozen == 0 {
                    continue;
                }
                let share = link.cap_left / link.unfrozen as f64;
                match best {
                    Some((s, b)) if (share, l) >= (s, b) => {}
                    _ => best = Some((share, l)),
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            let share = share.max(0.0);
            for &idx in live.iter() {
                let flow = &mut flows[idx as usize];
                if flow.frozen || !flow.route.contains(&LinkId(bottleneck)) {
                    continue;
                }
                flow.frozen = true;
                flow.rate = share;
                remaining_flows -= 1;
                for &LinkId(l) in &flow.route {
                    let link = &mut links[l as usize];
                    link.cap_left = (link.cap_left - share).max(0.0);
                    link.unfrozen -= 1;
                }
            }
        }

        // Project completion instants under the new rates.
        self.next_eta = None;
        for &idx in self.live.iter() {
            let flow = &mut self.flows[idx as usize];
            flow.eta = if flow.remaining <= EPS_BYTES {
                self.settled_at
            } else {
                debug_assert!(flow.rate > 0.0, "live flow with zero rate");
                let ns = (flow.remaining / flow.rate).ceil().max(1.0) as u64;
                self.settled_at + gaat_sim::SimDuration::from_ns(ns)
            };
            self.next_eta = Some(match self.next_eta {
                Some(t) => t.min(flow.eta),
                None => flow.eta,
            });
        }
    }
}
