//! Max-min fair flow simulation over a static link graph, with
//! *incremental* rate recomputation.
//!
//! Rates are piecewise-constant: they only change when a flow starts or
//! finishes. Between those instants every flow drains at its assigned
//! rate, so the caller can sleep until `next_wakeup()` and then call
//! `advance(now)` — an idempotent settle/complete/recompute step — to
//! collect finished flow tokens and learn the next wakeup instant.
//!
//! Rate assignment is progressive water-filling: find the bottleneck
//! link (smallest capacity-left / unfrozen-flows share), freeze every
//! unfrozen flow crossing it at that share, subtract the frozen rates
//! from every link they cross, repeat. Ties break on the lower link id
//! so the result is independent of iteration order.
//!
//! The incremental part: a flow admit/complete can only change the rates
//! of flows in its *bottleneck component* — the transitive closure of
//! "shares a link with" seeded from the changed flow's route. Flows (and
//! links) outside that closure see exactly the same water-filling
//! sub-problem as before, so their rates, ETAs, and link scratch are left
//! untouched, and the per-flow arithmetic inside the component replays
//! the from-scratch op sequence bit for bit (see DESIGN.md "Incremental
//! rate recomputation").
//!
//! Two further structural optimizations, both behavior-preserving:
//!
//! - **Deferred recomputation.** Admits and completions only *seed* the
//!   dirty set; the actual water-fill runs lazily at the next query
//!   (`next_wakeup` / a time-advancing `settle`). Rates are only ever
//!   *used* to integrate bytes over an interval or to project ETAs, and
//!   both happen strictly after all same-instant mutations, so merging
//!   the recomputes of one event instant is unobservable — but it halves
//!   the fill count under churny traffic (complete + re-admit at one
//!   instant is one fill, not two or three).
//! - **Dense/sparse pacing split.** Completion instants live in a lazy
//!   min-heap keyed by ETA — stale entries (dead flow, or a flow whose
//!   ETA moved) are skipped on pop — instead of a full live-flow scan
//!   per recompute. When the dirty component spans most of the fabric
//!   the heap would see every ETA re-pushed each fill, so the solver
//!   flips to a dense mode that tracks the minimum ETA with one
//!   contiguous scan of the flows it already touched and leaves the heap
//!   empty; the heap is rebuilt on the next sparse fill.

use std::collections::BinaryHeap;

use crate::{BusySpan, CongestionSummary, LinkDesc, LinkId, LinkUsage, SolverStats};
use gaat_sim::{SimDuration, SimTime};

/// Flows with no more than this many bytes left are complete. Guards the
/// f64 drain arithmetic against never quite reaching zero.
pub const EPS_BYTES: f64 = 1e-6;

/// Fresh-slot rate sentinel: compares unequal to every real share, so a
/// newly admitted flow is always recorded as changed by its first fill
/// and gets an ETA projection.
const RATE_UNSET: f64 = -1.0;

/// Cold per-link bookkeeping (stats and occupancy). The water-filling
/// scratch lives in dense parallel arrays on [`FlowSim`] instead, so the
/// fill's inner loops touch only a few cache lines.
#[derive(Debug, Clone)]
struct LinkMeta {
    desc: LinkDesc,
    /// Bytes carried by *completed* flows; live flows are attributed at
    /// report time from `total - remaining`.
    bytes: f64,
    busy_ns: u64,
    busy_since: SimTime,
    peak: u32,
}

/// Lazy pacing-heap entry; ordered so `BinaryHeap` pops the smallest
/// `(eta, flow)` first. An entry is stale (skipped on pop) when its flow
/// is dead or the flow's current ETA no longer matches.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EtaEntry {
    eta: SimTime,
    flow: u32,
}

impl Ord for EtaEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .eta
            .cmp(&self.eta)
            .then_with(|| other.flow.cmp(&self.flow))
    }
}

impl PartialOrd for EtaEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The flow-level interconnect state machine. See the module docs.
///
/// Per-flow and per-link hot state is stored struct-of-arrays: the
/// water-fill, the settle loop, and the closure walk only stream over
/// small dense `f64`/`u32` arrays, never over wide structs.
#[derive(Debug, Clone)]
pub struct FlowSim {
    // --- per-flow arrays, indexed by slot ---
    rate: Vec<f64>,
    /// Projected completion instant under the current rates; valid for
    /// live flows once a fill has seen them (`SimTime::MAX` before).
    eta: Vec<SimTime>,
    /// Original byte count (for report-time byte attribution).
    total: Vec<f64>,
    token: Vec<u64>,
    alive: Vec<bool>,
    /// Fill scratch: frozen this fill when `== epoch`.
    frozen: Vec<u64>,
    /// Closure scratch: in the dirty set when `== epoch`.
    fmark: Vec<u64>,
    route_len: Vec<u32>,
    /// Flat route storage, `stride` link ids per slot; avoids one Vec
    /// pointer chase per flow in the fill's inner loops.
    route_arena: Vec<u32>,
    stride: usize,

    // --- per-link arrays, indexed by link id ---
    lmeta: Vec<LinkMeta>,
    /// Live flow slots currently crossing each link (unordered — the
    /// water-filling result is invariant to within-round freeze order).
    lflows: Vec<Vec<u32>>,
    /// Capacity in bytes per nanosecond.
    lcap: Vec<f64>,
    /// Packed water-fill scratch per link: `[capacity_left,
    /// unfrozen_flow_count]`, one cache line touch per route hop. The
    /// count is f64 so the share division needs no conversion; exact
    /// for any realistic flow count.
    lcu: Vec<[f64; 2]>,
    /// Live-flow count per link, kept out of the cold [`LinkMeta`] so
    /// the dense build streams over a packed array instead of gathering
    /// through wide structs.
    lactive: Vec<u32>,
    /// Dirty-link scratch, valid when `== epoch`.
    lmark: Vec<u64>,
    /// Position of the link in the fill's candidate list.
    cand_pos: Vec<u32>,
    /// Links with at least one live flow (lazily compacted); lets the
    /// dense fill seed `unfrozen` from the maintained `active` counters
    /// instead of re-walking every route.
    active_links: Vec<u32>,
    in_active: Vec<bool>,

    // --- global state ---
    free: Vec<u32>,
    /// Live flow slots in admission order (drives deterministic
    /// completion ordering).
    live: Vec<u32>,
    /// Remaining bytes / current rate of each live flow, stored compacted
    /// in `live` order so the per-event drain streams over contiguous
    /// `f64`s (and vectorizes) instead of gathering by slot. `rate_live`
    /// mirrors `rate` for live flows; both are maintained by the same
    /// writes that update the slot-indexed arrays.
    rem_live: Vec<f64>,
    rate_live: Vec<f64>,
    /// ETA mirror in `live` order; the dense pacing mode takes its
    /// minimum with one contiguous scan instead of gathering by slot.
    eta_live: Vec<SimTime>,
    /// Slot -> index in `live` (valid while the flow is live).
    lpos: Vec<u32>,
    /// Instant up to which all flows have been drained.
    settled_at: SimTime,
    /// Cached earliest completion instant across live flows.
    next_eta: Option<SimTime>,
    epoch: u64,
    closed: Vec<BusySpan>,
    record_spans: bool,
    /// Lazy completion heap; when `heap_live`, every live flow has at
    /// least one entry matching its current ETA.
    eta_heap: BinaryHeap<EtaEntry>,
    heap_live: bool,
    /// A fill is owed before rates/ETAs may next be observed.
    pending: bool,
    /// Mode predictor: the last fill touched at least half the live
    /// flows, so the next one skips the closure walk and fills the whole
    /// fabric (identical result, cheaper bookkeeping).
    dense: bool,
    // Scratch buffers reused across fills (steady state allocates
    // nothing).
    seed: Vec<u32>,
    dirty_flows: Vec<u32>,
    cand: Vec<u32>,
    cand_share: Vec<f64>,
    changed: Vec<u32>,
    touched: Vec<u32>,
    emptied: Vec<u32>,
    /// Cache of `lcap[l] / init_u[l]` from earlier dense fills; valid
    /// while the link's occupancy still equals `init_u[l]`. Same
    /// operands give the same quotient, so reuse is bit-exact.
    init_u: Vec<u32>,
    init_share: Vec<f64>,
    stats: SolverStats,
}

impl FlowSim {
    pub fn new(links: Vec<LinkDesc>) -> Self {
        let n = links.len();
        let lmeta = links
            .iter()
            .map(|&desc| LinkMeta {
                desc,
                bytes: 0.0,
                busy_ns: 0,
                busy_since: SimTime::ZERO,
                peak: 0,
            })
            .collect();
        FlowSim {
            rate: Vec::new(),
            eta: Vec::new(),
            total: Vec::new(),
            token: Vec::new(),
            alive: Vec::new(),
            frozen: Vec::new(),
            fmark: Vec::new(),
            route_len: Vec::new(),
            route_arena: Vec::new(),
            stride: 4,
            lmeta,
            lflows: vec![Vec::new(); n],
            lcap: links.iter().map(|&d| d.bw / 1e9).collect(),
            lcu: vec![[0.0; 2]; n],
            lactive: vec![0; n],
            lmark: vec![0; n],
            cand_pos: vec![0; n],
            active_links: Vec::new(),
            in_active: vec![false; n],
            free: Vec::new(),
            live: Vec::new(),
            rem_live: Vec::new(),
            rate_live: Vec::new(),
            eta_live: Vec::new(),
            lpos: Vec::new(),
            settled_at: SimTime::ZERO,
            next_eta: None,
            epoch: 0,
            closed: Vec::new(),
            record_spans: false,
            eta_heap: BinaryHeap::new(),
            heap_live: true,
            pending: false,
            dense: false,
            seed: Vec::new(),
            dirty_flows: Vec::new(),
            cand: Vec::new(),
            cand_share: Vec::new(),
            changed: Vec::new(),
            touched: Vec::new(),
            emptied: Vec::new(),
            init_u: vec![0; n],
            init_share: vec![0.0; n],
            stats: SolverStats::default(),
        }
    }

    pub fn set_record_spans(&mut self, on: bool) {
        self.record_spans = on;
    }

    pub fn active_flows(&self) -> usize {
        self.live.len()
    }

    /// Incremental-solver counters accumulated since construction.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Instant up to which flows have been drained (the traffic horizon).
    pub fn settled_at(&self) -> SimTime {
        self.settled_at
    }

    /// Earliest instant at which some flow completes, if any are live.
    /// Runs any deferred rate recomputation first.
    pub fn next_wakeup(&mut self) -> Option<SimTime> {
        if self.pending {
            self.flush();
        }
        self.next_eta
    }

    /// `(token, rate, eta)` of every live flow in admission order — the
    /// observable rate state, for differential tests and debugging.
    pub fn live_flows(&mut self) -> Vec<(u64, f64, SimTime)> {
        if self.pending {
            self.flush();
        }
        self.live
            .iter()
            .map(|&idx| {
                let i = idx as usize;
                (self.token[i], self.rate[i], self.eta[i])
            })
            .collect()
    }

    /// Grow the route arena stride so a `len`-link route fits.
    fn ensure_stride(&mut self, len: usize) {
        if len <= self.stride {
            return;
        }
        let new_stride = len.next_power_of_two();
        let slots = self.route_len.len();
        let mut arena = vec![0u32; slots * new_stride];
        for s in 0..slots {
            let n = self.route_len[s] as usize;
            arena[s * new_stride..s * new_stride + n]
                .copy_from_slice(&self.route_arena[s * self.stride..s * self.stride + n]);
        }
        self.route_arena = arena;
        self.stride = new_stride;
    }

    /// Admit a new flow over `route` carrying `bytes`. The token is
    /// returned by `advance` when the flow finishes. Rates of flows
    /// sharing links (transitively) shrink at the next query; the caller
    /// must re-read `next_wakeup()` afterwards.
    pub fn start(&mut self, now: SimTime, route: &[LinkId], bytes: f64, token: u64) {
        if self.pending && now > self.settled_at {
            self.flush();
        }
        self.settle(now);
        self.ensure_stride(route.len());
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = self.route_len.len() as u32;
                self.rate.push(0.0);
                self.eta.push(SimTime::MAX);
                self.total.push(0.0);
                self.token.push(0);
                self.alive.push(false);
                self.frozen.push(0);
                self.fmark.push(0);
                self.route_len.push(0);
                self.route_arena
                    .resize(self.route_arena.len() + self.stride, 0);
                self.lpos.push(0);
                i
            }
        };
        let i = idx as usize;
        self.total[i] = bytes.max(0.0);
        self.rate[i] = RATE_UNSET;
        self.eta[i] = SimTime::MAX;
        self.token[i] = token;
        self.alive[i] = true;
        self.route_len[i] = route.len() as u32;
        for (k, &LinkId(l)) in route.iter().enumerate() {
            self.route_arena[i * self.stride + k] = l;
            let a = &mut self.lactive[l as usize];
            *a += 1;
            let a = *a;
            let m = &mut self.lmeta[l as usize];
            if a == 1 {
                m.busy_since = now;
                if !self.in_active[l as usize] {
                    self.in_active[l as usize] = true;
                    self.active_links.push(l);
                }
            }
            m.peak = m.peak.max(a);
            self.lflows[l as usize].push(idx);
            self.seed.push(l);
        }
        self.live.push(idx);
        self.lpos[i] = (self.live.len() - 1) as u32;
        self.rem_live.push(bytes.max(0.0));
        self.rate_live.push(RATE_UNSET);
        self.eta_live.push(SimTime::MAX);
        self.pending = true;
    }

    /// Drain flows to `now`, push tokens of completed flows onto `done`
    /// (admission order), release their links, and mark the affected
    /// bottleneck components dirty. Safe to call at any instant >= the
    /// last settle point.
    pub fn advance(&mut self, now: SimTime, done: &mut Vec<u64>) {
        if self.pending && now > self.settled_at {
            self.flush();
        }
        let dt = now.since(self.settled_at).as_ns() as f64;
        self.settled_at = now;
        let n = self.live.len();
        // Pass 1: arithmetic only, streaming over the live-compacted
        // mirrors. Branch-free and contiguous, so it vectorizes; the
        // per-flow operations match the slot-indexed drain bit for bit.
        let mut ncomplete = 0usize;
        if dt > 0.0 {
            let rem = &mut self.rem_live[..n];
            let rl = &self.rate_live[..n];
            for j in 0..n {
                let r0 = rem[j];
                let carried = (rl[j] * dt).min(r0);
                let r = r0 - carried;
                rem[j] = r;
                ncomplete += (r <= EPS_BYTES) as usize;
            }
        } else {
            let rem = &self.rem_live[..n];
            ncomplete += rem.iter().filter(|&&r| r <= EPS_BYTES).count();
        }
        if ncomplete == 0 {
            return;
        }
        // Pass 2 (only when something finished): collect completions in
        // admission order, compacting the live list and its mirrors.
        let Self {
            rem_live,
            rate_live,
            eta_live,
            lpos,
            total,
            token,
            alive,
            route_len,
            route_arena,
            stride,
            lmeta,
            lactive,
            lflows,
            free,
            live,
            closed,
            record_spans,
            seed,
            ..
        } = self;
        let mut w = 0usize;
        for j in 0..n {
            let idx = live[j];
            let r = rem_live[j];
            if r > EPS_BYTES {
                live[w] = idx;
                rem_live[w] = r;
                rate_live[w] = rate_live[j];
                eta_live[w] = eta_live[j];
                lpos[idx as usize] = w as u32;
                w += 1;
                continue;
            }
            let i = idx as usize;
            done.push(token[i]);
            alive[i] = false;
            for k in 0..route_len[i] as usize {
                let l = route_arena[i * *stride + k] as usize;
                lactive[l] -= 1;
                let m = &mut lmeta[l];
                m.bytes += total[i];
                let pos = lflows[l]
                    .iter()
                    .position(|&f| f == idx)
                    .expect("completing flow is on its links' member lists");
                lflows[l].swap_remove(pos);
                seed.push(l as u32);
                if lactive[l] == 0 {
                    m.busy_ns += now.since(m.busy_since).as_ns();
                    if *record_spans && now > m.busy_since {
                        closed.push(BusySpan {
                            link: LinkId(l as u32),
                            kind: m.desc.kind,
                            start: m.busy_since,
                            end: now,
                        });
                    }
                }
            }
            free.push(idx);
        }
        live.truncate(w);
        rem_live.truncate(w);
        rate_live.truncate(w);
        eta_live.truncate(w);
        self.pending = true;
    }

    /// Change a link's capacity in place (degradation / repair). Flows
    /// are drained to `now` at their old rates first — progress already
    /// made is not re-priced — then the link is seeded dirty so every
    /// flow (transitively) sharing it is re-water-filled at the next
    /// query; flows elsewhere keep their rates bit-exactly.
    pub fn set_link_bw(&mut self, now: SimTime, link: LinkId, bw: f64) {
        assert!(bw > 0.0, "link capacity must stay positive; abort instead");
        if self.pending && now > self.settled_at {
            self.flush();
        }
        self.settle(now);
        let l = link.0 as usize;
        self.lmeta[l].desc.bw = bw;
        self.lcap[l] = bw / 1e9;
        // The dense-fill share cache keys on occupancy only; capacity
        // changed, so force a recompute of this link's cached quotient.
        self.init_u[l] = 0;
        self.seed.push(link.0);
        self.pending = true;
    }

    /// Abort every in-flight flow crossing `link` (the link failed).
    /// Tokens of the killed flows are pushed onto `aborted` in admission
    /// order; bytes carried before the failure stay attributed to their
    /// links. The caller decides what an abort means (retry, surface an
    /// error) — the flow simulation just releases the resources and
    /// marks the affected components dirty.
    pub fn abort_link(&mut self, now: SimTime, link: LinkId, aborted: &mut Vec<u64>) {
        if self.pending && now > self.settled_at {
            self.flush();
        }
        self.settle(now);
        let l0 = link.0 as usize;
        if self.lflows[l0].is_empty() {
            return;
        }
        // Victims in admission order (lflows is unordered).
        let mut victims: Vec<u32> = self.lflows[l0].clone();
        victims.sort_unstable_by_key(|&f| self.lpos[f as usize]);
        for &idx in &victims {
            let i = idx as usize;
            aborted.push(self.token[i]);
            self.alive[i] = false;
            let carried = (self.total[i] - self.rem_live[self.lpos[i] as usize]).max(0.0);
            for k in 0..self.route_len[i] as usize {
                let l = self.route_arena[i * self.stride + k] as usize;
                self.lactive[l] -= 1;
                let pos = self.lflows[l]
                    .iter()
                    .position(|&f| f == idx)
                    .expect("aborting flow is on its links' member lists");
                self.lflows[l].swap_remove(pos);
                self.seed.push(l as u32);
                let m = &mut self.lmeta[l];
                m.bytes += carried;
                if self.lactive[l] == 0 {
                    m.busy_ns += now.since(m.busy_since).as_ns();
                    if self.record_spans && now > m.busy_since {
                        self.closed.push(BusySpan {
                            link: LinkId(l as u32),
                            kind: m.desc.kind,
                            start: m.busy_since,
                            end: now,
                        });
                    }
                }
            }
            self.free.push(idx);
        }
        // Stable compaction of the live list and its mirrors, exactly
        // like the completion pass, so surviving flows keep admission
        // order.
        let n = self.live.len();
        let mut w = 0usize;
        for j in 0..n {
            let idx = self.live[j];
            if !self.alive[idx as usize] {
                continue;
            }
            self.live[w] = idx;
            self.rem_live[w] = self.rem_live[j];
            self.rate_live[w] = self.rate_live[j];
            self.eta_live[w] = self.eta_live[j];
            self.lpos[idx as usize] = w as u32;
            w += 1;
        }
        self.live.truncate(w);
        self.rem_live.truncate(w);
        self.rate_live.truncate(w);
        self.eta_live.truncate(w);
        self.pending = true;
    }

    /// Move accumulated busy intervals out (for tracer lanes).
    pub fn drain_spans(&mut self, out: &mut Vec<BusySpan>) {
        out.append(&mut self.closed);
    }

    /// Per-link counters; `horizon` is the sim end used both to close
    /// still-busy intervals and as the utilization denominator. Bytes of
    /// still-live flows are attributed from their progress so far.
    pub fn link_report(&self, horizon: SimTime) -> Vec<LinkUsage> {
        let total_ns = horizon.as_ns().max(1);
        let mut partial = vec![0.0f64; self.lmeta.len()];
        for (j, &idx) in self.live.iter().enumerate() {
            let i = idx as usize;
            let carried = self.total[i] - self.rem_live[j];
            for k in 0..self.route_len[i] as usize {
                partial[self.route_arena[i * self.stride + k] as usize] += carried;
            }
        }
        self.lmeta
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut busy = m.busy_ns;
                if self.lactive[i] > 0 && horizon > m.busy_since {
                    busy += horizon.since(m.busy_since).as_ns();
                }
                LinkUsage {
                    link: LinkId(i as u32),
                    kind: m.desc.kind,
                    bytes: m.bytes + partial[i],
                    busy_ns: busy,
                    peak_flows: m.peak,
                    utilization: busy as f64 / total_ns as f64,
                }
            })
            .collect()
    }

    pub fn congestion(&self, horizon: SimTime) -> CongestionSummary {
        let mut out = CongestionSummary::default();
        for usage in self.link_report(horizon) {
            out.peak_link_flows = out.peak_link_flows.max(usage.peak_flows);
            if usage.busy_ns > 0 && usage.utilization > out.max_link_utilization {
                out.max_link_utilization = usage.utilization;
                out.hottest_link = Some(usage.link);
            }
        }
        out
    }

    /// Drain every live flow at its current rate up to `now`. A flow
    /// that crosses the completion threshold here without an `advance`
    /// collecting it (the caller slept past its ETA) gets its ETA
    /// re-anchored to the settle point, exactly like the from-scratch
    /// solver's full recompute did.
    fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.settled_at, "settle moved backwards");
        let dt = now.since(self.settled_at).as_ns() as f64;
        if dt > 0.0 {
            let Self {
                rem_live,
                rate_live,
                eta_live,
                eta,
                live,
                eta_heap,
                heap_live,
                next_eta,
                ..
            } = self;
            for (j, &idx) in live.iter().enumerate() {
                let rem = rem_live[j];
                let was_open = rem > EPS_BYTES;
                let carried = (rate_live[j] * dt).min(rem);
                let rem = rem - carried;
                rem_live[j] = rem;
                if was_open && rem <= EPS_BYTES {
                    let i = idx as usize;
                    eta[i] = now;
                    eta_live[j] = now;
                    if *heap_live {
                        eta_heap.push(EtaEntry {
                            eta: now,
                            flow: idx,
                        });
                    }
                    *next_eta = Some(next_eta.map_or(now, |e| e.min(now)));
                }
            }
        }
        self.settled_at = now;
    }

    /// Run the deferred incremental water-fill: close the accumulated
    /// seed under "shares a link" (or, in dense mode, take the whole
    /// fabric — identical result), re-run progressive water-filling on
    /// that component only, and re-project the ETAs of exactly the flows
    /// whose rate changed.
    fn flush(&mut self) {
        self.pending = false;
        self.epoch += 1;
        self.stats.recomputes += 1;
        let epoch = self.epoch;
        let live_n = self.live.len();
        let Self {
            rate,
            eta,
            frozen,
            fmark,
            route_len,
            route_arena,
            stride,
            lactive,
            lflows,
            lcap,
            lcu,
            lmark,
            cand_pos,
            active_links,
            in_active,
            live,
            rem_live,
            rate_live,
            eta_live,
            lpos,
            eta_heap,
            heap_live,
            seed,
            dirty_flows,
            cand,
            cand_share,
            changed,
            touched,
            emptied,
            init_u,
            init_share,
            stats,
            ..
        } = self;
        let stride = *stride;

        cand.clear();
        cand_share.clear();
        dirty_flows.clear();

        // Dense mode self-perpetuates if entry is judged only by the
        // last fill's size (a dense fill touches everything by
        // construction), so exit is decided from the seed instead: the
        // direct member count of the seeded links upper-bounds how local
        // the change is. It *under*counts the transitive closure, so
        // leaving dense demands a strong locality signal (8x), which
        // also keeps borderline fills from thrashing between modes.
        let mut dense = self.dense && live_n > 0;
        if dense {
            let mut est = 0usize;
            for &l in seed.iter() {
                est += lflows[l as usize].len();
            }
            if est * 8 < live_n {
                dense = false;
            }
        }
        let dense = dense;
        let to_freeze;
        if dense {
            // Dense mode: the previous fill touched most of the fabric,
            // so skip the closure walk and fill every live flow. Filling
            // a superset of components is exact: components don't share
            // links, so the merged bottleneck sequence interleaves the
            // per-component sequences without changing any of them. The
            // per-link unfrozen count over *all* live flows is exactly
            // the maintained `active` occupancy, so seeding walks the
            // active-link list instead of every route.
            seed.clear();
            cand.resize(active_links.len(), 0);
            cand_share.resize(active_links.len(), 0.0);
            let cands = cand.as_mut_slice();
            let shs = cand_share.as_mut_slice();
            let mut cn = 0usize;
            let mut i = 0;
            while i < active_links.len() {
                let l = active_links[i] as usize;
                let a = lactive[l];
                if a == 0 {
                    in_active[l] = false;
                    active_links.swap_remove(i);
                    continue;
                }
                lcu[l] = [lcap[l], a as f64];
                cand_pos[l] = cn as u32;
                cands[cn] = l as u32;
                shs[cn] = if init_u[l] == a {
                    init_share[l]
                } else {
                    let sh = lcap[l] / a as f64;
                    init_u[l] = a;
                    init_share[l] = sh;
                    sh
                };
                cn += 1;
                i += 1;
            }
            cand.truncate(cn);
            cand_share.truncate(cn);
            to_freeze = live_n;
        } else {
            // Seed the dirty link set with the changed flows' routes.
            for &l in seed.iter() {
                let l = l as usize;
                if lmark[l] != epoch {
                    lmark[l] = epoch;
                    lcu[l] = [lcap[l], 0.0];
                    cand.push(l as u32);
                }
            }
            seed.clear();
            // Transitive closure: every flow on a dirty link is dirty,
            // and every link on a dirty flow's route is dirty. After
            // this, dirty links carry only dirty flows, so the component
            // water-fills independently of the rest of the fabric.
            let mut li = 0;
            while li < cand.len() {
                let l = cand[li] as usize;
                li += 1;
                let n = lflows[l].len();
                // Index form: `lflows[l]` cannot be borrowed across the
                // loop body (cand/lmark are pushed to inside it).
                #[allow(clippy::needless_range_loop)]
                for fi in 0..n {
                    let f = lflows[l][fi];
                    let i = f as usize;
                    if fmark[i] == epoch {
                        continue;
                    }
                    fmark[i] = epoch;
                    dirty_flows.push(f);
                    let base = i * stride;
                    for &l2 in &route_arena[base..base + route_len[i] as usize] {
                        let l2 = l2 as usize;
                        if lmark[l2] != epoch {
                            lmark[l2] = epoch;
                            lcu[l2] = [lcap[l2], 0.0];
                            cand.push(l2 as u32);
                        }
                        lcu[l2][1] += 1.0;
                    }
                }
            }
            to_freeze = dirty_flows.len();
        }

        stats.record_component(to_freeze, cand.len(), live_n);
        self.dense = 2 * to_freeze >= live_n;

        if to_freeze > 0 {
            if !dense {
                // Candidate shares; links whose flows all completed
                // drop out. (The dense build filled these in directly.)
                let mut i = 0;
                while i < cand.len() {
                    let l = cand[i] as usize;
                    let [c, u] = lcu[l];
                    if u == 0.0 {
                        cand.swap_remove(i);
                        continue;
                    }
                    cand_pos[l] = i as u32;
                    cand_share.push(c / u);
                    i += 1;
                }
            }

            // Water-fill the component. Identical op order to the
            // from-scratch solver restricted to this component: the same
            // bottleneck sequence (min share, ties to the lower link id)
            // and per-link the same ordered subtractions, so rates come
            // out bit for bit equal.
            //
            // The round loop appends to fixed-size scratch through a
            // cursor instead of `Vec::push`: a push's potential
            // reallocation forces the compiler to reload every slice
            // pointer after it, which dominates the inner loop.
            if touched.len() < stride * to_freeze {
                touched.resize(stride * to_freeze, 0);
            }
            if changed.len() < live_n {
                changed.resize(live_n, 0);
            }
            let tb = touched.as_mut_slice();
            let cb = changed.as_mut_slice();
            let mut clen = 0usize;
            let mut left = to_freeze;
            while left > 0 && !cand.is_empty() {
                // Bottleneck scan: a packed-double min pass, then the
                // lowest link id among the ties (ties are rare, so the
                // second pass is a predictable not-taken branch).
                let mn = simd_min(&cand_share[..]);
                let bottleneck = tie_min_id(&cand_share[..], &cand[..], mn);
                let share = mn.max(0.0);

                // Freeze every unfrozen flow crossing the bottleneck and
                // subtract its share along its route. Candidate shares
                // are refreshed once per link at the end of the round —
                // the intermediate quotients were never read, so the
                // refresh divides once per touched link. The touched
                // list may carry duplicates (two frozen flows sharing a
                // hop); the refresh skips entries whose candidate slot
                // no longer holds the link.
                let flist = &lflows[bottleneck as usize];
                let mut tlen = 0usize;
                emptied.clear();
                // Index form keeps `lflows` free for the freeze RMW below.
                #[allow(clippy::needless_range_loop)]
                for fi in 0..flist.len() {
                    let f = flist[fi];
                    let i = f as usize;
                    if frozen[i] == epoch {
                        continue;
                    }
                    frozen[i] = epoch;
                    left -= 1;
                    if rate[i] != share {
                        rate[i] = share;
                        rate_live[lpos[i] as usize] = share;
                        cb[clen] = f;
                        clen += 1;
                    }
                    let base = i * stride;
                    for &l in &route_arena[base..base + route_len[i] as usize] {
                        // The bottleneck's own scratch is never read
                        // again: every flow crossing it freezes now, so
                        // it is removed below instead of updated here.
                        if l == bottleneck {
                            continue;
                        }
                        let cl = &mut lcu[l as usize];
                        // One packed sub/max over [capacity_left,
                        // unfrozen]: lane 0 clamps at 0.0 exactly like
                        // the scalar `(c - share).max(0.0)` (no NaNs, and
                        // c - share is never -0.0); lane 1's clamp at
                        // -inf is the identity.
                        #[cfg(target_arch = "x86_64")]
                        unsafe {
                            use std::arch::x86_64::*;
                            let v = _mm_loadu_pd(cl.as_ptr());
                            let v = _mm_sub_pd(v, _mm_set_pd(1.0, share));
                            let v = _mm_max_pd(v, _mm_set_pd(f64::NEG_INFINITY, 0.0));
                            _mm_storeu_pd(cl.as_mut_ptr(), v);
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        {
                            cl[0] = (cl[0] - share).max(0.0);
                            cl[1] -= 1.0;
                        }
                        if cl[1] == 0.0 {
                            emptied.push(l);
                        }
                        tb[tlen] = l;
                        tlen += 1;
                    }
                }
                {
                    let p = cand_pos[bottleneck as usize] as usize;
                    cand.swap_remove(p);
                    cand_share.swap_remove(p);
                    if p < cand.len() {
                        cand_pos[cand[p] as usize] = p as u32;
                    }
                }
                // Refresh in two passes: drop emptied links first, then
                // divide. The freeze loop recorded every link whose
                // unfrozen count crossed zero (it crosses exactly once),
                // so the removal pass walks that short list instead of
                // every touched entry. With the structure mutations out
                // of the way the division pass has no data dependence
                // between iterations, so the quotients pipeline at
                // divider throughput. Division results don't feed each
                // other, so the order is free; removal order only
                // permutes candidate slots, never the candidate set.
                for &l in emptied.iter() {
                    let p = cand_pos[l as usize] as usize;
                    cand.swap_remove(p);
                    cand_share.swap_remove(p);
                    if p < cand.len() {
                        cand_pos[cand[p] as usize] = p as u32;
                    }
                }
                for &l in tb[..tlen].iter() {
                    let l = l as usize;
                    let p = cand_pos[l] as usize;
                    if p >= cand.len() || cand[p] != l as u32 {
                        continue;
                    }
                    let [c, u] = lcu[l];
                    cand_share[p] = c / u;
                }
            }

            // Re-project completion instants for flows whose rate moved;
            // everyone else keeps both rate and ETA (their pacing
            // entries stay valid).
            let settled_at = self.settled_at;
            if self.dense {
                // Dense pacing: the heap would churn one push per flow
                // per fill here; track the minimum ETA by scanning the
                // flows this fill already touched instead.
                if *heap_live {
                    eta_heap.clear();
                    *heap_live = false;
                }
                for &f in cb[..clen].iter() {
                    let i = f as usize;
                    let p = lpos[i] as usize;
                    let e = project_eta(rem_live[p], rate[i], settled_at);
                    eta[i] = e;
                    eta_live[p] = e;
                }
                let mut mn = SimTime::MAX;
                for &e in eta_live.iter() {
                    mn = mn.min(e);
                }
                self.next_eta = if live.is_empty() { None } else { Some(mn) };
                return;
            }
            if !*heap_live {
                // Back from dense mode: rebuild the heap from the live
                // set before the incremental pushes below.
                eta_heap.clear();
                for &f in live.iter() {
                    eta_heap.push(EtaEntry {
                        eta: eta[f as usize],
                        flow: f,
                    });
                }
                *heap_live = true;
            }
            for &f in cb[..clen].iter() {
                let i = f as usize;
                let p = lpos[i] as usize;
                let e = project_eta(rem_live[p], rate[i], settled_at);
                if e != eta[i] {
                    eta[i] = e;
                    eta_live[p] = e;
                    eta_heap.push(EtaEntry { eta: e, flow: f });
                }
            }
            // Compact the lazy heap when stale entries dominate, so long
            // churny runs stay O(live) in memory.
            if eta_heap.len() > 2 * live.len() + 64 {
                eta_heap.clear();
                for &idx in live.iter() {
                    eta_heap.push(EtaEntry {
                        eta: eta[idx as usize],
                        flow: idx,
                    });
                }
            }
        } else if !*heap_live {
            // Empty fill in dense pacing mode: completions may have
            // removed the minimum; rescan the (possibly empty) live set.
            let mut mn = SimTime::MAX;
            for &e in eta_live.iter() {
                mn = mn.min(e);
            }
            self.next_eta = if live.is_empty() { None } else { Some(mn) };
            return;
        }

        // Sparse pacing: pop stale heap entries (dead flow, or ETA
        // moved) until the top is live and current.
        loop {
            match self.eta_heap.peek() {
                None => {
                    self.next_eta = None;
                    return;
                }
                Some(e) => {
                    let i = e.flow as usize;
                    if self.alive[i] && self.eta[i] == e.eta {
                        self.next_eta = Some(e.eta);
                        return;
                    }
                }
            }
            self.eta_heap.pop();
        }
    }
}

/// Lowest id among `ids[i]` where `shares[i] == mn` (IEEE equality, same
/// as the scalar `==`). On x86-64 this runs as packed compares with a
/// movemask test per chunk; ties are rare, so the per-chunk branch is a
/// predictable not-taken jump and the loop streams at load throughput.
#[inline]
fn tie_min_id(shares: &[f64], ids: &[u32], mn: f64) -> u32 {
    debug_assert_eq!(shares.len(), ids.len());
    let mut best = u32::MAX;
    let mut i = 0;
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        // SSE2 is part of the x86-64 baseline.
        unsafe {
            let needle = _mm_set1_pd(mn);
            while i + 4 <= shares.len() {
                let a = _mm_loadu_pd(shares.as_ptr().add(i));
                let b = _mm_loadu_pd(shares.as_ptr().add(i + 2));
                let m = _mm_movemask_pd(_mm_cmpeq_pd(a, needle))
                    | (_mm_movemask_pd(_mm_cmpeq_pd(b, needle)) << 2);
                if m != 0 {
                    for k in 0..4 {
                        if m & (1 << k) != 0 {
                            best = best.min(ids[i + k]);
                        }
                    }
                }
                i += 4;
            }
        }
    }
    while i < shares.len() {
        if shares[i] == mn {
            best = best.min(ids[i]);
        }
        i += 1;
    }
    best
}

/// Branch-free minimum over a share slice, shaped so the paired `min`
/// accumulators compile to packed-double instructions. `min` is exact
/// and order-free, so the result is the same as a sequential fold.
#[inline]
fn simd_min(shares: &[f64]) -> f64 {
    let mut a0 = [f64::INFINITY; 2];
    let mut a1 = [f64::INFINITY; 2];
    let mut a2 = [f64::INFINITY; 2];
    let mut a3 = [f64::INFINITY; 2];
    let mut it = shares.chunks_exact(8);
    for c in &mut it {
        a0 = [a0[0].min(c[0]), a0[1].min(c[1])];
        a1 = [a1[0].min(c[2]), a1[1].min(c[3])];
        a2 = [a2[0].min(c[4]), a2[1].min(c[5])];
        a3 = [a3[0].min(c[6]), a3[1].min(c[7])];
    }
    let mut mn = a0[0]
        .min(a0[1])
        .min(a1[0].min(a1[1]))
        .min(a2[0].min(a2[1]).min(a3[0].min(a3[1])));
    for &s in it.remainder() {
        mn = mn.min(s);
    }
    mn
}

/// Completion instant of a flow with `remaining` bytes at `rate`,
/// projected from the settle point — the same rounding the from-scratch
/// solver applied on every recompute.
#[inline]
fn project_eta(remaining: f64, rate: f64, settled_at: SimTime) -> SimTime {
    if remaining <= EPS_BYTES {
        settled_at
    } else {
        debug_assert!(rate > 0.0, "live flow with zero rate");
        let ns = (remaining / rate).ceil().max(1.0) as u64;
        settled_at + SimDuration::from_ns(ns)
    }
}
