//! Unit coverage for the max-min fair flow simulation and fat-tree
//! routing, independent of the event engine.

use gaat_sim::SimTime;
use gaat_topo::{FatTreeGraph, FatTreeParams, FlowSim, LinkDesc, LinkId, LinkKind};

fn t(ns: u64) -> SimTime {
    SimTime::from_ns(ns)
}

fn one_link(bw: f64) -> FlowSim {
    FlowSim::new(vec![LinkDesc {
        kind: LinkKind::LeafUp,
        bw,
    }])
}

#[test]
fn single_flow_gets_full_bandwidth() {
    // 2 bytes/ns; 1000 bytes take 500 ns.
    let mut fs = one_link(2.0e9);
    fs.start(t(0), &[LinkId(0)], 1000.0, 7);
    assert_eq!(fs.next_wakeup(), Some(t(500)));
    let mut done = Vec::new();
    fs.advance(t(500), &mut done);
    assert_eq!(done, vec![7]);
    assert_eq!(fs.next_wakeup(), None);
    assert_eq!(fs.active_flows(), 0);
}

#[test]
fn two_flows_share_a_link_half_each() {
    let mut fs = one_link(2.0e9);
    fs.start(t(0), &[LinkId(0)], 1000.0, 1);
    fs.start(t(0), &[LinkId(0)], 1000.0, 2);
    // Each runs at 1 byte/ns -> both finish at 1000 ns.
    assert_eq!(fs.next_wakeup(), Some(t(1000)));
    let mut done = Vec::new();
    fs.advance(t(1000), &mut done);
    assert_eq!(done, vec![1, 2], "completion follows admission order");
}

#[test]
fn finishing_flow_returns_bandwidth() {
    let mut fs = one_link(2.0e9);
    fs.start(t(0), &[LinkId(0)], 1000.0, 1);
    fs.start(t(0), &[LinkId(0)], 3000.0, 2);
    // Both at 1 byte/ns; flow 1 done at t=1000 with 2000 bytes left on
    // flow 2, which then speeds up to 2 bytes/ns and lands at t=2000.
    assert_eq!(fs.next_wakeup(), Some(t(1000)));
    let mut done = Vec::new();
    fs.advance(t(1000), &mut done);
    assert_eq!(done, vec![1]);
    assert_eq!(fs.next_wakeup(), Some(t(2000)));
    done.clear();
    fs.advance(t(2000), &mut done);
    assert_eq!(done, vec![2]);
}

#[test]
fn water_filling_gives_leftover_to_unconstrained_flow() {
    // link0: 10 bytes/ns, link1: 1 byte/ns.
    let mut fs = FlowSim::new(vec![
        LinkDesc {
            kind: LinkKind::LeafUp,
            bw: 10.0e9,
        },
        LinkDesc {
            kind: LinkKind::LeafUp,
            bw: 1.0e9,
        },
    ]);
    // Flow 2 is pinned to 1 byte/ns by link1; flow 1 gets the other
    // 9 bytes/ns of link0 instead of a naive equal split of 5.
    fs.start(t(0), &[LinkId(0)], 1800.0, 1);
    fs.start(t(0), &[LinkId(0), LinkId(1)], 100.0, 2);
    let mut done = Vec::new();
    fs.advance(t(100), &mut done);
    assert_eq!(done, vec![2], "bottlenecked flow lands at 100 ns");
    done.clear();
    fs.advance(t(200), &mut done);
    assert_eq!(done, vec![1], "wide flow ran at 9 B/ns from the start");
}

#[test]
fn late_arrival_slows_existing_flow() {
    let mut fs = one_link(2.0e9);
    fs.start(t(0), &[LinkId(0)], 2000.0, 1);
    assert_eq!(fs.next_wakeup(), Some(t(1000)));
    // At t=500 flow 1 has 1000 bytes left; a newcomer halves its rate.
    fs.start(t(500), &[LinkId(0)], 1000.0, 2);
    assert_eq!(fs.next_wakeup(), Some(t(1500)));
    let mut done = Vec::new();
    fs.advance(t(1500), &mut done);
    assert_eq!(done, vec![1, 2]);
}

#[test]
fn zero_byte_flow_completes_immediately() {
    let mut fs = one_link(2.0e9);
    fs.start(t(10), &[LinkId(0)], 0.0, 9);
    assert_eq!(fs.next_wakeup(), Some(t(10)));
    let mut done = Vec::new();
    fs.advance(t(10), &mut done);
    assert_eq!(done, vec![9]);
}

#[test]
fn identical_runs_replay_exactly() {
    let run = || {
        let mut fs = FlowSim::new(vec![
            LinkDesc {
                kind: LinkKind::NicUp,
                bw: 3.0e9,
            },
            LinkDesc {
                kind: LinkKind::LeafUp,
                bw: 2.0e9,
            },
        ]);
        let mut done = Vec::new();
        let mut trace = Vec::new();
        for i in 0..40u64 {
            let route: &[LinkId] = if i % 3 == 0 {
                &[LinkId(0)]
            } else {
                &[LinkId(0), LinkId(1)]
            };
            fs.start(t(i * 37), route, 500.0 + (i * 131 % 900) as f64, i);
            while let Some(w) = fs.next_wakeup() {
                if w > t((i + 1) * 37) {
                    break;
                }
                fs.advance(w, &mut done);
                trace.push((w.as_ns(), done.len()));
            }
        }
        while let Some(w) = fs.next_wakeup() {
            fs.advance(w, &mut done);
            trace.push((w.as_ns(), done.len()));
        }
        (done, trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn usage_counters_track_bytes_peak_and_busy_time() {
    let mut fs = one_link(2.0e9);
    fs.start(t(0), &[LinkId(0)], 1000.0, 1);
    fs.start(t(0), &[LinkId(0)], 1000.0, 2);
    let mut done = Vec::new();
    fs.advance(t(1000), &mut done);
    let report = fs.link_report(t(2000));
    assert_eq!(report.len(), 1);
    let usage = &report[0];
    assert!((usage.bytes - 2000.0).abs() < 1e-6);
    assert_eq!(usage.peak_flows, 2);
    assert_eq!(usage.busy_ns, 1000);
    assert!((usage.utilization - 0.5).abs() < 1e-9);

    let summary = fs.congestion(t(2000));
    assert_eq!(summary.peak_link_flows, 2);
    assert_eq!(summary.hottest_link, Some(LinkId(0)));
    assert!((summary.max_link_utilization - 0.5).abs() < 1e-9);
}

#[test]
fn busy_spans_cover_active_intervals() {
    let mut fs = one_link(2.0e9);
    fs.set_record_spans(true);
    fs.start(t(100), &[LinkId(0)], 1000.0, 1);
    let mut done = Vec::new();
    fs.advance(t(600), &mut done);
    assert_eq!(done, vec![1]);
    let mut spans = Vec::new();
    fs.drain_spans(&mut spans);
    assert_eq!(spans.len(), 1);
    assert_eq!((spans[0].start, spans[0].end), (t(100), t(600)));
    assert_eq!(spans[0].kind, LinkKind::LeafUp);
}

#[test]
fn fat_tree_routes_are_static_and_leveled() {
    let params = FatTreeParams {
        leaf_radix: 2,
        spines: 2,
        trunk_bw: 24.0e9,
        hop_latency_ns: 150,
    };
    let g = FatTreeGraph::new(6, 60.0e9, 23.0e9, params);
    // 6 nodes -> 3 leaves; links: 6 nvlink, 6 nic-up, 6 nic-down,
    // 3 leaves * 2 spines * 2 directions = 12 trunks.
    assert_eq!(g.links().len(), 30);

    let mut route = Vec::new();
    // Same node: NVLink loopback, zero switch hops.
    assert_eq!(g.route(3, 3, &mut route), 0);
    assert_eq!(route, vec![LinkId(3)]);
    assert_eq!(g.links()[3].kind, LinkKind::NvLink);

    // Same leaf (nodes 0 and 1): NIC up + NIC down via one leaf switch.
    assert_eq!(g.route(0, 1, &mut route), 1);
    assert_eq!(route, vec![LinkId(6), LinkId(13)]);
    assert_eq!(g.links()[6].kind, LinkKind::NicUp);
    assert_eq!(g.links()[13].kind, LinkKind::NicDown);

    // Cross leaf (node 0 -> node 5, leaf 0 -> leaf 2, spine 5 % 2 = 1).
    assert_eq!(g.route(0, 5, &mut route), 3);
    assert_eq!(route.len(), 4);
    assert_eq!(g.links()[route[1].0 as usize].kind, LinkKind::LeafUp);
    assert_eq!(g.links()[route[2].0 as usize].kind, LinkKind::LeafDown);
    // Deterministic: the same pair always picks the same spine.
    let mut again = Vec::new();
    g.route(0, 5, &mut again);
    assert_eq!(route, again);
}

#[test]
fn failover_picks_alternate_spine_deterministically() {
    let params = FatTreeParams {
        leaf_radix: 2,
        spines: 2,
        trunk_bw: 24.0e9,
        hop_latency_ns: 150,
    };
    let mut g = FatTreeGraph::new(6, 60.0e9, 23.0e9, params);
    let mut primary = Vec::new();
    let info = g.try_route(0, 5, &mut primary).expect("healthy route");
    assert!(!info.failover);

    // Kill the primary spine's uplink trunk: the route must move to the
    // other spine and report the failover.
    g.set_link_state(primary[1], false);
    assert!(!g.link_is_up(primary[1]));
    let mut alt = Vec::new();
    let info = g.try_route(0, 5, &mut alt).expect("alternate spine");
    assert!(info.failover);
    assert_eq!(info.hops, 3);
    assert_ne!(alt[1], primary[1]);
    // Deterministic: repeated queries under the same link state agree.
    let mut again = Vec::new();
    assert_eq!(g.try_route(0, 5, &mut again), Some(info));
    assert_eq!(alt, again);

    // Restore: the primary spine wins again.
    g.set_link_state(primary[1], true);
    let mut back = Vec::new();
    let info = g.try_route(0, 5, &mut back).expect("restored");
    assert!(!info.failover);
    assert_eq!(back, primary);
}

#[test]
fn no_route_when_nic_or_all_spines_down() {
    let params = FatTreeParams {
        leaf_radix: 2,
        spines: 2,
        trunk_bw: 24.0e9,
        hop_latency_ns: 150,
    };
    let mut g = FatTreeGraph::new(6, 60.0e9, 23.0e9, params);
    let mut buf = Vec::new();
    // Down the destination NIC ejection port: unreachable.
    g.route(0, 5, &mut buf);
    let nic_down = *buf.last().unwrap();
    g.set_link_state(nic_down, false);
    assert_eq!(g.try_route(0, 5, &mut buf), None);
    g.set_link_state(nic_down, true);

    // Down both spine pairs between leaf 0 and leaf 2.
    let mut r = Vec::new();
    g.try_route(0, 5, &mut r).unwrap();
    g.set_link_state(r[1], false);
    g.try_route(0, 5, &mut r).unwrap();
    g.set_link_state(r[1], false);
    assert_eq!(g.try_route(0, 5, &mut r), None);
    // Intra-leaf traffic is unaffected by trunk failures.
    assert!(g.try_route(0, 1, &mut r).is_some());
}

#[test]
fn abort_link_kills_crossing_flows_and_respects_survivors() {
    // link 0 shared; link 1 only used by flow 2.
    let mut fs = FlowSim::new(vec![
        LinkDesc {
            kind: LinkKind::LeafUp,
            bw: 2.0e9,
        },
        LinkDesc {
            kind: LinkKind::LeafUp,
            bw: 2.0e9,
        },
    ]);
    fs.start(t(0), &[LinkId(0)], 1000.0, 1);
    fs.start(t(0), &[LinkId(0)], 1000.0, 2);
    fs.start(t(0), &[LinkId(1)], 1000.0, 3);
    assert_eq!(fs.next_wakeup(), Some(t(500)));
    // At t=250, link 0 fails: flows 1 and 2 abort in admission order.
    let mut aborted = Vec::new();
    fs.abort_link(t(250), LinkId(0), &mut aborted);
    assert_eq!(aborted, vec![1, 2]);
    assert_eq!(fs.active_flows(), 1);
    // Flow 3 had the full link all along: unchanged ETA.
    assert_eq!(fs.next_wakeup(), Some(t(500)));
    let mut done = Vec::new();
    fs.advance(t(500), &mut done);
    assert_eq!(done, vec![3]);
    // Carried bytes before the abort stay attributed: 250 ns at
    // 1 byte/ns each = 250 bytes per aborted flow.
    let report = fs.link_report(t(500));
    assert!((report[0].bytes - 500.0).abs() < 1e-6);
}

#[test]
fn abort_link_frees_bandwidth_for_survivors() {
    let mut fs = one_link(2.0e9);
    fs.start(t(0), &[LinkId(0)], 1000.0, 1);
    let mut fs2 = FlowSim::new(vec![
        LinkDesc {
            kind: LinkKind::LeafUp,
            bw: 2.0e9,
        },
        LinkDesc {
            kind: LinkKind::NicUp,
            bw: 2.0e9,
        },
    ]);
    // Flow 1 crosses both links, flow 2 only link 0. Killing link 1
    // aborts flow 1 and flow 2 doubles its rate.
    fs2.start(t(0), &[LinkId(0), LinkId(1)], 1000.0, 1);
    fs2.start(t(0), &[LinkId(0)], 1000.0, 2);
    assert_eq!(fs2.next_wakeup(), Some(t(1000)));
    let mut aborted = Vec::new();
    fs2.abort_link(t(500), LinkId(1), &mut aborted);
    assert_eq!(aborted, vec![1]);
    // Flow 2 has 500 bytes left at 2 bytes/ns -> done at t=750.
    assert_eq!(fs2.next_wakeup(), Some(t(750)));
    let mut done = Vec::new();
    fs2.advance(t(750), &mut done);
    assert_eq!(done, vec![2]);
    drop(fs);
}

#[test]
fn set_link_bw_degrades_and_restores() {
    let mut fs = one_link(2.0e9);
    fs.start(t(0), &[LinkId(0)], 1000.0, 1);
    assert_eq!(fs.next_wakeup(), Some(t(500)));
    // Halve the capacity at t=250: the flow is settled to t=250 at its
    // old rate internally (no advance needed), leaving 500 bytes at
    // 1 byte/ns.
    fs.set_link_bw(t(250), LinkId(0), 1.0e9);
    assert_eq!(fs.next_wakeup(), Some(t(750)));
    // Restore at t=500: 250 bytes left at 2 bytes/ns.
    fs.set_link_bw(t(500), LinkId(0), 2.0e9);
    assert_eq!(fs.next_wakeup(), Some(t(625)));
    let mut done = Vec::new();
    fs.advance(t(625), &mut done);
    assert_eq!(done, vec![1]);
}
