//! Differential tests of the incremental max-min solver in
//! [`FlowSim`] against a deliberately naive from-scratch reference.
//!
//! The reference re-runs progressive water-filling over *every* live
//! flow at each observation point, with no dirty sets, no deferred-fill
//! merging, no dense/sparse split, no pacing heap, and no SIMD — just
//! the textbook algorithm in the same op order. The property asserted
//! is exact equality (`==` on the `f64` rates, not approximate): the
//! incremental solver's documentation claims it replays the
//! from-scratch op sequence bit for bit, and these tests hold it to
//! that over randomized admit/advance churn, including same-instant
//! event batches, sleeps past completion instants, and zero-byte flows.

use proptest::prelude::*;

use gaat_sim::{SimDuration, SimTime};
use gaat_topo::{FlowSim, LinkDesc, LinkId, LinkKind, EPS_BYTES};

// ---------------------------------------------------------------------------
// Reference model
// ---------------------------------------------------------------------------

struct RefFlow {
    token: u64,
    route: Vec<usize>,
    total: f64,
    rem: f64,
    rate: f64,
    eta: SimTime,
}

/// From-scratch water-filling reference. Mirrors the *observable*
/// semantics of `FlowSim` — deferred recomputation at the next query,
/// drain-then-collect on advance, ETA re-projection only when a rate
/// changes — while recomputing every rate from zero each time.
struct RefSim {
    caps: Vec<f64>,
    flows: Vec<RefFlow>,
    settled_at: SimTime,
    pending: bool,
    // Per-link accounting, kept independently of FlowSim's.
    bytes_done: Vec<f64>,
    busy_ns: Vec<u64>,
    busy_since: Vec<SimTime>,
    occ: Vec<u32>,
    peak: Vec<u32>,
}

fn project_eta(rem: f64, rate: f64, at: SimTime) -> SimTime {
    if rem <= EPS_BYTES {
        at
    } else {
        let ns = (rem / rate).ceil().max(1.0) as u64;
        at + SimDuration::from_ns(ns)
    }
}

impl RefSim {
    fn new(links: &[LinkDesc]) -> Self {
        let n = links.len();
        RefSim {
            caps: links.iter().map(|d| d.bw / 1e9).collect(),
            flows: Vec::new(),
            settled_at: SimTime::ZERO,
            pending: false,
            bytes_done: vec![0.0; n],
            busy_ns: vec![0; n],
            busy_since: vec![SimTime::ZERO; n],
            occ: vec![0; n],
            peak: vec![0; n],
        }
    }

    /// Textbook progressive water-filling over all live flows: pick the
    /// bottleneck (min capacity-left / unfrozen, ties to the lowest link
    /// id), freeze its flows, subtract, repeat. ETAs are re-projected
    /// only for flows whose rate changed, like the real solver.
    fn refill(&mut self) {
        self.pending = false;
        let nl = self.caps.len();
        let mut cap = self.caps.clone();
        let mut unfrozen = vec![0u32; nl];
        for f in &self.flows {
            for &l in &f.route {
                unfrozen[l] += 1;
            }
        }
        let mut frozen = vec![false; self.flows.len()];
        let mut left = self.flows.len();
        while left > 0 {
            let mut mn = f64::INFINITY;
            let mut bottleneck = usize::MAX;
            for l in 0..nl {
                if unfrozen[l] > 0 {
                    let s = cap[l] / unfrozen[l] as f64;
                    if s < mn {
                        mn = s;
                        bottleneck = l;
                    }
                }
            }
            if bottleneck == usize::MAX {
                break;
            }
            let share = mn.max(0.0);
            #[allow(clippy::needless_range_loop)]
            for fi in 0..self.flows.len() {
                if frozen[fi] || !self.flows[fi].route.contains(&bottleneck) {
                    continue;
                }
                frozen[fi] = true;
                left -= 1;
                let f = &mut self.flows[fi];
                if f.rate != share {
                    f.rate = share;
                    f.eta = project_eta(f.rem, share, self.settled_at);
                }
                for &l in &f.route {
                    if l != bottleneck {
                        cap[l] = (cap[l] - share).max(0.0);
                        unfrozen[l] -= 1;
                    }
                }
            }
            unfrozen[bottleneck] = 0;
        }
    }

    /// Drain to `now`; a flow crossing the completion threshold outside
    /// an `advance` gets its ETA re-anchored to the settle point.
    fn settle(&mut self, now: SimTime) {
        let dt = now.since(self.settled_at).as_ns() as f64;
        if dt > 0.0 {
            for f in &mut self.flows {
                let was_open = f.rem > EPS_BYTES;
                let carried = (f.rate * dt).min(f.rem);
                f.rem -= carried;
                if was_open && f.rem <= EPS_BYTES {
                    f.eta = now;
                }
            }
        }
        self.settled_at = now;
    }

    fn start(&mut self, now: SimTime, route: &[usize], bytes: f64, token: u64) {
        if self.pending && now > self.settled_at {
            self.refill();
        }
        self.settle(now);
        for &l in route {
            self.occ[l] += 1;
            if self.occ[l] == 1 {
                self.busy_since[l] = now;
            }
            self.peak[l] = self.peak[l].max(self.occ[l]);
        }
        self.flows.push(RefFlow {
            token,
            route: route.to_vec(),
            total: bytes.max(0.0),
            rem: bytes.max(0.0),
            rate: -1.0,
            eta: SimTime::MAX,
        });
        self.pending = true;
    }

    fn advance(&mut self, now: SimTime, done: &mut Vec<u64>) {
        if self.pending && now > self.settled_at {
            self.refill();
        }
        let dt = now.since(self.settled_at).as_ns() as f64;
        self.settled_at = now;
        let mut completed = false;
        if dt > 0.0 {
            for f in &mut self.flows {
                let carried = (f.rate * dt).min(f.rem);
                f.rem -= carried;
            }
        }
        let mut kept = Vec::new();
        for f in std::mem::take(&mut self.flows) {
            if f.rem > EPS_BYTES {
                kept.push(f);
                continue;
            }
            completed = true;
            done.push(f.token);
            for &l in &f.route {
                self.occ[l] -= 1;
                self.bytes_done[l] += f.total;
                if self.occ[l] == 0 {
                    self.busy_ns[l] += now.since(self.busy_since[l]).as_ns();
                }
            }
        }
        self.flows = kept;
        if completed {
            self.pending = true;
        }
    }

    fn next_wakeup(&mut self) -> Option<SimTime> {
        if self.pending {
            self.refill();
        }
        self.flows.iter().map(|f| f.eta).min()
    }

    fn live_flows(&mut self) -> Vec<(u64, f64, SimTime)> {
        if self.pending {
            self.refill();
        }
        self.flows
            .iter()
            .map(|f| (f.token, f.rate, f.eta))
            .collect()
    }

    /// `(bytes, busy_ns, peak)` per link at `horizon`, matching the
    /// accounting rules of `FlowSim::link_report`.
    fn link_report(&self, horizon: SimTime) -> Vec<(f64, u64, u32)> {
        let mut out = Vec::new();
        for l in 0..self.caps.len() {
            let mut bytes = self.bytes_done[l];
            for f in &self.flows {
                if f.route.contains(&l) {
                    bytes += f.total - f.rem;
                }
            }
            let mut busy = self.busy_ns[l];
            if self.occ[l] > 0 {
                busy += horizon.since(self.busy_since[l]).as_ns();
            }
            out.push((bytes, busy, self.peak[l]));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Churn driver
// ---------------------------------------------------------------------------

const NUM_LINKS: usize = 8;

fn links() -> Vec<LinkDesc> {
    (0..NUM_LINKS)
        .map(|i| LinkDesc {
            kind: LinkKind::LeafUp,
            bw: [1.0e9, 2.0e9, 4.0e9, 8.0e9][i % 4],
        })
        .collect()
}

fn route_from_bits(bits: u16) -> Vec<usize> {
    let bits = (bits as usize % ((1 << NUM_LINKS) - 1)) + 1; // never empty
    (0..NUM_LINKS).filter(|l| bits & (1 << l) != 0).collect()
}

fn assert_same_state(fs: &mut FlowSim, rf: &mut RefSim, ctx: &str) {
    assert_eq!(fs.next_wakeup(), rf.next_wakeup(), "next_wakeup: {ctx}");
    let a = fs.live_flows();
    let b = rf.live_flows();
    assert_eq!(a.len(), b.len(), "live count: {ctx}");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.0, y.0, "token order: {ctx}");
        assert_eq!(x.1, y.1, "rate of flow {}: {ctx}", x.0);
        assert_eq!(x.2, y.2, "eta of flow {}: {ctx}", x.0);
    }
}

/// Run one generated churn scenario through both solvers, comparing
/// rates, ETAs, completion batches, and per-link stats exactly.
fn run_scenario(ops: Vec<(u8, u16, u32, u16)>) {
    let mut fs = FlowSim::new(links());
    let mut rf = RefSim::new(&links());
    let mut now = SimTime::ZERO;
    let mut token = 0u64;
    let (mut d1, mut d2) = (Vec::new(), Vec::new());

    for (i, &(kind, bits, bytes, dt)) in ops.iter().enumerate() {
        match kind % 4 {
            // Admit at the current instant: same-instant admits merge
            // into one deferred recompute.
            0 => {
                let route = route_from_bits(bits);
                let ids: Vec<LinkId> = route.iter().map(|&l| LinkId(l as u32)).collect();
                fs.start(now, &ids, bytes as f64, token);
                rf.start(now, &route, bytes as f64, token);
                token += 1;
            }
            // Admit later: start() itself settles forward, possibly
            // carrying flows across the completion threshold.
            1 => {
                now += SimDuration::from_ns(dt as u64 + 1);
                let route = route_from_bits(bits);
                let ids: Vec<LinkId> = route.iter().map(|&l| LinkId(l as u32)).collect();
                fs.start(now, &ids, bytes as f64, token);
                rf.start(now, &route, bytes as f64, token);
                token += 1;
            }
            // Hop exactly onto the next completion instant.
            2 => {
                let w1 = fs.next_wakeup();
                assert_eq!(w1, rf.next_wakeup(), "wakeup before hop {i}");
                if let Some(w) = w1 {
                    now = w;
                    d1.clear();
                    d2.clear();
                    fs.advance(now, &mut d1);
                    rf.advance(now, &mut d2);
                    assert_eq!(d1, d2, "completion batch at hop {i}");
                }
            }
            // Sleep an arbitrary interval, possibly past several ETAs.
            _ => {
                now += SimDuration::from_ns(dt as u64);
                d1.clear();
                d2.clear();
                fs.advance(now, &mut d1);
                rf.advance(now, &mut d2);
                assert_eq!(d1, d2, "completion batch at sleep {i}");
            }
        }
        // Observing every op would defeat deferred-fill merging, so
        // only a pseudo-random half of the admits are inspected.
        if kind % 4 >= 2 || bytes % 2 == 0 {
            assert_same_state(&mut fs, &mut rf, &format!("after op {i}"));
        }
    }

    // Drain everything and compare the per-link accounting.
    for guard in 0.. {
        assert!(guard < 100_000, "drain did not converge");
        let w1 = fs.next_wakeup();
        assert_eq!(w1, rf.next_wakeup(), "wakeup during drain");
        let Some(w) = w1 else { break };
        now = w;
        d1.clear();
        d2.clear();
        fs.advance(now, &mut d1);
        rf.advance(now, &mut d2);
        assert_eq!(d1, d2, "completion batch during drain");
    }
    assert_eq!(fs.active_flows(), 0);

    let horizon = now + SimDuration::from_ns(1);
    let report = fs.link_report(horizon);
    let expect = rf.link_report(horizon);
    for (u, (bytes, busy, peak)) in report.iter().zip(expect.iter()) {
        assert_eq!(u.bytes, *bytes, "bytes on {:?}", u.link);
        assert_eq!(u.busy_ns, *busy, "busy_ns on {:?}", u.link);
        assert_eq!(u.peak_flows, *peak, "peak_flows on {:?}", u.link);
    }

    // The incremental solver did real work and its counters add up.
    let stats = fs.solver_stats();
    if token > 0 {
        assert!(stats.recomputes > 0);
    }
    assert_eq!(stats.dirty_hist.iter().sum::<u64>(), stats.recomputes);
}

proptest! {
    /// The incremental solver and the from-scratch reference agree
    /// exactly — rates, ETAs, wakeups, completion order, link stats —
    /// over arbitrary admit/advance churn.
    #[test]
    fn incremental_matches_from_scratch(
        ops in prop::collection::vec(
            (0u8..8, 0u16..1024, 0u32..2_000_000, 0u16..50_000),
            1..80,
        )
    ) {
        run_scenario(ops);
    }
}

// ---------------------------------------------------------------------------
// Directed regressions
// ---------------------------------------------------------------------------

fn t(ns: u64) -> SimTime {
    SimTime::from_ns(ns)
}

/// Completing the only flow on otherwise-empty links must take the
/// empty-dirty-set fast path: no live flow is re-water-filled, and
/// bystander flows keep their exact rate and ETA.
#[test]
fn empty_dirty_set_skips_live_flows() {
    // Enough singleton flows that the dense-mode hysteresis releases
    // the solver back to sparse fills (see flush()).
    let n = 12usize;
    let links: Vec<LinkDesc> = (0..n)
        .map(|_| LinkDesc {
            kind: LinkKind::NicUp,
            bw: 1.0e9,
        })
        .collect();
    let mut fs = FlowSim::new(links);
    for i in 0..n {
        fs.start(
            t(0),
            &[LinkId(i as u32)],
            1000.0 * (i as f64 + 1.0),
            i as u64,
        );
    }
    fs.next_wakeup(); // first fill: touches all 12
    let before_flows = fs.live_flows();
    let s0 = fs.solver_stats();

    // Flow 0 finishes at 1µs, leaving link 0 empty.
    let mut done = Vec::new();
    fs.advance(t(1_000), &mut done);
    assert_eq!(done, vec![0]);
    fs.next_wakeup(); // deferred fill runs here

    let s1 = fs.solver_stats();
    assert_eq!(s1.recomputes, s0.recomputes + 1);
    assert_eq!(
        s1.empty_recomputes,
        s0.empty_recomputes + 1,
        "a completion on an otherwise-empty link is an empty dirty set"
    );
    assert_eq!(s1.touched_flows, s0.touched_flows, "no flow re-filled");
    assert_eq!(
        s1.rate_updates_avoided - s0.rate_updates_avoided,
        (n - 1) as u64,
        "all surviving flows were skipped"
    );
    // Bystanders keep rate and ETA exactly.
    let after_flows = fs.live_flows();
    assert_eq!(&before_flows[1..], &after_flows[..]);
}

/// Churn inside one bottleneck component leaves disjoint components'
/// flows untouched (counted via `touched_flows`).
#[test]
fn disjoint_component_not_refilled() {
    let n = 20usize;
    let links: Vec<LinkDesc> = (0..n)
        .map(|_| LinkDesc {
            kind: LinkKind::NicUp,
            bw: 1.0e9,
        })
        .collect();
    let mut fs = FlowSim::new(links);
    for i in 0..n {
        fs.start(t(0), &[LinkId(i as u32)], 1.0e6, i as u64);
    }
    fs.next_wakeup();
    let s0 = fs.solver_stats();

    // A second flow on link 5 halves that component's shares; nothing
    // else shares a link with it.
    fs.start(t(10), &[LinkId(5)], 1.0e6, 99);
    fs.next_wakeup();
    let s1 = fs.solver_stats();
    assert_eq!(
        s1.touched_flows - s0.touched_flows,
        2,
        "only link 5's two flows re-filled"
    );
    assert_eq!(
        s1.rate_updates_avoided - s0.rate_updates_avoided,
        (n - 1) as u64
    );
}
