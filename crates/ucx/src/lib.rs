//! # gaat-ucx — GPU-aware communication layer
//!
//! The analogue of UCX underneath both runtimes (the task runtime's
//! Channel API and the MPI baseline), implementing the protocols whose
//! interplay drives the paper's results:
//!
//! - **Eager** for small host-memory messages: data travels with the
//!   first packet; the sender completes immediately.
//! - **Rendezvous** (RTS → CTS → DATA) for large host-memory messages.
//! - **GPUDirect RDMA** for device-memory messages up to the pipeline
//!   threshold: rendezvous, with the NIC reading/writing GPU memory
//!   directly (small extra latency, no DMA engine involvement).
//! - **Pipelined host staging** for large device-memory messages: after
//!   the handshake the payload is chunked; every chunk is staged through
//!   the sender's D2H engine, the wire, and the receiver's H2D engine.
//!   The staging copies occupy the *same* DMA engines the application
//!   uses — the contention that makes GPU-aware communication lose to
//!   application-level host staging for 9 MiB halos in the paper's
//!   Fig. 7a, amplified by overdecomposition.
//!
//! Plus one-sided **active messages** used by the task runtime for entry
//! method invocation.
//!
//! Two-sided operations use (source worker, tag) matching with posted /
//! unexpected queues, like MPI and the Charm++ Channel API.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

use gaat_gpu::{BufRange, CompletionTag, DeviceId, GpuHost, Op, Space, StreamId};
use gaat_net::{NetHost, NetMsg, NodeId, TrafficClass};
use gaat_sim::{EventId, FaultPlan, Sim, SimDuration};

/// Reserved token bit marking a delivery acknowledgement. Ack messages
/// carry `original_token | ACK_BIT` and no protocol state of their own,
/// so a lost ack leaks nothing — the sender's timeout recovers it.
const ACK_BIT: u64 = 1 << 63;

/// A communication endpoint — one per PE/process (and therefore one per
/// GPU in the paper's configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkerId(pub usize);

/// Message tag for two-sided matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tag(pub u64);

/// Where a message buffer lives: a range of some device's memory pool
/// (which holds both GPU and pinned-host allocations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLoc {
    /// The owning device.
    pub device: DeviceId,
    /// The element range.
    pub range: BufRange,
}

/// Calibration of the delivery-reliability protocol (per-message acks,
/// timeout-driven retransmission with exponential backoff, duplicate
/// suppression, bounded-retry peer-death escalation).
///
/// Disabled by default: the fault-free model is lossless, and keeping
/// the ack traffic off the wire preserves bit-identical schedules with
/// builds that predate fault injection. Enable it alongside a lossy
/// [`gaat_sim::FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReliabilityParams {
    /// Master switch; off = fire-and-forget (the seed behaviour).
    pub enabled: bool,
    /// Time from transmission to the first retransmission if no ack
    /// arrives. Must exceed the worst-case round trip or spurious
    /// (duplicate-suppressed) retransmits burn bandwidth.
    pub ack_timeout: SimDuration,
    /// Timeout multiplier per successive attempt (exponential backoff).
    pub backoff_mult: f64,
    /// Retransmissions before the peer is declared dead and
    /// [`UcxEvent::PeerDead`] fires.
    pub max_retries: u32,
    /// Wire size of one ack message.
    pub ack_bytes: u64,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            enabled: false,
            ack_timeout: SimDuration::from_us(500),
            backoff_mult: 2.0,
            max_retries: 8,
            ack_bytes: 32,
        }
    }
}

/// Protocol calibration constants.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UcxParams {
    /// Host-memory messages up to this size go eager.
    pub eager_threshold: u64,
    /// Device-memory messages up to this size use GPUDirect RDMA;
    /// beyond it, the pipelined host-staging protocol (the protocol
    /// switch observed in the paper's Fig. 7a).
    pub pipeline_threshold: u64,
    /// Chunk size of the pipelined staging protocol.
    pub pipeline_chunk: u64,
    /// Extra per-message latency of a GPUDirect transfer (NIC↔GPU BAR
    /// access setup).
    pub gpudirect_extra_latency: SimDuration,
    /// Software processing time for an RTS or CTS control message.
    pub handshake_overhead: SimDuration,
    /// Wire header added to every message.
    pub header_bytes: u64,
    /// Effective wire bandwidth derating for GPUDirect reads (NIC pulling
    /// from GPU BAR is slightly slower than host memory; 1.0 = none).
    pub gpudirect_bw_derate: f64,
    /// Effective bandwidth derating of the pipelined host-staging
    /// protocol: bounce-buffer cycling and chunk synchronization keep it
    /// well below plain host-memory transfers (cf. Hanford et al.,
    /// "Challenges of GPU-aware communication in MPI" — the reference the
    /// paper gives for this protocol switch).
    pub pipeline_bw_derate: f64,
    /// Priority class used for staging DMA operations.
    pub staging_priority: usize,
    /// Delivery-reliability protocol (off by default).
    pub reliability: ReliabilityParams,
}

impl Default for UcxParams {
    fn default() -> Self {
        UcxParams {
            eager_threshold: 64 << 10,
            pipeline_threshold: 512 << 10,
            pipeline_chunk: 1 << 20,
            gpudirect_extra_latency: SimDuration::from_ns(1_100),
            handshake_overhead: SimDuration::from_ns(350),
            header_bytes: 64,
            gpudirect_bw_derate: 1.15,
            pipeline_bw_derate: 1.5,
            staging_priority: 2,
            reliability: ReliabilityParams::default(),
        }
    }
}

/// Completion notifications delivered to the embedding world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UcxEvent {
    /// A two-sided send completed (buffer reusable).
    SendDone {
        /// The sending worker.
        worker: WorkerId,
        /// User cookie passed to [`isend`].
        user: u64,
    },
    /// A two-sided receive completed (data landed).
    RecvDone {
        /// The receiving worker.
        worker: WorkerId,
        /// User cookie passed to [`irecv`].
        user: u64,
    },
    /// An active message arrived.
    AmDelivered {
        /// The destination worker.
        at: WorkerId,
        /// User cookie passed to [`am_send`].
        user: u64,
    },
    /// Retransmissions to a worker exhausted
    /// [`ReliabilityParams::max_retries`] without an ack: the peer is
    /// presumed dead. The runtime decides what that means (trigger
    /// recovery, abort, ignore).
    PeerDead {
        /// The unresponsive worker.
        worker: WorkerId,
    },
}

/// World-side requirements for hosting the communication layer.
pub trait UcxHost: GpuHost + NetHost {
    /// Access the protocol state.
    fn ucx_mut(&mut self) -> &mut UcxState;
    /// Node hosting a worker.
    fn worker_node(&self, w: WorkerId) -> NodeId;
    /// Completion callback; may start more communication.
    fn on_ucx_event(&mut self, sim: &mut Sim<Self>, ev: UcxEvent);
    /// Allocate a GPU completion tag that the world will route back to
    /// [`on_gpu_tag`] with the given cookie.
    fn alloc_gpu_tag(&mut self, cookie: u64) -> CompletionTag;
    /// Whether the runtime still considers a worker alive. Dead workers
    /// stop the retry machinery without a `PeerDead` escalation (the
    /// runtime already knows). Default: everyone lives.
    fn worker_alive(&self, _w: WorkerId) -> bool {
        true
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    Eager,
    Rendezvous,
    GpuDirect,
    Pipelined,
}

#[derive(Debug, Clone)]
struct Transfer {
    from: WorkerId,
    to: WorkerId,
    tag: Tag,
    bytes: u64,
    protocol: Protocol,
    send_loc: MemLoc,
    send_user: u64,
    recv_loc: Option<MemLoc>,
    recv_user: u64,
    payload: Option<Vec<f64>>,
    chunks_total: u32,
    chunks_d2h_done: u32,
    chunks_h2d_done: u32,
}

#[derive(Debug, Clone, Copy)]
enum NetEvent {
    Eager { xfer: u64 },
    Rts { xfer: u64 },
    Cts { xfer: u64 },
    Data { xfer: u64 },
    Chunk { xfer: u64, bytes: u64 },
    Am { at: WorkerId, user: u64 },
}

#[derive(Debug, Clone, Copy)]
enum GpuTagEvent {
    ChunkD2hDone { xfer: u64 },
    ChunkH2dDone { xfer: u64 },
}

#[derive(Debug, Clone)]
struct PostedRecv {
    from: WorkerId,
    tag: Tag,
    loc: MemLoc,
    user: u64,
}

#[derive(Debug, Clone)]
struct UnexpectedArrival {
    from: WorkerId,
    tag: Tag,
    xfer: u64,
    /// true when the eager payload already arrived; false for an RTS.
    eager: bool,
}

#[derive(Debug, Clone, Default)]
struct WorkerEp {
    posted: Vec<PostedRecv>,
    unexpected: Vec<UnexpectedArrival>,
}

/// Sender-side state of one unacknowledged message.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// The message as last transmitted (`attempt` tracks retries).
    msg: NetMsg,
    /// Destination worker, for liveness checks and escalation.
    to: WorkerId,
    /// Retransmissions performed so far.
    attempts: u32,
    /// The pending timeout event (cancelled on ack).
    timer: EventId,
}

/// Counters of protocol activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct UcxStats {
    /// Eager sends.
    pub eager: u64,
    /// Host rendezvous sends.
    pub rendezvous: u64,
    /// GPUDirect sends.
    pub gpudirect: u64,
    /// Pipelined host-staging sends.
    pub pipelined: u64,
    /// Staging chunks moved.
    pub chunks: u64,
    /// Active messages.
    pub active_messages: u64,
    /// Messages retransmitted (timeout- or abort-triggered).
    pub retransmits: u64,
    /// Ack timeouts that fired (subset of retransmit causes).
    pub timeouts: u64,
    /// Acks sent by receivers.
    pub acks_sent: u64,
    /// Acks received by senders (retry state retired).
    pub acks_received: u64,
    /// Duplicate deliveries suppressed (a retransmit of an already
    /// processed message, caused by a lost ack).
    pub duplicates: u64,
    /// Workers declared dead after exhausting retries.
    pub peers_dead: u64,
    /// Deliveries for tokens with no live protocol state (e.g. a copy
    /// that outlived its transfer's escalation); dropped, fault runs
    /// only.
    pub stale_tokens: u64,
}

/// Protocol state of the whole machine (all workers share one instance).
#[derive(Debug, Clone)]
pub struct UcxState {
    params: UcxParams,
    workers: Vec<WorkerEp>,
    transfers: HashMap<u64, Transfer>,
    net_events: HashMap<u64, NetEvent>,
    gpu_tags: HashMap<u64, GpuTagEvent>,
    next_token: u64,
    comm_streams: HashMap<DeviceId, StreamId>,
    bounce_bufs: HashMap<DeviceId, gaat_gpu::BufferId>,
    stats: UcxStats,
    /// Sender-side unacknowledged messages, by token (reliability on).
    retry: HashMap<u64, RetryState>,
    /// Receiver-side tokens already processed, for duplicate
    /// suppression (reliability on).
    delivered: HashSet<u64>,
}

impl UcxState {
    /// State for `workers` endpoints.
    pub fn new(workers: usize, params: UcxParams) -> Self {
        UcxState {
            params,
            workers: (0..workers).map(|_| WorkerEp::default()).collect(),
            transfers: HashMap::new(),
            net_events: HashMap::new(),
            gpu_tags: HashMap::new(),
            next_token: 1,
            comm_streams: HashMap::new(),
            bounce_bufs: HashMap::new(),
            stats: UcxStats::default(),
            retry: HashMap::new(),
            delivered: HashSet::new(),
        }
    }

    /// Parameters in effect.
    pub fn params(&self) -> &UcxParams {
        &self.params
    }

    /// Protocol counters.
    pub fn stats(&self) -> UcxStats {
        self.stats
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn net_token(&mut self, ev: NetEvent) -> u64 {
        let t = self.token();
        self.net_events.insert(t, ev);
        t
    }

    /// Number of in-flight transfers (diagnostics; zero when quiescent).
    pub fn in_flight(&self) -> usize {
        self.transfers.len()
    }

    /// Protocol state stashed outside the transfer table: pending net
    /// tokens, staging-tag cookies, and unacknowledged retries. Zero at
    /// quiescence (the delivered-token history is bookkeeping, not
    /// in-flight state).
    pub fn stashed(&self) -> usize {
        self.net_events.len() + self.gpu_tags.len() + self.retry.len()
    }

    /// Drop every piece of in-flight protocol state: transfers, pending
    /// net/gpu token maps, retry entries, duplicate-suppression history,
    /// and all posted/unexpected queues. Returns the retry timer events
    /// for the caller to cancel — the runtime uses this when recovering
    /// from a PE failure, where message state referring to the old
    /// incarnation must not resurrect.
    pub fn purge(&mut self) -> Vec<EventId> {
        let timers = self.retry.values().map(|r| r.timer).collect();
        self.transfers.clear();
        self.net_events.clear();
        self.gpu_tags.clear();
        self.retry.clear();
        self.delivered.clear();
        for ep in &mut self.workers {
            ep.posted.clear();
            ep.unexpected.clear();
        }
        timers
    }
}

fn select_protocol(params: &UcxParams, space: Space, bytes: u64) -> Protocol {
    match space {
        Space::Host => {
            if bytes <= params.eager_threshold {
                Protocol::Eager
            } else {
                Protocol::Rendezvous
            }
        }
        Space::Device => {
            if bytes <= params.pipeline_threshold {
                Protocol::GpuDirect
            } else {
                Protocol::Pipelined
            }
        }
    }
}

/// Ensure the device has a high-priority staging stream and bounce buffer.
fn staging_stream<W: UcxHost>(w: &mut W, dev: DeviceId) -> (StreamId, gaat_gpu::BufferId) {
    let (prio, chunk) = {
        let p = w.ucx_mut().params();
        (p.staging_priority, (p.pipeline_chunk / 8) as usize)
    };
    {
        let ucx = w.ucx_mut();
        if let (Some(&s), Some(&b)) = (ucx.comm_streams.get(&dev), ucx.bounce_bufs.get(&dev)) {
            return (s, b);
        }
    }
    let d = w.device_mut(dev);
    let s = d.create_stream(prio);
    let b = d.mem.alloc_phantom(Space::Host, chunk);
    let ucx = w.ucx_mut();
    ucx.comm_streams.insert(dev, s);
    ucx.bounce_bufs.insert(dev, b);
    (s, b)
}

/// The retransmission timeout for `attempt` of `token`: exponential
/// backoff times a deterministic per-(token, attempt) jitter factor in
/// `[1, 2)` so synchronized losses don't retransmit in lockstep.
fn retry_timeout(rel: &ReliabilityParams, seed: u64, token: u64, attempt: u32) -> SimDuration {
    let backoff = rel.backoff_mult.max(1.0).powi(attempt as i32);
    rel.ack_timeout
        .mul_f64(backoff * FaultPlan::backoff_jitter(seed, token, attempt))
}

/// Transmit a protocol message, registering it with the retry machinery
/// when reliability is enabled. `to` is the worker the message lands at
/// (for liveness checks and peer-death escalation).
fn rsend<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, to: WorkerId, msg: NetMsg) {
    let rel = w.ucx_mut().params.reliability.clone();
    if rel.enabled {
        let seed = w.fabric_mut().faults().seed;
        let timer = sim.after_call1(
            retry_timeout(&rel, seed, msg.token, 0),
            retry_timer_fire::<W>,
            msg.token,
        );
        w.ucx_mut().retry.insert(
            msg.token,
            RetryState {
                msg,
                to,
                attempts: 0,
                timer,
            },
        );
    }
    gaat_net::send(w, sim, msg);
}

/// Ack timeout fired: the timer event is already consumed, so go
/// straight to the retry step.
fn retry_timer_fire<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, token: u64) {
    if w.ucx_mut().retry.contains_key(&token) {
        w.ucx_mut().stats.timeouts += 1;
        retry_step(w, sim, token);
    }
}

/// Retransmit `token` (or escalate). The caller has consumed or
/// cancelled the previous timer.
fn retry_step<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, token: u64) {
    let rel = w.ucx_mut().params.reliability.clone();
    let Some(st) = w.ucx_mut().retry.get(&token).copied() else {
        return; // acked in the meantime
    };
    if !w.worker_alive(st.to) {
        // The runtime already knows this peer is gone; stop quietly and
        // drop the dangling protocol state for this token.
        w.ucx_mut().retry.remove(&token);
        w.ucx_mut().net_events.remove(&token);
        return;
    }
    if st.attempts >= rel.max_retries {
        w.ucx_mut().retry.remove(&token);
        w.ucx_mut().net_events.remove(&token);
        w.ucx_mut().stats.peers_dead += 1;
        w.on_ucx_event(sim, UcxEvent::PeerDead { worker: st.to });
        return;
    }
    let attempt = st.attempts + 1;
    let mut msg = st.msg;
    msg.attempt = attempt;
    let seed = w.fabric_mut().faults().seed;
    let timer = sim.after_call1(
        retry_timeout(&rel, seed, token, attempt),
        retry_timer_fire::<W>,
        token,
    );
    {
        let st = w.ucx_mut().retry.get_mut(&token).expect("checked above");
        st.msg = msg;
        st.attempts = attempt;
        st.timer = timer;
    }
    w.ucx_mut().stats.retransmits += 1;
    gaat_net::send(w, sim, msg);
}

/// Receiver side: acknowledge `msg`. Acks are fire-and-forget — a lost
/// ack costs one duplicate retransmission, nothing more. The ack reuses
/// the acked message's attempt number so the re-ack of a retransmitted
/// duplicate gets a *fresh* loss draw from the fault plan: with a fixed
/// attempt, an ack fated to drop would be dropped on every retry and the
/// sender would wrongly escalate to `PeerDead`.
fn send_ack<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, msg: &NetMsg) {
    let ack_bytes = w.ucx_mut().params.reliability.ack_bytes;
    w.ucx_mut().stats.acks_sent += 1;
    gaat_net::send(
        w,
        sim,
        NetMsg {
            src: msg.dst,
            dst: msg.src,
            bytes: ack_bytes,
            extra_latency: SimDuration::ZERO,
            token: msg.token | ACK_BIT,
            class: TrafficClass::Control,
            attempt: msg.attempt,
        },
    );
}

/// Route a fabric *loss notification* to the protocol engine: the
/// message's link went down mid-flight, or link failures left it no
/// route. The embedding world calls this from `NetHost::on_net_dropped`.
/// With reliability on this is a fast retransmit (no need to wait for
/// the ack timeout — the fabric told us); with it off the loss stands.
pub fn on_net_dropped<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, msg: NetMsg) {
    if !w.ucx_mut().params.reliability.enabled {
        return;
    }
    if msg.token & ACK_BIT != 0 {
        return; // a dead ack; the sender's timeout recovers
    }
    if let Some(st) = w.ucx_mut().retry.get(&msg.token) {
        let timer = st.timer;
        sim.cancel(timer);
        retry_step(w, sim, msg.token);
    }
}

/// Post a nonblocking two-sided send of `loc` from `from` to `to` with
/// matching `tag`. `user` is echoed back in the `SendDone` event.
pub fn isend<W: UcxHost>(
    w: &mut W,
    sim: &mut Sim<W>,
    from: WorkerId,
    to: WorkerId,
    tag: Tag,
    loc: MemLoc,
    user: u64,
) {
    let space = w.device_mut(loc.device).mem.get(loc.range.buf).space();
    let bytes = loc.range.bytes();
    let protocol = select_protocol(&w.ucx_mut().params, space, bytes);
    let xfer = w.ucx_mut().token();
    let t = Transfer {
        from,
        to,
        tag,
        bytes,
        protocol,
        send_loc: loc,
        send_user: user,
        recv_loc: None,
        recv_user: 0,
        payload: None,
        chunks_total: 0,
        chunks_d2h_done: 0,
        chunks_h2d_done: 0,
    };
    w.ucx_mut().transfers.insert(xfer, t);
    let (src_node, dst_node) = (w.worker_node(from), w.worker_node(to));
    match protocol {
        Protocol::Eager => {
            w.ucx_mut().stats.eager += 1;
            // Payload travels immediately; the sender's buffer is free as
            // soon as it is copied to the bounce area (model: now).
            let payload = w.device_mut(loc.device).mem.read(loc.range);
            let header = w.ucx_mut().params.header_bytes;
            w.ucx_mut().transfers.get_mut(&xfer).expect("live").payload = payload;
            let token = w.ucx_mut().net_token(NetEvent::Eager { xfer });
            rsend(
                w,
                sim,
                to,
                NetMsg {
                    src: src_node,
                    dst: dst_node,
                    bytes: bytes + header,
                    extra_latency: SimDuration::ZERO,
                    token,
                    class: TrafficClass::Data,
                    attempt: 0,
                },
            );
            sim.soon_call2(eager_send_done::<W>, from.0 as u64, user);
        }
        Protocol::Rendezvous | Protocol::GpuDirect | Protocol::Pipelined => {
            match protocol {
                Protocol::Rendezvous => w.ucx_mut().stats.rendezvous += 1,
                Protocol::GpuDirect => w.ucx_mut().stats.gpudirect += 1,
                Protocol::Pipelined => w.ucx_mut().stats.pipelined += 1,
                Protocol::Eager => unreachable!(),
            }
            let (header, hs) = {
                let p = &w.ucx_mut().params;
                (p.header_bytes, p.handshake_overhead)
            };
            let token = w.ucx_mut().net_token(NetEvent::Rts { xfer });
            rsend(
                w,
                sim,
                to,
                NetMsg {
                    src: src_node,
                    dst: dst_node,
                    bytes: header,
                    extra_latency: hs,
                    token,
                    class: TrafficClass::Control,
                    attempt: 0,
                },
            );
        }
    }
}

/// Closure-free `SendDone` delivery for the eager protocol: the worker id
/// and user cookie ride in the event's payload words.
fn eager_send_done<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, from: u64, user: u64) {
    w.on_ucx_event(
        sim,
        UcxEvent::SendDone {
            worker: WorkerId(from as usize),
            user,
        },
    );
}

/// Post a nonblocking two-sided receive at `at` for a message from `from`
/// with matching `tag`, landing in `loc`. `user` is echoed back in the
/// `RecvDone` event.
pub fn irecv<W: UcxHost>(
    w: &mut W,
    sim: &mut Sim<W>,
    at: WorkerId,
    from: WorkerId,
    tag: Tag,
    loc: MemLoc,
    user: u64,
) {
    // Check the unexpected queue first (FIFO per (from, tag)).
    let pos = w.ucx_mut().workers[at.0]
        .unexpected
        .iter()
        .position(|u| u.from == from && u.tag == tag);
    match pos {
        Some(i) => {
            let u = w.ucx_mut().workers[at.0].unexpected.remove(i);
            attach_recv(w, u.xfer, loc, user);
            if u.eager {
                finish_recv(w, sim, u.xfer);
            } else {
                send_cts(w, sim, u.xfer);
            }
        }
        None => {
            w.ucx_mut().workers[at.0].posted.push(PostedRecv {
                from,
                tag,
                loc,
                user,
            });
        }
    }
}

/// Send a one-sided active message (used for entry-method invocation by
/// the task runtime). The payload itself stays in the runtime; only its
/// size travels the simulated wire.
pub fn am_send<W: UcxHost>(
    w: &mut W,
    sim: &mut Sim<W>,
    from: WorkerId,
    to: WorkerId,
    bytes: u64,
    user: u64,
) {
    w.ucx_mut().stats.active_messages += 1;
    let header = w.ucx_mut().params.header_bytes;
    let token = w.ucx_mut().net_token(NetEvent::Am { at: to, user });
    let (src, dst) = (w.worker_node(from), w.worker_node(to));
    rsend(
        w,
        sim,
        to,
        NetMsg {
            src,
            dst,
            bytes: bytes + header,
            extra_latency: SimDuration::ZERO,
            token,
            class: TrafficClass::Am,
            attempt: 0,
        },
    );
}

fn attach_recv<W: UcxHost>(w: &mut W, xfer: u64, loc: MemLoc, user: u64) {
    let t = w.ucx_mut().transfers.get_mut(&xfer).expect("live transfer");
    assert_eq!(
        t.bytes,
        loc.range.bytes(),
        "matched send/recv sizes must agree"
    );
    t.recv_loc = Some(loc);
    t.recv_user = user;
}

/// Route a fabric delivery to the protocol engine. The embedding world
/// calls this from its `NetHost::on_net_deliver`.
pub fn on_net_deliver<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, msg: NetMsg) {
    let ev = if w.ucx_mut().params.reliability.enabled {
        if msg.token & ACK_BIT != 0 {
            // An ack came home: retire the sender's retry state.
            let of = msg.token & !ACK_BIT;
            if let Some(st) = w.ucx_mut().retry.remove(&of) {
                sim.cancel(st.timer);
                w.ucx_mut().stats.acks_received += 1;
            }
            return;
        }
        if w.ucx_mut().delivered.contains(&msg.token) {
            // A retransmit of something already processed (its ack was
            // lost): re-ack and suppress.
            w.ucx_mut().stats.duplicates += 1;
            send_ack(w, sim, &msg);
            return;
        }
        w.ucx_mut().delivered.insert(msg.token);
        send_ack(w, sim, &msg);
        match w.ucx_mut().net_events.remove(&msg.token) {
            Some(ev) => ev,
            None => {
                // A late copy of a message whose state was already torn
                // down (escalation or purge raced an in-flight copy).
                w.ucx_mut().stats.stale_tokens += 1;
                return;
            }
        }
    } else {
        w.ucx_mut()
            .net_events
            .remove(&msg.token)
            .expect("unknown net token")
    };
    match ev {
        NetEvent::Am { at, user } => {
            w.on_ucx_event(sim, UcxEvent::AmDelivered { at, user });
        }
        NetEvent::Eager { xfer } => {
            let (to, from, tag) = {
                let t = &w.ucx_mut().transfers[&xfer];
                (t.to, t.from, t.tag)
            };
            // Tag travels in the header; match on (from, tag).
            match take_posted(w, to, from, tag) {
                Some(p) => {
                    attach_recv(w, xfer, p.loc, p.user);
                    finish_recv(w, sim, xfer);
                }
                None => {
                    w.ucx_mut().workers[to.0]
                        .unexpected
                        .push(UnexpectedArrival {
                            from,
                            tag,
                            xfer,
                            eager: true,
                        });
                }
            }
        }
        NetEvent::Rts { xfer } => {
            let (to, from, tag) = {
                let t = &w.ucx_mut().transfers[&xfer];
                (t.to, t.from, t.tag)
            };
            match take_posted(w, to, from, tag) {
                Some(p) => {
                    attach_recv(w, xfer, p.loc, p.user);
                    send_cts(w, sim, xfer);
                }
                None => {
                    w.ucx_mut().workers[to.0]
                        .unexpected
                        .push(UnexpectedArrival {
                            from,
                            tag,
                            xfer,
                            eager: false,
                        });
                }
            }
        }
        NetEvent::Cts { xfer } => start_data(w, sim, xfer),
        NetEvent::Data { xfer } => {
            let (from, user) = {
                let t = &w.ucx_mut().transfers[&xfer];
                (t.from, t.send_user)
            };
            w.on_ucx_event(sim, UcxEvent::SendDone { worker: from, user });
            finish_recv(w, sim, xfer);
        }
        NetEvent::Chunk { xfer, bytes } => {
            // Stage the chunk to device memory through the receiver's H2D
            // engine.
            let recv_loc = w.ucx_mut().transfers[&xfer]
                .recv_loc
                .expect("pipelined data after match");
            let (stream, bounce) = staging_stream(w, recv_loc.device);
            let cookie = w.ucx_mut().token();
            w.ucx_mut()
                .gpu_tags
                .insert(cookie, GpuTagEvent::ChunkH2dDone { xfer });
            let tag = w.alloc_gpu_tag(cookie);
            let elems = ((bytes / 8) as usize).clamp(1, recv_loc.range.len);
            let r = recv_loc.range;
            let dst_range = BufRange::new(r.buf, r.offset, elems);
            let d = w.device_mut(recv_loc.device);
            d.enqueue(
                stream,
                Op::h2d(BufRange::new(bounce, 0, elems), dst_range).with_tag(tag),
            );
            gaat_gpu::pump(w, sim, recv_loc.device);
        }
    }
}

/// Route a GPU completion (staging copy) back to the protocol engine. The
/// embedding world calls this when a tag it allocated via
/// [`UcxHost::alloc_gpu_tag`] fires.
pub fn on_gpu_tag<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, cookie: u64) {
    let ev = w
        .ucx_mut()
        .gpu_tags
        .remove(&cookie)
        .expect("unknown gpu tag cookie");
    match ev {
        GpuTagEvent::ChunkD2hDone { xfer } => {
            // Chunk staged to host: put it on the wire and count it.
            let chunk = w.ucx_mut().params.pipeline_chunk;
            let header = w.ucx_mut().params.header_bytes;
            let (from, to, this_bytes, done, total, user) = {
                let t = w.ucx_mut().transfers.get_mut(&xfer).expect("live");
                t.chunks_d2h_done += 1;
                let sent = (t.chunks_d2h_done - 1) as u64 * chunk;
                let this = chunk.min(t.bytes - sent);
                (
                    t.from,
                    t.to,
                    this,
                    t.chunks_d2h_done,
                    t.chunks_total,
                    t.send_user,
                )
            };
            let token = w.ucx_mut().net_token(NetEvent::Chunk {
                xfer,
                bytes: this_bytes,
            });
            let (sn, dn) = (w.worker_node(from), w.worker_node(to));
            let derate = w.ucx_mut().params.pipeline_bw_derate;
            let wire_bytes = (this_bytes as f64 * derate).round() as u64;
            w.ucx_mut().stats.chunks += 1;
            rsend(
                w,
                sim,
                to,
                NetMsg {
                    src: sn,
                    dst: dn,
                    bytes: wire_bytes + header,
                    extra_latency: SimDuration::ZERO,
                    token,
                    class: TrafficClass::Data,
                    attempt: 0,
                },
            );
            if done == total {
                // Sender's buffer fully staged out: send side completes.
                w.on_ucx_event(sim, UcxEvent::SendDone { worker: from, user });
            }
        }
        GpuTagEvent::ChunkH2dDone { xfer } => {
            let all_done = {
                let t = w.ucx_mut().transfers.get_mut(&xfer).expect("live");
                t.chunks_h2d_done += 1;
                t.chunks_h2d_done == t.chunks_total
            };
            if all_done {
                finish_recv(w, sim, xfer);
            }
        }
    }
}

fn take_posted<W: UcxHost>(
    w: &mut W,
    at: WorkerId,
    from: WorkerId,
    tag: Tag,
) -> Option<PostedRecv> {
    let posted = &mut w.ucx_mut().workers[at.0].posted;
    let i = posted.iter().position(|p| p.from == from && p.tag == tag)?;
    Some(posted.remove(i))
}

fn send_cts<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, xfer: u64) {
    let (to, from) = {
        let t = &w.ucx_mut().transfers[&xfer];
        (t.to, t.from)
    };
    let (header, hs) = {
        let p = &w.ucx_mut().params;
        (p.header_bytes, p.handshake_overhead)
    };
    let token = w.ucx_mut().net_token(NetEvent::Cts { xfer });
    let (sn, dn) = (w.worker_node(to), w.worker_node(from));
    rsend(
        w,
        sim,
        from,
        NetMsg {
            src: sn,
            dst: dn,
            bytes: header,
            extra_latency: hs,
            token,
            class: TrafficClass::Control,
            attempt: 0,
        },
    );
}

/// CTS arrived back at the sender: move the payload.
fn start_data<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, xfer: u64) {
    let protocol = w.ucx_mut().transfers[&xfer].protocol;
    match protocol {
        Protocol::Rendezvous | Protocol::GpuDirect => {
            let (loc, bytes, from, to) = {
                let t = &w.ucx_mut().transfers[&xfer];
                (t.send_loc, t.bytes, t.from, t.to)
            };
            let payload = w.device_mut(loc.device).mem.read(loc.range);
            w.ucx_mut().transfers.get_mut(&xfer).expect("live").payload = payload;
            let (header, extra, derate) = {
                let p = &w.ucx_mut().params;
                match protocol {
                    Protocol::GpuDirect => (
                        p.header_bytes,
                        p.gpudirect_extra_latency,
                        p.gpudirect_bw_derate,
                    ),
                    _ => (p.header_bytes, SimDuration::ZERO, 1.0),
                }
            };
            // Bandwidth derating is modeled as extra wire bytes.
            let wire_bytes = ((bytes as f64) * derate).round() as u64 + header;
            let token = w.ucx_mut().net_token(NetEvent::Data { xfer });
            let (sn, dn) = (w.worker_node(from), w.worker_node(to));
            rsend(
                w,
                sim,
                to,
                NetMsg {
                    src: sn,
                    dst: dn,
                    bytes: wire_bytes,
                    extra_latency: extra,
                    token,
                    class: TrafficClass::Data,
                    attempt: 0,
                },
            );
        }
        Protocol::Pipelined => {
            // Read the payload up front (functional fidelity) and kick off
            // the chunked D2H staging pipeline on the sender's device.
            let (loc, bytes) = {
                let t = &w.ucx_mut().transfers[&xfer];
                (t.send_loc, t.bytes)
            };
            let payload = w.device_mut(loc.device).mem.read(loc.range);
            let chunk = w.ucx_mut().params.pipeline_chunk;
            let nchunks = bytes.div_ceil(chunk).max(1) as u32;
            {
                let t = w.ucx_mut().transfers.get_mut(&xfer).expect("live");
                t.payload = payload;
                t.chunks_total = nchunks;
            }
            let (stream, bounce) = staging_stream(w, loc.device);
            for i in 0..nchunks {
                let off = i as u64 * chunk;
                let this_bytes = chunk.min(bytes - off);
                let elems = (this_bytes / 8) as usize;
                let src = BufRange::new(loc.range.buf, loc.range.offset, elems.max(1));
                let cookie = w.ucx_mut().token();
                w.ucx_mut()
                    .gpu_tags
                    .insert(cookie, GpuTagEvent::ChunkD2hDone { xfer });
                let tag = w.alloc_gpu_tag(cookie);
                let d = w.device_mut(loc.device);
                d.enqueue(
                    stream,
                    Op::d2h(src, BufRange::new(bounce, 0, src.len)).with_tag(tag),
                );
            }
            gaat_gpu::pump(w, sim, loc.device);
        }
        Protocol::Eager => unreachable!("eager has no CTS"),
    }
}

/// Data landed (single message or all chunks): write the payload to the
/// receive buffer and notify the receiver.
fn finish_recv<W: UcxHost>(w: &mut W, sim: &mut Sim<W>, xfer: u64) {
    let t = w.ucx_mut().transfers.remove(&xfer).expect("live transfer");
    let loc = t.recv_loc.expect("matched before completion");
    if let Some(data) = &t.payload {
        w.device_mut(loc.device).mem.write(loc.range, data);
    }
    // Pipelined transfers complete the send side when staging finishes;
    // eager completes it at send time; plain rendezvous at data delivery
    // (handled by the caller). Here: receiver side always completes.
    w.on_ucx_event(
        sim,
        UcxEvent::RecvDone {
            worker: t.to,
            user: t.recv_user,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_selection_matches_thresholds() {
        let p = UcxParams::default();
        assert_eq!(select_protocol(&p, Space::Host, 1024), Protocol::Eager);
        assert_eq!(
            select_protocol(&p, Space::Host, p.eager_threshold),
            Protocol::Eager
        );
        assert_eq!(
            select_protocol(&p, Space::Host, p.eager_threshold + 1),
            Protocol::Rendezvous
        );
        assert_eq!(
            select_protocol(&p, Space::Device, 1024),
            Protocol::GpuDirect
        );
        assert_eq!(
            select_protocol(&p, Space::Device, p.pipeline_threshold),
            Protocol::GpuDirect
        );
        assert_eq!(
            select_protocol(&p, Space::Device, p.pipeline_threshold + 1),
            Protocol::Pipelined
        );
    }

    #[test]
    fn tokens_are_unique() {
        let mut s = UcxState::new(2, UcxParams::default());
        let a = s.token();
        let b = s.token();
        assert_ne!(a, b);
    }
}

// Full protocol tests (with devices and a fabric assembled into a mock
// world) live in tests/protocols.rs.
