//! Reliability-protocol tests: deterministic message loss with the
//! ack/retry machinery enabled must be invisible to completion semantics
//! (every transfer finishes exactly once, payloads intact) and must
//! leave no protocol state behind. Escalation (`PeerDead`) and the
//! post-failure `purge` contract are exercised explicitly.

use std::collections::HashMap;

use gaat_gpu::{
    BufRange, BufferId, CompletionTag, Device, DeviceId, GpuHost, GpuTimingModel, Space,
};
use gaat_net::{
    Fabric, FatTreeGraph, FatTreeParams, NetHost, NetMsg, NetParams, NodeId, TopologyKind,
};
use gaat_sim::{FaultPlan, LinkFault, LinkFaultKind, Sim, SimDuration, SimRng, SimTime};
use gaat_ucx::{
    irecv, isend, MemLoc, ReliabilityParams, Tag, UcxEvent, UcxHost, UcxParams, UcxState, WorkerId,
};

struct World {
    devices: Vec<Device>,
    fabric: Fabric,
    ucx: UcxState,
    tag_cookies: HashMap<u64, u64>,
    next_tag: u64,
    recv_done: usize,
    send_done: usize,
    peers_dead: Vec<WorkerId>,
}

impl World {
    fn new(workers: usize, params: UcxParams, faults: FaultPlan) -> Self {
        let net = NetParams {
            jitter: 0.0,
            ..NetParams::default()
        };
        Self::with_net(workers, params, faults, net)
    }

    fn with_net(workers: usize, params: UcxParams, faults: FaultPlan, net: NetParams) -> Self {
        let mut fabric = Fabric::new(workers, net, SimRng::new(7));
        fabric.set_faults(faults);
        World {
            devices: (0..workers)
                .map(|i| Device::new(DeviceId(i), GpuTimingModel::default()))
                .collect(),
            fabric,
            ucx: UcxState::new(workers, params),
            tag_cookies: HashMap::new(),
            next_tag: 0,
            recv_done: 0,
            send_done: 0,
            peers_dead: Vec::new(),
        }
    }
}

impl GpuHost for World {
    fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }
    fn on_gpu_complete(&mut self, sim: &mut Sim<Self>, _dev: DeviceId, tag: CompletionTag) {
        let cookie = self.tag_cookies.remove(&tag.0).expect("registered");
        gaat_ucx::on_gpu_tag(self, sim, cookie);
    }
}
impl NetHost for World {
    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }
    fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
        gaat_ucx::on_net_deliver(self, sim, msg);
    }
    fn on_net_dropped(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
        gaat_ucx::on_net_dropped(self, sim, msg);
    }
}
impl UcxHost for World {
    fn ucx_mut(&mut self) -> &mut UcxState {
        &mut self.ucx
    }
    fn worker_node(&self, w: WorkerId) -> NodeId {
        NodeId(w.0)
    }
    fn on_ucx_event(&mut self, _sim: &mut Sim<Self>, ev: UcxEvent) {
        match ev {
            UcxEvent::RecvDone { .. } => self.recv_done += 1,
            UcxEvent::SendDone { .. } => self.send_done += 1,
            UcxEvent::AmDelivered { .. } => {}
            UcxEvent::PeerDead { worker } => self.peers_dead.push(worker),
        }
    }
    fn alloc_gpu_tag(&mut self, cookie: u64) -> CompletionTag {
        let t = self.next_tag;
        self.next_tag += 1;
        self.tag_cookies.insert(t, cookie);
        CompletionTag(t)
    }
}

fn reliable_params() -> UcxParams {
    UcxParams {
        reliability: ReliabilityParams {
            enabled: true,
            ..ReliabilityParams::default()
        },
        ..UcxParams::default()
    }
}

fn lossy(drop_prob: f64) -> FaultPlan {
    FaultPlan {
        seed: 42,
        drop_prob,
        ..FaultPlan::none()
    }
}

fn assert_quiesced(w: &World) {
    assert_eq!(w.ucx.in_flight(), 0, "transfers leak");
    assert_eq!(w.ucx.stashed(), 0, "net tokens / gpu tags / retries leak");
}

/// Launch `n` host-to-host transfers of `elems` f64s from worker 0 to
/// worker 1, run to quiescence, and verify every payload.
fn exchange(w: &mut World, n: usize, elems: usize) {
    let mut expected: Vec<(BufferId, Vec<f64>)> = Vec::new();
    let mut sim: Sim<World> = Sim::new().with_event_limit(10_000_000);
    for i in 0..n {
        let sbuf = w.devices[0].mem.alloc_real(Space::Host, elems);
        let rbuf = w.devices[1].mem.alloc_real(Space::Host, elems);
        let data: Vec<f64> = (0..elems).map(|k| (i * 1000 + k) as f64).collect();
        w.devices[0].mem.write(BufRange::whole(sbuf, elems), &data);
        expected.push((rbuf, data));
        let tag = Tag(i as u64);
        let sloc = MemLoc {
            device: DeviceId(0),
            range: BufRange::whole(sbuf, elems),
        };
        let rloc = MemLoc {
            device: DeviceId(1),
            range: BufRange::whole(rbuf, elems),
        };
        sim.soon(move |w: &mut World, sim| irecv(w, sim, WorkerId(1), WorkerId(0), tag, rloc, 0));
        sim.soon(move |w: &mut World, sim| isend(w, sim, WorkerId(0), WorkerId(1), tag, sloc, 0));
    }
    assert_eq!(sim.run(w), gaat_sim::RunOutcome::Drained);
    assert_eq!(w.recv_done, n, "every transfer completes exactly once");
    assert_eq!(w.send_done, n);
    for (rbuf, data) in expected {
        let got = w.devices[1]
            .mem
            .read(BufRange::whole(rbuf, data.len()))
            .expect("real buffer");
        assert_eq!(got, data, "payload must survive loss and retransmission");
    }
}

#[test]
fn lossy_eager_completes_with_retransmits() {
    let mut w = World::new(2, reliable_params(), lossy(0.3));
    exchange(&mut w, 20, 8); // well under the eager threshold
    let st = w.ucx.stats();
    assert_eq!(st.eager, 20);
    assert!(st.retransmits > 0, "30% loss must force retransmits");
    assert!(st.timeouts > 0, "silent drops are only seen via timeout");
    assert!(st.acks_sent > 0 && st.acks_received > 0);
    assert!(
        w.peers_dead.is_empty(),
        "loss must not be mistaken for death"
    );
    assert_quiesced(&w);
}

#[test]
fn lossy_rendezvous_completes_with_retransmits() {
    // Large host payloads: the RTS, CTS, and data message are each
    // individually droppable and individually retried.
    let mut w = World::new(2, reliable_params(), lossy(0.3));
    let elems = (UcxParams::default().eager_threshold as usize / 8) * 4;
    exchange(&mut w, 8, elems);
    let st = w.ucx.stats();
    assert_eq!(st.rendezvous, 8);
    assert!(st.retransmits > 0);
    assert!(w.peers_dead.is_empty());
    assert_quiesced(&w);
}

#[test]
fn duplicate_deliveries_are_suppressed() {
    // A delivered message whose ack is lost gets retransmitted; the
    // receiver must recognize the duplicate, count it, re-ack it, and
    // not complete the receive twice (recv_done stays exact in
    // `exchange`). 25% loss over 40 messages guarantees at least one
    // lost ack with this seed, while keeping the compound per-round
    // failure rate (data drop OR ack drop) far from retry exhaustion.
    let mut w = World::new(2, reliable_params(), lossy(0.25));
    exchange(&mut w, 40, 8);
    let st = w.ucx.stats();
    assert!(
        st.duplicates > 0,
        "a lost ack should have forced a duplicate"
    );
    assert!(w.peers_dead.is_empty());
    assert_quiesced(&w);
}

#[test]
fn peer_dead_after_retries_exhausted_and_purge_drains() {
    // Total blackout: every attempt (and every ack) drops. The sender
    // must escalate to PeerDead after max_retries, and the runtime's
    // recovery contract — purge() — must drain what the dead transfer
    // left behind.
    let mut params = reliable_params();
    params.reliability.max_retries = 3;
    let mut w = World::new(2, params, lossy(1.0));
    let sbuf = w.devices[0].mem.alloc_real(Space::Host, 8);
    let rbuf = w.devices[1].mem.alloc_real(Space::Host, 8);
    w.devices[0].mem.write(BufRange::whole(sbuf, 8), &[1.0; 8]);
    let sloc = MemLoc {
        device: DeviceId(0),
        range: BufRange::whole(sbuf, 8),
    };
    let rloc = MemLoc {
        device: DeviceId(1),
        range: BufRange::whole(rbuf, 8),
    };
    let mut sim: Sim<World> = Sim::new();
    sim.soon(move |w: &mut World, sim| irecv(w, sim, WorkerId(1), WorkerId(0), Tag(0), rloc, 0));
    sim.soon(move |w: &mut World, sim| isend(w, sim, WorkerId(0), WorkerId(1), Tag(0), sloc, 0));
    sim.run(&mut w);
    assert_eq!(w.peers_dead, vec![WorkerId(1)]);
    let st = w.ucx.stats();
    assert_eq!(st.peers_dead, 1);
    assert_eq!(st.retransmits, 3, "exactly max_retries retransmissions");
    assert_eq!(w.recv_done, 0, "nothing ever arrived");
    // The dead transfer's state survives escalation (the runtime owns
    // the decision of what to do with it) …
    assert!(w.ucx.in_flight() > 0);
    // … and purge — what recovery calls — drains all of it.
    let timers = w.ucx.purge();
    assert!(timers.is_empty(), "escalation already retired its timer");
    assert_quiesced(&w);
}

#[test]
fn link_abort_triggers_fast_retransmit_over_failover_path() {
    // Fat tree, two spines. A large transfer 0 -> 2 streams over the
    // primary spine; mid-flight its uplink dies. The fabric aborts the
    // flow and surfaces it via on_net_dropped, which with reliability on
    // is an immediate retransmit — no timeout wait — and the retry
    // routes over the surviving spine.
    let ft = FatTreeParams {
        leaf_radix: 2,
        spines: 2,
        trunk_bw: 23.0e9,
        hop_latency_ns: 0,
    };
    let nodes = 4;
    let graph = FatTreeGraph::new(nodes, 60.0e9, 23.0e9, ft);
    let mut route = Vec::new();
    graph.try_route(0, 2, &mut route).unwrap();
    let primary_uplink = route[1];

    let faults = FaultPlan {
        link_faults: vec![LinkFault {
            at: SimTime::ZERO + SimDuration::from_us(10),
            link: primary_uplink.0,
            kind: LinkFaultKind::Down,
        }],
        ..FaultPlan::none()
    };
    let net = NetParams {
        jitter: 0.0,
        topology: TopologyKind::FatTree(ft),
        ..NetParams::default()
    };
    let mut w = World::with_net(nodes, reliable_params(), faults, net);
    let mut sim: Sim<World> = Sim::new();
    gaat_net::arm_link_faults(&mut w, &mut sim);

    // 1 MiB of host data: ~45 us on a 23 GB/s trunk, so the data
    // message is mid-flight when the link dies at t=10us.
    let elems = (1 << 20) / 8;
    let sbuf = w.devices[0].mem.alloc_real(Space::Host, elems);
    let rbuf = w.devices[2].mem.alloc_real(Space::Host, elems);
    let data: Vec<f64> = (0..elems).map(|k| k as f64).collect();
    w.devices[0].mem.write(BufRange::whole(sbuf, elems), &data);
    let sloc = MemLoc {
        device: DeviceId(0),
        range: BufRange::whole(sbuf, elems),
    };
    let rloc = MemLoc {
        device: DeviceId(2),
        range: BufRange::whole(rbuf, elems),
    };
    sim.soon(move |w: &mut World, sim| irecv(w, sim, WorkerId(2), WorkerId(0), Tag(0), rloc, 0));
    sim.soon(move |w: &mut World, sim| isend(w, sim, WorkerId(0), WorkerId(2), Tag(0), sloc, 0));
    sim.run(&mut w);

    assert_eq!(w.recv_done, 1, "the transfer survives the link failure");
    let st = w.ucx.stats();
    assert!(st.retransmits >= 1, "the aborted flow must be resent");
    assert_eq!(
        st.timeouts, 0,
        "fast retransmit reacts to the abort notification, not the timer"
    );
    let got = w.devices[2]
        .mem
        .read(BufRange::whole(rbuf, elems))
        .expect("real buffer");
    assert_eq!(got, data);
    assert!(w.peers_dead.is_empty());
    assert_quiesced(&w);
}

#[test]
fn reliability_machinery_is_inert_without_faults() {
    // With retries on but a clean fabric, the only overhead is acks:
    // no timeouts, no retransmits, no duplicates.
    let mut w = World::new(2, reliable_params(), FaultPlan::none());
    exchange(&mut w, 10, 8);
    let st = w.ucx.stats();
    assert_eq!(st.retransmits, 0);
    assert_eq!(st.timeouts, 0);
    assert_eq!(st.duplicates, 0);
    assert_eq!(st.acks_sent, st.acks_received);
    assert_quiesced(&w);
}
