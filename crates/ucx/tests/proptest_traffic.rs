//! Property-based protocol tests: arbitrary traffic matrices of mixed
//! sizes, spaces, and posting orders must all complete with intact
//! payloads and no leaked protocol state.

use std::collections::HashMap;

use proptest::prelude::*;

use gaat_gpu::{
    BufRange, BufferId, CompletionTag, Device, DeviceId, GpuHost, GpuTimingModel, Space,
};
use gaat_net::{Fabric, NetHost, NetMsg, NetParams, NodeId};
use gaat_sim::FaultPlan;
use gaat_sim::{Sim, SimRng, SimTime};
use gaat_ucx::{
    irecv, isend, MemLoc, ReliabilityParams, Tag, UcxEvent, UcxHost, UcxParams, UcxState, WorkerId,
};

struct World {
    devices: Vec<Device>,
    fabric: Fabric,
    ucx: UcxState,
    tag_cookies: HashMap<u64, u64>,
    next_tag: u64,
    recv_done: usize,
    send_done: usize,
    expected: Vec<(BufferId, usize, Vec<f64>)>,
}

impl World {
    fn new(workers: usize, params: UcxParams) -> Self {
        let net = NetParams {
            jitter: 0.0,
            ..NetParams::default()
        };
        World {
            devices: (0..workers)
                .map(|i| Device::new(DeviceId(i), GpuTimingModel::default()))
                .collect(),
            fabric: Fabric::new(workers, net, SimRng::new(7)),
            ucx: UcxState::new(workers, params),
            tag_cookies: HashMap::new(),
            next_tag: 0,
            recv_done: 0,
            send_done: 0,
            expected: Vec::new(),
        }
    }
}

impl GpuHost for World {
    fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }
    fn on_gpu_complete(&mut self, sim: &mut Sim<Self>, _dev: DeviceId, tag: CompletionTag) {
        let cookie = self.tag_cookies.remove(&tag.0).expect("registered");
        gaat_ucx::on_gpu_tag(self, sim, cookie);
    }
}
impl NetHost for World {
    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }
    fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
        gaat_ucx::on_net_deliver(self, sim, msg);
    }
}
impl UcxHost for World {
    fn ucx_mut(&mut self) -> &mut UcxState {
        &mut self.ucx
    }
    fn worker_node(&self, w: WorkerId) -> NodeId {
        NodeId(w.0)
    }
    fn on_ucx_event(&mut self, _sim: &mut Sim<Self>, ev: UcxEvent) {
        match ev {
            UcxEvent::RecvDone { .. } => self.recv_done += 1,
            UcxEvent::SendDone { .. } => self.send_done += 1,
            UcxEvent::AmDelivered { .. } => {}
            UcxEvent::PeerDead { .. } => panic!("no peer should die in fault-free traffic"),
        }
    }
    fn alloc_gpu_tag(&mut self, cookie: u64) -> CompletionTag {
        let t = self.next_tag;
        self.next_tag += 1;
        self.tag_cookies.insert(t, cookie);
        CompletionTag(t)
    }
}

#[derive(Debug, Clone)]
struct Msg {
    from: usize,
    to: usize,
    elems: usize,
    device_space: bool,
    recv_first: bool,
    delay_ns: u64,
}

fn msg_strategy(workers: usize) -> impl Strategy<Value = Msg> {
    (
        0..workers,
        0..workers,
        // spans eager, rendezvous, GPUDirect, and pipelined (with the
        // shrunk thresholds configured below)
        prop_oneof![1usize..64, 512usize..2048, 4096usize..9000],
        any::<bool>(),
        any::<bool>(),
        0u64..50_000,
    )
        .prop_map(
            move |(from, to, elems, device_space, recv_first, delay_ns)| Msg {
                from,
                to: if from == to { (to + 1) % workers } else { to },
                elems,
                device_space,
                recv_first,
                delay_ns,
            },
        )
}

/// Drive `msgs` through a fresh world and return it at quiescence.
/// Shrinks the protocol thresholds so the small test sizes still cross
/// every protocol boundary.
fn drive(msgs: &[Msg], reliability: ReliabilityParams, faults: FaultPlan) -> World {
    let params = UcxParams {
        eager_threshold: 4 << 10,     // 4 KiB
        pipeline_threshold: 16 << 10, // 16 KiB
        pipeline_chunk: 8 << 10,
        reliability,
        ..UcxParams::default()
    };
    let mut w = World::new(3, params);
    w.fabric.set_faults(faults);
    let mut expected: Vec<(BufferId, usize, Vec<f64>)> = Vec::new();
    let mut plan: Vec<(Msg, BufferId, BufferId)> = Vec::new();
    for (i, m) in msgs.iter().enumerate() {
        let space = if m.device_space {
            Space::Device
        } else {
            Space::Host
        };
        let sbuf = w.devices[m.from].mem.alloc_real(space, m.elems);
        let rbuf = w.devices[m.to].mem.alloc_real(space, m.elems);
        let data: Vec<f64> = (0..m.elems).map(|k| (i * 100_000 + k) as f64).collect();
        w.devices[m.from]
            .mem
            .write(BufRange::whole(sbuf, m.elems), &data);
        expected.push((rbuf, m.to, data));
        plan.push((m.clone(), sbuf, rbuf));
    }
    let mut sim: Sim<World> = Sim::new().with_event_limit(5_000_000);
    for (i, (m, sbuf, rbuf)) in plan.into_iter().enumerate() {
        let tag = Tag(i as u64);
        let (from, to) = (WorkerId(m.from), WorkerId(m.to));
        let sloc = MemLoc {
            device: DeviceId(m.from),
            range: BufRange::whole(sbuf, m.elems),
        };
        let rloc = MemLoc {
            device: DeviceId(m.to),
            range: BufRange::whole(rbuf, m.elems),
        };
        let at = SimTime::from_ns(m.delay_ns);
        if m.recv_first {
            sim.at(at, move |w: &mut World, sim| {
                irecv(w, sim, to, from, tag, rloc, 0)
            });
            sim.at(at, move |w: &mut World, sim| {
                isend(w, sim, from, to, tag, sloc, 0)
            });
        } else {
            sim.at(at, move |w: &mut World, sim| {
                isend(w, sim, from, to, tag, sloc, 0)
            });
            sim.at(at, move |w: &mut World, sim| {
                irecv(w, sim, to, from, tag, rloc, 0)
            });
        }
    }
    assert_eq!(sim.run(&mut w), gaat_sim::RunOutcome::Drained);
    w.expected = expected;
    w
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every message completes exactly once on both sides, payloads land
    /// intact, and the protocol state fully drains.
    #[test]
    fn random_traffic_completes_with_intact_payloads(
        msgs in prop::collection::vec(msg_strategy(3), 1..25)
    ) {
        let w = drive(&msgs, ReliabilityParams::default(), FaultPlan::none());
        prop_assert_eq!(w.recv_done, msgs.len());
        prop_assert_eq!(w.send_done, msgs.len());
        prop_assert_eq!(w.ucx.in_flight(), 0);
        for (rbuf, owner, data) in &w.expected {
            let got = w.devices[*owner]
                .mem
                .read(BufRange::whole(*rbuf, data.len()))
                .expect("real");
            prop_assert_eq!(&got, data);
        }
    }

    /// The same property under stochastic loss with the reliable
    /// transport on: arbitrary traffic plus arbitrary drop/corrupt rates
    /// still completes exactly once per message with intact payloads,
    /// and the retry machinery drains fully (quiesce invariant). The
    /// retry budget is raised so compound data+ack loss cannot reach
    /// peer-death escalation at these rates.
    #[test]
    fn lossy_traffic_completes_and_quiesces(
        msgs in prop::collection::vec(msg_strategy(3), 1..20),
        seed in 0u64..1000,
        drop_permille in 0u32..200,
        corrupt_permille in 0u32..50,
    ) {
        let drop_prob = drop_permille as f64 / 1000.0;
        let corrupt_prob = corrupt_permille as f64 / 1000.0;
        let rel = ReliabilityParams {
            enabled: true,
            max_retries: 20,
            ..ReliabilityParams::default()
        };
        let faults = FaultPlan { seed, drop_prob, corrupt_prob, ..FaultPlan::none() };
        let w = drive(&msgs, rel, faults);
        prop_assert_eq!(w.recv_done, msgs.len());
        prop_assert_eq!(w.send_done, msgs.len());
        prop_assert_eq!(w.ucx.in_flight(), 0);
        prop_assert_eq!(w.ucx.stashed(), 0);
        for (rbuf, owner, data) in &w.expected {
            let got = w.devices[*owner]
                .mem
                .read(BufRange::whole(*rbuf, data.len()))
                .expect("real");
            prop_assert_eq!(&got, data);
        }
    }
}
