//! End-to-end protocol tests: a mock two-node world with one device per
//! worker, exercising eager, rendezvous, GPUDirect, pipelined staging, and
//! active messages, with functional payload verification.

use std::collections::HashMap;

use gaat_gpu::{
    BufRange, BufferId, CompletionTag, Device, DeviceId, GpuHost, GpuTimingModel, Space,
};
use gaat_net::{Fabric, NetHost, NetMsg, NetParams, NodeId};
use gaat_sim::{Sim, SimRng, SimTime};
use gaat_ucx::{
    am_send, irecv, isend, MemLoc, Tag, UcxEvent, UcxHost, UcxParams, UcxState, WorkerId,
};

struct World {
    devices: Vec<Device>,
    fabric: Fabric,
    ucx: UcxState,
    node_of: Vec<NodeId>,
    tag_cookies: HashMap<u64, u64>,
    next_tag: u64,
    events: Vec<(UcxEvent, SimTime)>,
}

impl World {
    /// `workers` endpoints, one device each, one worker per node.
    fn new(workers: usize) -> Self {
        let net = NetParams {
            jitter: 0.0,
            ..NetParams::default()
        };
        World {
            devices: (0..workers)
                .map(|i| Device::new(DeviceId(i), GpuTimingModel::default()))
                .collect(),
            fabric: Fabric::new(workers, net, SimRng::new(42)),
            ucx: UcxState::new(workers, UcxParams::default()),
            node_of: (0..workers).map(NodeId).collect(),
            tag_cookies: HashMap::new(),
            next_tag: 0,
            events: Vec::new(),
        }
    }

    fn alloc(&mut self, worker: usize, space: Space, len: usize) -> BufferId {
        self.devices[worker].mem.alloc_real(space, len)
    }

    fn loc(&self, worker: usize, buf: BufferId, len: usize) -> MemLoc {
        MemLoc {
            device: DeviceId(worker),
            range: BufRange::whole(buf, len),
        }
    }

    fn fill(&mut self, worker: usize, buf: BufferId, base: f64) {
        let s = self.devices[worker]
            .mem
            .get_mut(buf)
            .as_mut_slice()
            .expect("real");
        for (i, x) in s.iter_mut().enumerate() {
            *x = base + i as f64;
        }
    }

    fn read(&self, worker: usize, buf: BufferId, len: usize) -> Vec<f64> {
        self.devices[worker]
            .mem
            .read(BufRange::whole(buf, len))
            .expect("real")
    }

    fn event_times(&self, pred: impl Fn(&UcxEvent) -> bool) -> Vec<SimTime> {
        self.events
            .iter()
            .filter(|(e, _)| pred(e))
            .map(|&(_, t)| t)
            .collect()
    }
}

impl GpuHost for World {
    fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }
    fn on_gpu_complete(&mut self, sim: &mut Sim<Self>, _dev: DeviceId, tag: CompletionTag) {
        let cookie = self.tag_cookies.remove(&tag.0).expect("registered tag");
        gaat_ucx::on_gpu_tag(self, sim, cookie);
    }
}

impl NetHost for World {
    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }
    fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
        gaat_ucx::on_net_deliver(self, sim, msg);
    }
}

impl UcxHost for World {
    fn ucx_mut(&mut self) -> &mut UcxState {
        &mut self.ucx
    }
    fn worker_node(&self, w: WorkerId) -> NodeId {
        self.node_of[w.0]
    }
    fn on_ucx_event(&mut self, sim: &mut Sim<Self>, ev: UcxEvent) {
        self.events.push((ev, sim.now()));
    }
    fn alloc_gpu_tag(&mut self, cookie: u64) -> CompletionTag {
        let t = self.next_tag;
        self.next_tag += 1;
        self.tag_cookies.insert(t, cookie);
        CompletionTag(t)
    }
}

fn run(w: &mut World, setup: impl FnOnce(&mut World, &mut Sim<World>) + Send + 'static) -> SimTime {
    let mut sim: Sim<World> = Sim::new().with_event_limit(1_000_000);
    sim.soon(setup);
    assert_eq!(sim.run(w), gaat_sim::RunOutcome::Drained);
    sim.now()
}

fn recv_done(w: &World) -> Vec<SimTime> {
    w.event_times(|e| matches!(e, UcxEvent::RecvDone { .. }))
}

fn send_done(w: &World) -> Vec<SimTime> {
    w.event_times(|e| matches!(e, UcxEvent::SendDone { .. }))
}

#[test]
fn eager_host_message_delivers_data() {
    let mut w = World::new(2);
    let len = 1024; // 8 KiB < eager threshold
    let sbuf = w.alloc(0, Space::Host, len);
    let rbuf = w.alloc(1, Space::Host, len);
    w.fill(0, sbuf, 100.0);
    let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
    run(&mut w, move |w, sim| {
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(7), rl, 11);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(7), sl, 22);
    });
    assert_eq!(w.read(1, rbuf, len), w.read(0, sbuf, len));
    assert_eq!(recv_done(&w).len(), 1);
    assert_eq!(send_done(&w).len(), 1);
    // Sender completes at t=0 (eager); receiver at about latency + ser.
    assert_eq!(send_done(&w)[0], SimTime::ZERO);
    let expect = w.fabric.params().inter_latency + w.fabric.params().inter_ser(8 * len as u64 + 64);
    assert_eq!(recv_done(&w)[0].as_ns(), expect.as_ns());
    assert_eq!(w.ucx.stats().eager, 1);
}

#[test]
fn eager_unexpected_arrival_then_post() {
    let mut w = World::new(2);
    let len = 512;
    let sbuf = w.alloc(0, Space::Host, len);
    let rbuf = w.alloc(1, Space::Host, len);
    w.fill(0, sbuf, 5.0);
    let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
    run(&mut w, move |w, sim| {
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(1), sl, 0);
        // Post the receive long after the data has landed unexpectedly.
        sim.after(
            gaat_sim::SimDuration::from_ms(5),
            move |w: &mut World, sim| {
                irecv(w, sim, WorkerId(1), WorkerId(0), Tag(1), rl, 0);
            },
        );
    });
    assert_eq!(w.read(1, rbuf, len), w.read(0, sbuf, len));
    assert_eq!(recv_done(&w).len(), 1);
    assert_eq!(
        recv_done(&w)[0].as_ns(),
        5_000_000,
        "completes at post time"
    );
}

#[test]
fn rendezvous_host_message() {
    let mut w = World::new(2);
    let len = 32 * 1024; // 256 KiB > 64 KiB eager threshold
    let sbuf = w.alloc(0, Space::Host, len);
    let rbuf = w.alloc(1, Space::Host, len);
    w.fill(0, sbuf, -3.0);
    let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
    run(&mut w, move |w, sim| {
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(2), rl, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(2), sl, 0);
    });
    assert_eq!(w.read(1, rbuf, len), w.read(0, sbuf, len));
    assert_eq!(w.ucx.stats().rendezvous, 1);
    // RTS + CTS + DATA: at least 3 network latencies.
    let p = w.fabric.params();
    let floor = p.inter_latency * 3 + p.inter_ser(8 * len as u64);
    assert!(recv_done(&w)[0].as_ns() >= floor.as_ns());
    // Send completes with data delivery for rendezvous.
    assert_eq!(send_done(&w)[0], recv_done(&w)[0]);
}

#[test]
fn rendezvous_waits_for_recv_post() {
    let mut w = World::new(2);
    let len = 32 * 1024;
    let sbuf = w.alloc(0, Space::Host, len);
    let rbuf = w.alloc(1, Space::Host, len);
    let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
    let delay = gaat_sim::SimDuration::from_ms(2);
    run(&mut w, move |w, sim| {
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(2), sl, 0);
        sim.after(delay, move |w: &mut World, sim| {
            irecv(w, sim, WorkerId(1), WorkerId(0), Tag(2), rl, 0);
        });
    });
    // Data cannot start before the recv was posted at 2 ms.
    assert!(recv_done(&w)[0].as_ns() > 2_000_000);
    assert_eq!(w.ucx.in_flight(), 0);
}

#[test]
fn gpudirect_device_message() {
    let mut w = World::new(2);
    let len = 12 * 1024; // 96 KiB — the paper's small-halo size
    let sbuf = w.alloc(0, Space::Device, len);
    let rbuf = w.alloc(1, Space::Device, len);
    w.fill(0, sbuf, 7.0);
    let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
    run(&mut w, move |w, sim| {
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(3), rl, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(3), sl, 0);
    });
    assert_eq!(w.read(1, rbuf, len), w.read(0, sbuf, len));
    assert_eq!(w.ucx.stats().gpudirect, 1);
    // GPUDirect never touches the DMA engines.
    assert_eq!(w.devices[0].stats().memcpys, 0);
    assert_eq!(w.devices[1].stats().memcpys, 0);
}

#[test]
fn pipelined_device_message_uses_dma_engines() {
    let mut w = World::new(2);
    let len = (9 << 20) / 8; // 9 MiB — the paper's large-halo size
    let sbuf = w.alloc(0, Space::Device, len);
    let rbuf = w.alloc(1, Space::Device, len);
    w.fill(0, sbuf, 0.5);
    let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
    run(&mut w, move |w, sim| {
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(4), rl, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(4), sl, 0);
    });
    assert_eq!(w.read(1, rbuf, len), w.read(0, sbuf, len));
    assert_eq!(w.ucx.stats().pipelined, 1);
    let chunks = (9u64 << 20).div_ceil(w.ucx.params().pipeline_chunk);
    assert_eq!(w.ucx.stats().chunks, chunks);
    // Staging copies on both sides.
    assert_eq!(w.devices[0].stats().memcpys, chunks);
    assert_eq!(w.devices[1].stats().memcpys, chunks);
    assert_eq!(recv_done(&w).len(), 1);
    assert_eq!(send_done(&w).len(), 1);
    // SendDone (last D2H) precedes RecvDone (last H2D).
    assert!(send_done(&w)[0] < recv_done(&w)[0]);
}

#[test]
fn pipelined_is_slower_per_byte_than_gpudirect_at_threshold() {
    // Just below the threshold: GPUDirect. Just above: pipelined. The
    // per-byte time jumps — the protocol-change cliff from Fig. 7a.
    let t = |len: usize| {
        let mut w = World::new(2);
        let sbuf = w.alloc(0, Space::Device, len);
        let rbuf = w.alloc(1, Space::Device, len);
        let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
        let end = run(&mut w, move |w, sim| {
            irecv(w, sim, WorkerId(1), WorkerId(0), Tag(1), rl, 0);
            isend(w, sim, WorkerId(0), WorkerId(1), Tag(1), sl, 0);
        });
        end.as_ns() as f64 / (len * 8) as f64
    };
    let below = t((512 << 10) / 8); // exactly threshold → GPUDirect
    let above = t((513 << 10) / 8);
    assert!(
        above > below,
        "per-byte {above} above threshold should exceed {below}"
    );
}

#[test]
fn active_message_delivery() {
    let mut w = World::new(2);
    run(&mut w, |w, sim| {
        am_send(w, sim, WorkerId(0), WorkerId(1), 256, 77);
    });
    let am: Vec<_> = w
        .events
        .iter()
        .filter_map(|(e, t)| match e {
            UcxEvent::AmDelivered { at, user } => Some((at.0, *user, *t)),
            _ => None,
        })
        .collect();
    assert_eq!(am.len(), 1);
    assert_eq!((am[0].0, am[0].1), (1, 77));
    assert!(am[0].2 > SimTime::ZERO);
    assert_eq!(w.ucx.stats().active_messages, 1);
}

#[test]
fn tags_demultiplex_out_of_order() {
    let mut w = World::new(2);
    let len = 64;
    let s1 = w.alloc(0, Space::Host, len);
    let s2 = w.alloc(0, Space::Host, len);
    let r1 = w.alloc(1, Space::Host, len);
    let r2 = w.alloc(1, Space::Host, len);
    w.fill(0, s1, 1000.0);
    w.fill(0, s2, 2000.0);
    let (l_s1, l_s2) = (w.loc(0, s1, len), w.loc(0, s2, len));
    let (l_r1, l_r2) = (w.loc(1, r1, len), w.loc(1, r2, len));
    run(&mut w, move |w, sim| {
        // Receives posted in reverse tag order of the sends.
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(2), l_r2, 0);
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(1), l_r1, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(1), l_s1, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(2), l_s2, 0);
    });
    assert_eq!(w.read(1, r1, len)[0], 1000.0);
    assert_eq!(w.read(1, r2, len)[0], 2000.0);
}

#[test]
fn same_tag_matches_fifo() {
    let mut w = World::new(2);
    let len = 16;
    let s1 = w.alloc(0, Space::Host, len);
    let s2 = w.alloc(0, Space::Host, len);
    let r1 = w.alloc(1, Space::Host, len);
    let r2 = w.alloc(1, Space::Host, len);
    w.fill(0, s1, 1.0);
    w.fill(0, s2, 2.0);
    let (l_s1, l_s2) = (w.loc(0, s1, len), w.loc(0, s2, len));
    let (l_r1, l_r2) = (w.loc(1, r1, len), w.loc(1, r2, len));
    run(&mut w, move |w, sim| {
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(9), l_r1, 0);
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(9), l_r2, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(9), l_s1, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(9), l_s2, 0);
    });
    // FIFO: first send lands in first posted recv.
    assert_eq!(w.read(1, r1, len)[0], 1.0);
    assert_eq!(w.read(1, r2, len)[0], 2.0);
}

#[test]
fn intra_node_transfer_works() {
    let mut w = World::new(2);
    // Both workers on node 0.
    w.node_of[1] = NodeId(0);
    let len = 256;
    let sbuf = w.alloc(0, Space::Host, len);
    let rbuf = w.alloc(1, Space::Host, len);
    w.fill(0, sbuf, 3.5);
    let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
    let end = run(&mut w, move |w, sim| {
        irecv(w, sim, WorkerId(1), WorkerId(0), Tag(5), rl, 0);
        isend(w, sim, WorkerId(0), WorkerId(1), Tag(5), sl, 0);
    });
    assert_eq!(w.read(1, rbuf, len), w.read(0, sbuf, len));
    // Intra-node: cheaper than an inter-node eager of the same size.
    let p = w.fabric.params();
    assert!(end.as_ns() < (p.inter_latency + p.inter_ser(len as u64 * 8 + 64)).as_ns());
}

#[test]
fn no_transfers_leak() {
    let mut w = World::new(2);
    // Mixed sizes & spaces, all matched: state must fully drain.
    let sizes = [
        (128usize, Space::Host),
        (16 * 1024, Space::Host),
        (12 * 1024, Space::Device),
        ((2 << 20) / 8, Space::Device),
    ];
    for (i, (len, space)) in sizes.into_iter().enumerate() {
        let sbuf = w.alloc(0, space, len);
        let rbuf = w.alloc(1, space, len);
        let (sl, rl) = (w.loc(0, sbuf, len), w.loc(1, rbuf, len));
        let tag = Tag(i as u64);
        run(&mut w, move |w, sim| {
            irecv(w, sim, WorkerId(1), WorkerId(0), tag, rl, 0);
            isend(w, sim, WorkerId(0), WorkerId(1), tag, sl, 0);
        });
    }
    assert_eq!(w.ucx.in_flight(), 0);
    assert_eq!(recv_done(&w).len(), 4);
    assert_eq!(send_done(&w).len(), 4);
}
