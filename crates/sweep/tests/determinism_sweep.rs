//! The sweep engine's contract: per-scenario outcomes are independent
//! of worker count, dequeue order, world-slot reuse, and shared-topology
//! reuse. Fingerprints at workers {1, 2, 4} must match each other, must
//! match a reuse-disabled sweep, and must match standalone one-off runs
//! of the same scenarios.

use gaat_jacobi3d::{CommMode, Dims, Placement};
use gaat_net::{FatTreeParams, TopologyKind};
use gaat_rt::MachineConfig;
use gaat_sim::FaultPlan;
use gaat_sweep::{run_standalone, run_sweep, ScenarioGrid, SweepOptions, Workload};

fn test_machine() -> MachineConfig {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 42,
        drop_prob: 0.0,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;
    machine
}

fn small_fattree() -> TopologyKind {
    // Two nodes on separate leaves over two spines, so inter-node
    // traffic actually crosses the route table.
    TopologyKind::FatTree(FatTreeParams {
        leaf_radix: 1,
        spines: 2,
        trunk_bw: 23.0e9,
        hop_latency_ns: 150,
    })
}

/// All four workloads, both topologies, a loss axis, and (for Jacobi,
/// which tolerates stalls) a retries-off arm — small enough to run five
/// times in a test, wide enough to cross every engine code path.
fn test_grid() -> ScenarioGrid {
    let mut grid = ScenarioGrid::new(test_machine());
    grid.workloads = vec![
        Workload::Jacobi {
            global: Dims::cube(8),
            iters: 3,
            warmup: 1,
            comm: CommMode::HostStaging,
        },
        Workload::Sweep3d {
            global: Dims::cube(8),
            sweeps: 2,
            warmup: 1,
        },
        Workload::Train {
            params: 4096,
            steps: 2,
        },
        Workload::Moe {
            tokens: 64,
            hidden: 8,
            rounds: 2,
        },
    ];
    grid.seeds = vec![1, 2];
    grid.odfs = vec![1, 2];
    grid.placements = vec![Placement::RoundRobin];
    grid.topologies = vec![TopologyKind::Flat, small_fattree()];
    grid.drop_rates = vec![0.0, 0.05];
    grid.retries = vec![true, false];
    // Only Jacobi runs stall-tolerantly; everything else needs the
    // reliable transport whenever loss is armed. Retries-off at zero
    // loss is a duplicate of retries-on.
    grid.filter = Some(|sc| {
        if sc.retries {
            true
        } else {
            matches!(sc.workload, Workload::Jacobi { .. }) && sc.drop_rate > 0.0
        }
    });
    grid
}

#[test]
fn expansion_is_stable_and_indexed() {
    let scenarios = test_grid().expand();
    assert!(!scenarios.is_empty());
    for (i, sc) in scenarios.iter().enumerate() {
        assert_eq!(sc.index, i, "indices are positional");
    }
    let again = test_grid().expand();
    assert_eq!(scenarios.len(), again.len());
    for (a, b) in scenarios.iter().zip(&again) {
        assert_eq!(a.label(), b.label(), "expansion order is deterministic");
    }
}

#[test]
fn fingerprints_invariant_across_workers_reuse_and_standalone() {
    let scenarios = test_grid().expand();

    let mut opts = SweepOptions::new();
    let mut runs = Vec::new();
    for workers in [1, 2, 4] {
        opts.workers = workers;
        runs.push(run_sweep(&scenarios, &opts).expect("no I/O configured"));
    }
    // A reuse-disabled sweep: every scenario on a fresh world.
    opts.workers = 2;
    opts.reuse_worlds = false;
    runs.push(run_sweep(&scenarios, &opts).expect("no I/O configured"));

    let reference = runs[0].fingerprints();
    assert_eq!(reference.len(), scenarios.len());
    for run in &runs[1..] {
        assert_eq!(
            run.fingerprints(),
            reference,
            "sweep outcomes must not depend on worker count or world reuse"
        );
    }
    // The multi-worker sweeps really did recycle worlds across a pool.
    assert_eq!(runs[0].slots.prepared as usize, scenarios.len());
    assert!(runs[0].slots.reused > 0, "reuse should actually engage");
    assert_eq!(runs[3].slots.reused, 0, "reuse-off must not touch slots");

    // And each record matches a standalone one-off run of its scenario.
    for (sc, fp) in scenarios.iter().zip(&reference) {
        let solo = run_standalone(sc);
        assert_eq!(
            solo.fingerprint(),
            *fp,
            "sweep record for `{}` differs from a standalone run",
            sc.label()
        );
    }
}

#[test]
fn world_slot_reuse_is_bit_identical_to_fresh_worlds() {
    use gaat_jacobi3d::charm;
    use gaat_rt::{Simulation, WorldSlot};

    let mut cfg = gaat_jacobi3d::JacobiConfig::new(test_machine(), Dims::cube(8));
    cfg.comm = CommMode::HostStaging;
    cfg.iters = 3;
    cfg.warmup = 1;
    cfg.odf = 2;
    cfg.machine.faults.drop_prob = 0.05;

    let fingerprint = |sim: &mut Simulation| {
        let net = sim.machine.fabric.stats();
        let ucx = sim.machine.ucx.stats();
        (
            sim.sim.now(),
            sim.machine.stats().entries,
            net.messages,
            net.bytes,
            net.drops,
            ucx.retransmits,
            ucx.acks_sent,
        )
    };

    // Reference: a fresh world.
    let (mut sim, ids, sh) = charm::build(cfg.clone());
    let (res, stalled) = charm::run_tolerant(&mut sim, &ids, &sh);
    let want = (res.expect("retries on").checksum, fingerprint(&mut sim));
    assert_eq!(stalled, 0);

    // The same scenario through one slot, three times in a row; runs 2
    // and 3 recycle the retired engine.
    let mut slot = WorldSlot::new();
    for round in 0..3 {
        let (mut sim, ids, sh) = charm::build_in(slot.prepare(cfg.machine.clone()), cfg.clone());
        let (res, _) = charm::run_tolerant(&mut sim, &ids, &sh);
        let got = (res.expect("retries on").checksum, fingerprint(&mut sim));
        assert_eq!(got, want, "slot round {round} differs from a fresh world");
        slot.retire(sim);
    }
    assert_eq!(slot.stats().prepared, 3);
    assert_eq!(slot.stats().reused, 2);
}

#[test]
fn stalled_scenarios_are_reported_not_fatal() {
    let scenarios = test_grid().expand();
    let report = run_sweep(&scenarios, &SweepOptions::new()).expect("no I/O configured");
    let stalled: Vec<_> = report.records.iter().filter(|r| !r.ok).collect();
    assert!(
        !stalled.is_empty(),
        "the retries-off loss arm should stall some blocks"
    );
    for r in &stalled {
        assert!(r.stalled > 0, "a failed record carries its casualty count");
        assert!(r.makespan_ns > 0, "stall time is still deterministic");
        assert_eq!(r.unit_ns, 0);
    }
    assert!(report.records.iter().any(|r| r.ok));
}

#[test]
fn jsonl_and_csv_outputs_stream_every_record() {
    let scenarios = test_grid().expand();
    let dir = std::env::temp_dir();
    let mut opts = SweepOptions::new();
    opts.workers = 2;
    opts.jsonl = Some(dir.join("gaat_sweep_test.jsonl"));
    opts.csv = Some(dir.join("gaat_sweep_test.csv"));
    let report = run_sweep(&scenarios, &opts).expect("temp dir is writable");

    let jsonl = std::fs::read_to_string(opts.jsonl.as_ref().unwrap()).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), scenarios.len(), "one JSONL line per scenario");
    for rec in &report.records {
        // Records stream in completion order; find by index and check
        // the line is exactly the record's encoding.
        let tag = format!("{{\"i\": {}, ", rec.index);
        let line = lines
            .iter()
            .find(|l| l.starts_with(&tag))
            .expect("every scenario has a line");
        assert_eq!(*line, rec.jsonl());
        assert!(line.contains(&format!("{:016x}", rec.fingerprint())));
    }

    let csv = std::fs::read_to_string(opts.csv.as_ref().unwrap()).unwrap();
    let rows = report.aggregate();
    assert_eq!(
        csv.lines().count(),
        rows.len() + 1,
        "header + one row per group"
    );
    assert_eq!(
        csv.lines().next().unwrap(),
        "group,count,ok,stalled,mean_makespan_ns,mean_unit_ns,mean_wall_ns"
    );
    let total: usize = rows.iter().map(|r| r.count).sum();
    assert_eq!(total, scenarios.len(), "aggregate covers every scenario");
}
