//! The prefix-memoizing executor's contract: forked execution is
//! bit-invisible. Fingerprints from a fork-enabled sweep at workers
//! {1, 2, 4} must match a fork-disabled sweep, must match standalone
//! one-off runs, and the fork machinery must actually engage on a
//! fault-sweep-shaped grid. Resume must complete a partial sweep to the
//! same fingerprints as an uninterrupted one.

use gaat_jacobi3d::{CommMode, Dims};
use gaat_rt::MachineConfig;
use gaat_sim::{mix64, FaultPlan, SimDuration, SimTime};
use gaat_sweep::{run_standalone, run_sweep, ScenarioGrid, SweepOptions, Workload};

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_us(us)
}

fn jacobi() -> Workload {
    Workload::Jacobi {
        global: Dims::cube(8),
        iters: 3,
        warmup: 1,
        comm: CommMode::HostStaging,
    }
}

/// A fault-sweep-shaped grid: drop-rate × onset × machine-seed axes
/// over one machine shape, so scenarios within a (seed) cell differ
/// only in their post-onset stochastic fault behaviour.
fn fault_grid() -> ScenarioGrid {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 7,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;
    let mut grid = ScenarioGrid::new(machine);
    grid.workloads = vec![jacobi()];
    grid.seeds = vec![1, 2];
    grid.odfs = vec![2];
    grid.drop_rates = vec![0.0, 0.05, 0.15];
    grid.fault_onsets = vec![t(40), t(80)];
    grid
}

#[test]
fn forked_sweeps_match_unforked_and_standalone_at_all_worker_counts() {
    let scenarios = fault_grid().expand();
    assert_eq!(scenarios.len(), 12);

    let mut opts = SweepOptions::new();
    opts.fork = false;
    opts.workers = 1;
    let reference = run_sweep(&scenarios, &opts).expect("no I/O configured");
    assert_eq!(reference.fork.snapshots_taken, 0);

    opts.fork = true;
    for workers in [1, 2, 4] {
        opts.workers = workers;
        let forked = run_sweep(&scenarios, &opts).expect("no I/O configured");
        assert_eq!(
            forked.fingerprints(),
            reference.fingerprints(),
            "fork path must be bit-invisible at {workers} workers"
        );
        // One group per machine seed, each forking 6 scenarios off one
        // snapshot; only the 2 prefix worlds are ever built.
        assert_eq!(forked.fork.groups, 2);
        assert_eq!(forked.fork.snapshots_taken, 2);
        assert_eq!(forked.fork.scenarios_forked, 10);
        assert_eq!(forked.fork.declined, 0);
        assert_eq!(forked.slots.prepared, 2);
    }

    for (sc, fp) in scenarios.iter().zip(&reference.fingerprints()) {
        assert_eq!(
            run_standalone(sc).fingerprint(),
            *fp,
            "sweep record for `{}` differs from a standalone run",
            sc.label()
        );
    }

    // The axes did something: drop rates diverge outcomes within a seed.
    let fps = reference.fingerprints();
    assert_ne!(fps[0], fps[2], "lossy branch must differ from clean");
}

/// Sweep3d chares are plain data and implement `Chare::fork`, so the
/// planner now groups sweep3d fault scenarios instead of forcing them
/// standalone. Forked fingerprints must equal both the unforked sweep
/// and fresh standalone runs, and the snapshot must actually be taken
/// (the world no longer declines).
#[test]
fn sweep3d_forks_bit_identically_to_standalone() {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 11,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;
    let mut grid = ScenarioGrid::new(machine);
    grid.workloads = vec![Workload::Sweep3d {
        global: Dims::cube(8),
        sweeps: 2,
        warmup: 1,
    }];
    grid.odfs = vec![2];
    grid.drop_rates = vec![0.0, 0.05, 0.1];
    grid.fault_onsets = vec![t(40)];
    let scenarios = grid.expand();
    assert_eq!(scenarios.len(), 3);

    let mut opts = SweepOptions::new();
    opts.fork = false;
    let reference = run_sweep(&scenarios, &opts).expect("no I/O configured");
    assert_eq!(reference.fork.snapshots_taken, 0);

    opts.fork = true;
    for workers in [1, 2] {
        opts.workers = workers;
        let forked = run_sweep(&scenarios, &opts).expect("no I/O configured");
        assert_eq!(
            forked.fingerprints(),
            reference.fingerprints(),
            "sweep3d fork path must be bit-invisible at {workers} workers"
        );
        assert_eq!(forked.fork.groups, 1);
        assert_eq!(forked.fork.snapshots_taken, 1, "world must not decline");
        assert_eq!(forked.fork.scenarios_forked, 2);
        assert_eq!(forked.fork.declined, 0);
    }

    for (sc, fp) in scenarios.iter().zip(&reference.fingerprints()) {
        assert_eq!(
            run_standalone(sc).fingerprint(),
            *fp,
            "sweep record for `{}` differs from a standalone run",
            sc.label()
        );
    }
}

#[test]
fn fault_seed_axis_forks_with_retries_off() {
    let mut machine = MachineConfig::validation(2, 2);
    machine.ucx.reliability.enabled = false;
    let mut grid = ScenarioGrid::new(machine);
    grid.workloads = vec![jacobi()];
    grid.odfs = vec![2];
    grid.drop_rates = vec![0.05];
    grid.fault_onsets = vec![t(30)];
    grid.fault_seeds = vec![1, 2, 3, 4];
    let scenarios = grid.expand();

    let mut opts = SweepOptions::new();
    opts.fork = true;
    let forked = run_sweep(&scenarios, &opts).expect("no I/O configured");
    assert_eq!(forked.fork.groups, 1);
    assert_eq!(forked.fork.scenarios_forked, 3);
    for (sc, fp) in scenarios.iter().zip(&forked.fingerprints()) {
        assert_eq!(run_standalone(sc).fingerprint(), *fp);
    }
    // Retries are off and drops armed: stalls are expected — and must
    // reproduce exactly through the fork path (checked above); at least
    // two seeds should disagree for the axis to mean anything.
    let fps = forked.fingerprints();
    assert!(fps.iter().any(|f| *f != fps[0]));
}

#[test]
fn resume_completes_a_partial_sweep_bit_identically() {
    let scenarios = fault_grid().expand();
    let dir = std::env::temp_dir();
    let path = dir.join("gaat_sweep_resume_test.jsonl");

    let mut opts = SweepOptions::new();
    opts.workers = 2;
    opts.jsonl = Some(path.clone());
    let fresh = run_sweep(&scenarios, &opts).expect("temp dir is writable");
    let want = fresh.fingerprints();

    // Simulate a kill mid-sweep: keep 5 intact lines, then a torn line.
    let full = std::fs::read_to_string(&path).unwrap();
    let mut partial: String = full.lines().take(5).map(|l| format!("{l}\n")).collect();
    partial.push_str("{\"i\": 11, \"label\": \"jacobi se");
    std::fs::write(&path, &partial).unwrap();

    opts.resume = true;
    let resumed = run_sweep(&scenarios, &opts).expect("temp dir is writable");
    assert_eq!(resumed.resumed, 5, "five intact records must be kept");
    assert_eq!(
        resumed.fingerprints(),
        want,
        "a resumed sweep must equal an uninterrupted one"
    );
    // The rewritten file carries every record, torn tail gone.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), scenarios.len());

    // Resuming a *complete* file runs nothing at all.
    let third = run_sweep(&scenarios, &opts).expect("temp dir is writable");
    assert_eq!(third.resumed, scenarios.len());
    assert_eq!(third.slots.prepared, 0, "no worlds built on a full resume");
    assert_eq!(third.fingerprints(), want);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_records_from_a_different_grid() {
    let scenarios = fault_grid().expand();
    let dir = std::env::temp_dir();
    let path = dir.join("gaat_sweep_resume_mismatch_test.jsonl");

    let mut opts = SweepOptions::new();
    opts.jsonl = Some(path.clone());
    let fresh = run_sweep(&scenarios, &opts).expect("temp dir is writable");

    // A grid with a different fault seed: same indices, different
    // labels. Nothing from the old file may be trusted.
    let mut other_grid = fault_grid();
    other_grid.machine.faults.seed = 8;
    let others = other_grid.expand();
    opts.resume = true;
    let resumed = run_sweep(&others, &opts).expect("temp dir is writable");
    assert_eq!(resumed.resumed, 0, "label mismatch must reject resume");
    assert_ne!(resumed.fingerprints(), fresh.fingerprints());
    std::fs::remove_file(&path).ok();
}

/// Property-style randomized pin (the workspace vendors no property
/// testing crate, so the generator is a hand-rolled `mix64` chain):
/// random grids — including ones with nothing shareable — must produce
/// identical fingerprints through the forked sweep at 1 and 2 workers
/// and through fresh standalone execution of every scenario.
#[test]
fn random_grids_fork_bit_identically_to_fresh_runs() {
    let mut state = 0x9a7_5eed_u64;
    let mut next = move |n: u64| {
        state = mix64(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
        state % n
    };

    for round in 0..6 {
        let mut machine = MachineConfig::validation(2, 2);
        machine.faults.seed = next(100);
        machine.ucx.reliability.enabled = next(2) == 0;
        let mut grid = ScenarioGrid::new(machine);
        grid.workloads = vec![jacobi()];
        grid.odfs = vec![1 + next(2) as usize];
        grid.seeds = (0..1 + next(2)).map(|i| 10 + i).collect();
        grid.drop_rates = (0..1 + next(3)).map(|i| i as f64 * 0.04).collect();
        // Rounds alternate between shareable (late-onset) and
        // unshareable (onset-zero / no-loss) shapes; onset 0 must
        // degrade to the plain per-scenario executor.
        grid.fault_onsets = match next(3) {
            0 => vec![SimTime::ZERO],
            1 => vec![t(20 + next(40))],
            _ => vec![SimTime::ZERO, t(20 + next(40)), t(100)],
        };
        grid.fault_seeds = (0..1 + next(2)).map(|i| 50 + i).collect();
        let scenarios = grid.expand();

        let mut opts = SweepOptions::new();
        opts.fork = true;
        let mut prints = Vec::new();
        for workers in [1, 2] {
            opts.workers = workers;
            let rep = run_sweep(&scenarios, &opts).expect("no I/O configured");
            prints.push(rep.fingerprints());
        }
        assert_eq!(prints[0], prints[1], "round {round}: worker count leaked");
        for (sc, fp) in scenarios.iter().zip(&prints[0]) {
            assert_eq!(
                run_standalone(sc).fingerprint(),
                *fp,
                "round {round}: fork path diverged for `{}`",
                sc.label()
            );
        }
    }
}
