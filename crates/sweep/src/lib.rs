//! # gaat-sweep — batched scenario-sweep engine
//!
//! Simulation-as-a-service for the rest of the workspace: a declarative
//! [`ScenarioGrid`] (seed × ODF × topology × placement × fault plan ×
//! workload, with explicit axes and an optional filter) expands into an
//! indexed list of [`Scenario`] requests, and [`run_sweep`] drains the
//! list across a pool of worker threads. Each worker owns one reusable
//! [`gaat_rt::WorldSlot`] — engines are reset and recycled between
//! scenarios instead of rebuilt (pinned bit-identical to fresh worlds)
//! — and all workers share one immutable pre-built topology/route table
//! per machine shape behind an `Arc`.
//!
//! Results stream incrementally: one JSONL record per completed
//! scenario (fingerprint, makespan, network/transport/collective
//! counters, wall time), flushed per line so a killed sweep keeps
//! everything finished so far, plus an end-of-sweep CSV aggregate.
//! A killed sweep can also be *resumed*: with
//! [`SweepOptions::resume`] the engine re-reads the partial JSONL,
//! keeps every intact record, and runs only what is missing.
//! Per-scenario outcomes are independent of worker count and dequeue
//! order; only wall-clock metadata varies.
//!
//! Fault sweeps additionally share work through **prefix memoization**
//! ([`SweepOptions::fork`], the [`fork`] module): scenarios that agree
//! on everything except their post-onset stochastic fault behaviour are
//! grouped, the shared prefix executes once, the world is snapshotted
//! just before the earliest fault onset, and each group member finishes
//! from a [`gaat_rt::Simulation::restore`] of that snapshot — pinned
//! bit-identical to running every scenario from `t = 0`.

#![warn(missing_docs)]

pub mod engine;
pub mod fork;
pub mod grid;
pub mod record;

pub use engine::{run_batch, run_standalone, run_sweep, SweepOptions, SweepReport};
pub use fork::ForkStats;
pub use grid::{Scenario, ScenarioGrid, Workload};
pub use record::{AggregateRow, ScenarioRecord};
