//! Declarative scenario grids and their expansion into request lists.
//!
//! A [`ScenarioGrid`] is a template machine plus explicit axes (seed ×
//! ODF × topology × placement × fault plan × workload); [`expand`]
//! multiplies the axes out, applies the grid's filter, and assigns each
//! surviving [`Scenario`] a stable index. The index — not the dequeue
//! order — names the scenario everywhere downstream, which is what lets
//! per-scenario outcomes stay independent of worker count.

use gaat_jacobi3d::{CommMode, Dims, JacobiConfig, Placement};
use gaat_net::TopologyKind;
use gaat_rt::{LbPolicy, MachineConfig};
use gaat_sim::SimTime;

/// Which application a scenario runs. Workload parameters that are not
/// grid axes (problem size, iteration counts) ride along inside the
/// variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Charm-style Jacobi3D halo exchange (stall-tolerant under loss
    /// with retries off).
    Jacobi {
        /// Global grid.
        global: Dims,
        /// Timed iterations.
        iters: usize,
        /// Warm-up iterations.
        warmup: usize,
        /// Halo transport mode.
        comm: CommMode,
    },
    /// KBA wavefront sweep.
    Sweep3d {
        /// Global grid.
        global: Dims,
        /// Timed sweeps.
        sweeps: usize,
        /// Warm-up sweeps.
        warmup: usize,
    },
    /// Data-parallel training proxy (bucketed gradient allreduce).
    Train {
        /// Gradient elements per replica.
        params: usize,
        /// Timed steps.
        steps: usize,
    },
    /// Skew-routed MoE alltoall proxy.
    Moe {
        /// Tokens per rank.
        tokens: usize,
        /// Elements per token.
        hidden: usize,
        /// Timed rounds.
        rounds: usize,
    },
}

impl Workload {
    /// Short name for labels and records.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Jacobi { .. } => "jacobi",
            Workload::Sweep3d { .. } => "sweep3d",
            Workload::Train { .. } => "train",
            Workload::Moe { .. } => "moe",
        }
    }
}

/// A declarative sweep: one template machine and the axes to multiply
/// out. Empty axis vectors are treated as "keep the template's value"
/// (a single-element axis).
#[derive(Clone)]
pub struct ScenarioGrid {
    /// Template machine; every scenario clones it and then applies its
    /// axis values (seed, topology, drop rate, retries).
    pub machine: MachineConfig,
    /// Applications to run.
    pub workloads: Vec<Workload>,
    /// Machine seeds (jitter and fault-fate salt derivation).
    pub seeds: Vec<u64>,
    /// Overdecomposition factors (Jacobi and Sweep3d; ignored by the
    /// ML proxies, which are one chare per PE).
    pub odfs: Vec<usize>,
    /// Chare placements (Jacobi only).
    pub placements: Vec<Placement>,
    /// Interconnect models.
    pub topologies: Vec<TopologyKind>,
    /// Stochastic message-drop probabilities (fault plan).
    pub drop_rates: Vec<f64>,
    /// Fault-onset instants: the stochastic drop/corrupt draws are
    /// suppressed before this time. A non-zero onset is what lets the
    /// fork-aware executor share one executed prefix across every
    /// scenario that agrees up to its earliest onset.
    pub fault_onsets: Vec<SimTime>,
    /// Fault-plan seeds (the hash salt behind per-message fate draws).
    /// A late axis only with retries off; with the reliable transport
    /// on the seed also feeds retry-backoff jitter from `t = 0`, so the
    /// planner keeps differing-seed scenarios in separate prefix groups.
    pub fault_seeds: Vec<u64>,
    /// Reliable-transport switch values.
    pub retries: Vec<bool>,
    /// Load-balancer policies. Each value overwrites the template's
    /// `machine.lb.policy`; the template supplies period / budget /
    /// hysteresis (a non-`Off` policy with a zero template period
    /// stays disabled — set `machine.lb.period` on the template).
    pub lb_policies: Vec<LbPolicy>,
    /// Keep only scenarios this predicate accepts (e.g. skip
    /// retries-off at zero loss). `None` keeps everything.
    pub filter: Option<fn(&Scenario) -> bool>,
}

impl ScenarioGrid {
    /// A grid over `machine` with every axis pinned to the template's
    /// value; push onto the axis vectors to widen it.
    pub fn new(machine: MachineConfig) -> Self {
        ScenarioGrid {
            machine,
            workloads: Vec::new(),
            seeds: Vec::new(),
            odfs: Vec::new(),
            placements: Vec::new(),
            topologies: Vec::new(),
            drop_rates: Vec::new(),
            fault_onsets: Vec::new(),
            fault_seeds: Vec::new(),
            retries: Vec::new(),
            lb_policies: Vec::new(),
            filter: None,
        }
    }

    /// Multiply the axes out into an indexed scenario list. Axis
    /// nesting order (outer to inner): workload, topology, placement,
    /// ODF, drop rate, fault onset, fault seed, retries, LB policy,
    /// seed. The order — and therefore every scenario's index —
    /// depends only on the grid, never on how the queue is later
    /// drained.
    pub fn expand(&self) -> Vec<Scenario> {
        assert!(
            !self.workloads.is_empty(),
            "grid needs at least one workload"
        );
        let seeds = non_empty(&self.seeds, self.machine.seed);
        let odfs = non_empty(&self.odfs, 1);
        let placements = non_empty(&self.placements, Placement::Packed);
        let topologies = non_empty(&self.topologies, self.machine.net.topology);
        let drops = non_empty(&self.drop_rates, self.machine.faults.drop_prob);
        let onsets = non_empty(&self.fault_onsets, self.machine.faults.onset);
        let fault_seeds = non_empty(&self.fault_seeds, self.machine.faults.seed);
        let retries = non_empty(&self.retries, self.machine.ucx.reliability.enabled);
        let lb_policies = non_empty(&self.lb_policies, self.machine.lb.policy);

        let mut out = Vec::new();
        for &workload in &self.workloads {
            for &topology in &topologies {
                for &placement in &placements {
                    for &odf in &odfs {
                        for &drop_rate in &drops {
                            for &fault_onset in &onsets {
                                for &fault_seed in &fault_seeds {
                                    for &retry in &retries {
                                        for &lb_policy in &lb_policies {
                                            for &seed in &seeds {
                                                let mut machine = self.machine.clone();
                                                machine.seed = seed;
                                                machine.net.topology = topology;
                                                machine.faults.drop_prob = drop_rate;
                                                machine.faults.onset = fault_onset;
                                                machine.faults.seed = fault_seed;
                                                machine.ucx.reliability.enabled = retry;
                                                machine.lb.policy = lb_policy;
                                                let sc = Scenario {
                                                    index: out.len(),
                                                    workload,
                                                    seed,
                                                    odf,
                                                    placement,
                                                    topology,
                                                    drop_rate,
                                                    fault_onset,
                                                    fault_seed,
                                                    retries: retry,
                                                    lb_policy,
                                                    machine,
                                                };
                                                if self.filter.is_none_or(|f| f(&sc)) {
                                                    out.push(sc);
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn non_empty<T: Copy>(axis: &[T], default: T) -> Vec<T> {
    if axis.is_empty() {
        vec![default]
    } else {
        axis.to_vec()
    }
}

/// One fully resolved simulation request: the axis values plus the
/// machine config they produce. Cheap to clone; everything a worker
/// needs to run the scenario from scratch.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable position in the expanded grid (assigned post-filter).
    pub index: usize,
    /// Application and its non-axis parameters.
    pub workload: Workload,
    /// Machine seed.
    pub seed: u64,
    /// Overdecomposition factor.
    pub odf: usize,
    /// Chare placement (Jacobi).
    pub placement: Placement,
    /// Interconnect model.
    pub topology: TopologyKind,
    /// Message-drop probability.
    pub drop_rate: f64,
    /// Instant before which the stochastic fault draws are suppressed.
    pub fault_onset: SimTime,
    /// Fault-plan seed (fate-draw hash salt).
    pub fault_seed: u64,
    /// Reliable transport on/off.
    pub retries: bool,
    /// Load-balancer policy (effective only when the template's
    /// `machine.lb.period` is non-zero).
    pub lb_policy: LbPolicy,
    /// The resolved machine config (template + axis values).
    pub machine: MachineConfig,
}

impl Scenario {
    /// Human-readable identity, unique within a grid.
    pub fn label(&self) -> String {
        format!(
            "{} seed={} {}",
            self.workload.name(),
            self.seed,
            self.group_suffix()
        )
    }

    /// Group key: the label minus the seed axis, for aggregation over
    /// seeds.
    pub fn group(&self) -> String {
        format!("{} {}", self.workload.name(), self.group_suffix())
    }

    fn group_suffix(&self) -> String {
        let topo = match self.topology {
            TopologyKind::Flat => "flat",
            TopologyKind::FatTree(_) => "fattree",
        };
        let place = match self.placement {
            Placement::Packed => "packed",
            Placement::RoundRobin => "rr",
        };
        let mut s = format!(
            "{topo} {place} odf={} drop={:.2} retries={}",
            self.odf,
            self.drop_rate,
            if self.retries { "on" } else { "off" }
        );
        // Fault onset/seed only widen the identity when the axes are in
        // play, so labels of pre-existing grids are unchanged.
        if self.fault_onset != SimTime::ZERO {
            s.push_str(&format!(" onset={}ns", self.fault_onset.as_ns()));
        }
        if self.fault_seed != 0 {
            s.push_str(&format!(" fseed={}", self.fault_seed));
        }
        // Only widens the identity when the LB axis is in play, so
        // labels of pre-existing grids are unchanged.
        if self.lb_policy != LbPolicy::Off {
            let p = match self.lb_policy {
                LbPolicy::Off => unreachable!(),
                LbPolicy::Greedy => "greedy",
                LbPolicy::Adaptive => "adaptive",
            };
            s.push_str(&format!(" lb={p}"));
        }
        s
    }

    /// The Jacobi config this scenario denotes (panics for other
    /// workloads).
    pub fn jacobi_config(&self) -> JacobiConfig {
        match self.workload {
            Workload::Jacobi {
                global,
                iters,
                warmup,
                comm,
            } => {
                let mut cfg = JacobiConfig::new(self.machine.clone(), global);
                cfg.comm = comm;
                cfg.iters = iters;
                cfg.warmup = warmup;
                cfg.odf = self.odf;
                cfg.placement = self.placement;
                // The LB migrates through the checkpoint/restore path,
                // so an armed balancer needs checkpoints on.
                if self.machine.lb.enabled() {
                    cfg.checkpoint_every = 1;
                }
                cfg
            }
            other => panic!("not a Jacobi scenario: {other:?}"),
        }
    }
}
