//! Per-scenario result records, fingerprints, and the streamed
//! JSONL/CSV encodings.
//!
//! The JSON here is hand-formatted like the rest of the repo's
//! `BENCH_*.json` output (the vendored serde is a minimal stand-in, see
//! `vendor/README.md`).

use gaat_sim::mix64;

/// Everything recorded about one finished scenario. The *deterministic*
/// fields (simulated time, checksum, counters) feed the fingerprint;
/// the wall-clock fields (`wall_ns`, `setup_ns`, `reused_world`) are
/// measurement metadata and deliberately excluded, so fingerprints are
/// comparable across worker counts, hosts, and reuse modes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// The scenario's stable grid index.
    pub index: usize,
    /// Group key (label minus the seed axis).
    pub group: String,
    /// Human-readable identity.
    pub label: String,
    /// Whether the run completed (false = blocks stalled, retries off).
    pub ok: bool,
    /// Stalled-block count (0 when `ok`).
    pub stalled: u64,
    /// Simulated makespan; for a stalled run, the virtual time at which
    /// the queue drained (still deterministic).
    pub makespan_ns: u64,
    /// Simulated time per iteration/sweep/step/round, 0 when stalled.
    pub unit_ns: u64,
    /// Field checksum, when the workload computes one.
    pub checksum: Option<f64>,
    /// Entry methods executed.
    pub entries: u64,
    /// Fabric: messages admitted.
    pub net_messages: u64,
    /// Fabric: bytes sent.
    pub net_bytes: u64,
    /// Fabric: fault-plan drops.
    pub net_drops: u64,
    /// Fabric: retransmissions admitted.
    pub net_retransmits: u64,
    /// Transport: retransmits issued.
    pub ucx_retransmits: u64,
    /// Transport: ack timeouts fired.
    pub ucx_timeouts: u64,
    /// Transport: duplicate deliveries suppressed.
    pub ucx_duplicates: u64,
    /// Collectives: payload bytes through channels (ML proxies).
    pub coll_bytes: u64,
    /// Collectives: chunks sent (ML proxies).
    pub coll_chunks: u64,
    /// Host wall time for the whole scenario.
    pub wall_ns: u64,
    /// Host wall time for engine + machine + application construction.
    pub setup_ns: u64,
    /// Whether the world slot recycled a retired engine for this run.
    pub reused_world: bool,
}

impl ScenarioRecord {
    /// Order-independent digest of the deterministic fields. Two runs of
    /// the same scenario — different workers, different dequeue order,
    /// reused or fresh world — must produce the same fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x5eed_5eed_5eed_5eed;
        for v in [
            self.index as u64,
            self.ok as u64,
            self.stalled,
            self.makespan_ns,
            self.unit_ns,
            self.checksum.map_or(0, f64::to_bits),
            self.entries,
            self.net_messages,
            self.net_bytes,
            self.net_drops,
            self.net_retransmits,
            self.ucx_retransmits,
            self.ucx_timeouts,
            self.ucx_duplicates,
            self.coll_bytes,
            self.coll_chunks,
        ] {
            h = mix64(h ^ v);
        }
        h
    }

    /// One JSONL line (no trailing newline).
    pub fn jsonl(&self) -> String {
        let checksum = match self.checksum {
            Some(c) => format!("{c:?}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"i\": {}, \"label\": \"{}\", \"fingerprint\": \"{:016x}\", ",
                "\"ok\": {}, \"stalled\": {}, \"makespan_ns\": {}, \"unit_ns\": {}, ",
                "\"checksum\": {}, \"entries\": {}, ",
                "\"net\": {{\"messages\": {}, \"bytes\": {}, \"drops\": {}, \"retransmits\": {}}}, ",
                "\"ucx\": {{\"retransmits\": {}, \"timeouts\": {}, \"duplicates\": {}}}, ",
                "\"coll\": {{\"bytes\": {}, \"chunks\": {}}}, ",
                "\"wall_ns\": {}, \"setup_ns\": {}, \"reused_world\": {}}}"
            ),
            self.index,
            self.label,
            self.fingerprint(),
            self.ok,
            self.stalled,
            self.makespan_ns,
            self.unit_ns,
            checksum,
            self.entries,
            self.net_messages,
            self.net_bytes,
            self.net_drops,
            self.net_retransmits,
            self.ucx_retransmits,
            self.ucx_timeouts,
            self.ucx_duplicates,
            self.coll_bytes,
            self.coll_chunks,
            self.wall_ns,
            self.setup_ns,
            self.reused_world,
        )
    }
}

/// Pull the raw text of `"key": <value>` out of `line`, scanning
/// forward from `*pos` only — keys repeat across the nested objects
/// (`net.bytes` vs `coll.bytes`), so parsing follows the fixed field
/// order [`ScenarioRecord::jsonl`] writes.
fn field<'a>(line: &'a str, pos: &mut usize, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.get(*pos..)?.find(&pat)? + *pos + pat.len();
    let rest = line.get(start..)?;
    let end = rest.find([',', '}'])?;
    *pos = start + end;
    Some(&rest[..end])
}

impl ScenarioRecord {
    /// Parse one line written by [`ScenarioRecord::jsonl`] back into a
    /// record — the resume path's reader. Returns `None` for anything
    /// that does not parse cleanly *or* whose stored fingerprint does
    /// not match the one recomputed from the parsed fields (a truncated
    /// or corrupted tail line), so a resumed sweep only trusts intact
    /// records. The `group` field is not in the JSONL encoding; it is
    /// left empty for the caller to restore from the scenario list.
    pub fn from_jsonl(line: &str) -> Option<ScenarioRecord> {
        let p = &mut 0usize;
        let index: usize = field(line, p, "i")?.parse().ok()?;
        let label = field(line, p, "label")?
            .strip_prefix('"')?
            .strip_suffix('"')?
            .to_string();
        let stored = field(line, p, "fingerprint")?;
        let stored = u64::from_str_radix(stored.strip_prefix('"')?.strip_suffix('"')?, 16).ok()?;
        let rec = ScenarioRecord {
            index,
            group: String::new(),
            label,
            ok: field(line, p, "ok")?.parse().ok()?,
            stalled: field(line, p, "stalled")?.parse().ok()?,
            makespan_ns: field(line, p, "makespan_ns")?.parse().ok()?,
            unit_ns: field(line, p, "unit_ns")?.parse().ok()?,
            checksum: match field(line, p, "checksum")? {
                "null" => None,
                v => Some(v.parse().ok()?),
            },
            entries: field(line, p, "entries")?.parse().ok()?,
            net_messages: field(line, p, "messages")?.parse().ok()?,
            net_bytes: field(line, p, "bytes")?.parse().ok()?,
            net_drops: field(line, p, "drops")?.parse().ok()?,
            net_retransmits: field(line, p, "retransmits")?.parse().ok()?,
            ucx_retransmits: field(line, p, "retransmits")?.parse().ok()?,
            ucx_timeouts: field(line, p, "timeouts")?.parse().ok()?,
            ucx_duplicates: field(line, p, "duplicates")?.parse().ok()?,
            coll_bytes: field(line, p, "bytes")?.parse().ok()?,
            coll_chunks: field(line, p, "chunks")?.parse().ok()?,
            wall_ns: field(line, p, "wall_ns")?.parse().ok()?,
            setup_ns: field(line, p, "setup_ns")?.parse().ok()?,
            reused_world: field(line, p, "reused_world")?.parse().ok()?,
        };
        (rec.fingerprint() == stored).then_some(rec)
    }
}

/// One aggregate row: records grouped by everything but the seed.
#[derive(Debug, Clone)]
pub struct AggregateRow {
    /// Group key.
    pub group: String,
    /// Scenarios in the group.
    pub count: usize,
    /// Of those, how many completed.
    pub ok: usize,
    /// Total stalled blocks across the group.
    pub stalled: u64,
    /// Mean simulated makespan over completed runs, ns.
    pub mean_makespan_ns: f64,
    /// Mean simulated time per unit over completed runs, ns.
    pub mean_unit_ns: f64,
    /// Mean host wall time per scenario, ns.
    pub mean_wall_ns: f64,
}

impl AggregateRow {
    /// CSV header for [`AggregateRow::csv`].
    pub fn csv_header() -> &'static str {
        "group,count,ok,stalled,mean_makespan_ns,mean_unit_ns,mean_wall_ns"
    }

    /// One CSV row.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.0},{:.0},{:.0}",
            self.group,
            self.count,
            self.ok,
            self.stalled,
            self.mean_makespan_ns,
            self.mean_unit_ns,
            self.mean_wall_ns
        )
    }
}
