//! The request-driven sweep executor: a work queue drained by a pool of
//! std threads, each owning one reusable [`WorldSlot`].
//!
//! Determinism argument, in full:
//!
//! 1. Every scenario runs in its *own* single-machine simulation, fully
//!    determined by its `MachineConfig` (seed, fault plan, topology)
//!    and workload parameters. Nothing about one scenario's execution
//!    reads another's state.
//! 2. World-slot reuse is bit-invisible ([`gaat_sim::Sim::reset`]
//!    restores a fresh engine's observable state; pinned by the
//!    world-reuse test), so it does not matter *which* slot — with
//!    *whatever* history — a scenario lands on.
//! 3. The shared route table replays exactly what each fabric would
//!    derive itself (`gaat-topo`'s `RouteTable` is built by replaying
//!    `try_route`), so sharing immutable topology state is also
//!    bit-invisible.
//! 4. Workers claim scenarios by atomic fetch-add, so worker count and
//!    dequeue order only permute *completion order*. Records carry
//!    their scenario's stable grid index; the report re-sorts by index,
//!    and wall-clock metadata is excluded from fingerprints.
//!
//! Hence: fingerprints from a sweep at any worker count equal each
//! other and equal standalone single-run invocations of the same
//! scenarios. `crates/sweep/tests/determinism_sweep.rs` pins this.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use gaat_jacobi3d::{charm, RunResult};
use gaat_net::SharedTopology;
use gaat_rt::{MachineConfig, Simulation, SlotStats, WorldSlot};
use gaat_sim::{SimDuration, SimTime};

use crate::fork::{self, ForkStats, Unit};
use crate::grid::{Scenario, Workload};
use crate::record::{AggregateRow, ScenarioRecord};

/// How to drain a scenario queue.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 = host parallelism.
    pub workers: usize,
    /// Recycle each worker's engine between scenarios (the fast path;
    /// off = build a fresh world per run, for overhead measurement).
    pub reuse_worlds: bool,
    /// Analyze the scenario list into prefix groups (see [`fork`]) and
    /// run each group's shared prefix once, snapshotting at the
    /// divergence instant and forking the branches from the snapshot.
    /// Bit-invisible in the records — pinned against the unforked path
    /// — and off for anything the planner cannot prove shareable.
    pub fork: bool,
    /// Resume a partial sweep: re-read `jsonl` (if it exists), keep
    /// every intact record whose index and label match this scenario
    /// list, and run only the missing scenarios. The file is rewritten
    /// with the kept records first, so a corrupt tail line from a kill
    /// mid-write is dropped rather than appended after.
    pub resume: bool,
    /// Stream one JSON record per completed scenario here, flushed per
    /// line so a killed sweep keeps everything finished so far.
    pub jsonl: Option<PathBuf>,
    /// Write the end-of-sweep aggregate summary here as CSV.
    pub csv: Option<PathBuf>,
}

impl SweepOptions {
    /// Defaults plus world reuse and prefix-fork sharing on (the normal
    /// configuration).
    pub fn new() -> Self {
        SweepOptions {
            reuse_worlds: true,
            fork: true,
            ..Default::default()
        }
    }
}

/// Everything a finished sweep produced, in scenario-index order.
#[derive(Debug)]
pub struct SweepReport {
    /// One record per scenario, sorted by grid index.
    pub records: Vec<ScenarioRecord>,
    /// Wall time of the whole drain.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Merged world-slot counters across workers.
    pub slots: SlotStats,
    /// Merged prefix-fork counters across workers (all zero when
    /// [`SweepOptions::fork`] is off or nothing was shareable).
    pub fork: ForkStats,
    /// Scenarios satisfied from the resumed JSONL instead of executed.
    pub resumed: usize,
}

impl SweepReport {
    /// Per-scenario fingerprints in index order (the cross-worker-count
    /// comparison key).
    pub fn fingerprints(&self) -> Vec<u64> {
        self.records
            .iter()
            .map(ScenarioRecord::fingerprint)
            .collect()
    }

    /// Records folded by group (everything but the seed axis), in
    /// first-appearance order.
    pub fn aggregate(&self) -> Vec<AggregateRow> {
        let mut rows: Vec<AggregateRow> = Vec::new();
        for r in &self.records {
            let row = match rows.iter_mut().find(|g| g.group == r.group) {
                Some(row) => row,
                None => {
                    rows.push(AggregateRow {
                        group: r.group.clone(),
                        count: 0,
                        ok: 0,
                        stalled: 0,
                        mean_makespan_ns: 0.0,
                        mean_unit_ns: 0.0,
                        mean_wall_ns: 0.0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            // Accumulate sums first; normalized below.
            row.count += 1;
            row.stalled += r.stalled;
            row.mean_wall_ns += r.wall_ns as f64;
            if r.ok {
                row.ok += 1;
                row.mean_makespan_ns += r.makespan_ns as f64;
                row.mean_unit_ns += r.unit_ns as f64;
            }
        }
        for row in &mut rows {
            row.mean_wall_ns /= row.count as f64;
            if row.ok > 0 {
                row.mean_makespan_ns /= row.ok as f64;
                row.mean_unit_ns /= row.ok as f64;
            }
        }
        rows
    }

    /// The aggregate as a printable table.
    pub fn aggregate_table(&self) -> String {
        let mut out = format!(
            "{:<55} {:>5} {:>5} {:>7} {:>12} {:>10}\n",
            "group", "runs", "ok", "stalled", "makespan_us", "unit_us"
        );
        for row in self.aggregate() {
            out.push_str(&format!(
                "{:<55} {:>5} {:>5} {:>7} {:>12.1} {:>10.2}\n",
                row.group,
                row.count,
                row.ok,
                row.stalled,
                row.mean_makespan_ns / 1e3,
                row.mean_unit_ns / 1e3,
            ));
        }
        out
    }
}

/// Drain `scenarios` across a worker pool and collect every record.
/// Per-scenario outcomes are independent of `opts.workers` and of
/// dequeue order (see the module docs for the argument); only the
/// wall-clock metadata fields vary.
pub fn run_sweep(scenarios: &[Scenario], opts: &SweepOptions) -> std::io::Result<SweepReport> {
    let start = Instant::now();
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        opts.workers
    };

    // One immutable topology/route table per unique machine shape,
    // built up front and shared behind `Arc`s by every worker.
    let mut shapes: Vec<SharedTopology> = Vec::new();
    for sc in scenarios {
        if !shapes
            .iter()
            .any(|t| t.matches(sc.machine.nodes, &sc.machine.net))
        {
            shapes.push(SharedTopology::build(sc.machine.nodes, &sc.machine.net));
        }
    }

    // Resume: harvest intact records from a previous partial JSONL.
    // A record is trusted only if it parses, its stored fingerprint
    // matches the recomputed one, and its index/label agree with this
    // scenario list (guarding against resuming a different grid).
    let mut slots_out: Vec<Option<ScenarioRecord>> = vec![None; scenarios.len()];
    let mut resumed = 0usize;
    if opts.resume {
        if let Some(p) = &opts.jsonl {
            if let Ok(text) = std::fs::read_to_string(p) {
                for line in text.lines() {
                    if let Some(mut rec) = ScenarioRecord::from_jsonl(line) {
                        let i = rec.index;
                        if i < scenarios.len()
                            && rec.label == scenarios[i].label()
                            && slots_out[i].is_none()
                        {
                            rec.group = scenarios[i].group();
                            slots_out[i] = Some(rec);
                            resumed += 1;
                        }
                    }
                }
            }
        }
    }
    let skip: Vec<bool> = slots_out.iter().map(Option::is_some).collect();
    let units = fork::plan(scenarios, opts.fork, &skip);

    let mut jsonl = match &opts.jsonl {
        Some(p) => Some(BufWriter::new(File::create(p)?)),
        None => None,
    };
    // Rewriting (rather than appending to) the file on resume drops any
    // corrupt tail line; the kept records come back first.
    if let Some(w) = jsonl.as_mut() {
        for rec in slots_out.iter().flatten() {
            writeln!(w, "{}", rec.jsonl())?;
        }
        w.flush()?;
    }
    let mut write_err: Option<std::io::Error> = None;

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<ScenarioRecord>();
    let mut slots = SlotStats::default();
    let mut fork_stats = ForkStats::default();
    let shapes_ref = &shapes;
    let next_ref = &next;
    let units_ref = &units;

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let tx = tx.clone();
            handles.push(s.spawn(move || {
                let mut slot = WorldSlot::new();
                for t in shapes_ref {
                    slot.install_topology(t.clone());
                }
                let mut fstats = ForkStats::default();
                'drain: loop {
                    let u = next_ref.fetch_add(1, Ordering::Relaxed);
                    if u >= units_ref.len() {
                        break;
                    }
                    match &units_ref[u] {
                        Unit::Single(i) => {
                            let rec = run_scenario_in(&mut slot, &scenarios[*i], opts.reuse_worlds);
                            if tx.send(rec).is_err() {
                                break;
                            }
                        }
                        Unit::Group {
                            members,
                            divergence,
                        } => {
                            let recs = run_group_in(
                                &mut slot,
                                scenarios,
                                members,
                                *divergence,
                                opts.reuse_worlds,
                                &mut fstats,
                            );
                            for rec in recs {
                                if tx.send(rec).is_err() {
                                    break 'drain;
                                }
                            }
                        }
                    }
                }
                (slot.stats(), fstats)
            }));
        }
        drop(tx);
        // The calling thread is the sink: stream each record out the
        // moment it lands, so a killed sweep keeps every completed one.
        for rec in rx {
            if let Some(w) = jsonl.as_mut() {
                if write_err.is_none() {
                    let line = rec.jsonl();
                    if let Err(e) = writeln!(w, "{line}").and_then(|()| w.flush()) {
                        write_err = Some(e);
                    }
                }
            }
            let idx = rec.index;
            slots_out[idx] = Some(rec);
        }
        for h in handles {
            let (st, fs) = h.join().expect("sweep worker panicked");
            slots.prepared += st.prepared;
            slots.reused += st.reused;
            fork_stats.merge(&fs);
        }
    });
    if let Some(e) = write_err {
        return Err(e);
    }

    let records: Vec<ScenarioRecord> = slots_out
        .into_iter()
        .map(|r| r.expect("every scenario produces exactly one record"))
        .collect();
    let report = SweepReport {
        records,
        wall: start.elapsed(),
        workers,
        slots,
        fork: fork_stats,
        resumed,
    };
    if let Some(p) = &opts.csv {
        let mut w = BufWriter::new(File::create(p)?);
        writeln!(w, "{}", AggregateRow::csv_header())?;
        for row in report.aggregate() {
            writeln!(w, "{}", row.csv())?;
        }
        w.flush()?;
    }
    Ok(report)
}

/// Run one scenario standalone, on a throwaway slot with no engine or
/// topology reuse — the reference path the determinism test compares
/// sweep records against.
pub fn run_standalone(sc: &Scenario) -> ScenarioRecord {
    let mut slot = WorldSlot::new();
    run_scenario_in(&mut slot, sc, false)
}

/// Drain an arbitrary job list across a pool of worker threads, each
/// owning one reusable [`WorldSlot`] — the generic pool underneath
/// [`run_sweep`], exposed so other harnesses (the figure generator, the
/// examples) can recycle worlds instead of hand-rolling serial loops.
/// Jobs are claimed by atomic fetch-add; results come back in job
/// order. `workers == 0` uses host parallelism.
pub fn run_batch<J, R, F>(jobs: &[J], workers: usize, f: F) -> (Vec<R>, SlotStats)
where
    J: Sync,
    R: Send,
    F: Fn(&mut WorldSlot, &J) -> R + Sync,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        workers
    }
    .min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let out: Vec<std::sync::Mutex<Option<R>>> = (0..jobs.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let mut slots = SlotStats::default();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(s.spawn(|| {
                let mut slot = WorldSlot::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    *out[i].lock().expect("a batch job panicked") = Some(f(&mut slot, &jobs[i]));
                }
                slot.stats()
            }));
        }
        for h in handles {
            let st = h.join().expect("batch worker panicked");
            slots.prepared += st.prepared;
            slots.reused += st.reused;
        }
    });
    let results = out
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("lock poisoned")
                .expect("job claimed but never finished")
        })
        .collect();
    (results, slots)
}

/// A record with identity filled in and every outcome field zeroed.
fn base_record(sc: &Scenario) -> ScenarioRecord {
    ScenarioRecord {
        index: sc.index,
        group: sc.group(),
        label: sc.label(),
        ok: true,
        stalled: 0,
        makespan_ns: 0,
        unit_ns: 0,
        checksum: None,
        entries: 0,
        net_messages: 0,
        net_bytes: 0,
        net_drops: 0,
        net_retransmits: 0,
        ucx_retransmits: 0,
        ucx_timeouts: 0,
        ucx_duplicates: 0,
        coll_bytes: 0,
        coll_chunks: 0,
        wall_ns: 0,
        setup_ns: 0,
        reused_world: false,
    }
}

/// Fold a tolerant Jacobi outcome into the record.
fn apply_jacobi_outcome(
    rec: &mut ScenarioRecord,
    sim: &Simulation,
    res: Option<RunResult>,
    stalled: usize,
) {
    match res {
        Some(r) => {
            rec.makespan_ns = r.total.as_ns();
            rec.unit_ns = r.time_per_iter.as_ns();
            rec.checksum = r.checksum;
        }
        None => {
            rec.ok = false;
            rec.stalled = stalled as u64;
            rec.makespan_ns = sim.sim.now().as_ns();
        }
    }
}

/// Copy the machine's end-of-run counters into the record.
fn seal_record(rec: &mut ScenarioRecord, sim: &Simulation) {
    let net = sim.machine.fabric.stats();
    let ucx = sim.machine.ucx.stats();
    rec.entries = sim.machine.stats().entries;
    rec.net_messages = net.messages;
    rec.net_bytes = net.bytes;
    rec.net_drops = net.drops;
    rec.net_retransmits = net.retransmits;
    rec.ucx_retransmits = ucx.retransmits;
    rec.ucx_timeouts = ucx.timeouts;
    rec.ucx_duplicates = ucx.duplicates;
}

/// Run one prefix group: build the first member's world, execute the
/// shared prefix to just before `divergence`, snapshot, finish the
/// first member live, then finish every other member from a restore of
/// the snapshot with its own stochastic fault plan swapped in. If the
/// world declines to snapshot, the first member still finishes live
/// (the prefix ran under its exact config) and the rest fall back to
/// standalone runs — correctness never depends on the fork succeeding.
fn run_group_in(
    slot: &mut WorldSlot,
    scenarios: &[Scenario],
    members: &[usize],
    divergence: SimTime,
    reuse: bool,
    fstats: &mut ForkStats,
) -> Vec<ScenarioRecord> {
    match scenarios[members[0]].workload {
        Workload::Jacobi { .. } => run_group_generic(
            slot,
            scenarios,
            members,
            divergence,
            reuse,
            fstats,
            |sim0, sc| charm::build_in(sim0, sc.jacobi_config()),
            |sim, ids| charm::start(sim, ids),
            |sim, ids, sh, rec| {
                let (res, stalled) = charm::finish_tolerant(sim, ids, sh);
                apply_jacobi_outcome(rec, sim, res, stalled);
            },
        ),
        Workload::Sweep3d {
            global,
            sweeps,
            warmup,
        } => run_group_generic(
            slot,
            scenarios,
            members,
            divergence,
            reuse,
            fstats,
            move |sim0, sc| {
                let mut cfg = gaat_sweep3d::SweepConfig::new(sc.machine.clone(), global);
                cfg.odf = sc.odf;
                cfg.sweeps = sweeps;
                cfg.warmup = warmup;
                gaat_sweep3d::build_in(sim0, cfg)
            },
            |sim, ids| gaat_sweep3d::start(sim, ids),
            |sim, ids, sh, rec| {
                let r = gaat_sweep3d::finish(sim, ids, sh);
                rec.makespan_ns = r.total.as_ns();
                rec.unit_ns = r.time_per_sweep.as_ns();
            },
        ),
        // The planner only forms groups for fork-capable workloads;
        // anything else degrades gracefully to standalone runs.
        _ => members
            .iter()
            .map(|&m| run_scenario_in(slot, &scenarios[m], reuse))
            .collect(),
    }
}

/// Workload-agnostic body of [`run_group_in`]: `build` constructs the
/// app world, `start` injects the initial broadcast, and `finish`
/// drains the run and folds its outcome into the record.
#[allow(clippy::too_many_arguments)]
fn run_group_generic<Ids, Sh, B, S, F>(
    slot: &mut WorldSlot,
    scenarios: &[Scenario],
    members: &[usize],
    divergence: SimTime,
    reuse: bool,
    fstats: &mut ForkStats,
    build: B,
    start: S,
    finish: F,
) -> Vec<ScenarioRecord>
where
    B: Fn(Simulation, &Scenario) -> (Simulation, Ids, Sh),
    S: Fn(&mut Simulation, &Ids),
    F: Fn(&mut Simulation, &Ids, &Sh, &mut ScenarioRecord),
{
    fstats.groups += 1;
    let t0 = Instant::now();
    let sc0 = &scenarios[members[0]];
    let reused_world = reuse && slot.stats().prepared > 0;
    let sim0 = if reuse {
        slot.prepare(sc0.machine.clone())
    } else {
        Simulation::new(sc0.machine.clone())
    };
    let (mut sim, ids, sh) = build(sim0, sc0);
    let setup_ns = t0.elapsed().as_nanos() as u64;
    start(&mut sim, &ids);
    // Events at exactly the divergence instant may already observe the
    // late fields, so the pause lands one tick before it.
    sim.run_until(divergence - SimDuration::from_ns(1));
    let st = Instant::now();
    let snap = sim.snapshot();
    let snap_ns = st.elapsed().as_nanos() as u64;

    let finish_branch =
        |sim: &mut Simulation, sc: &Scenario, setup_ns: u64, reused: bool, bt: Instant| {
            let mut rec = base_record(sc);
            rec.setup_ns = setup_ns;
            rec.reused_world = reused;
            finish(sim, &ids, &sh, &mut rec);
            seal_record(&mut rec, sim);
            rec.wall_ns = bt.elapsed().as_nanos() as u64;
            rec
        };

    let mut out = Vec::with_capacity(members.len());
    match snap {
        Some(snap) => {
            fstats.snapshots_taken += 1;
            fstats.snapshot_ns += snap_ns;
            fstats.scenarios_forked += members.len() - 1;
            out.push(finish_branch(&mut sim, sc0, setup_ns, reused_world, t0));
            for &m in &members[1..] {
                let bt = Instant::now();
                sim.restore(&snap);
                let restore_ns = bt.elapsed().as_nanos() as u64;
                fstats.restore_ns += restore_ns;
                sim.set_stochastic_faults(scenarios[m].machine.faults.clone());
                out.push(finish_branch(&mut sim, &scenarios[m], restore_ns, true, bt));
            }
            if reuse {
                slot.retire(sim);
            }
        }
        None => {
            fstats.declined += members.len() - 1;
            out.push(finish_branch(&mut sim, sc0, setup_ns, reused_world, t0));
            if reuse {
                slot.retire(sim);
            }
            for &m in &members[1..] {
                out.push(run_scenario_in(slot, &scenarios[m], reuse));
            }
        }
    }
    out
}

fn run_scenario_in(slot: &mut WorldSlot, sc: &Scenario, reuse: bool) -> ScenarioRecord {
    let t0 = Instant::now();
    let reused_world = reuse && slot.stats().prepared > 0;
    let prep = |slot: &mut WorldSlot, m: MachineConfig| {
        if reuse {
            slot.prepare(m)
        } else {
            Simulation::new(m)
        }
    };

    let mut rec = base_record(sc);
    rec.reused_world = reused_world;

    let sim = match sc.workload {
        Workload::Jacobi { .. } => {
            let cfg = sc.jacobi_config();
            let sim0 = prep(slot, cfg.machine.clone());
            let (mut sim, ids, sh) = charm::build_in(sim0, cfg);
            rec.setup_ns = t0.elapsed().as_nanos() as u64;
            let (res, stalled) = charm::run_tolerant(&mut sim, &ids, &sh);
            apply_jacobi_outcome(&mut rec, &sim, res, stalled);
            sim
        }
        Workload::Sweep3d {
            global,
            sweeps,
            warmup,
        } => {
            let mut cfg = gaat_sweep3d::SweepConfig::new(sc.machine.clone(), global);
            cfg.odf = sc.odf;
            cfg.sweeps = sweeps;
            cfg.warmup = warmup;
            let sim0 = prep(slot, cfg.machine.clone());
            let (mut sim, ids, sh) = gaat_sweep3d::build_in(sim0, cfg);
            rec.setup_ns = t0.elapsed().as_nanos() as u64;
            let r = gaat_sweep3d::run(&mut sim, &ids, &sh);
            rec.makespan_ns = r.total.as_ns();
            rec.unit_ns = r.time_per_sweep.as_ns();
            sim
        }
        Workload::Train { params, steps } => {
            let mut cfg = gaat_dptrain::TrainConfig::new(sc.machine.clone(), params);
            cfg.steps = steps;
            let sim0 = prep(slot, cfg.machine.clone());
            let (mut sim, ids, sh) = gaat_dptrain::train::build_train_in(sim0, cfg);
            rec.setup_ns = t0.elapsed().as_nanos() as u64;
            let r = gaat_dptrain::run_train(&mut sim, &ids, &sh);
            rec.makespan_ns = r.total.as_ns();
            rec.unit_ns = r.time_per_step.as_ns();
            rec.coll_bytes = r.coll_stats.bytes;
            rec.coll_chunks = r.coll_stats.chunks;
            sim
        }
        Workload::Moe {
            tokens,
            hidden,
            rounds,
        } => {
            let mut cfg = gaat_dptrain::MoeConfig::new(sc.machine.clone(), tokens, hidden);
            cfg.rounds = rounds;
            let sim0 = prep(slot, cfg.machine.clone());
            let (mut sim, ids, sh) = gaat_dptrain::moe::build_moe_in(sim0, cfg);
            rec.setup_ns = t0.elapsed().as_nanos() as u64;
            let r = gaat_dptrain::run_moe(&mut sim, &ids, &sh);
            rec.makespan_ns = r.total.as_ns();
            rec.unit_ns = r.time_per_round.as_ns();
            rec.coll_bytes = r.dispatch_stats.bytes + r.combine_stats.bytes;
            rec.coll_chunks = r.dispatch_stats.chunks + r.combine_stats.chunks;
            sim
        }
    };

    seal_record(&mut rec, &sim);
    if reuse {
        slot.retire(sim);
    }
    rec.wall_ns = t0.elapsed().as_nanos() as u64;
    rec
}
