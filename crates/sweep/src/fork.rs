//! Prefix-tree analysis of a scenario list: which scenarios can share
//! one executed prefix, and where that prefix ends.
//!
//! Two scenarios may share a prefix when their worlds are bit-identical
//! up to some virtual instant `T` and diverge only through state that
//! can be swapped in *after* a [`gaat_rt::Simulation::restore`] without
//! arming or cancelling events. The late-divergent state is exactly the
//! stochastic half of the fault plan:
//!
//! - `drop_prob` / `corrupt_prob` — fate draws are pure hashes gated by
//!   [`gaat_sim::FaultPlan::lossy_at`], so before the onset they are
//!   behaviourally invisible whatever their value;
//! - `onset` itself — scenarios with different onsets share the prefix
//!   up to the *earliest* lossy onset in the group;
//! - the fault `seed` — but only with the reliable transport **off**:
//!   with retries on the seed also feeds ack-timeout backoff jitter from
//!   `t = 0`, which makes it prefix-visible, so the planner keeps
//!   differing-seed scenarios apart in that case.
//!
//! Everything else — machine shape, workload, ODF, placement, machine
//! seed, retries toggle, and the *time-triggered* fault sources (link
//! faults, PE failures, straggler windows), which are armed as build
//! time events — must be identical within a group.
//!
//! The planner is conservative by construction: a scenario that cannot
//! prove membership in a group runs standalone, which degrades exactly
//! to the pre-fork executor. Runtime declines (a world that refuses to
//! snapshot, e.g. a pending boxed closure) degrade the same way.

use gaat_sim::SimTime;

use crate::grid::{Scenario, Workload};

/// Counters describing what the prefix-tree executor actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Prefix groups planned with at least two members.
    pub groups: usize,
    /// World snapshots actually taken (one per group that forked).
    pub snapshots_taken: usize,
    /// Scenarios executed from a restored snapshot rather than from
    /// `t = 0` (group members beyond the first).
    pub scenarios_forked: usize,
    /// Group members that fell back to standalone execution because the
    /// world declined to snapshot at run time.
    pub declined: usize,
    /// Host nanoseconds spent taking snapshots.
    pub snapshot_ns: u64,
    /// Host nanoseconds spent restoring snapshots.
    pub restore_ns: u64,
}

impl ForkStats {
    /// Fold another worker's counters into this one.
    pub fn merge(&mut self, o: &ForkStats) {
        self.groups += o.groups;
        self.snapshots_taken += o.snapshots_taken;
        self.scenarios_forked += o.scenarios_forked;
        self.declined += o.declined;
        self.snapshot_ns += o.snapshot_ns;
        self.restore_ns += o.restore_ns;
    }
}

/// One schedulable work item: either a standalone scenario or a prefix
/// group that runs its shared prefix once and forks at `divergence`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Unit {
    /// Run `scenarios[i]` from scratch (the pre-fork path).
    Single(usize),
    /// Run the members' shared prefix once under the first member's
    /// config, snapshot just before `divergence`, and finish each
    /// member from the snapshot with its own stochastic fault plan.
    Group {
        /// Positions into the scenario slice, in index order; the first
        /// member's config drives the shared prefix.
        members: Vec<usize>,
        /// Earliest instant at which any member's behaviour can depend
        /// on its late-divergent fields (the minimum lossy onset).
        /// Always `> 0`.
        divergence: SimTime,
    },
}

/// The group identity: everything that must be bit-identical for two
/// scenarios to share an executed prefix.
struct Key {
    workload: Workload,
    odf: usize,
    placement: gaat_jacobi3d::Placement,
    machine: gaat_rt::MachineConfig,
}

fn key_of(sc: &Scenario) -> Key {
    let mut machine = sc.machine.clone();
    // Normalize the late-divergent fields away; whatever remains must
    // match exactly (PartialEq over the whole MachineConfig).
    machine.faults.drop_prob = 0.0;
    machine.faults.corrupt_prob = 0.0;
    machine.faults.onset = SimTime::ZERO;
    if !machine.ucx.reliability.enabled {
        // Retries off: the fault seed feeds only the onset-gated fate
        // draws, so it is late-divergent too.
        machine.faults.seed = 0;
    }
    Key {
        workload: sc.workload,
        odf: sc.odf,
        placement: sc.placement,
        machine,
    }
}

fn key_eq(a: &Key, b: &Key) -> bool {
    a.workload == b.workload
        && a.odf == b.odf
        && a.placement == b.placement
        && a.machine == b.machine
}

/// Analyze `scenarios` (skipping positions where `skip` is set, e.g.
/// already-completed work on a resumed sweep) into an ordered unit
/// list. With `fork` off — or for workloads without fork support —
/// every scenario becomes a [`Unit::Single`], reproducing the pre-fork
/// executor exactly.
pub(crate) fn plan(scenarios: &[Scenario], fork: bool, skip: &[bool]) -> Vec<Unit> {
    let live = |i: usize| !skip.get(i).copied().unwrap_or(false);
    if !fork {
        return (0..scenarios.len())
            .filter(|&i| live(i))
            .map(Unit::Single)
            .collect();
    }
    // Proto-groups keyed by normalized config, in first-appearance
    // order (a pure function of the scenario list, so the unit list —
    // and with it every downstream fingerprint — is independent of
    // worker count and dequeue order).
    let mut keys: Vec<Key> = Vec::new();
    let mut protos: Vec<Vec<usize>> = Vec::new();
    let mut singles_first: Vec<Unit> = Vec::new();
    for (i, sc) in scenarios.iter().enumerate() {
        if !live(i) {
            continue;
        }
        // Jacobi and sweep3d implement `Chare::fork`; other workloads
        // run standalone (their worlds would decline the snapshot
        // anyway — this just skips the wasted attempt). A multi-worker
        // windowed machine cannot pause mid-window either.
        if !matches!(
            sc.workload,
            Workload::Jacobi { .. } | Workload::Sweep3d { .. }
        ) || sc.machine.workers > 1
        {
            singles_first.push(Unit::Single(i));
            continue;
        }
        let k = key_of(sc);
        match keys.iter().position(|e| key_eq(e, &k)) {
            Some(p) => protos[p].push(i),
            None => {
                keys.push(k);
                protos.push(vec![i]);
            }
        }
    }

    let mut out = singles_first;
    for members in protos {
        // A lossy member whose draws are active from t = 0 shares no
        // prefix with anyone; peel it off as a single.
        let (zeros, rest): (Vec<usize>, Vec<usize>) = members.into_iter().partition(|&i| {
            let f = &scenarios[i].machine.faults;
            f.lossy() && f.onset == SimTime::ZERO
        });
        out.extend(zeros.into_iter().map(Unit::Single));
        // The group forks at the earliest instant any member's late
        // fields become observable. Members that are not lossy at all
        // never observe them, so any divergence time is sound for them.
        let divergence = rest
            .iter()
            .filter(|&&i| scenarios[i].machine.faults.lossy())
            .map(|&i| scenarios[i].machine.faults.onset)
            .min();
        match divergence {
            Some(t) if rest.len() >= 2 => out.push(Unit::Group {
                members: rest,
                divergence: t,
            }),
            // No lossy member: the members are behaviourally identical
            // but nothing forces a fork point; run them standalone.
            // One member: nothing to share.
            _ => out.extend(rest.into_iter().map(Unit::Single)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ScenarioGrid;
    use gaat_jacobi3d::{CommMode, Dims};
    use gaat_rt::MachineConfig;
    use gaat_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    fn jacobi_grid() -> ScenarioGrid {
        let mut machine = MachineConfig::validation(2, 2);
        machine.faults.seed = 42;
        let mut grid = ScenarioGrid::new(machine);
        grid.workloads.push(Workload::Jacobi {
            global: Dims::cube(8),
            iters: 3,
            warmup: 1,
            comm: CommMode::HostStaging,
        });
        grid
    }

    #[test]
    fn drop_axis_with_onset_forms_one_group() {
        let mut grid = jacobi_grid();
        grid.drop_rates = vec![0.0, 0.05, 0.1];
        grid.fault_onsets = vec![t(40)];
        grid.retries = vec![true];
        let scs = grid.expand();
        let units = plan(&scs, true, &vec![false; scs.len()]);
        assert_eq!(
            units,
            vec![Unit::Group {
                members: vec![0, 1, 2],
                divergence: t(40),
            }]
        );
    }

    #[test]
    fn onset_axis_forks_at_the_earliest_onset() {
        let mut grid = jacobi_grid();
        grid.drop_rates = vec![0.1];
        grid.fault_onsets = vec![t(40), t(80), t(120)];
        let scs = grid.expand();
        let units = plan(&scs, true, &vec![false; scs.len()]);
        assert_eq!(
            units,
            vec![Unit::Group {
                members: vec![0, 1, 2],
                divergence: t(40),
            }]
        );
    }

    #[test]
    fn zero_onset_lossy_scenarios_run_standalone() {
        let mut grid = jacobi_grid();
        grid.drop_rates = vec![0.1];
        grid.fault_onsets = vec![SimTime::ZERO, t(40), t(80)];
        let scs = grid.expand();
        let units = plan(&scs, true, &vec![false; scs.len()]);
        assert_eq!(
            units,
            vec![
                Unit::Single(0),
                Unit::Group {
                    members: vec![1, 2],
                    divergence: t(40),
                }
            ]
        );
    }

    #[test]
    fn fault_seed_is_late_only_with_retries_off() {
        let mut grid = jacobi_grid();
        grid.drop_rates = vec![0.1];
        grid.fault_onsets = vec![t(40)];
        grid.fault_seeds = vec![1, 2];
        grid.retries = vec![false];
        let scs = grid.expand();
        let units = plan(&scs, true, &vec![false; scs.len()]);
        assert_eq!(units.len(), 1, "retries off: seeds share one group");

        grid.retries = vec![true];
        let scs = grid.expand();
        let units = plan(&scs, true, &vec![false; scs.len()]);
        assert_eq!(
            units.len(),
            2,
            "retries on: the seed feeds backoff jitter from t=0, no sharing"
        );
    }

    #[test]
    fn machine_seed_and_odf_split_groups() {
        let mut grid = jacobi_grid();
        grid.drop_rates = vec![0.0, 0.1];
        grid.fault_onsets = vec![t(40)];
        grid.seeds = vec![1, 2];
        grid.odfs = vec![1, 2];
        let scs = grid.expand();
        assert_eq!(scs.len(), 8);
        let units = plan(&scs, true, &vec![false; scs.len()]);
        assert_eq!(units.len(), 4, "one group per (odf, seed)");
        for u in &units {
            match u {
                Unit::Group { members, .. } => assert_eq!(members.len(), 2),
                other => panic!("expected groups only, got {other:?}"),
            }
        }
    }

    #[test]
    fn no_lossy_member_means_no_group() {
        let mut grid = jacobi_grid();
        grid.drop_rates = vec![0.0];
        grid.fault_onsets = vec![t(40), t(80)];
        let scs = grid.expand();
        let units = plan(&scs, true, &vec![false; scs.len()]);
        assert!(units.iter().all(|u| matches!(u, Unit::Single(_))));
    }

    #[test]
    fn fork_off_and_skips_degrade_to_singles() {
        let mut grid = jacobi_grid();
        grid.drop_rates = vec![0.0, 0.1];
        grid.fault_onsets = vec![t(40)];
        let scs = grid.expand();
        let units = plan(&scs, false, &vec![false; scs.len()]);
        assert_eq!(units, vec![Unit::Single(0), Unit::Single(1)]);
        // A completed member shrinks its group below the fork threshold.
        let units = plan(&scs, true, &[true, false]);
        assert_eq!(units, vec![Unit::Single(1)]);
    }
}
