//! # gaat-sweep3d — wavefront sweep proxy application
//!
//! A KBA-style sweep: each block depends on its −x/−y/−z neighbours'
//! boundary planes, computes a Gauss–Seidel-order update, and feeds its
//! +x/+y/+z neighbours. Dependencies form a diagonal wavefront that
//! crosses the block grid.
//!
//! Where Jacobi3D showcases overdecomposition as an *overlap* engine,
//! the sweep showcases it as a *latency* engine: a single wavefront
//! crosses the machine in `O(diagonal × block time)`; finer blocks
//! (higher ODF) shorten each stage and overlap communication with the
//! next stage's compute, cutting the time a sweep takes to cross the
//! grid. In steady state with many back-to-back sweeps, every block is
//! busy regardless of ODF and per-chare overheads dominate instead —
//! the same granularity trade-off the paper quantifies for Jacobi3D.
//! Both regimes are asserted in this crate's tests, on the same runtime,
//! GPU model, and GPU-aware Channel API.
//!
//! Functional mode computes the exact sequential sweep result
//! (dependencies are honoured, so parallel order cannot change the
//! values), validated against [`reference_sweep`] bit-for-bit.

#![warn(missing_docs)]

use std::sync::Arc;

use gaat_jacobi3d::geom::{chare_to_pe, Decomp, Dims, Face};
use gaat_jacobi3d::kernels::{ghosted_len, idx};
use gaat_rt::{
    create_channel, BufRange, BufferId, Callback, ChannelEnd, Chare, ChareId, Ctx, EntryId,
    Envelope, KernelSpec, MachineConfig, MemLoc, Op, RunOutcome, Simulation, Space, StreamId,
};
use gaat_sim::{SimDuration, SimTime};

/// Begin execution.
pub const E_START: EntryId = EntryId(0);
/// An upstream halo arrived via channel (refnum = face index).
pub const E_ARRIVED: EntryId = EntryId(1);
/// Sweep kernel + downstream packs completed (HAPI).
pub const E_SWEPT: EntryId = EntryId(2);
/// A downstream send completed (buffer reusable).
pub const E_SENT: EntryId = EntryId(3);

/// The three upstream faces of the (+,+,+) sweep direction.
const UPSTREAM: [Face; 3] = [Face::Xm, Face::Ym, Face::Zm];
/// The three downstream faces.
const DOWNSTREAM: [Face; 3] = [Face::Xp, Face::Yp, Face::Zp];

/// Experiment description.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// Global grid.
    pub global: Dims,
    /// Chares per PE.
    pub odf: usize,
    /// Number of full sweeps (timed).
    pub sweeps: usize,
    /// Warm-up sweeps excluded from timing.
    pub warmup: usize,
}

impl SweepConfig {
    /// Defaults: one sweep per measurement, ODF 1.
    pub fn new(machine: MachineConfig, global: Dims) -> Self {
        SweepConfig {
            machine,
            global,
            odf: 1,
            sweeps: 8,
            warmup: 2,
        }
    }
}

/// Result of a sweep run.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Mean time per full sweep of the grid.
    pub time_per_sweep: SimDuration,
    /// Total simulated time.
    pub total: SimDuration,
    /// Mean CPU utilization across PEs.
    pub cpu_utilization: f64,
}

/// Shared run parameters.
#[derive(Debug)]
pub struct SweepShared {
    /// The experiment.
    pub cfg: SweepConfig,
    /// Block decomposition.
    pub decomp: Decomp,
}

/// One block of the sweep.
#[derive(Clone)]
pub struct SweepChare {
    sh: Arc<SweepShared>,
    dims: Dims,
    /// Upstream faces that have neighbours (dependencies).
    up: Vec<Face>,
    /// Downstream faces that have neighbours (successors).
    down: Vec<Face>,
    channels: [Option<ChannelEnd>; 6],
    u: BufferId,
    halo_recv: [Option<BufferId>; 6],
    halo_send: [Option<BufferId>; 6],
    comm: StreamId,
    sweep: usize,
    arrived: usize,
    sends_done: usize,
    /// Completion time of the warm-up sweeps.
    pub warm_at: Option<SimTime>,
    /// Completion time of the final sweep.
    pub done_at: Option<SimTime>,
}

impl SweepChare {
    fn total(&self) -> usize {
        self.sh.cfg.sweeps + self.sh.cfg.warmup
    }

    /// Post upstream receives for the current sweep, then check readiness
    /// (corner blocks have no dependencies at all).
    fn begin_sweep(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        for &f in &self.up.clone() {
            let i = f.index();
            let cells = f.area(self.dims);
            let loc = MemLoc {
                device: ctx.device(),
                range: BufRange::whole(self.halo_recv[i].expect("active"), cells),
            };
            let mut ch = self.channels[i].take().expect("channel wired");
            ch.recv(ctx, loc, Callback::to_ref(me, E_ARRIVED, i as u64));
            self.channels[i] = Some(ch);
        }
        self.check_ready(ctx);
    }

    fn check_ready(&mut self, ctx: &mut Ctx<'_>) {
        // Ready when all upstream halos arrived and our downstream send
        // buffers from the previous sweep are free again.
        if self.arrived == self.up.len() && self.sends_done == self.down.len() {
            self.compute_and_feed(ctx);
        }
    }

    /// Unpack upstream ghosts, run the sweep kernel, pack downstream.
    fn compute_and_feed(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        let t = ctx.machine.cfg.gpu.clone();
        let dims = self.dims;
        let u = self.u;
        for &f in &self.up.clone() {
            let h = self.halo_recv[f.index()].expect("active");
            let work = gaat_jacobi3d::kernels::copy_work(&t, f.area(dims));
            let spec = KernelSpec::with_func("unpack", work, move |m| {
                gaat_jacobi3d::kernels::unpack(m, u, h, dims, f);
            });
            ctx.launch(self.comm, Op::kernel(spec));
        }
        // All operations of one sweep step run on the single comm stream,
        // whose FIFO order encodes the unpack → sweep → pack dependency.
        let work = t.membound_work(dims.count() as u64 * 16);
        let spec = KernelSpec::with_func("sweep", work, move |m| sweep_block(m, u, dims));
        ctx.launch(self.comm, Op::kernel(spec));
        for &f in &self.down.clone() {
            let h = self.halo_send[f.index()].expect("active");
            let work = gaat_jacobi3d::kernels::copy_work(&t, f.area(dims));
            let spec = KernelSpec::with_func("pack", work, move |m| {
                gaat_jacobi3d::kernels::pack(m, u, h, dims, f);
            });
            ctx.launch(self.comm, Op::kernel(spec));
        }
        ctx.hapi(self.comm, Callback::to(me, E_SWEPT));
    }

    /// Kernel work done: ship downstream halos and move to the next sweep.
    fn on_swept(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        self.sends_done = 0;
        for &f in &self.down.clone() {
            let i = f.index();
            let cells = f.area(self.dims);
            let loc = MemLoc {
                device: ctx.device(),
                range: BufRange::whole(self.halo_send[i].expect("active"), cells),
            };
            let mut ch = self.channels[i].take().expect("channel wired");
            ch.send(ctx, loc, Callback::to_ref(me, E_SENT, i as u64));
            self.channels[i] = Some(ch);
        }
        self.sweep += 1;
        self.arrived = 0;
        if self.sweep == self.sh.cfg.warmup {
            self.warm_at = Some(ctx.start_time());
        }
        if self.sweep >= self.total() {
            self.done_at = Some(ctx.start_time());
        } else {
            self.begin_sweep(ctx);
        }
    }
}

impl Chare for SweepChare {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_START => {
                // Sends from "last sweep" are vacuously complete.
                self.sends_done = self.down.len();
                self.begin_sweep(ctx);
            }
            E_ARRIVED => {
                self.arrived += 1;
                self.check_ready(ctx);
            }
            E_SENT => {
                self.sends_done += 1;
                self.check_ready(ctx);
            }
            E_SWEPT => self.on_swept(ctx),
            other => panic!("unknown entry {other:?}"),
        }
    }

    fn fork(&self) -> Option<Box<dyn Chare>> {
        // All state is plain data (buffer ids, counters, channel ends),
        // so a clone is an exact mid-flight copy — this is what lets the
        // sweep engine's prefix memoizer fork sweep3d worlds instead of
        // forcing them standalone.
        Some(Box::new(self.clone()))
    }
}

/// Functional block sweep: Gauss–Seidel order update reading the three
/// already-updated (or ghost) upstream neighbours.
pub fn sweep_block(m: &mut gaat_gpu::MemoryPool, u: BufferId, d: Dims) {
    let Some(s) = m.get_mut(u).as_mut_slice() else {
        return;
    };
    let sx = 1usize;
    let sy = d.x + 2;
    let sz = (d.x + 2) * (d.y + 2);
    for z in 1..=d.z {
        for y in 1..=d.y {
            for x in 1..=d.x {
                let i = idx(d, x, y, z);
                s[i] = (s[i - sx] + s[i - sy] + s[i - sz]) / 3.0 + 0.25;
            }
        }
    }
}

/// Sequential reference: `sweeps` full sweeps over the global grid with
/// zero inflow ghosts. Returns the final field (ghosted layout).
pub fn reference_sweep(global: Dims, sweeps: usize) -> Vec<f64> {
    let mut m = gaat_gpu::MemoryPool::new();
    let u = m.alloc_real(Space::Device, ghosted_len(global));
    for _ in 0..sweeps {
        sweep_block(&mut m, u, global);
    }
    m.read(BufRange::whole(u, ghosted_len(global)))
        .expect("real buffer")
}

/// Build the sweep simulation.
pub fn build(cfg: SweepConfig) -> (Simulation, Vec<ChareId>, Arc<SweepShared>) {
    let sim = Simulation::new(cfg.machine.clone());
    build_in(sim, cfg)
}

/// Like [`build`], but constructing the application inside a
/// caller-provided simulation (e.g. one prepared by a
/// `gaat_rt::WorldSlot`, recycling the engine's allocations across a
/// sweep of scenarios). Must have been built from `cfg.machine`.
pub fn build_in(
    mut sim: Simulation,
    cfg: SweepConfig,
) -> (Simulation, Vec<ChareId>, Arc<SweepShared>) {
    assert!(cfg.odf >= 1 && cfg.sweeps > 0);
    debug_assert_eq!(sim.machine.cfg.total_pes(), cfg.machine.total_pes());
    let pes = cfg.machine.total_pes();
    let nblocks = pes * cfg.odf;
    let decomp = Decomp::new(cfg.global, nblocks);
    let real = cfg.machine.real_buffers;
    let sh = Arc::new(SweepShared {
        cfg: cfg.clone(),
        decomp,
    });
    let base = sim.machine.chare_count();
    let ids: Vec<ChareId> = (0..nblocks).map(|i| ChareId(base + i)).collect();

    for bi in 0..nblocks {
        let coord = sh.decomp.coord_of(bi);
        let dims = sh.decomp.block_dims(coord);
        let pe = chare_to_pe(bi, nblocks, pes);
        let dev = sim.machine.pe_device(pe);
        let device = &mut sim.machine.devices[dev.0];
        let u = device.mem.alloc(Space::Device, ghosted_len(dims), real);
        let mut halo_recv = [None; 6];
        let mut halo_send = [None; 6];
        let mut up = Vec::new();
        let mut down = Vec::new();
        for &f in &UPSTREAM {
            if sh.decomp.neighbor(coord, f).is_some() {
                halo_recv[f.index()] = Some(device.mem.alloc(Space::Device, f.area(dims), real));
                up.push(f);
            }
        }
        for &f in &DOWNSTREAM {
            if sh.decomp.neighbor(coord, f).is_some() {
                halo_send[f.index()] = Some(device.mem.alloc(Space::Device, f.area(dims), real));
                down.push(f);
            }
        }
        let comm = device.create_stream(2);
        device.assert_memory_fits();
        let block = SweepChare {
            sh: sh.clone(),
            dims,
            up,
            down,
            channels: Default::default(),
            u,
            halo_recv,
            halo_send,
            comm,
            sweep: 0,
            arrived: 0,
            sends_done: 0,
            warm_at: if cfg.warmup == 0 {
                Some(SimTime::ZERO)
            } else {
                None
            },
            done_at: None,
        };
        let id = sim.machine.create_chare(pe, Box::new(block));
        assert_eq!(id, ChareId(base + bi));
    }

    // Wire downstream channels (one per +axis neighbour pair).
    for bi in 0..nblocks {
        let coord = sh.decomp.coord_of(bi);
        for &f in &DOWNSTREAM {
            if let Some(n) = sh.decomp.neighbor(coord, f) {
                let ni = sh.decomp.index_of(n);
                let (ea, eb) = create_channel(&mut sim.machine, ids[bi], ids[ni]);
                set_channel(&mut sim.machine, ids[bi], f, ea);
                set_channel(&mut sim.machine, ids[ni], f.opposite(), eb);
            }
        }
    }
    (sim, ids, sh)
}

fn set_channel(m: &mut gaat_rt::Machine, id: ChareId, f: Face, end: ChannelEnd) {
    let any = m.chare_for_setup(id);
    let block = any.downcast_mut::<SweepChare>().expect("sweep chare");
    block.channels[f.index()] = Some(end);
}

/// Broadcast the start entry without running (the prefix-memoization
/// split of [`run`]: callers may pause, snapshot, and resume).
pub fn start(sim: &mut Simulation, ids: &[ChareId]) {
    let Simulation { sim, machine, .. } = sim;
    machine.broadcast(sim, ids, E_START, 0);
}

/// Run a started simulation to completion and collect results.
pub fn finish(sim: &mut Simulation, ids: &[ChareId], sh: &SweepShared) -> SweepResult {
    assert_eq!(sim.run(), RunOutcome::Drained, "sweep should quiesce");
    let mut warm = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    for &id in ids {
        let b = sim.machine.chare_as::<SweepChare>(id);
        warm = warm.max(b.warm_at.expect("warmed"));
        done = done.max(b.done_at.expect("finished"));
    }
    let pes = sim.machine.pes.len();
    let cpu = (0..pes)
        .map(|p| sim.machine.pe_utilization(p, done))
        .sum::<f64>()
        / pes as f64;
    SweepResult {
        time_per_sweep: done.since(warm) / sh.cfg.sweeps as u64,
        total: done.since(SimTime::ZERO),
        cpu_utilization: cpu,
    }
}

/// Run to completion and collect results.
pub fn run(sim: &mut Simulation, ids: &[ChareId], sh: &SweepShared) -> SweepResult {
    start(sim, ids);
    finish(sim, ids, sh)
}

/// Convenience: build + run.
pub fn run_sweep(cfg: SweepConfig) -> SweepResult {
    let (mut sim, ids, sh) = build(cfg);
    run(&mut sim, &ids, &sh)
}

/// Compare every block's final field against [`reference_sweep`],
/// bit-for-bit. Returns cells compared.
pub fn validate_against_reference(sim: &Simulation, ids: &[ChareId], sh: &SweepShared) -> usize {
    let reference = reference_sweep(sh.cfg.global, sh.cfg.sweeps + sh.cfg.warmup);
    let g = sh.cfg.global;
    let mut compared = 0;
    for &id in ids {
        let b = sim.machine.chare_as::<SweepChare>(id);
        let pe = sim.machine.pe_of(id);
        let dev = sim.machine.pe_device(pe);
        let buf = sim.machine.devices[dev.0].mem.get(b.u);
        let s = buf.as_slice().expect("validation needs real buffers");
        let coord = sh.decomp.coord_of(id.0 - ids[0].0);
        let o = sh.decomp.block_origin(coord);
        let d = b.dims;
        for z in 1..=d.z {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    let got = s[idx(d, x, y, z)];
                    let want = reference[idx(g, o.0 + x, o.1 + y, o.2 + z)];
                    assert_eq!(got, want, "block {coord:?} cell ({x},{y},{z})");
                    compared += 1;
                }
            }
        }
    }
    compared
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sweep_fills_from_the_corner() {
        let r = reference_sweep(Dims::cube(3), 1);
        let d = Dims::cube(3);
        // corner cell: all upstream are zero ghosts → 0.25
        assert_eq!(r[idx(d, 1, 1, 1)], 0.25);
        // next along x: (0.25 + 0 + 0)/3 + 0.25
        assert_eq!(r[idx(d, 2, 1, 1)], 0.25 / 3.0 + 0.25);
    }

    #[test]
    fn parallel_sweep_matches_reference() {
        for odf in [1usize, 2, 4] {
            let mut cfg = SweepConfig::new(MachineConfig::validation(2, 2), Dims::cube(12));
            cfg.odf = odf;
            cfg.sweeps = 3;
            cfg.warmup = 1;
            let (mut sim, ids, sh) = build(cfg);
            run(&mut sim, &ids, &sh);
            let compared = validate_against_reference(&sim, &ids, &sh);
            assert_eq!(compared, 12 * 12 * 12, "odf={odf}");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let mk = || {
            let mut cfg = SweepConfig::new(MachineConfig::summit(2), Dims::cube(96));
            cfg.odf = 2;
            cfg.sweeps = 4;
            cfg.warmup = 1;
            run_sweep(cfg)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn overdecomposition_cuts_wavefront_fill_latency() {
        // A single sweep front crossing the machine: coarse blocks make
        // every pipeline stage long; finer blocks shorten the critical
        // path. (In steady-state throughput with many back-to-back
        // sweeps, ODF-1 is already fully busy — tested below.)
        // Blocks must be compute-heavy enough that stage time, not
        // per-chare overhead, dominates the critical path.
        let latency = |odf| {
            let mut cfg = SweepConfig::new(MachineConfig::summit(4), Dims::cube(768));
            cfg.odf = odf;
            cfg.sweeps = 1;
            cfg.warmup = 0;
            run_sweep(cfg).total
        };
        let coarse = latency(1);
        let fine = latency(4);
        assert!(
            fine < coarse,
            "ODF-4 fill {fine} should beat ODF-1 fill {coarse}"
        );
    }

    #[test]
    fn steady_state_throughput_prefers_coarse_blocks() {
        // Back-to-back sweeps saturate every block even at ODF-1, so the
        // per-chare overheads of high ODF dominate — the granularity
        // trade-off, sweep edition.
        let mk = |odf| {
            let mut cfg = SweepConfig::new(MachineConfig::summit(4), Dims::cube(384));
            cfg.odf = odf;
            cfg.sweeps = 6;
            cfg.warmup = 2;
            run_sweep(cfg)
        };
        let coarse = mk(1);
        let fine = mk(8);
        assert!(
            coarse.time_per_sweep < fine.time_per_sweep,
            "steady-state ODF-1 {} should beat ODF-8 {}",
            coarse.time_per_sweep,
            fine.time_per_sweep
        );
    }

    #[test]
    fn single_block_runs_standalone() {
        let mut cfg = SweepConfig::new(MachineConfig::validation(1, 1), Dims::cube(8));
        cfg.sweeps = 2;
        cfg.warmup = 0;
        let (mut sim, ids, sh) = build(cfg);
        run(&mut sim, &ids, &sh);
        assert_eq!(validate_against_reference(&sim, &ids, &sh), 512);
    }
}
