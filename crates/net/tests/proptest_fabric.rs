//! Property-based tests of the fabric model: serialization conservation,
//! latency floors, and pair independence under arbitrary traffic.

use proptest::prelude::*;

use gaat_net::{Fabric, NetMsg, NetParams, NodeId, TrafficClass};
use gaat_sim::{SimDuration, SimRng, SimTime};

fn fabric(nodes: usize) -> Fabric {
    let params = NetParams {
        jitter: 0.0,
        ..NetParams::default()
    };
    Fabric::new(nodes, params, SimRng::new(3))
}

proptest! {
    /// Every inter-node message is delivered no earlier than
    /// `send + latency + serialization`, regardless of load.
    #[test]
    fn latency_floor_holds(
        msgs in prop::collection::vec((0usize..6, 0usize..6, 1u64..4_000_000, 0u64..100_000), 1..60)
    ) {
        let mut f = fabric(6);
        let params = f.params().clone();
        for (src, dst, bytes, at) in msgs {
            if src == dst {
                continue;
            }
            let now = SimTime::from_ns(at);
            let m = NetMsg {
                src: NodeId(src),
                dst: NodeId(dst),
                bytes,
                extra_latency: SimDuration::ZERO,
                token: 0,
                class: TrafficClass::Data,
                attempt: 0,
            };
            let delivered = f.commit(now, &m);
            let floor = now + params.inter_latency + params.inter_ser(bytes);
            prop_assert!(
                delivered >= floor,
                "delivered {delivered} before floor {floor}"
            );
        }
    }

    /// Conservation at the egress port: back-to-back messages from one
    /// node depart at least their serialization apart, so the last
    /// delivery is bounded below by total bytes / bandwidth.
    #[test]
    fn egress_serialization_is_conserved(
        sizes in prop::collection::vec(1u64..2_000_000, 1..40)
    ) {
        let mut f = fabric(2);
        let params = f.params().clone();
        let mut last = SimTime::ZERO;
        for &bytes in &sizes {
            let m = NetMsg {
                src: NodeId(0),
                dst: NodeId(1),
                bytes,
                extra_latency: SimDuration::ZERO,
                token: 0,
                class: TrafficClass::Data,
                attempt: 0,
            };
            last = last.max(f.commit(SimTime::ZERO, &m));
        }
        let total: u64 = sizes.iter().map(|&b| params.inter_ser(b).as_ns()).sum();
        prop_assert!(
            last.as_ns() >= total,
            "last delivery {last} under total serialization {total} ns"
        );
    }

    /// Disjoint node pairs never interfere: the delivery time of a
    /// message is the same whether or not other pairs carry traffic.
    #[test]
    fn disjoint_pairs_are_independent(
        noise in prop::collection::vec(1u64..1_000_000, 0..30),
        probe_bytes in 1u64..1_000_000,
    ) {
        let mut quiet = fabric(4);
        let probe = NetMsg {
            src: NodeId(0),
            dst: NodeId(1),
            bytes: probe_bytes,
            extra_latency: SimDuration::ZERO,
            token: 0,
            class: TrafficClass::Data,
            attempt: 0,
        };
        let t_quiet = quiet.commit(SimTime::ZERO, &probe);

        let mut busy = fabric(4);
        for &bytes in &noise {
            let m = NetMsg {
                src: NodeId(2),
                dst: NodeId(3),
                bytes,
                extra_latency: SimDuration::ZERO,
                token: 0,
                class: TrafficClass::Data,
                attempt: 0,
            };
            busy.commit(SimTime::ZERO, &m);
        }
        let t_busy = busy.commit(SimTime::ZERO, &probe);
        prop_assert_eq!(t_quiet, t_busy);
    }

    /// Deliveries from one sender to one receiver preserve send order
    /// (the fabric is FIFO per direction, which the tag-matching layer
    /// relies on for same-tag FIFO semantics).
    #[test]
    fn per_pair_fifo(
        msgs in prop::collection::vec((1u64..500_000, 0u64..50_000), 2..40)
    ) {
        let mut f = fabric(2);
        let mut send_times: Vec<u64> = msgs.iter().map(|&(_, t)| t).collect();
        send_times.sort_unstable();
        let mut last_delivery = SimTime::ZERO;
        for (i, &at) in send_times.iter().enumerate() {
            let m = NetMsg {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: msgs[i].0,
                extra_latency: SimDuration::ZERO,
                token: i as u64,
                class: TrafficClass::Data,
                attempt: 0,
            };
            let d = f.commit(SimTime::from_ns(at), &m);
            prop_assert!(
                d >= last_delivery,
                "delivery {d} before previous {last_delivery}"
            );
            last_delivery = d;
        }
    }
}
