//! # gaat-net — simulated interconnect
//!
//! The fabric owns message admission, statistics, and delivery-event
//! scheduling, and delegates *cost* to a [`Topology`]:
//!
//! - [`TopologyKind::Flat`] (default) is the Summit-like open-loop model:
//!   every node owns a NIC with separate egress (injection) and ingress
//!   (ejection) serialization queues; inter-node messages pay
//!   `latency + bytes/bandwidth` plus any queueing at either NIC, and the
//!   delivery time is fixed at send time.
//! - [`TopologyKind::FatTree`] routes each message over an explicit link
//!   graph (NVLink inside the node, NIC injection/ejection ports, a
//!   two-level fat tree of trunks — see `gaat-topo`) and advances it as a
//!   *flow* under max-min fair bandwidth sharing. Flow completion times
//!   move whenever flows start or finish, so the fabric keeps exactly one
//!   pending wakeup event and reschedules it through the slab/calendar
//!   event core as the earliest completion changes.
//!
//! The fabric knows nothing about GPUs or protocols; the `gaat-ucx` crate
//! layers eager/rendezvous and GPU-aware protocols on top.

#![warn(missing_docs)]

use gaat_sim::{
    EventId, FaultPlan, LinkFaultKind, MsgFate, Sim, SimDuration, SimRng, SimTime, Tracer,
};
pub use gaat_topo::{
    BusySpan, CongestionSummary, FatTreeGraph, FatTreeParams, LinkId, LinkKind, LinkUsage,
    RouteTable, SolverStats,
};
use gaat_topo::{FlowSim, RouteInfo};
use std::sync::Arc;

/// Identifier of a machine node (which hosts several PEs/GPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub usize);

/// Which interconnect model prices and schedules messages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TopologyKind {
    /// Per-NIC alpha-beta model; unloaded links, delivery fixed at send.
    #[default]
    Flat,
    /// Link-graph model with max-min fair sharing over a two-level fat
    /// tree; messages contend for NVLink, NIC ports, and trunks.
    FatTree(FatTreeParams),
}

/// Calibration constants of the fabric.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetParams {
    /// Base one-way latency between nodes (host memory to host memory).
    pub inter_latency: SimDuration,
    /// One-way latency within a node (shared memory / NVLink peer copy).
    pub intra_latency: SimDuration,
    /// Per-node injection (and ejection) bandwidth, bytes/second.
    pub inter_bw: f64,
    /// Intra-node copy bandwidth, bytes/second.
    pub intra_bw: f64,
    /// Relative jitter applied to modeled times (models the paper's
    /// run-to-run variance; 0 disables).
    pub jitter: f64,
    /// Which topology model prices messages.
    pub topology: TopologyKind,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            // Dual-rail EDR InfiniBand on Summit: ~23 GB/s injection,
            // ~1.5 us MPI-level latency.
            inter_latency: SimDuration::from_ns(1_600),
            intra_latency: SimDuration::from_ns(700),
            inter_bw: 23.0e9,
            intra_bw: 60.0e9,
            jitter: 0.01,
            topology: TopologyKind::Flat,
        }
    }
}

impl NetParams {
    /// Serialization time of `bytes` on the inter-node NIC.
    pub fn inter_ser(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns((bytes as f64 / self.inter_bw * 1e9).round() as u64)
    }

    /// Serialization time of `bytes` on the intra-node path.
    pub fn intra_ser(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns((bytes as f64 / self.intra_bw * 1e9).round() as u64)
    }
}

/// Immutable pre-built topology state shared by concurrent simulations.
///
/// A sweep over thousands of scenarios on the same machine shape would
/// otherwise rebuild identical routing state once per run; this type
/// builds it once and hands read-only `Arc` clones to every worker. For
/// [`TopologyKind::FatTree`] the shared state is the all-pairs
/// [`RouteTable`]; `Flat` has no shareable routing state, but a
/// `SharedTopology` still records the shape so a cached value can be
/// checked against a scenario's config with [`SharedTopology::matches`].
///
/// Sharing is purely an allocation/CPU optimization: the table replays
/// `try_route` on the all-up graph, and a fabric stops consulting it
/// the moment a link fault fires, so outcomes are bit-identical with or
/// without it.
#[derive(Debug, Clone)]
pub struct SharedTopology {
    nodes: usize,
    params: NetParams,
    routes: Option<Arc<RouteTable>>,
}

impl SharedTopology {
    /// Build the shared state for one machine shape.
    pub fn build(nodes: usize, params: &NetParams) -> Self {
        let routes = match params.topology {
            TopologyKind::Flat => None,
            TopologyKind::FatTree(ft) => {
                let graph = FatTreeGraph::new(nodes, params.intra_bw, params.inter_bw, ft);
                Some(Arc::new(RouteTable::build(&graph)))
            }
        };
        SharedTopology {
            nodes,
            params: params.clone(),
            routes,
        }
    }

    /// True if this shared state was built for exactly this shape.
    pub fn matches(&self, nodes: usize, params: &NetParams) -> bool {
        self.nodes == nodes && self.params == *params
    }
}

/// Coarse message class, for traffic accounting and (in topology models)
/// future QoS; the fabric prices all classes identically today.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrafficClass {
    /// Bulk payload (eager data, rendezvous data, pipeline chunks).
    #[default]
    Data,
    /// Protocol control (RTS/CTS handshakes).
    Control,
    /// Active-message envelopes.
    Am,
}

/// A message handed to the fabric. The `token` is opaque to the fabric and
/// returned verbatim at delivery; the communication layer uses it to find
/// its protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMsg {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Wire size in bytes (payload + header).
    pub bytes: u64,
    /// Additional latency this message pays on top of the fabric base
    /// latency (e.g. GPUDirect RDMA setup, protocol handshakes).
    pub extra_latency: SimDuration,
    /// Opaque correlation token for the embedder.
    pub token: u64,
    /// Traffic class, for accounting.
    pub class: TrafficClass,
    /// Retransmission attempt number; 0 for the first transmission. Kept
    /// out of the jitter hash (a retry replays the original wire cost)
    /// but fed to the fault plan so each attempt gets an independent
    /// drop/corrupt draw.
    pub attempt: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Nic {
    egress_free: SimTime,
    ingress_free: SimTime,
}

/// Per-fabric statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Messages sent (inter + intra).
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
    /// Inter-node messages only.
    pub inter_messages: u64,
    /// Inter-node bytes only.
    pub inter_bytes: u64,
    /// Protocol-control messages (RTS/CTS) only.
    pub control_messages: u64,
    /// Protocol-control bytes only.
    pub control_bytes: u64,
    /// Highest simultaneous flow count on any single link (topology
    /// models only; 0 under `Flat`).
    pub peak_link_flows: u32,
    /// Highest per-link utilization, busy time over the traffic horizon
    /// (topology models only; 0 under `Flat`).
    pub max_link_utilization: f64,
    /// The link holding `max_link_utilization`, if any traffic flowed.
    pub hottest_link: Option<LinkId>,
    /// Incremental rate-solver counters (recomputes, dirty-component
    /// size histogram, rate updates avoided; all zero under `Flat`).
    pub solver: SolverStats,
    /// Messages silently dropped at injection by the fault plan.
    pub drops: u64,
    /// Messages corrupted in flight (checksum-discarded at the receiver
    /// after paying full wire cost).
    pub corrupts: u64,
    /// Retransmissions admitted (messages with `attempt > 0`).
    pub retransmits: u64,
    /// Cross-leaf admissions routed via an alternate spine because the
    /// primary D-mod-k spine was down.
    pub failovers: u64,
    /// Scheduled link fault events applied (down/up/degrade).
    pub link_faults: u64,
    /// In-flight flows aborted by a link going down (each is surfaced to
    /// the host via `NetHost::on_net_dropped`).
    pub flow_aborts: u64,
    /// Admissions refused because link failures left no path between the
    /// endpoints (also surfaced via `NetHost::on_net_dropped`).
    pub no_routes: u64,
}

impl NetStats {
    /// Fold `other` into `self`. Associative and commutative: counters
    /// add, peaks take the maximum (with `hottest_link` following
    /// whichever side holds the larger utilization), so per-shard stats
    /// can be merged in any grouping without changing the totals.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.inter_messages += other.inter_messages;
        self.inter_bytes += other.inter_bytes;
        self.control_messages += other.control_messages;
        self.control_bytes += other.control_bytes;
        self.peak_link_flows = self.peak_link_flows.max(other.peak_link_flows);
        if other.max_link_utilization > self.max_link_utilization {
            self.max_link_utilization = other.max_link_utilization;
            self.hottest_link = other.hottest_link;
        }
        self.solver.merge(&other.solver);
        self.drops += other.drops;
        self.corrupts += other.corrupts;
        self.retransmits += other.retransmits;
        self.failovers += other.failovers;
        self.link_faults += other.link_faults;
        self.flow_aborts += other.flow_aborts;
        self.no_routes += other.no_routes;
    }
}

/// Point-in-time congestion/fault snapshot returned by
/// [`Fabric::heat`]: the sensor block the adaptive load balancer reads
/// each LB tick. Counters are cumulative since construction; the
/// utilization pair describes the hottest link over the horizon passed
/// to [`Fabric::heat`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkHeat {
    /// Highest per-link utilization over the queried horizon (0 under
    /// `Flat`, which has no per-link model).
    pub max_link_utilization: f64,
    /// The link holding `max_link_utilization`, if any traffic flowed.
    pub hottest_link: Option<LinkId>,
    /// Retransmissions admitted so far (duplicate wire traffic).
    pub retransmits: u64,
    /// Admissions detoured around a failed primary spine so far.
    pub failovers: u64,
    /// Scheduled link fault events applied so far.
    pub link_faults: u64,
    /// In-flight flows aborted by a link going down so far.
    pub flow_aborts: u64,
}

impl LinkHeat {
    /// Whether the fabric shows signs of distress: a link is saturated
    /// (utilization ≥ 1 means backlog) or faults/retries have occurred.
    pub fn distressed(&self) -> bool {
        self.max_link_utilization >= 1.0
            || self.retransmits > 0
            || self.failovers > 0
            || self.link_faults > 0
            || self.flow_aborts > 0
    }
}

/// Outcome of [`Topology::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Open-loop: the delivery instant is fixed at admission.
    Deliver(SimTime),
    /// Closed-loop: the topology owns the message's progress as a flow;
    /// `failover` reports whether an alternate route carried it because
    /// the primary path was down.
    Flow {
        /// True when the route detoured around a failed link.
        failover: bool,
    },
    /// Link failures have disconnected the endpoints; the message is
    /// dead on arrival and the fabric surfaces it as dropped.
    NoRoute,
}

/// The pricing-and-scheduling backend behind a [`Fabric`].
///
/// `admit` either prices the message immediately (open-loop models
/// return [`Admit::Deliver`]) or takes ownership of its progress and
/// returns [`Admit::Flow`], in which case the fabric keeps one wakeup
/// event at [`Topology::next_wakeup`] and calls [`Topology::advance`]
/// there to learn which in-flight slots completed — the idempotent
/// settle/complete/reschedule state machine from `gaat-topo`.
pub trait Topology: std::fmt::Debug + Send {
    /// Price `msg` (already jittered by `jitter`) entering at `now`.
    /// `flight` is the fabric's in-flight slot, echoed back through
    /// [`Topology::advance`] for closed-loop models.
    fn admit(&mut self, now: SimTime, msg: &NetMsg, jitter: f64, flight: u32) -> Admit;

    /// Apply a scheduled link state change at `now`: down links reroute
    /// future traffic and abort the flows crossing them (their fabric
    /// flight slots are pushed to `aborted`), degradations rescale
    /// capacity, and `Up` restores the nominal bandwidth. Open-loop
    /// models have no link graph and ignore faults.
    fn apply_link_fault(
        &mut self,
        _now: SimTime,
        _link: LinkId,
        _kind: LinkFaultKind,
        _aborted: &mut Vec<u64>,
    ) {
    }

    /// Earliest instant at which `advance` would have something to do.
    /// Takes `&mut self` so closed-loop models can run their deferred
    /// rate recomputation before answering.
    fn next_wakeup(&mut self) -> Option<SimTime> {
        None
    }

    /// Progress in-flight messages to `now`; push `(flight, deliver_at)`
    /// for each one that completed its wire transfer.
    fn advance(&mut self, _now: SimTime, _delivered: &mut Vec<(u32, SimTime)>) {}

    /// Whole-fabric congestion summary (zero under open-loop models).
    fn congestion(&self, _horizon: SimTime) -> CongestionSummary {
        CongestionSummary::default()
    }

    /// Rate-solver counters (zero under open-loop models, which have no
    /// shared-bandwidth solver at all).
    fn solver_stats(&self) -> SolverStats {
        SolverStats::default()
    }

    /// Per-link counters (empty under open-loop models).
    fn link_report(&self, _horizon: SimTime) -> Vec<LinkUsage> {
        Vec::new()
    }

    /// Minimum modeled one-way latency of any message between *distinct*
    /// nodes, before jitter — the floor a windowed parallel run derives
    /// its lookahead from ([`Fabric::lookahead`]). `None` means the model
    /// cannot bound delivery times at admission (closed-loop flow models
    /// price completions dynamically as congestion evolves), so windowed
    /// execution is unsupported on it.
    fn min_remote_latency(&self) -> Option<SimDuration> {
        None
    }

    /// Instant up to which traffic has been accounted (utilization
    /// denominator for [`Fabric::stats`]).
    fn horizon(&self) -> SimTime {
        SimTime::ZERO
    }

    /// Move accumulated link busy intervals out (for tracer lanes).
    fn drain_spans(&mut self, _out: &mut Vec<BusySpan>) {}

    /// Enable or disable busy-interval recording.
    fn set_tracing(&mut self, _on: bool) {}

    /// Deep-copy the topology state behind the trait object — NIC port
    /// clocks, link graph, flow rates, ETA queue. What lets a
    /// [`Fabric`] be cloned into a world snapshot for fork/restore.
    fn clone_box(&self) -> Box<dyn Topology>;
}

/// The seed per-NIC alpha-beta model; delivery fixed at send time.
#[derive(Debug, Clone)]
struct Flat {
    params: NetParams,
    nics: Vec<Nic>,
}

impl Topology for Flat {
    fn admit(&mut self, now: SimTime, msg: &NetMsg, jitter: f64, _flight: u32) -> Admit {
        if msg.src == msg.dst {
            // Intra-node: latency + serialization, no NIC contention.
            let ser = self.params.intra_ser(msg.bytes).mul_f64(jitter);
            let lat = (self.params.intra_latency + msg.extra_latency).mul_f64(jitter);
            return Admit::Deliver(now + lat + ser);
        }
        let ser = self.params.inter_ser(msg.bytes).mul_f64(jitter);
        let latency = (self.params.inter_latency + msg.extra_latency).mul_f64(jitter);

        // Egress: wait for the injection port, then serialize.
        let depart = now.max(self.nics[msg.src.0].egress_free);
        self.nics[msg.src.0].egress_free = depart + ser;

        // Flight: the last byte lands `latency + ser` after departure, and
        // the ejection port must be free for the whole serialization
        // window ending at delivery.
        let tail_arrival = depart + latency + ser;
        let delivery = tail_arrival.max(self.nics[msg.dst.0].ingress_free + ser);
        self.nics[msg.dst.0].ingress_free = delivery;
        Admit::Deliver(delivery)
    }

    fn min_remote_latency(&self) -> Option<SimDuration> {
        // Inter-node cost is at least the base latency: serialization,
        // `extra_latency`, and NIC port queueing only push delivery later.
        Some(self.params.inter_latency)
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(self.clone())
    }
}

/// Fat-tree topology backend: routes each message over the link graph
/// and advances it as a max-min fair flow; base + per-hop latency is
/// added after the wire transfer completes, so an unloaded flow lands at
/// `send + latency + bytes/bw` like `Flat` (plus switch hops).
#[derive(Debug, Clone)]
struct FatTree {
    graph: FatTreeGraph,
    flows: FlowSim,
    inter_latency: SimDuration,
    intra_latency: SimDuration,
    hop_latency: SimDuration,
    /// Post-transfer latency per in-flight slot, indexed by `flight`.
    tail_latency: Vec<SimDuration>,
    route_buf: Vec<LinkId>,
    done_buf: Vec<u64>,
    /// Pre-built all-up routes shared across simulations (sweep mode).
    routes: Option<Arc<RouteTable>>,
    /// True while the table may be consulted: no link is down. The
    /// table's routes equal `try_route`'s output on an all-up graph, so
    /// flipping this flag can never change an outcome.
    routes_valid: bool,
}

impl FatTree {
    fn new(
        nodes: usize,
        params: &NetParams,
        ft: FatTreeParams,
        routes: Option<Arc<RouteTable>>,
    ) -> Self {
        if let Some(rt) = &routes {
            assert_eq!(rt.nodes(), nodes, "shared route table shape mismatch");
        }
        let graph = FatTreeGraph::new(nodes, params.intra_bw, params.inter_bw, ft);
        let flows = FlowSim::new(graph.links().to_vec());
        FatTree {
            graph,
            flows,
            inter_latency: params.inter_latency,
            intra_latency: params.intra_latency,
            hop_latency: SimDuration::from_ns(ft.hop_latency_ns),
            tail_latency: Vec::new(),
            route_buf: Vec::new(),
            done_buf: Vec::new(),
            routes_valid: routes.is_some(),
            routes,
        }
    }
}

impl Topology for FatTree {
    fn admit(&mut self, now: SimTime, msg: &NetMsg, jitter: f64, flight: u32) -> Admit {
        let info = if self.routes_valid {
            let rt = self.routes.as_ref().expect("routes_valid implies a table");
            let (links, hops) = rt.lookup(msg.src.0, msg.dst.0);
            self.route_buf.clear();
            self.route_buf.extend_from_slice(links);
            RouteInfo {
                hops,
                failover: false,
            }
        } else {
            match self
                .graph
                .try_route(msg.src.0, msg.dst.0, &mut self.route_buf)
            {
                Some(info) => info,
                None => return Admit::NoRoute,
            }
        };
        let base = if msg.src == msg.dst {
            self.intra_latency
        } else {
            self.inter_latency
        };
        let latency =
            (base + self.hop_latency * u64::from(info.hops) + msg.extra_latency).mul_f64(jitter);
        if self.tail_latency.len() <= flight as usize {
            self.tail_latency
                .resize(flight as usize + 1, SimDuration::ZERO);
        }
        self.tail_latency[flight as usize] = latency;
        self.flows.start(
            now,
            &self.route_buf,
            msg.bytes as f64 * jitter,
            flight as u64,
        );
        Admit::Flow {
            failover: info.failover,
        }
    }

    fn apply_link_fault(
        &mut self,
        now: SimTime,
        link: LinkId,
        kind: LinkFaultKind,
        aborted: &mut Vec<u64>,
    ) {
        match kind {
            LinkFaultKind::Down => {
                self.graph.set_link_state(link, false);
                self.flows.abort_link(now, link, aborted);
                // The pre-built table assumes all links up; fall back to
                // the D-mod-k failover scan until every link recovers.
                self.routes_valid = false;
            }
            LinkFaultKind::Up => {
                self.graph.set_link_state(link, true);
                // Restore nominal capacity (undoes any prior degradation).
                let bw = self.graph.links()[link.0 as usize].bw;
                self.flows.set_link_bw(now, link, bw);
                self.routes_valid = self.routes.is_some() && self.graph.all_links_up();
            }
            LinkFaultKind::Degrade(factor) => {
                let bw = self.graph.links()[link.0 as usize].bw;
                self.flows
                    .set_link_bw(now, link, bw * factor.clamp(1e-6, 1.0));
            }
        }
    }

    fn next_wakeup(&mut self) -> Option<SimTime> {
        self.flows.next_wakeup()
    }

    fn advance(&mut self, now: SimTime, delivered: &mut Vec<(u32, SimTime)>) {
        self.done_buf.clear();
        self.flows.advance(now, &mut self.done_buf);
        for &flight in &self.done_buf {
            delivered.push((flight as u32, now + self.tail_latency[flight as usize]));
        }
    }

    fn congestion(&self, horizon: SimTime) -> CongestionSummary {
        self.flows.congestion(horizon)
    }

    fn solver_stats(&self) -> SolverStats {
        self.flows.solver_stats()
    }

    fn link_report(&self, horizon: SimTime) -> Vec<LinkUsage> {
        self.flows.link_report(horizon)
    }

    fn horizon(&self) -> SimTime {
        self.flows.settled_at()
    }

    fn drain_spans(&mut self, out: &mut Vec<BusySpan>) {
        self.flows.drain_spans(out);
    }

    fn set_tracing(&mut self, on: bool) {
        self.flows.set_record_spans(on);
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(self.clone())
    }
}

impl Clone for Fabric {
    fn clone(&self) -> Self {
        Fabric {
            params: self.params.clone(),
            nodes: self.nodes,
            topo: self.topo.clone_box(),
            jitter_salt: self.jitter_salt,
            stats: self.stats,
            in_flight: self.in_flight.clone(),
            in_flight_free: self.in_flight_free.clone(),
            wakeup: self.wakeup,
            faults: self.faults.clone(),
            abort_buf: self.abort_buf.clone(),
            tracer: self.tracer.clone(),
            scratch: self.scratch.clone(),
            span_buf: self.span_buf.clone(),
        }
    }
}

/// The interconnect state: admission/stats front end over a [`Topology`].
#[derive(Debug)]
pub struct Fabric {
    params: NetParams,
    nodes: usize,
    topo: Box<dyn Topology>,
    /// Seed-derived salt for per-message jitter hashing.
    jitter_salt: u64,
    stats: NetStats,
    /// In-flight messages parked until their delivery event fires; slots
    /// are recycled so steady-state sends allocate nothing.
    in_flight: Vec<NetMsg>,
    in_flight_free: Vec<u32>,
    /// The single pending topology wakeup event, if any.
    wakeup: Option<(SimTime, EventId)>,
    /// The fault plan in effect (inert by default).
    faults: FaultPlan,
    /// Scratch for link-abort victim collection.
    abort_buf: Vec<u64>,
    /// Per-link busy lanes (lane = [`LinkId`]); enable via
    /// [`Fabric::set_tracing`] and merge into a machine timeline with
    /// `Tracer::extend_from`.
    pub tracer: Tracer,
    scratch: Vec<(u32, SimTime)>,
    span_buf: Vec<BusySpan>,
}

impl Fabric {
    /// A fabric connecting `nodes` nodes, with the topology selected by
    /// `params.topology`.
    pub fn new(nodes: usize, params: NetParams, rng: SimRng) -> Self {
        Self::new_shared(nodes, params, rng, None)
    }

    /// Like [`Fabric::new`], but reusing pre-built immutable topology
    /// state (routes) from a [`SharedTopology`] instead of deriving it
    /// locally. Outcomes are bit-identical either way; panics if the
    /// shared state was built for a different shape.
    pub fn new_shared(
        nodes: usize,
        params: NetParams,
        mut rng: SimRng,
        shared: Option<&SharedTopology>,
    ) -> Self {
        let routes = shared.and_then(|s| {
            assert!(
                s.matches(nodes, &params),
                "shared topology was built for a different machine shape"
            );
            s.routes.clone()
        });
        let topo: Box<dyn Topology> = match params.topology {
            TopologyKind::Flat => Box::new(Flat {
                params: params.clone(),
                nics: vec![Nic::default(); nodes],
            }),
            TopologyKind::FatTree(ft) => Box::new(FatTree::new(nodes, &params, ft, routes)),
        };
        Fabric {
            params,
            nodes,
            topo,
            jitter_salt: rng.next_u64(),
            stats: NetStats::default(),
            in_flight: Vec::new(),
            in_flight_free: Vec::new(),
            wakeup: None,
            faults: FaultPlan::none(),
            abort_buf: Vec::new(),
            tracer: Tracer::new(),
            scratch: Vec::new(),
            span_buf: Vec::new(),
        }
    }

    /// Install a fault plan. The stochastic drop/corrupt draws take
    /// effect on subsequent sends; scheduled link faults must still be
    /// armed on the event queue via [`arm_link_faults`].
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The fault plan in effect.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Park an in-flight message; its index rides in the delivery event.
    fn stash(&mut self, msg: NetMsg) -> u32 {
        match self.in_flight_free.pop() {
            Some(i) => {
                self.in_flight[i as usize] = msg;
                i
            }
            None => {
                self.in_flight.push(msg);
                (self.in_flight.len() - 1) as u32
            }
        }
    }

    /// Reclaim a parked message at delivery.
    fn unstash(&mut self, idx: u32) -> NetMsg {
        self.in_flight_free.push(idx);
        self.in_flight[idx as usize]
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The calibration constants in effect.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Statistics so far. Congestion fields are folded in from the
    /// topology using its traffic horizon as the utilization denominator
    /// (zero under `Flat`).
    pub fn stats(&self) -> NetStats {
        let mut stats = self.stats;
        let summary = self.topo.congestion(self.topo.horizon());
        stats.peak_link_flows = summary.peak_link_flows;
        stats.max_link_utilization = summary.max_link_utilization;
        stats.hottest_link = summary.hottest_link;
        stats.solver = self.topo.solver_stats();
        stats
    }

    /// Compact congestion/fault snapshot for closed-loop readers (the
    /// adaptive load balancer polls this once per LB tick): the hottest
    /// link over `[0, horizon]` plus the cumulative distress counters —
    /// retransmits burning bandwidth, failovers and aborts from link
    /// faults. Pure read; calling it cannot perturb the simulation.
    pub fn heat(&self, horizon: SimTime) -> LinkHeat {
        let c = self.topo.congestion(horizon);
        LinkHeat {
            max_link_utilization: c.max_link_utilization,
            hottest_link: c.hottest_link,
            retransmits: self.stats.retransmits,
            failovers: self.stats.failovers,
            link_faults: self.stats.link_faults,
            flow_aborts: self.stats.flow_aborts,
        }
    }

    /// Per-link counters over `[0, horizon]` (empty under `Flat`).
    pub fn link_report(&self, horizon: SimTime) -> Vec<LinkUsage> {
        self.topo.link_report(horizon)
    }

    /// Whole-fabric congestion summary over `[0, horizon]`.
    pub fn congestion(&self, horizon: SimTime) -> CongestionSummary {
        self.topo.congestion(horizon)
    }

    /// Enable or disable per-link busy-span recording into
    /// [`Fabric::tracer`].
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
        self.topo.set_tracing(on);
    }

    /// Update message/byte counters for `msg`.
    fn account(&mut self, msg: &NetMsg) {
        self.stats.messages += 1;
        self.stats.bytes += msg.bytes;
        if msg.src != msg.dst {
            self.stats.inter_messages += 1;
            self.stats.inter_bytes += msg.bytes;
        }
        if msg.class == TrafficClass::Control {
            self.stats.control_messages += 1;
            self.stats.control_bytes += msg.bytes;
        }
        if msg.attempt > 0 {
            self.stats.retransmits += 1;
        }
    }

    /// Multiplicative jitter factor for `msg`, uniform in
    /// `[1 - jitter, 1 + jitter]`.
    ///
    /// The factor is a pure hash of `(salt, src, dst, token)` — not a
    /// draw from a shared RNG stream — so a message's modeled latency
    /// depends only on its own identity: adding or reordering unrelated
    /// traffic cannot perturb existing messages. The salt comes from the
    /// fabric's seed, so distinct seeds still model distinct "runs".
    fn draw_jitter(&self, msg: &NetMsg) -> f64 {
        let eps = self.params.jitter;
        if eps <= 0.0 {
            return 1.0;
        }
        let h = gaat_sim::mix64(
            self.jitter_salt
                ^ (msg.src.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (msg.dst.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ msg.token.wrapping_mul(0x1656_67B1_9E37_79F9),
        );
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        1.0 + eps * (2.0 * unit - 1.0)
    }

    /// Conservative lookahead for windowed parallel execution: a
    /// duration `L` such that every message between distinct nodes is
    /// delivered at least `L` after it is sent, under any jitter draw.
    ///
    /// Derived from [`Topology::min_remote_latency`] with the worst-case
    /// jitter margin taken off: the fabric prices a message's base
    /// latency as `round(base * f)` with `f >= 1 - jitter`, so any
    /// integer `L <= base * (1 - jitter) - 0.5` is safe. `None` when the
    /// topology cannot bound delivery at admission (closed-loop models).
    pub fn lookahead(&self) -> Option<SimDuration> {
        let base = self.topo.min_remote_latency()?;
        let eps = self.params.jitter.max(0.0);
        let floor = (base.as_ns() as f64 * (1.0 - eps) - 0.5).floor();
        Some(SimDuration::from_ns((floor.max(1.0)) as u64))
    }

    /// Compute the delivery time of `msg` sent at `now` and commit the
    /// topology state. Only valid for open-loop topologies (`Flat`),
    /// which price messages at admission; [`send`] works for every
    /// topology and wraps admission with event scheduling.
    pub fn commit(&mut self, now: SimTime, msg: &NetMsg) -> SimTime {
        self.account(msg);
        let jitter = self.draw_jitter(msg);
        match self.topo.admit(now, msg, jitter, u32::MAX) {
            Admit::Deliver(at) => at,
            _ => panic!("commit() requires an open-loop topology; route sends through send()"),
        }
    }

    /// Advance the topology to `now`, collect completed transfers into
    /// `out` as `(in-flight slot, delivery instant)`, and drain link
    /// busy spans into the fabric tracer.
    pub fn tick_topology(&mut self, now: SimTime, out: &mut Vec<(u32, SimTime)>) {
        self.topo.advance(now, out);
        if self.tracer.is_enabled() {
            let mut spans = std::mem::take(&mut self.span_buf);
            self.topo.drain_spans(&mut spans);
            for s in &spans {
                self.tracer
                    .record(s.link.0, "link", s.kind.label(), s.start, s.end);
            }
            spans.clear();
            self.span_buf = spans;
        }
    }
}

/// World-side requirements for hosting the fabric.
pub trait NetHost: Sized + 'static {
    /// Access the fabric.
    fn fabric_mut(&mut self) -> &mut Fabric;

    /// Called when a message is delivered at the destination node.
    fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg);

    /// Called when the fabric *knows* a message died: its link went down
    /// mid-flight or link failures left no route at admission. Silent
    /// losses (stochastic drop/corrupt) do NOT land here — the sender
    /// discovers those by ack timeout, as on a real wire. Default: the
    /// loss is absorbed (a reliability layer overrides this).
    fn on_net_dropped(&mut self, _sim: &mut Sim<Self>, _msg: NetMsg) {}

    /// Windowed-execution hook: offered every priced delivery *before*
    /// its event is scheduled. Return `true` to take ownership — the
    /// host parks `(at, flight)` in a staging buffer and later replays it
    /// through [`schedule_delivery`] (a sharded driver does this at the
    /// window barrier, after a deterministic cross-shard sort). Return
    /// `false` (the default, and the single-threaded fast path — one
    /// predictable branch) to let [`send`] schedule it immediately.
    fn stage_delivery(&mut self, _at: SimTime, _msg: &NetMsg, _flight: u32) -> bool {
        false
    }
}

/// Schedule the delivery event for a transfer previously parked by
/// [`NetHost::stage_delivery`]. `at` and `flight` must be exactly the
/// values the hook was offered; the message fires through the same
/// delivery path (fault checks included) as an unstaged send.
pub fn schedule_delivery<W: NetHost>(sim: &mut Sim<W>, at: SimTime, flight: u32) {
    sim.at_call1(at, deliver::<W>, flight as u64);
}

/// Send a message. Open-loop topologies price it immediately and one
/// delivery event is scheduled; flow topologies admit it into the link
/// graph and the fabric's single wakeup event is rescheduled to the new
/// earliest completion. Either way the message parks in the fabric's
/// in-flight slab and events carry only its index (closure-free).
pub fn send<W: NetHost>(w: &mut W, sim: &mut Sim<W>, msg: NetMsg) {
    let now = sim.now();
    let fabric = w.fabric_mut();
    fabric.account(&msg);
    if msg.src != msg.dst && fabric.faults.lossy_at(now) {
        // A dropped message never reaches the wire; a corrupted one pays
        // full wire cost and is discarded at delivery (see `deliver`).
        if let MsgFate::Drop =
            fabric
                .faults
                .msg_fate(msg.src.0 as u64, msg.dst.0 as u64, msg.token, msg.attempt)
        {
            fabric.stats.drops += 1;
            return;
        }
    }
    let jitter = fabric.draw_jitter(&msg);
    let idx = fabric.stash(msg);
    match fabric.topo.admit(now, &msg, jitter, idx) {
        Admit::Deliver(at) => {
            if !w.stage_delivery(at, &msg, idx) {
                sim.at_call1(at, deliver::<W>, idx as u64);
            }
        }
        Admit::Flow { failover } => {
            if failover {
                fabric.stats.failovers += 1;
            }
            reconcile_wakeup(w, sim);
        }
        Admit::NoRoute => {
            fabric.stats.no_routes += 1;
            let dead = fabric.unstash(idx);
            w.on_net_dropped(sim, dead);
        }
    }
}

fn deliver<W: NetHost>(w: &mut W, sim: &mut Sim<W>, idx: u64) {
    let fabric = w.fabric_mut();
    let msg = fabric.unstash(idx as u32);
    if msg.src != msg.dst && fabric.faults.lossy_at(sim.now()) {
        if let MsgFate::Corrupt =
            fabric
                .faults
                .msg_fate(msg.src.0 as u64, msg.dst.0 as u64, msg.token, msg.attempt)
        {
            // Checksum failure at the receiver NIC: paid for the wire,
            // delivered nothing. The sender recovers by ack timeout.
            fabric.stats.corrupts += 1;
            return;
        }
    }
    w.on_net_deliver(sim, msg);
}

/// Arm the fault plan's scheduled link faults on the event queue. Call
/// once after [`Fabric::set_faults`]; each fault fires at its instant,
/// flips the link state in the topology, and surfaces aborted in-flight
/// messages through [`NetHost::on_net_dropped`].
pub fn arm_link_faults<W: NetHost>(w: &mut W, sim: &mut Sim<W>) {
    let fabric = w.fabric_mut();
    for (i, lf) in fabric.faults.link_faults.iter().enumerate() {
        sim.at_call1(lf.at, link_fault_fire::<W>, i as u64);
    }
}

/// A scheduled link fault fires: apply it, abort crossing flows, surface
/// the victims, and re-arm the fabric wakeup (rates changed).
fn link_fault_fire<W: NetHost>(w: &mut W, sim: &mut Sim<W>, idx: u64) {
    let now = sim.now();
    let dead = {
        let fabric = w.fabric_mut();
        let lf = fabric.faults.link_faults[idx as usize];
        fabric.stats.link_faults += 1;
        let mut aborted = std::mem::take(&mut fabric.abort_buf);
        aborted.clear();
        fabric
            .topo
            .apply_link_fault(now, LinkId(lf.link), lf.kind, &mut aborted);
        fabric.stats.flow_aborts += aborted.len() as u64;
        let dead: Vec<NetMsg> = aborted
            .iter()
            .map(|&fl| fabric.unstash(fl as u32))
            .collect();
        aborted.clear();
        fabric.abort_buf = aborted;
        dead
    };
    for msg in dead {
        w.on_net_dropped(sim, msg);
    }
    reconcile_wakeup(w, sim);
}

/// Keep exactly one pending tick event at the topology's next wakeup.
fn reconcile_wakeup<W: NetHost>(w: &mut W, sim: &mut Sim<W>) {
    let fabric = w.fabric_mut();
    let want = fabric.topo.next_wakeup();
    let stale = match (fabric.wakeup, want) {
        (Some((at, _)), Some(next)) => at != next,
        (None, Some(_)) => true,
        (Some(_), None) => true,
        (None, None) => false,
    };
    if !stale {
        return;
    }
    if let Some((_, id)) = fabric.wakeup.take() {
        sim.cancel(id);
    }
    if let Some(next) = want {
        let id = sim.at_call0(next, tick::<W>);
        w.fabric_mut().wakeup = Some((next, id));
    }
}

/// Topology wakeup: complete transfers due at `now`, schedule their
/// delivery events, and re-arm the next wakeup.
fn tick<W: NetHost>(w: &mut W, sim: &mut Sim<W>) {
    let now = sim.now();
    let mut out = {
        let fabric = w.fabric_mut();
        fabric.wakeup = None;
        let mut out = std::mem::take(&mut fabric.scratch);
        out.clear();
        fabric.tick_topology(now, &mut out);
        out
    };
    for &(flight, at) in &out {
        sim.at_call1(at, deliver::<W>, flight as u64);
    }
    out.clear();
    w.fabric_mut().scratch = out;
    reconcile_wakeup(w, sim);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(nodes: usize) -> Fabric {
        let params = NetParams {
            jitter: 0.0,
            ..NetParams::default()
        };
        Fabric::new(nodes, params, SimRng::new(1))
    }

    fn msg(src: usize, dst: usize, bytes: u64) -> NetMsg {
        NetMsg {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            extra_latency: SimDuration::ZERO,
            token: 0,
            class: TrafficClass::Data,
            attempt: 0,
        }
    }

    #[test]
    fn unloaded_inter_node_latency() {
        let mut f = fabric(2);
        let m = msg(0, 1, 1 << 20); // 1 MiB
        let t = f.commit(SimTime::ZERO, &m);
        let expect = f.params.inter_latency + f.params.inter_ser(1 << 20);
        assert_eq!(t.as_ns(), expect.as_ns());
        // ~45.6 us for 1 MiB at 23 GB/s plus 1.6 us
        assert!((44_000..50_000).contains(&t.as_ns()), "{t}");
    }

    #[test]
    fn zero_byte_message_pays_latency_only() {
        let mut f = fabric(2);
        let t = f.commit(SimTime::ZERO, &msg(0, 1, 0));
        assert_eq!(t.as_ns(), f.params.inter_latency.as_ns());
    }

    #[test]
    fn intra_node_is_faster() {
        let mut f = fabric(2);
        let inter = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
        let intra = f.commit(SimTime::ZERO, &msg(0, 0, 1 << 20));
        assert!(intra < inter, "intra {intra} should beat inter {inter}");
    }

    #[test]
    fn egress_serializes_concurrent_sends() {
        let mut f = fabric(3);
        let a = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
        let b = f.commit(SimTime::ZERO, &msg(0, 2, 1 << 20));
        // second message waits for the first's injection window
        let ser = f.params.inter_ser(1 << 20);
        assert_eq!(b.as_ns(), (a + ser).as_ns());
    }

    #[test]
    fn ingress_serializes_concurrent_receives() {
        let mut f = fabric(3);
        let a = f.commit(SimTime::ZERO, &msg(0, 2, 1 << 20));
        let b = f.commit(SimTime::ZERO, &msg(1, 2, 1 << 20));
        let ser = f.params.inter_ser(1 << 20);
        assert_eq!(b.as_ns(), (a + ser).as_ns());
    }

    #[test]
    fn different_pairs_do_not_contend() {
        let mut f = fabric(4);
        let a = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
        let b = f.commit(SimTime::ZERO, &msg(2, 3, 1 << 20));
        assert_eq!(a, b);
    }

    #[test]
    fn extra_latency_adds_up() {
        let mut f = fabric(2);
        let mut m = msg(0, 1, 1024);
        let base = f.commit(SimTime::ZERO, &m);
        m.extra_latency = SimDuration::from_us(5);
        let mut f2 = fabric(2);
        let with = f2.commit(SimTime::ZERO, &m);
        assert_eq!(with.as_ns(), base.as_ns() + 5_000);
    }

    #[test]
    fn jitter_perturbs_but_stays_close() {
        let params = NetParams {
            jitter: 0.05,
            ..NetParams::default()
        };
        let nominal = params.inter_latency + params.inter_ser(1 << 20);
        for seed in 0..50 {
            let mut f = Fabric::new(2, params.clone(), SimRng::new(seed));
            let t = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
            let ratio = t.as_ns() as f64 / nominal.as_ns() as f64;
            assert!((0.93..=1.07).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn jitter_is_per_message_not_draw_order() {
        // A message's jitter hashes from (src, dst, token), so unrelated
        // traffic on a disjoint pair cannot perturb its delivery time.
        let params = NetParams {
            jitter: 0.05,
            ..NetParams::default()
        };
        let mut probe = msg(0, 1, 1 << 16);
        probe.token = 77;

        let mut quiet = Fabric::new(4, params.clone(), SimRng::new(9));
        let t_quiet = quiet.commit(SimTime::ZERO, &probe);

        let mut busy = Fabric::new(4, params, SimRng::new(9));
        for i in 0..5 {
            let mut noise = msg(2, 3, 10_000);
            noise.token = 1_000 + i;
            busy.commit(SimTime::ZERO, &noise);
        }
        let t_busy = busy.commit(SimTime::ZERO, &probe);
        assert_eq!(t_quiet, t_busy);
    }

    #[test]
    fn stats_account_messages() {
        let mut f = fabric(2);
        f.commit(SimTime::ZERO, &msg(0, 1, 100));
        f.commit(SimTime::ZERO, &msg(0, 0, 50));
        let mut ctl = msg(0, 1, 16);
        ctl.class = TrafficClass::Control;
        f.commit(SimTime::ZERO, &ctl);
        let s = f.stats();
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 166);
        assert_eq!(s.inter_messages, 2);
        assert_eq!(s.inter_bytes, 116);
        assert_eq!(s.control_messages, 1);
        assert_eq!(s.control_bytes, 16);
    }

    #[test]
    fn send_schedules_delivery_event() {
        struct World {
            fabric: Fabric,
            got: Vec<(u64, SimTime)>,
        }
        impl NetHost for World {
            fn fabric_mut(&mut self) -> &mut Fabric {
                &mut self.fabric
            }
            fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
                self.got.push((msg.token, sim.now()));
            }
        }
        let mut w = World {
            fabric: fabric(2),
            got: vec![],
        };
        let mut sim: Sim<World> = Sim::new();
        sim.soon(|w: &mut World, sim: &mut Sim<World>| {
            let mut m = msg(0, 1, 4096);
            m.token = 42;
            send(w, sim, m);
        });
        sim.run(&mut w);
        assert_eq!(w.got.len(), 1);
        assert_eq!(w.got[0].0, 42);
        assert!(w.got[0].1 > SimTime::ZERO);
    }

    #[test]
    fn staged_deliveries_replay_through_schedule_delivery() {
        // A host that parks every priced delivery instead of letting
        // `send` schedule it (the windowed-execution hook), then releases
        // the batch at a "window barrier" in sorted order. Deliveries
        // must land at exactly the instants the fabric priced.
        struct World {
            fabric: Fabric,
            parked: Vec<(SimTime, u64, u32)>,
            got: Vec<(u64, SimTime)>,
        }
        impl NetHost for World {
            fn fabric_mut(&mut self) -> &mut Fabric {
                &mut self.fabric
            }
            fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
                self.got.push((msg.token, sim.now()));
            }
            fn stage_delivery(&mut self, at: SimTime, msg: &NetMsg, flight: u32) -> bool {
                self.parked.push((at, msg.token, flight));
                true
            }
        }
        let mut w = World {
            fabric: fabric(3),
            parked: vec![],
            got: vec![],
        };
        let mut sim: Sim<World> = Sim::new();
        sim.soon(|w: &mut World, sim: &mut Sim<World>| {
            for token in 0..4u64 {
                let mut m = msg(token as usize % 2, 2, 4096);
                m.token = token;
                send(w, sim, m);
            }
        });
        // The sends ran but every delivery is parked: nothing fires.
        sim.run(&mut w);
        assert_eq!(w.got.len(), 0);
        assert_eq!(w.parked.len(), 4);
        // Barrier: sort by (time, token) and release.
        let mut parked = std::mem::take(&mut w.parked);
        parked.sort_by_key(|&(at, token, _)| (at, token));
        for &(at, _, flight) in &parked {
            schedule_delivery(&mut sim, at, flight);
        }
        sim.run(&mut w);
        assert_eq!(w.got.len(), 4);
        for (i, &(at, token, _)) in parked.iter().enumerate() {
            assert_eq!(w.got[i], (token, at), "delivery {i} at priced instant");
        }
    }

    #[test]
    fn pipelined_chunks_overlap_on_the_wire() {
        // Sending 8 chunks back-to-back costs one latency plus 8
        // serializations — the fabric pipelines, which is what makes the
        // UCX pipelined-staging protocol worthwhile at all.
        let mut f = fabric(2);
        let chunk = 1u64 << 20;
        let mut last = SimTime::ZERO;
        for _ in 0..8 {
            last = f.commit(SimTime::ZERO, &msg(0, 1, chunk));
        }
        let expect = f.params.inter_latency + f.params.inter_ser(chunk) * 8;
        assert_eq!(last.as_ns(), expect.as_ns());
    }

    // ---- fat-tree topology ------------------------------------------

    fn ft_fabric(nodes: usize, ft: FatTreeParams) -> Fabric {
        let params = NetParams {
            jitter: 0.0,
            topology: TopologyKind::FatTree(ft),
            ..NetParams::default()
        };
        Fabric::new(nodes, params, SimRng::new(1))
    }

    struct FtWorld {
        fabric: Fabric,
        got: Vec<(u64, SimTime)>,
    }
    impl NetHost for FtWorld {
        fn fabric_mut(&mut self) -> &mut Fabric {
            &mut self.fabric
        }
        fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
            self.got.push((msg.token, sim.now()));
        }
    }

    fn ft_run(fabric: Fabric, msgs: Vec<NetMsg>) -> (FtWorld, Sim<FtWorld>) {
        let mut w = FtWorld {
            fabric,
            got: vec![],
        };
        let mut sim: Sim<FtWorld> = Sim::new();
        for m in msgs {
            sim.soon(move |w: &mut FtWorld, sim: &mut Sim<FtWorld>| send(w, sim, m));
        }
        sim.run(&mut w);
        (w, sim)
    }

    #[test]
    fn fat_tree_unloaded_matches_flat_within_a_hop() {
        // One message, same leaf: FatTree should agree with Flat up to
        // the explicit switch-hop latency.
        let ft = FatTreeParams::default();
        let hop = ft.hop_latency_ns;
        let mut m = msg(0, 1, 1 << 20);
        m.token = 1;
        let (w, _) = ft_run(ft_fabric(2, ft), vec![m]);
        let flat = fabric(2).commit(SimTime::ZERO, &m);
        let got = w.got[0].1.as_ns();
        let want = flat.as_ns() + hop;
        let diff = got.abs_diff(want);
        assert!(diff <= 2, "fat-tree {got} vs flat+hop {want}");
    }

    #[test]
    fn fat_tree_shares_trunk_bandwidth() {
        // Two nodes on leaf 0 each stream to a distinct node on leaf 1
        // through the same spine trunk: both transfers take twice the
        // unloaded wire time.
        let ft = FatTreeParams {
            leaf_radix: 2,
            spines: 1,
            trunk_bw: 23.0e9, // trunk as fast as one NIC -> it bottlenecks
            hop_latency_ns: 0,
        };
        let bytes = 1u64 << 20;
        let mut a = msg(0, 2, bytes);
        a.token = 1;
        let mut b = msg(1, 3, bytes);
        b.token = 2;
        let (w, _) = ft_run(ft_fabric(4, ft), vec![a, b]);
        assert_eq!(w.got.len(), 2);
        let unloaded = NetParams::default().inter_ser(bytes).as_ns();
        let lat = NetParams::default().inter_latency.as_ns();
        for &(_, at) in &w.got {
            let wire = at.as_ns() - lat;
            let ratio = wire as f64 / (2 * unloaded) as f64;
            assert!(
                (0.98..=1.02).contains(&ratio),
                "each flow should see ~half the trunk: {ratio}"
            );
        }
        let stats = w.fabric.stats();
        assert_eq!(stats.peak_link_flows, 2);
        assert!(
            stats.max_link_utilization > 0.9,
            "shared trunk should be hot: {}",
            stats.max_link_utilization
        );
        assert!(stats.hottest_link.is_some());
    }

    #[test]
    fn fat_tree_send_replays_exactly() {
        let ft = FatTreeParams {
            leaf_radix: 2,
            spines: 2,
            ..FatTreeParams::default()
        };
        let run = || {
            let mut msgs = Vec::new();
            for i in 0..12u64 {
                let mut m = msg((i % 4) as usize, ((i * 3 + 1) % 4) as usize, 1 << 16);
                m.token = i;
                msgs.push(m);
            }
            let (w, sim) = ft_run(ft_fabric(4, ft), msgs);
            (w.got.clone(), sim.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fat_tree_records_link_spans_when_traced() {
        let ft = FatTreeParams {
            leaf_radix: 2,
            spines: 1,
            ..FatTreeParams::default()
        };
        let mut fabric = ft_fabric(4, ft);
        fabric.set_tracing(true);
        let mut m = msg(0, 3, 1 << 20);
        m.token = 9;
        let (w, _) = ft_run(fabric, vec![m]);
        assert!(
            !w.fabric.tracer.spans().is_empty(),
            "link busy spans should land in the fabric tracer"
        );
        assert!(w.fabric.tracer.spans().iter().any(|s| s.label == "leaf-up"));
    }

    // ---- fault injection --------------------------------------------

    use gaat_sim::{LinkFault, StragglerWindow};

    /// A host that records both deliveries and surfaced drops.
    struct FaultWorld {
        fabric: Fabric,
        got: Vec<(u64, SimTime)>,
        dropped: Vec<(u64, SimTime)>,
    }
    impl NetHost for FaultWorld {
        fn fabric_mut(&mut self) -> &mut Fabric {
            &mut self.fabric
        }
        fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
            self.got.push((msg.token, sim.now()));
        }
        fn on_net_dropped(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
            self.dropped.push((msg.token, sim.now()));
        }
    }

    fn fault_run(fabric: Fabric, msgs: Vec<NetMsg>) -> (FaultWorld, Sim<FaultWorld>) {
        let mut w = FaultWorld {
            fabric,
            got: vec![],
            dropped: vec![],
        };
        let mut sim: Sim<FaultWorld> = Sim::new();
        arm_link_faults(&mut w, &mut sim);
        for m in msgs {
            sim.soon(move |w: &mut FaultWorld, sim: &mut Sim<FaultWorld>| send(w, sim, m));
        }
        sim.run(&mut w);
        (w, sim)
    }

    #[test]
    fn lossy_plan_drops_some_messages_deterministically() {
        let plan = FaultPlan {
            seed: 42,
            drop_prob: 0.25,
            corrupt_prob: 0.05,
            ..FaultPlan::none()
        };
        let run = || {
            let mut f = fabric(2);
            f.set_faults(plan.clone());
            let msgs = (0..200u64)
                .map(|i| {
                    let mut m = msg(0, 1, 4096);
                    m.token = i;
                    m
                })
                .collect();
            let (w, _) = fault_run(f, msgs);
            (
                w.got.clone(),
                w.fabric.stats().drops,
                w.fabric.stats().corrupts,
            )
        };
        let (got_a, drops_a, corrupts_a) = run();
        let (got_b, drops_b, corrupts_b) = run();
        assert_eq!(got_a, got_b, "same plan must replay bit-identically");
        assert_eq!((drops_a, corrupts_a), (drops_b, corrupts_b));
        assert!(drops_a > 20, "~25% of 200 should drop: {drops_a}");
        assert!(corrupts_a > 1, "~5% of 200 should corrupt: {corrupts_a}");
        assert_eq!(
            got_a.len() as u64 + drops_a + corrupts_a,
            200,
            "every message is delivered, dropped, or corrupted"
        );
    }

    #[test]
    fn corrupt_consumes_wire_but_drop_does_not() {
        // A plan that corrupts everything still serializes each message
        // through the NICs; a plan that drops everything leaves the NICs
        // idle. Distinguish via the egress queueing seen by a later
        // clean message — under drop-all the probe departs immediately.
        let mk = |drop_prob: f64, corrupt_prob: f64| {
            let mut f = fabric(2);
            f.set_faults(FaultPlan {
                seed: 1,
                drop_prob,
                corrupt_prob,
                ..FaultPlan::none()
            });
            f
        };
        // drop_prob=1 ⇒ every attempt drops (unit hash < 1.0 always).
        let msgs: Vec<NetMsg> = (0..4u64)
            .map(|i| {
                let mut m = msg(0, 1, 1 << 20);
                m.token = i;
                m
            })
            .collect();
        let (w_drop, sim_drop) = fault_run(mk(1.0, 0.0), msgs.clone());
        assert!(w_drop.got.is_empty());
        assert_eq!(w_drop.fabric.stats().drops, 4);
        assert_eq!(sim_drop.now(), SimTime::ZERO, "drops never touch the wire");

        let (w_cor, sim_cor) = fault_run(mk(0.0, 1.0), msgs);
        assert!(w_cor.got.is_empty());
        assert_eq!(w_cor.fabric.stats().corrupts, 4);
        assert!(
            sim_cor.now().as_ns() > 0,
            "corrupted messages pay wire time before being discarded"
        );
    }

    #[test]
    fn intra_node_messages_are_never_dropped() {
        let mut f = fabric(2);
        f.set_faults(FaultPlan {
            seed: 3,
            drop_prob: 1.0,
            ..FaultPlan::none()
        });
        let msgs = (0..8u64)
            .map(|i| {
                let mut m = msg(0, 0, 4096);
                m.token = i;
                m
            })
            .collect();
        let (w, _) = fault_run(f, msgs);
        assert_eq!(w.got.len(), 8, "loopback traffic bypasses the wire");
        assert_eq!(w.fabric.stats().drops, 0);
    }

    #[test]
    fn retransmit_attempt_redraws_fate_and_is_counted() {
        let plan = FaultPlan {
            seed: 5,
            drop_prob: 0.5,
            ..FaultPlan::none()
        };
        // Find a token whose attempt 0 drops but attempt 1 delivers.
        let token = (0..1000u64)
            .find(|&t| {
                plan.msg_fate(0, 1, t, 0) == MsgFate::Drop
                    && plan.msg_fate(0, 1, t, 1) == MsgFate::Deliver
            })
            .expect("some token drops then delivers");
        let mut f = fabric(2);
        f.set_faults(plan);
        let mut first = msg(0, 1, 4096);
        first.token = token;
        let mut retry = first;
        retry.attempt = 1;
        let (w, _) = fault_run(f, vec![first, retry]);
        assert_eq!(w.got.len(), 1, "the retry gets through");
        let s = w.fabric.stats();
        assert_eq!(s.drops, 1);
        assert_eq!(s.retransmits, 1);
    }

    #[test]
    fn link_down_aborts_flows_and_fails_over() {
        // Two leaves, two spines. Token 0 streams cross-leaf over the
        // primary spine; mid-flight the primary's uplink dies. The flow
        // aborts (surfaced via on_net_dropped), and a later message
        // fails over to the alternate spine and is delivered.
        let ft = FatTreeParams {
            leaf_radix: 2,
            spines: 2,
            trunk_bw: 23.0e9,
            hop_latency_ns: 0,
        };
        let nodes = 4;
        let graph = FatTreeGraph::new(nodes, 60.0e9, 23.0e9, ft);
        let mut route = Vec::new();
        // dst=2 on leaf 1: primary spine = 2 % 2 = 0; route holds the
        // src-leaf uplink to spine 0 at index 1 (after the NIC).
        graph.try_route(0, 2, &mut route).unwrap();
        let primary_uplink = route[1];

        let mut fabric = ft_fabric(nodes, ft);
        fabric.set_faults(FaultPlan {
            link_faults: vec![LinkFault {
                at: SimTime::ZERO + SimDuration::from_us(5),
                link: primary_uplink.0,
                kind: LinkFaultKind::Down,
            }],
            ..FaultPlan::none()
        });
        let mut w = FaultWorld {
            fabric,
            got: vec![],
            dropped: vec![],
        };
        let mut sim: Sim<FaultWorld> = Sim::new();
        arm_link_faults(&mut w, &mut sim);
        // 1 MiB at 23 GB/s is ~45 us of wire: still in flight at t=5us.
        let mut victim = msg(0, 2, 1 << 20);
        victim.token = 7;
        sim.soon(move |w: &mut FaultWorld, sim: &mut Sim<FaultWorld>| send(w, sim, victim));
        // After the fault, a fresh message must fail over to spine 1.
        sim.after(
            SimDuration::from_us(10),
            |w: &mut FaultWorld, sim: &mut Sim<FaultWorld>| {
                let mut m = msg(0, 2, 1 << 16);
                m.token = 8;
                send(w, sim, m);
            },
        );
        sim.run(&mut w);

        assert_eq!(w.dropped.len(), 1, "in-flight flow surfaced as dropped");
        assert_eq!(w.dropped[0].0, 7);
        assert_eq!(w.dropped[0].1.as_ns(), 5_000, "aborted at the fault time");
        assert_eq!(w.got.len(), 1, "failover message delivered");
        assert_eq!(w.got[0].0, 8);
        let s = w.fabric.stats();
        assert_eq!(s.link_faults, 1);
        assert_eq!(s.flow_aborts, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.no_routes, 0);
    }

    #[test]
    fn no_route_surfaces_message_as_dropped() {
        let ft = FatTreeParams {
            leaf_radix: 2,
            spines: 1,
            ..FatTreeParams::default()
        };
        let nodes = 4;
        let mut fabric = ft_fabric(nodes, ft);
        // Kill the destination's NIC ejection port before any traffic.
        fabric.set_faults(FaultPlan {
            link_faults: vec![LinkFault {
                at: SimTime::ZERO,
                link: (2 * nodes + 3) as u32, // NIC down-port of node 3
                kind: LinkFaultKind::Down,
            }],
            ..FaultPlan::none()
        });
        let mut m = msg(0, 3, 4096);
        m.token = 11;
        let (w, _) = fault_run(fabric, vec![m]);
        assert!(w.got.is_empty());
        assert_eq!(w.dropped.len(), 1);
        assert_eq!(w.fabric.stats().no_routes, 1);
    }

    #[test]
    fn degrade_then_up_restores_bandwidth() {
        // One cross-leaf stream; halfway through, the trunk is degraded
        // to 10% and later restored. Delivery lands strictly later than
        // the unfaulted run but the run still completes.
        let ft = FatTreeParams {
            leaf_radix: 2,
            spines: 1,
            trunk_bw: 23.0e9,
            hop_latency_ns: 0,
        };
        let nodes = 4;
        let graph = FatTreeGraph::new(nodes, 60.0e9, 23.0e9, ft);
        let mut route = Vec::new();
        graph.try_route(0, 2, &mut route).unwrap();
        let trunk = route[1];

        let base = {
            let mut m = msg(0, 2, 1 << 20);
            m.token = 1;
            let (w, _) = fault_run(ft_fabric(nodes, ft), vec![m]);
            w.got[0].1
        };
        let mut fabric = ft_fabric(nodes, ft);
        fabric.set_faults(FaultPlan {
            link_faults: vec![
                LinkFault {
                    at: SimTime::ZERO + SimDuration::from_us(10),
                    link: trunk.0,
                    kind: LinkFaultKind::Degrade(0.1),
                },
                LinkFault {
                    at: SimTime::ZERO + SimDuration::from_us(20),
                    link: trunk.0,
                    kind: LinkFaultKind::Up,
                },
            ],
            ..FaultPlan::none()
        });
        let mut m = msg(0, 2, 1 << 20);
        m.token = 1;
        let (w, _) = fault_run(fabric, vec![m]);
        assert_eq!(w.got.len(), 1, "degraded flow still completes");
        let slowed = w.got[0].1;
        // The 10 us window at 10% speed carries only 1 us worth of
        // bytes, so delivery slips by exactly 9 us.
        assert_eq!(
            slowed.as_ns(),
            (base + SimDuration::from_us(9)).as_ns(),
            "degradation window must cost exactly its lost wire time"
        );
        assert_eq!(w.fabric.stats().link_faults, 2);
        assert_eq!(w.fabric.stats().flow_aborts, 0);
    }

    #[test]
    fn inert_plan_leaves_fat_tree_schedule_bit_identical() {
        // Installing FaultPlan::none() (and arming zero link faults)
        // must not move any delivery by a nanosecond.
        let ft = FatTreeParams {
            leaf_radix: 2,
            spines: 2,
            ..FatTreeParams::default()
        };
        let run = |with_plan: bool| {
            let mut fabric = ft_fabric(4, ft);
            if with_plan {
                fabric.set_faults(FaultPlan::none());
            }
            let mut msgs = Vec::new();
            for i in 0..12u64 {
                let mut m = msg((i % 4) as usize, ((i * 3 + 1) % 4) as usize, 1 << 16);
                m.token = i;
                msgs.push(m);
            }
            let (w, sim) = fault_run(fabric, msgs);
            (w.got.clone(), sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn straggler_plan_does_not_touch_the_fabric() {
        // Straggler windows are a device-model concern; the fabric must
        // not consult them on the message path.
        let mut f = fabric(2);
        f.set_faults(FaultPlan {
            stragglers: vec![StragglerWindow {
                device: 0,
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_ms(10),
                slowdown: 4.0,
            }],
            ..FaultPlan::none()
        });
        let msgs = (0..4u64)
            .map(|i| {
                let mut m = msg(0, 1, 4096);
                m.token = i;
                m
            })
            .collect();
        let (w, _) = fault_run(f, msgs);
        assert_eq!(w.got.len(), 4);
        assert_eq!(w.fabric.stats().drops, 0);
    }

    #[test]
    fn net_stats_merge_is_associative_and_commutative() {
        let mk = |k: u64| NetStats {
            messages: k,
            bytes: 10 * k,
            inter_messages: k / 2,
            inter_bytes: 5 * k,
            control_messages: k % 3,
            control_bytes: k % 7,
            peak_link_flows: (3 * k % 11) as u32,
            max_link_utilization: (k % 5) as f64 / 5.0,
            hottest_link: Some(LinkId(k as u32)),
            solver: SolverStats {
                recomputes: k,
                empty_recomputes: k / 3,
                touched_flows: 2 * k,
                touched_links: 3 * k,
                rate_updates_avoided: 4 * k,
                dirty_hist: [k, 0, k, 0, k, 0, k, 0],
            },
            drops: k % 2,
            corrupts: k % 3,
            retransmits: k % 4,
            failovers: k % 5,
            link_faults: k % 6,
            flow_aborts: k % 7,
            no_routes: k % 8,
        };
        let (a, b, c) = (mk(7), mk(12), mk(29));

        // (a + b) + c == a + (b + c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        let key = |s: &NetStats| {
            (
                s.messages,
                s.bytes,
                s.inter_messages,
                s.inter_bytes,
                s.control_messages,
                s.control_bytes,
                s.peak_link_flows,
                s.max_link_utilization.to_bits(),
                s.hottest_link,
                (
                    s.solver.recomputes,
                    s.solver.touched_flows,
                    s.solver.dirty_hist,
                ),
                (s.drops, s.corrupts, s.retransmits, s.failovers),
                (s.link_faults, s.flow_aborts, s.no_routes),
            )
        };
        assert_eq!(key(&left), key(&right));

        // Commutative: any permutation gives the same totals.
        let mut rev = c;
        rev.merge(&a);
        rev.merge(&b);
        assert_eq!(key(&left), key(&rev));

        // Spot-check semantics: counters add, peaks max.
        assert_eq!(left.messages, 7 + 12 + 29);
        assert_eq!(
            left.peak_link_flows,
            [7u64, 12, 29]
                .iter()
                .map(|k| (3 * k % 11) as u32)
                .max()
                .unwrap()
        );
        assert_eq!(left.solver.dirty_hist[0], 7 + 12 + 29);
    }

    #[test]
    fn flat_lookahead_bounds_every_remote_delivery() {
        // jitter 0: the floor is the base latency minus rounding slack.
        assert_eq!(fabric(4).lookahead().unwrap().as_ns(), 1599);
        // jitter 1%: 1600 * 0.99 - 0.5 = 1583.5 -> 1583ns.
        let mut f = Fabric::new(4, NetParams::default(), SimRng::new(1));
        let la = f.lookahead().expect("flat topology has a lookahead");
        assert_eq!(la.as_ns(), 1583);
        for token in 0..200u64 {
            let mut m = msg(0, 1 + (token % 3) as usize, 64 + token * 37);
            m.token = token;
            let now = SimTime::from_ns(1000 + token * 13);
            let at = f.commit(now, &m);
            assert!(at >= now + la, "token {token}: {at} < {now} + {la}");
        }
    }
}
