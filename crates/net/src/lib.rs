//! # gaat-net — simulated interconnect
//!
//! A Summit-like fabric model: every node owns a NIC with separate egress
//! (injection) and ingress (ejection) serialization queues; inter-node
//! messages pay `latency + bytes/bandwidth` plus any queueing at either
//! NIC. Intra-node messages travel over shared memory / NVLink and only
//! pay a smaller latency and higher bandwidth, with no NIC involvement.
//!
//! Delivery times are computed at send time (the model is open-loop:
//! in-flight messages are never preempted), so the fabric needs no advance
//! loop — it simply schedules one delivery event per message on the
//! simulator. Congestion appears through NIC busy-window bookkeeping.
//!
//! The fabric knows nothing about GPUs or protocols; the `gaat-ucx` crate
//! layers eager/rendezvous and GPU-aware protocols on top.

#![warn(missing_docs)]

use gaat_sim::{Sim, SimDuration, SimRng, SimTime};

/// Identifier of a machine node (which hosts several PEs/GPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub usize);

/// Calibration constants of the fabric.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetParams {
    /// Base one-way latency between nodes (host memory to host memory).
    pub inter_latency: SimDuration,
    /// One-way latency within a node (shared memory / NVLink peer copy).
    pub intra_latency: SimDuration,
    /// Per-node injection (and ejection) bandwidth, bytes/second.
    pub inter_bw: f64,
    /// Intra-node copy bandwidth, bytes/second.
    pub intra_bw: f64,
    /// Relative jitter applied to serialization times (models the paper's
    /// run-to-run variance; 0 disables).
    pub jitter: f64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            // Dual-rail EDR InfiniBand on Summit: ~23 GB/s injection,
            // ~1.5 us MPI-level latency.
            inter_latency: SimDuration::from_ns(1_600),
            intra_latency: SimDuration::from_ns(700),
            inter_bw: 23.0e9,
            intra_bw: 60.0e9,
            jitter: 0.01,
        }
    }
}

impl NetParams {
    /// Serialization time of `bytes` on the inter-node NIC.
    pub fn inter_ser(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns((bytes as f64 / self.inter_bw * 1e9).round() as u64)
    }

    /// Serialization time of `bytes` on the intra-node path.
    pub fn intra_ser(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns((bytes as f64 / self.intra_bw * 1e9).round() as u64)
    }
}

/// A message handed to the fabric. The `token` is opaque to the fabric and
/// returned verbatim at delivery; the communication layer uses it to find
/// its protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMsg {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Wire size in bytes (payload + header).
    pub bytes: u64,
    /// Additional latency this message pays on top of the fabric base
    /// latency (e.g. GPUDirect RDMA setup, protocol handshakes).
    pub extra_latency: SimDuration,
    /// Opaque correlation token for the embedder.
    pub token: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Nic {
    egress_free: SimTime,
    ingress_free: SimTime,
}

/// Per-fabric statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Messages sent (inter + intra).
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
    /// Inter-node messages only.
    pub inter_messages: u64,
    /// Inter-node bytes only.
    pub inter_bytes: u64,
}

/// The interconnect state: one NIC per node.
#[derive(Debug)]
pub struct Fabric {
    params: NetParams,
    nics: Vec<Nic>,
    rng: SimRng,
    stats: NetStats,
    /// In-flight messages parked until their delivery event fires; slots
    /// are recycled so steady-state sends allocate nothing.
    in_flight: Vec<NetMsg>,
    in_flight_free: Vec<u32>,
}

impl Fabric {
    /// A fabric connecting `nodes` nodes.
    pub fn new(nodes: usize, params: NetParams, rng: SimRng) -> Self {
        Fabric {
            params,
            nics: vec![Nic::default(); nodes],
            rng,
            stats: NetStats::default(),
            in_flight: Vec::new(),
            in_flight_free: Vec::new(),
        }
    }

    /// Park an in-flight message; its index rides in the delivery event.
    fn stash(&mut self, msg: NetMsg) -> u32 {
        match self.in_flight_free.pop() {
            Some(i) => {
                self.in_flight[i as usize] = msg;
                i
            }
            None => {
                self.in_flight.push(msg);
                (self.in_flight.len() - 1) as u32
            }
        }
    }

    /// Reclaim a parked message at delivery.
    fn unstash(&mut self, idx: u32) -> NetMsg {
        self.in_flight_free.push(idx);
        self.in_flight[idx as usize]
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// The calibration constants in effect.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Compute the delivery time of `msg` sent at `now` and commit the NIC
    /// busy windows. Does not schedule anything — [`send`] wraps this with
    /// event scheduling.
    pub fn commit(&mut self, now: SimTime, msg: &NetMsg) -> SimTime {
        self.stats.messages += 1;
        self.stats.bytes += msg.bytes;
        let jitter = if self.params.jitter > 0.0 {
            self.rng.jitter(self.params.jitter)
        } else {
            1.0
        };
        if msg.src == msg.dst {
            // Intra-node: latency + serialization, no NIC contention.
            let ser = self.params.intra_ser(msg.bytes).mul_f64(jitter);
            let lat = (self.params.intra_latency + msg.extra_latency).mul_f64(jitter);
            return now + lat + ser;
        }
        self.stats.inter_messages += 1;
        self.stats.inter_bytes += msg.bytes;
        let ser = self.params.inter_ser(msg.bytes).mul_f64(jitter);
        let latency = (self.params.inter_latency + msg.extra_latency).mul_f64(jitter);

        // Egress: wait for the injection port, then serialize.
        let depart = now.max(self.nics[msg.src.0].egress_free);
        self.nics[msg.src.0].egress_free = depart + ser;

        // Flight: the last byte lands `latency + ser` after departure, and
        // the ejection port must be free for the whole serialization
        // window ending at delivery.
        let tail_arrival = depart + latency + ser;
        let delivery = tail_arrival.max(self.nics[msg.dst.0].ingress_free + ser);
        self.nics[msg.dst.0].ingress_free = delivery;
        delivery
    }
}

/// World-side requirements for hosting the fabric.
pub trait NetHost: Sized + 'static {
    /// Access the fabric.
    fn fabric_mut(&mut self) -> &mut Fabric;

    /// Called when a message is delivered at the destination node.
    fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg);
}

/// Send a message: computes its delivery time against current NIC state
/// and schedules the delivery callback. The message parks in the fabric's
/// in-flight slab and the event carries only its index (closure-free).
pub fn send<W: NetHost>(w: &mut W, sim: &mut Sim<W>, msg: NetMsg) {
    let fabric = w.fabric_mut();
    let at = fabric.commit(sim.now(), &msg);
    let idx = fabric.stash(msg);
    sim.at_call1(at, deliver::<W>, idx as u64);
}

fn deliver<W: NetHost>(w: &mut W, sim: &mut Sim<W>, idx: u64) {
    let msg = w.fabric_mut().unstash(idx as u32);
    w.on_net_deliver(sim, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(nodes: usize) -> Fabric {
        let params = NetParams {
            jitter: 0.0,
            ..NetParams::default()
        };
        Fabric::new(nodes, params, SimRng::new(1))
    }

    fn msg(src: usize, dst: usize, bytes: u64) -> NetMsg {
        NetMsg {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            extra_latency: SimDuration::ZERO,
            token: 0,
        }
    }

    #[test]
    fn unloaded_inter_node_latency() {
        let mut f = fabric(2);
        let m = msg(0, 1, 1 << 20); // 1 MiB
        let t = f.commit(SimTime::ZERO, &m);
        let expect = f.params.inter_latency + f.params.inter_ser(1 << 20);
        assert_eq!(t.as_ns(), expect.as_ns());
        // ~45.6 us for 1 MiB at 23 GB/s plus 1.6 us
        assert!((44_000..50_000).contains(&t.as_ns()), "{t}");
    }

    #[test]
    fn zero_byte_message_pays_latency_only() {
        let mut f = fabric(2);
        let t = f.commit(SimTime::ZERO, &msg(0, 1, 0));
        assert_eq!(t.as_ns(), f.params.inter_latency.as_ns());
    }

    #[test]
    fn intra_node_is_faster() {
        let mut f = fabric(2);
        let inter = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
        let intra = f.commit(SimTime::ZERO, &msg(0, 0, 1 << 20));
        assert!(intra < inter, "intra {intra} should beat inter {inter}");
    }

    #[test]
    fn egress_serializes_concurrent_sends() {
        let mut f = fabric(3);
        let a = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
        let b = f.commit(SimTime::ZERO, &msg(0, 2, 1 << 20));
        // second message waits for the first's injection window
        let ser = f.params.inter_ser(1 << 20);
        assert_eq!(b.as_ns(), (a + ser).as_ns());
    }

    #[test]
    fn ingress_serializes_concurrent_receives() {
        let mut f = fabric(3);
        let a = f.commit(SimTime::ZERO, &msg(0, 2, 1 << 20));
        let b = f.commit(SimTime::ZERO, &msg(1, 2, 1 << 20));
        let ser = f.params.inter_ser(1 << 20);
        assert_eq!(b.as_ns(), (a + ser).as_ns());
    }

    #[test]
    fn different_pairs_do_not_contend() {
        let mut f = fabric(4);
        let a = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
        let b = f.commit(SimTime::ZERO, &msg(2, 3, 1 << 20));
        assert_eq!(a, b);
    }

    #[test]
    fn extra_latency_adds_up() {
        let mut f = fabric(2);
        let mut m = msg(0, 1, 1024);
        let base = f.commit(SimTime::ZERO, &m);
        m.extra_latency = SimDuration::from_us(5);
        let mut f2 = fabric(2);
        let with = f2.commit(SimTime::ZERO, &m);
        assert_eq!(with.as_ns(), base.as_ns() + 5_000);
    }

    #[test]
    fn jitter_perturbs_but_stays_close() {
        let params = NetParams {
            jitter: 0.05,
            ..NetParams::default()
        };
        let nominal = params.inter_latency + params.inter_ser(1 << 20);
        for seed in 0..50 {
            let mut f = Fabric::new(2, params.clone(), SimRng::new(seed));
            let t = f.commit(SimTime::ZERO, &msg(0, 1, 1 << 20));
            let ratio = t.as_ns() as f64 / nominal.as_ns() as f64;
            assert!((0.93..=1.07).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn stats_account_messages() {
        let mut f = fabric(2);
        f.commit(SimTime::ZERO, &msg(0, 1, 100));
        f.commit(SimTime::ZERO, &msg(0, 0, 50));
        let s = f.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.inter_messages, 1);
        assert_eq!(s.inter_bytes, 100);
    }

    #[test]
    fn send_schedules_delivery_event() {
        struct World {
            fabric: Fabric,
            got: Vec<(u64, SimTime)>,
        }
        impl NetHost for World {
            fn fabric_mut(&mut self) -> &mut Fabric {
                &mut self.fabric
            }
            fn on_net_deliver(&mut self, sim: &mut Sim<Self>, msg: NetMsg) {
                self.got.push((msg.token, sim.now()));
            }
        }
        let mut w = World {
            fabric: fabric(2),
            got: vec![],
        };
        let mut sim: Sim<World> = Sim::new();
        sim.soon(|w: &mut World, sim: &mut Sim<World>| {
            let mut m = msg(0, 1, 4096);
            m.token = 42;
            send(w, sim, m);
        });
        sim.run(&mut w);
        assert_eq!(w.got.len(), 1);
        assert_eq!(w.got[0].0, 42);
        assert!(w.got[0].1 > SimTime::ZERO);
    }

    #[test]
    fn pipelined_chunks_overlap_on_the_wire() {
        // Sending 8 chunks back-to-back costs one latency plus 8
        // serializations — the fabric pipelines, which is what makes the
        // UCX pipelined-staging protocol worthwhile at all.
        let mut f = fabric(2);
        let chunk = 1u64 << 20;
        let mut last = SimTime::ZERO;
        for _ in 0..8 {
            last = f.commit(SimTime::ZERO, &msg(0, 1, chunk));
        }
        let expect = f.params.inter_latency + f.params.inter_ser(chunk) * 8;
        assert_eq!(last.as_ns(), expect.as_ns());
    }
}
