//! Property-based tests for the discrete-event engine: ordering,
//! determinism, and cancellation invariants under arbitrary schedules.

use proptest::prelude::*;

use gaat_sim::{Sim, SimDuration, SimTime};

/// Run a schedule of (delay_ns, payload) events and return payloads in
/// execution order along with the observed timestamps.
fn execute(schedule: &[(u64, u32)]) -> (Vec<u32>, Vec<u64>) {
    #[derive(Default)]
    struct World {
        fired: Vec<(u32, u64)>,
    }
    let mut sim: Sim<World> = Sim::new();
    let mut w = World::default();
    for &(delay, payload) in schedule {
        sim.at(SimTime::from_ns(delay), move |w: &mut World, sim| {
            let now = sim.now().as_ns();
            w.fired.push((payload, now));
        });
    }
    sim.run(&mut w);
    let payloads = w.fired.iter().map(|&(p, _)| p).collect();
    let times = w.fired.iter().map(|&(_, t)| t).collect();
    (payloads, times)
}

proptest! {
    /// Events always fire in nondecreasing time order, and every scheduled
    /// event fires exactly once.
    #[test]
    fn fires_all_events_in_time_order(
        schedule in prop::collection::vec((0u64..1_000_000, any::<u32>()), 0..200)
    ) {
        let (payloads, times) = execute(&schedule);
        prop_assert_eq!(payloads.len(), schedule.len());
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // multiset equality of payloads
        let mut got = payloads.clone();
        let mut want: Vec<u32> = schedule.iter().map(|&(_, p)| p).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Equal-time events fire in scheduling order (stable tie-break).
    #[test]
    fn equal_times_are_fifo(payloads in prop::collection::vec(any::<u32>(), 1..100)) {
        let schedule: Vec<(u64, u32)> = payloads.iter().map(|&p| (42, p)).collect();
        let (got, _) = execute(&schedule);
        prop_assert_eq!(got, payloads);
    }

    /// Two identical schedules produce identical execution traces.
    #[test]
    fn deterministic_replay(
        schedule in prop::collection::vec((0u64..1_000_000, any::<u32>()), 0..200)
    ) {
        prop_assert_eq!(execute(&schedule), execute(&schedule));
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        delays in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        struct World { fired: Vec<usize> }
        let mut sim: Sim<World> = Sim::new();
        let mut w = World { fired: vec![] };
        let mut ids = vec![];
        for (i, &delay) in delays.iter().enumerate() {
            let id = sim.at(SimTime::from_ns(delay), move |w: &mut World, _| {
                w.fired.push(i);
            });
            ids.push(id);
        }
        let mut expect: Vec<usize> = vec![];
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                sim.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        sim.run(&mut w);
        let mut got = w.fired.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// run_until never executes events past the deadline and a following
    /// run() completes the rest.
    #[test]
    fn run_until_partitions_execution(
        delays in prop::collection::vec(0u64..1_000, 1..100),
        deadline in 0u64..1_000,
    ) {
        struct World { fired: Vec<u64> }
        let mut sim: Sim<World> = Sim::new();
        let mut w = World { fired: vec![] };
        for &delay in &delays {
            sim.at(SimTime::from_ns(delay), move |w: &mut World, sim| {
                w.fired.push(sim.now().as_ns());
            });
        }
        sim.run_until(&mut w, SimTime::from_ns(deadline));
        prop_assert!(w.fired.iter().all(|&t| t <= deadline));
        let before = w.fired.len();
        prop_assert_eq!(before, delays.iter().filter(|&&d| d <= deadline).count());
        sim.run(&mut w);
        prop_assert_eq!(w.fired.len(), delays.len());
        prop_assert!(w.fired[before..].iter().all(|&t| t > deadline));
    }
}

// Randomized cascade: events schedule further events; the engine must keep
// time monotone and honor relative delays exactly.
proptest! {
    #[test]
    fn cascading_events_keep_time_monotone(
        seeds in prop::collection::vec((1u64..1_000, 0u8..3), 1..50)
    ) {
        struct World { trace: Vec<u64>, spawned: usize }
        let mut sim: Sim<World> = Sim::new();
        let mut w = World { trace: vec![], spawned: 0 };
        for &(delay, children) in &seeds {
            sim.after(SimDuration::from_ns(delay), move |w: &mut World, sim: &mut Sim<World>| {
                w.trace.push(sim.now().as_ns());
                for c in 0..children {
                    w.spawned += 1;
                    sim.after(SimDuration::from_ns(delay + c as u64), |w: &mut World, sim: &mut Sim<World>| {
                        w.trace.push(sim.now().as_ns());
                    });
                }
            });
        }
        sim.run(&mut w);
        prop_assert_eq!(w.trace.len(), seeds.len() + w.spawned);
        for pair in w.trace.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }
}
