//! Differential test: the slab-arena/calendar-queue engine against a
//! reference `BinaryHeap` + tombstone implementation (the seed engine's
//! design), driven by the same randomized schedule/cancel/soon workload.
//!
//! Both sides interpret an identical stream of RNG-derived commands, so
//! any divergence in firing order — ring vs bucket vs overflow routing,
//! cancellation, horizon crossings — shows up as the first mismatching
//! trace entry. Seeded via [`SimRng`] so failures replay exactly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use gaat_sim::{Sim, SimRng, SimTime};

/// What a fired event decides to do next. Decisions are derived from the
/// world RNG by [`decide`], which both engines call at the same points,
/// so the command streams are identical as long as firing order is.
enum Cmd {
    /// Schedule a new event `delay` ns from now; `fast` picks the
    /// closure-free fn-pointer path on the real engine (the reference
    /// has only one representation).
    Spawn { delay: u64, fast: bool },
    /// Cancel the `choice % live.len()`-th tracked id (no-op when the
    /// event already fired — both sides must agree on that too).
    Cancel { choice: u64 },
}

/// Delay mixture covering every routing tier of the new engine: same
/// instant (ring), short (wheel), exact horizon boundaries, and
/// far-future (overflow heap).
fn spawn_delay(rng: &mut SimRng) -> u64 {
    match rng.below(16) {
        0..=3 => 0,
        4..=9 => 1 + rng.below(4_096),
        10..=12 => 4_096 + rng.below(61_000),
        13 => 65_535 + rng.below(3), // straddle the 65536-bucket horizon
        _ => 65_536 + rng.below(1_000_000),
    }
}

fn decide(rng: &mut SimRng, budget_left: u64) -> Vec<Cmd> {
    let mut cmds = Vec::new();
    let spawns = match rng.below(8) {
        0 => 0,
        1..=4 => 1,
        _ => 2,
    };
    for _ in 0..spawns.min(budget_left) {
        cmds.push(Cmd::Spawn {
            delay: spawn_delay(rng),
            fast: rng.below(2) == 0,
        });
    }
    if rng.below(4) == 0 {
        cmds.push(Cmd::Cancel {
            choice: rng.next_u64(),
        });
    }
    cmds
}

// ----- real engine -----

struct RealWorld {
    rng: SimRng,
    trace: Vec<(u64, u32)>,
    live: Vec<gaat_sim::EventId>,
    next_label: u32,
    budget: u64,
}

fn fire_real_fast(w: &mut RealWorld, sim: &mut Sim<RealWorld>, label: u64) {
    fire_real(w, sim, label as u32);
}

fn fire_real(w: &mut RealWorld, sim: &mut Sim<RealWorld>, label: u32) {
    w.trace.push((sim.now().as_ns(), label));
    for cmd in decide(&mut w.rng, w.budget) {
        match cmd {
            Cmd::Spawn { delay, fast } => {
                w.budget -= 1;
                let label = w.next_label;
                w.next_label += 1;
                let at = sim.now() + gaat_sim::SimDuration::from_ns(delay);
                let id = if fast {
                    sim.at_call1(at, fire_real_fast, label as u64)
                } else {
                    sim.at(at, move |w: &mut RealWorld, sim: &mut Sim<RealWorld>| {
                        fire_real(w, sim, label)
                    })
                };
                w.live.push(id);
            }
            Cmd::Cancel { choice } => {
                if !w.live.is_empty() {
                    let i = (choice % w.live.len() as u64) as usize;
                    let id = w.live.swap_remove(i);
                    sim.cancel(id);
                }
            }
        }
    }
}

fn run_real(seed: u64, initial: u64, budget: u64) -> (Vec<(u64, u32)>, u64) {
    let mut sim: Sim<RealWorld> = Sim::new();
    let mut seeder = SimRng::new(seed ^ 0x5eed);
    let mut w = RealWorld {
        rng: SimRng::new(seed),
        trace: Vec::new(),
        live: Vec::new(),
        next_label: 0,
        budget,
    };
    for _ in 0..initial {
        let label = w.next_label;
        w.next_label += 1;
        let at = SimTime::from_ns(seeder.below(10_000));
        let id = sim.at(at, move |w: &mut RealWorld, sim: &mut Sim<RealWorld>| {
            fire_real(w, sim, label)
        });
        w.live.push(id);
    }
    sim.run(&mut w);
    (w.trace, sim.events_executed())
}

// ----- reference engine: BinaryHeap + cancellation tombstones -----

struct RefSim {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: u64,
    executed: u64,
}

impl RefSim {
    fn schedule(&mut self, at: u64, label: u32) -> u64 {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, label)));
        seq
    }
}

struct RefWorld {
    rng: SimRng,
    trace: Vec<(u64, u32)>,
    live: Vec<u64>,
    next_label: u32,
    budget: u64,
}

fn fire_ref(w: &mut RefWorld, sim: &mut RefSim, label: u32) {
    w.trace.push((sim.now, label));
    for cmd in decide(&mut w.rng, w.budget) {
        match cmd {
            Cmd::Spawn { delay, fast: _ } => {
                w.budget -= 1;
                let label = w.next_label;
                w.next_label += 1;
                let seq = sim.schedule(sim.now + delay, label);
                w.live.push(seq);
            }
            Cmd::Cancel { choice } => {
                if !w.live.is_empty() {
                    let i = (choice % w.live.len() as u64) as usize;
                    let seq = w.live.swap_remove(i);
                    sim.cancelled.insert(seq);
                }
            }
        }
    }
}

fn run_ref(seed: u64, initial: u64, budget: u64) -> (Vec<(u64, u32)>, u64) {
    let mut sim = RefSim {
        heap: BinaryHeap::new(),
        cancelled: HashSet::new(),
        next_seq: 0,
        now: 0,
        executed: 0,
    };
    let mut seeder = SimRng::new(seed ^ 0x5eed);
    let mut w = RefWorld {
        rng: SimRng::new(seed),
        trace: Vec::new(),
        live: Vec::new(),
        next_label: 0,
        budget,
    };
    for _ in 0..initial {
        let label = w.next_label;
        w.next_label += 1;
        let seq = sim.schedule(seeder.below(10_000), label);
        w.live.push(seq);
    }
    while let Some(Reverse((at, seq, label))) = sim.heap.pop() {
        if sim.cancelled.remove(&seq) {
            continue;
        }
        sim.now = at;
        sim.executed += 1;
        fire_ref(&mut w, &mut sim, label);
    }
    (w.trace, sim.executed)
}

#[test]
fn new_queue_matches_reference_heap_across_seeds() {
    for seed in 0..24u64 {
        let (real_trace, real_n) = run_real(seed, 64, 4_000);
        let (ref_trace, ref_n) = run_ref(seed, 64, 4_000);
        assert_eq!(real_n, ref_n, "executed-count divergence at seed {seed}");
        if let Some(i) = (0..real_trace.len()).find(|&i| real_trace[i] != ref_trace[i]) {
            panic!(
                "trace divergence at seed {seed}, event {i}: real {:?} vs reference {:?}",
                real_trace[i], ref_trace[i]
            );
        }
        assert_eq!(
            real_trace.len(),
            ref_trace.len(),
            "length divergence at seed {seed}"
        );
    }
}

#[test]
fn new_queue_matches_reference_heap_deep_population() {
    // A deeper run that forces slot recycling, bucket reuse after wheel
    // wraparound, and a populated overflow tier.
    let (real_trace, real_n) = run_real(99, 2_000, 60_000);
    let (ref_trace, ref_n) = run_ref(99, 2_000, 60_000);
    assert_eq!(real_n, ref_n);
    assert_eq!(real_trace, ref_trace);
}
