//! The discrete-event engine.
//!
//! [`Sim<W>`] owns a priority queue of timestamped events. An event is a
//! boxed `FnOnce(&mut W, &mut Sim<W>)` closure over the world type `W`
//! chosen by the embedding application (the runtime crate uses its
//! `Machine`). Events at equal timestamps fire in scheduling order (a
//! monotonically increasing sequence number breaks ties), which makes every
//! run bit-deterministic.
//!
//! The engine is deliberately single-threaded: determinism and
//! reproducibility of the *simulated* machine matter far more here than
//! wall-clock parallelism of one run. Parallelism lives one level up, in
//! the benchmark harness, which runs many independent simulations on a
//! Rayon pool.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Boxed event closure over the world type `W`.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Outcome of [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// An event called [`Sim::stop`].
    Stopped,
    /// The configured event-count limit was hit (likely a livelock in the
    /// model; surfaced loudly rather than spinning forever).
    EventLimit,
}

/// A deterministic discrete-event simulator over world type `W`.
pub struct Sim<W> {
    now: SimTime,
    queue: BinaryHeap<Entry<W>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    executed: u64,
    stop: bool,
    event_limit: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh simulator at time zero with the default event limit.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
            stop: false,
            event_limit: u64::MAX,
        }
    }

    /// Cap on the total number of executed events; exceeded caps end the
    /// run with [`RunOutcome::EventLimit`].
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled tombstones).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute time `at`. Times in the past are
    /// clamped to "now" (the event still runs, after already-queued events
    /// at the current instant).
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> EventId {
        self.at(self.now + delay, f)
    }

    /// Schedule `f` at the current instant, after all events already queued
    /// for this instant.
    pub fn soon(&mut self, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) -> EventId {
        self.at(self.now, f)
    }

    /// Cancel a previously scheduled event. Cancelling an event that
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Ask the run loop to return after the current event completes.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    /// Execute a single event if one is pending; returns whether an event
    /// ran. Cancelled events are skipped silently.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(entry) = self.queue.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            self.executed += 1;
            (entry.f)(world, self);
            return true;
        }
        false
    }

    /// Run until the queue drains, [`Sim::stop`] is called, or the event
    /// limit is reached.
    pub fn run(&mut self, world: &mut W) -> RunOutcome {
        self.stop = false;
        loop {
            if self.stop {
                return RunOutcome::Stopped;
            }
            if self.executed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            if !self.step(world) {
                return RunOutcome::Drained;
            }
        }
    }

    /// Run until simulated time would exceed `deadline` (events at exactly
    /// `deadline` still run), the queue drains, stop is requested, or the
    /// event limit is reached. The clock is left at
    /// `min(deadline, time of last executed event)`.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> RunOutcome {
        self.stop = false;
        loop {
            if self.stop {
                return RunOutcome::Stopped;
            }
            if self.executed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            match self.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > deadline => {
                    self.now = self.now.max(deadline.min(t));
                    return RunOutcome::Drained;
                }
                Some(_) => {
                    self.step(world);
                }
            }
        }
    }

    /// Timestamp of the next live (non-cancelled) pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.queue.peek() {
            if self.cancelled.contains(&entry.seq) {
                let entry = self.queue.pop().expect("peeked entry vanished");
                self.cancelled.remove(&entry.seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<u32>;

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_ns(ns)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(30), |w: &mut World, _| w.push(3));
        sim.after(d(10), |w: &mut World, _| w.push(1));
        sim.after(d(20), |w: &mut World, _| w.push(2));
        assert_eq!(sim.run(&mut w), RunOutcome::Drained);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        for i in 0..100 {
            sim.after(d(5), move |w: &mut World, _| w.push(i));
        }
        sim.run(&mut w);
        assert_eq!(w, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(10), |w: &mut World, sim: &mut Sim<World>| {
            w.push(1);
            sim.after(d(5), |w: &mut World, _| w.push(2));
        });
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_ns(15));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let id = sim.after(d(10), |w: &mut World, _| w.push(99));
        sim.after(d(20), |w: &mut World, _| w.push(1));
        sim.cancel(id);
        sim.run(&mut w);
        assert_eq!(w, vec![1]);
        // executed counts only live events
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let id = sim.after(d(1), |w: &mut World, _| w.push(7));
        sim.run(&mut w);
        sim.cancel(id);
        sim.after(d(1), |w: &mut World, _| w.push(8));
        sim.run(&mut w);
        assert_eq!(w, vec![7, 8]);
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(100), |w: &mut World, sim: &mut Sim<World>| {
            w.push(1);
            // Scheduling "in the past" runs at the current instant.
            sim.at(SimTime::from_ns(10), |w: &mut World, sim: &mut Sim<World>| {
                w.push(2);
                assert_eq!(sim.now(), SimTime::from_ns(100));
            });
        });
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(1), |w: &mut World, sim: &mut Sim<World>| {
            w.push(1);
            sim.stop();
        });
        sim.after(d(2), |w: &mut World, _| w.push(2));
        assert_eq!(sim.run(&mut w), RunOutcome::Stopped);
        assert_eq!(w, vec![1]);
        // The remaining event is still pending and runs on the next run().
        assert_eq!(sim.run(&mut w), RunOutcome::Drained);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn event_limit_detects_livelock() {
        let mut sim: Sim<World> = Sim::new().with_event_limit(1000);
        let mut w = Vec::new();
        fn respawn(_: &mut World, sim: &mut Sim<World>) {
            sim.after(SimDuration::from_ns(1), respawn);
        }
        sim.after(d(1), respawn);
        assert_eq!(sim.run(&mut w), RunOutcome::EventLimit);
        assert_eq!(sim.events_executed(), 1000);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        for i in 1..=5 {
            sim.at(SimTime::from_ns(i * 10), move |w: &mut World, _| {
                w.push(i as u32)
            });
        }
        sim.run_until(&mut w, SimTime::from_ns(30));
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn soon_runs_after_current_instant_queue() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(10), |w: &mut World, sim: &mut Sim<World>| {
            sim.soon(|w: &mut World, _| w.push(2));
            w.push(1);
        });
        sim.after(d(10), |w: &mut World, _| w.push(3));
        sim.run(&mut w);
        // Event at t=10 scheduled first runs first; `soon` lands after the
        // other already-queued t=10 event because of sequence ordering.
        assert_eq!(w, vec![1, 3, 2]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim: Sim<World> = Sim::new();
        let id = sim.after(d(5), |_: &mut World, _| {});
        sim.after(d(9), |_: &mut World, _| {});
        sim.cancel(id);
        assert_eq!(sim.peek_time(), Some(SimTime::from_ns(9)));
    }
}
