//! The discrete-event engine.
//!
//! [`Sim<W>`] owns the pending-event set for a world type `W` chosen by
//! the embedding application (the runtime crate uses its `Machine`).
//! Events at equal timestamps fire in scheduling order (a monotonically
//! increasing sequence number breaks ties), which makes every run
//! bit-deterministic.
//!
//! # Internals
//!
//! The pending set is built for zero steady-state allocation and O(1)
//! common-case scheduling:
//!
//! - **Slab arena.** Every scheduled event lives in a slot of a `Vec`
//!   backed slab with an intrusive free list; slots are recycled, so the
//!   steady state allocates nothing. [`EventId`] packs the slot index
//!   with a per-slot generation counter, so a stale id (the event fired
//!   or was cancelled, and the slot was reused) can never touch the
//!   wrong event. Cancellation just marks the slot — O(1), no queue
//!   surgery, no tombstone set.
//!
//! - **Two-tier queue.** Tier 0 is a FIFO ring holding the events of
//!   the *current instant* in seq order; `soon()` and same-timestamp
//!   bursts append and pop at O(1). Tier 1 is a timer wheel of
//!   [`BUCKETS`] power-of-two-width buckets covering a rolling horizon
//!   of `BUCKETS << BUCKET_SHIFT` ns, with a `BinaryHeap` overflow for
//!   events beyond the horizon. Advancing to the next instant scans a
//!   hierarchical occupancy bitmap for the first nonempty bucket,
//!   extracts everything at the minimum timestamp (from the bucket and
//!   the overflow top, either of which may hold it), sorts that batch
//!   by seq, and refills the ring.
//!
//! - **Closure-free fast path.** The dominant runtime events (message
//!   delivery, kernel/DMA completion, progress ticks) are plain
//!   functions plus one or two integer payload words. The
//!   `*_call0/1/2` scheduling entry points store a bare `fn` pointer
//!   and the words inline in the slot — no `Box`, no vtable. Capturing
//!   closures still work through the original [`Sim::at`] family as a
//!   general fallback.
//!
//! Determinism is unchanged from the original heap engine: the firing
//! order is exactly lexicographic `(time, seq)`. The ring is sorted by
//! seq because fresh seqs are globally increasing and batches are
//! seq-sorted on extraction; a bucket always holds a single absolute
//! bucket's worth of times (the horizon invariant `at >> BUCKET_SHIFT <
//! base + BUCKETS` is preserved as `now` advances because pending times
//! never precede `now`); and the overflow top is compared against the
//! wheel minimum on every advance, so far-future events that have
//! drifted inside the horizon still fire at the right instant.
//!
//! One `Sim` is deliberately single-threaded: determinism and
//! reproducibility of the *simulated* machine matter far more here than
//! wall-clock parallelism of one run. Parallelism lives one level up, in
//! [`crate::shard`], which runs one engine per worker thread under a
//! conservative time-windowed protocol with a deterministic cross-shard
//! merge — and in the benchmark harness, which runs many independent
//! simulations concurrently.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::{SimDuration, SimTime};

/// Log2 of the bucket width in ns. Kept at 0 — one bucket per
/// nanosecond — so a bucket is exactly one instant: the advance path
/// drains whole buckets with no per-instant rescans, and the minimum
/// timestamp of a bucket is just its first entry's.
const BUCKET_SHIFT: u32 = 0;
/// Number of wheel buckets (power of two). Horizon = BUCKETS << BUCKET_SHIFT
/// = ~65 us, which covers the runtime's dominant delays (same-instant
/// callbacks, sub-us hops, network latencies, short kernels); events
/// further out wait in the overflow heap until their instant arrives.
const BUCKETS: usize = 65536;
/// Words in the bucket-occupancy bitmap.
const OCC_WORDS: usize = BUCKETS / 64;

/// Identifier of a scheduled event, usable to cancel it before it fires.
///
/// Packs a slab slot index with that slot's generation; ids held past
/// the event's firing (or cancellation) go stale and are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn pack(idx: u32, generation: u32) -> Self {
        EventId(((generation as u64) << 32) | idx as u64)
    }

    #[inline]
    fn idx(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Boxed event closure over the world type `W`.
///
/// The closure is `Send` so a whole `Sim` (and the world it drives) can be
/// handed to another host thread — the property the sharded parallel
/// driver ([`crate::shard`]) relies on to run one engine per worker.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>) + Send>;

/// What runs when an event fires. `Call0/1/2` are the closure-free fast
/// path: a bare `fn` pointer plus payload words, stored inline.
enum EventKind<W> {
    /// Slot is on the free list.
    Vacant,
    /// Event was cancelled; the slot is freed when the queue reaches it.
    Cancelled,
    /// General fallback: a boxed capturing closure.
    Closure(EventFn<W>),
    /// Plain function, no payload.
    Call0(fn(&mut W, &mut Sim<W>)),
    /// Plain function plus one payload word.
    Call1(fn(&mut W, &mut Sim<W>, u64), u64),
    /// Plain function plus two payload words.
    Call2(fn(&mut W, &mut Sim<W>, u64, u64), u64, u64),
}

impl<W> EventKind<W> {
    #[inline]
    fn is_live(&self) -> bool {
        !matches!(self, EventKind::Vacant | EventKind::Cancelled)
    }

    /// Duplicate this event payload for a [`SimSnapshot`]. The
    /// closure-free kinds are plain data (`fn` pointers + words) and
    /// copy freely; a pending boxed closure cannot be cloned, so its
    /// presence makes the whole snapshot decline.
    fn try_clone(&self) -> Result<Self, SnapshotError> {
        Ok(match self {
            EventKind::Vacant => EventKind::Vacant,
            EventKind::Cancelled => EventKind::Cancelled,
            EventKind::Closure(_) => return Err(SnapshotError::ClosureEvent),
            EventKind::Call0(f) => EventKind::Call0(*f),
            EventKind::Call1(f, a) => EventKind::Call1(*f, *a),
            EventKind::Call2(f, a, b) => EventKind::Call2(*f, *a, *b),
        })
    }
}

/// One slab slot. `next_free` threads the free list through vacant slots.
struct Slot<W> {
    generation: u32,
    next_free: u32,
    seq: u64,
    at: SimTime,
    kind: EventKind<W>,
}

const NO_SLOT: u32 = u32::MAX;

/// Overflow-heap entry: plain data, ordered by `(at, seq)` inverted so
/// the `BinaryHeap` max-heap pops the earliest first.
#[derive(Clone, Copy)]
struct OvEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for OvEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for OvEntry {}
impl PartialOrd for OvEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OvEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Outcome of [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// An event called [`Sim::stop`].
    Stopped,
    /// The configured event-count limit was hit (likely a livelock in the
    /// model; surfaced loudly rather than spinning forever).
    EventLimit,
}

/// Why [`Sim::snapshot`] declined to capture the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// A pending event is a boxed capturing closure ([`Sim::at`] family),
    /// which cannot be cloned into a snapshot. Callers treat this as
    /// "decline to fork" and fall back to fresh per-scenario execution.
    ClosureEvent,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::ClosureEvent => {
                write!(f, "pending boxed-closure event cannot be snapshotted")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A point-in-time capture of a [`Sim`]'s complete pending-event state:
/// the clock, every counter, the full slab arena (including vacant
/// slots, so the free-list order and per-slot generations — and with
/// them every future [`EventId`] — replay exactly), the current
/// instant's FIFO ring, the occupied wheel buckets, and the overflow
/// heap. [`Sim::restore`] rewinds an engine to this state; the restored
/// engine then replays bit-identically to one that ran fresh to the
/// same point.
///
/// Only closure-free events (`*_call0/1/2`) can be captured; a pending
/// boxed closure makes [`Sim::snapshot`] return
/// [`SnapshotError::ClosureEvent`].
pub struct SimSnapshot<W> {
    now: SimTime,
    next_seq: u64,
    executed: u64,
    stop: bool,
    event_limit: u64,
    live: usize,
    peak_pending: usize,
    drained: bool,
    slots: Vec<Slot<W>>,
    free_head: u32,
    ring: Vec<u32>,
    ring_at: SimTime,
    /// `(bucket index, entries)` for every occupied wheel bucket.
    buckets: Vec<(u32, Vec<u32>)>,
    overflow: Vec<OvEntry>,
}

impl<W> SimSnapshot<W> {
    /// Simulated time at which the snapshot was taken.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Live pending events captured in the snapshot.
    #[inline]
    pub fn pending(&self) -> usize {
        self.live
    }
}

/// A deterministic discrete-event simulator over world type `W`.
pub struct Sim<W> {
    now: SimTime,
    next_seq: u64,
    executed: u64,
    stop: bool,
    event_limit: u64,
    /// Live (scheduled, not yet fired or cancelled) event count.
    live: usize,
    peak_pending: usize,
    /// True once a run fully drained the queue and nothing has been
    /// scheduled since; gates the teardown leak audit.
    drained: bool,

    // Slab arena.
    slots: Vec<Slot<W>>,
    free_head: u32,

    // Tier 0: the current instant's events, slot indices in seq order.
    ring: VecDeque<u32>,
    /// Timestamp shared by every entry in `ring`.
    ring_at: SimTime,

    // Tier 1: timer wheel + occupancy bitmap + far-future overflow.
    buckets: Vec<Vec<u32>>,
    occ: Vec<u64>,
    /// Total entries currently in wheel buckets (live or cancelled).
    wheel_len: usize,
    overflow: BinaryHeap<OvEntry>,

    /// Reused batch buffer for `(seq, slot)` extraction at one instant.
    scratch: Vec<(u64, u32)>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh simulator at time zero with the default event limit.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            executed: 0,
            stop: false,
            event_limit: u64::MAX,
            live: 0,
            peak_pending: 0,
            drained: false,
            slots: Vec::new(),
            free_head: NO_SLOT,
            ring: VecDeque::new(),
            ring_at: SimTime::ZERO,
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occ: vec![0; OCC_WORDS],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
        }
    }

    /// Cap on the total number of executed events; exceeded caps end the
    /// run with [`RunOutcome::EventLimit`].
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Restore this engine to the observable state of a fresh
    /// [`Sim::new`] while keeping every heap allocation — the slab, the
    /// 65536-bucket wheel, the ring, the overflow heap, and the scratch
    /// buffer all retain their capacity. A reset engine replays any
    /// schedule bit-identically to a fresh one: the slab restarts at
    /// slot 0 / generation 0, sequence numbers restart at 0, and the
    /// clock returns to zero. Only the event limit survives the reset.
    ///
    /// This is the world-slot reuse hook: the sweep engine resets one
    /// engine per worker between scenarios instead of re-allocating the
    /// ~1.5 MB wheel for every run.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.executed = 0;
        self.stop = false;
        self.live = 0;
        self.peak_pending = 0;
        self.drained = false;
        // Dropping the slots runs any boxed-closure destructors;
        // `clear` keeps the Vec's capacity.
        self.slots.clear();
        self.free_head = NO_SLOT;
        self.ring.clear();
        self.ring_at = SimTime::ZERO;
        self.clear_wheel();
        self.overflow.clear();
        self.scratch.clear();
    }

    /// Empty every occupied wheel bucket and zero the occupancy bitmap,
    /// keeping all bucket capacity. A bucket is nonempty iff its
    /// occupancy bit is set (both are cleared together in `advance`),
    /// so scanning the bitmap clears the wheel in
    /// O(words + occupied buckets) instead of touching all 65536
    /// bucket headers.
    fn clear_wheel(&mut self) {
        if self.wheel_len > 0 {
            for w in 0..OCC_WORDS {
                let mut word = self.occ[w];
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    self.buckets[w * 64 + b].clear();
                    word &= word - 1;
                }
                self.occ[w] = 0;
            }
            self.wheel_len = 0;
        } else {
            debug_assert!(self.occ.iter().all(|&w| w == 0), "occ/wheel_len drift");
        }
    }

    /// Capture the engine's complete pending-event state. Fails with
    /// [`SnapshotError::ClosureEvent`] if any slab slot holds a boxed
    /// capturing closure; the closure-free `*_call0/1/2` events the
    /// runtime schedules on its steady-state paths all capture cleanly.
    ///
    /// The capture is deep: vacant slots are recorded too, so the
    /// free-list threading and per-slot generation counters — and with
    /// them the exact [`EventId`]s future scheduling will mint — replay
    /// identically after [`Sim::restore`].
    pub fn snapshot(&self) -> Result<SimSnapshot<W>, SnapshotError> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            slots.push(Slot {
                generation: s.generation,
                next_free: s.next_free,
                seq: s.seq,
                at: s.at,
                kind: s.kind.try_clone()?,
            });
        }
        let mut buckets = Vec::new();
        for w in 0..OCC_WORDS {
            let mut word = self.occ[w];
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                let bi = w * 64 + b;
                buckets.push((bi as u32, self.buckets[bi].clone()));
                word &= word - 1;
            }
        }
        Ok(SimSnapshot {
            now: self.now,
            next_seq: self.next_seq,
            executed: self.executed,
            stop: self.stop,
            event_limit: self.event_limit,
            live: self.live,
            peak_pending: self.peak_pending,
            drained: self.drained,
            slots,
            free_head: self.free_head,
            ring: self.ring.iter().copied().collect(),
            ring_at: self.ring_at,
            buckets,
            overflow: self.overflow.iter().copied().collect(),
        })
    }

    /// Rewind this engine to the exact state captured by
    /// [`Sim::snapshot`], keeping every heap allocation (like
    /// [`Sim::reset`]). After restoring, the engine replays
    /// bit-identically to one that ran fresh to the snapshot point: the
    /// clock, sequence counter, slab generations, free list, ring,
    /// wheel, and overflow heap all match. One snapshot can be restored
    /// any number of times — the fork primitive the sweep memoizer
    /// builds on.
    pub fn restore(&mut self, snap: &SimSnapshot<W>) {
        self.now = snap.now;
        self.next_seq = snap.next_seq;
        self.executed = snap.executed;
        self.stop = snap.stop;
        self.event_limit = snap.event_limit;
        self.live = snap.live;
        self.peak_pending = snap.peak_pending;
        self.drained = snap.drained;
        self.slots.clear();
        for s in &snap.slots {
            self.slots.push(Slot {
                generation: s.generation,
                next_free: s.next_free,
                seq: s.seq,
                at: s.at,
                kind: s
                    .kind
                    .try_clone()
                    .expect("snapshots never hold closure events"),
            });
        }
        self.free_head = snap.free_head;
        self.ring.clear();
        self.ring.extend(snap.ring.iter().copied());
        self.ring_at = snap.ring_at;
        self.clear_wheel();
        for (bi, entries) in &snap.buckets {
            let bi = *bi as usize;
            self.buckets[bi].extend_from_slice(entries);
            self.occ[bi / 64] |= 1u64 << (bi % 64);
            self.wheel_len += entries.len();
        }
        self.overflow.clear();
        self.overflow.extend(snap.overflow.iter().copied());
        self.scratch.clear();
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of live events currently pending. Cancelled events leave
    /// this count immediately, even though their slots are reclaimed
    /// lazily as the queue reaches them.
    #[inline]
    pub fn pending(&self) -> usize {
        self.live
    }

    /// High-water mark of the live pending-event count over the whole run.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Snapshot of this engine's counters, in the mergeable form the
    /// sharded driver aggregates across shards.
    pub fn stats(&self) -> crate::stats::SimStats {
        crate::stats::SimStats {
            events_executed: self.executed,
            pending: self.live as u64,
            peak_pending: self.peak_pending as u64,
        }
    }

    // ----- slab -----

    #[inline]
    fn alloc(&mut self, at: SimTime, seq: u64, kind: EventKind<W>) -> (u32, u32) {
        if self.free_head != NO_SLOT {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next_free;
            slot.next_free = NO_SLOT;
            slot.seq = seq;
            slot.at = at;
            slot.kind = kind;
            (idx, slot.generation)
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                next_free: NO_SLOT,
                seq,
                at,
                kind,
            });
            (idx, 0)
        }
    }

    /// Return a slot to the free list, bumping its generation so stale
    /// [`EventId`]s can never reach the next occupant.
    #[inline]
    fn free(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.kind = EventKind::Vacant;
        slot.generation = slot.generation.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = idx;
    }

    // ----- scheduling -----

    fn schedule(&mut self, at: SimTime, kind: EventKind<W>) -> EventId {
        self.drained = false;
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let (idx, generation) = self.alloc(at, seq, kind);
        if at == self.now && (self.ring.is_empty() || self.ring_at == self.now) {
            // Current instant: straight onto the ring. Fresh seqs are
            // globally increasing, so appending keeps the ring seq-sorted.
            self.ring_at = self.now;
            self.ring.push_back(idx);
        } else {
            let abs = at.as_ns() >> BUCKET_SHIFT;
            let base = self.now.as_ns() >> BUCKET_SHIFT;
            if abs - base < BUCKETS as u64 {
                let bi = (abs & (BUCKETS as u64 - 1)) as usize;
                self.buckets[bi].push(idx);
                self.occ[bi / 64] |= 1u64 << (bi % 64);
                self.wheel_len += 1;
            } else {
                self.overflow.push(OvEntry { at, seq, slot: idx });
            }
        }
        self.live += 1;
        if self.live > self.peak_pending {
            self.peak_pending = self.live;
        }
        EventId::pack(idx, generation)
    }

    /// Schedule `f` to run at absolute time `at`. Times in the past are
    /// clamped to "now" (the event still runs, after already-queued events
    /// at the current instant).
    pub fn at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static,
    ) -> EventId {
        self.schedule(at, EventKind::Closure(Box::new(f)))
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static,
    ) -> EventId {
        self.at(self.now + delay, f)
    }

    /// Schedule `f` at the current instant, after all events already queued
    /// for this instant.
    pub fn soon(&mut self, f: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static) -> EventId {
        self.at(self.now, f)
    }

    /// Closure-free fast path: schedule a plain function at `at`.
    pub fn at_call0(&mut self, at: SimTime, f: fn(&mut W, &mut Sim<W>)) -> EventId {
        self.schedule(at, EventKind::Call0(f))
    }

    /// Closure-free fast path: schedule a plain function plus one payload
    /// word at `at`.
    pub fn at_call1(&mut self, at: SimTime, f: fn(&mut W, &mut Sim<W>, u64), a: u64) -> EventId {
        self.schedule(at, EventKind::Call1(f, a))
    }

    /// Closure-free fast path: schedule a plain function plus two payload
    /// words at `at`.
    pub fn at_call2(
        &mut self,
        at: SimTime,
        f: fn(&mut W, &mut Sim<W>, u64, u64),
        a: u64,
        b: u64,
    ) -> EventId {
        self.schedule(at, EventKind::Call2(f, a, b))
    }

    /// [`Sim::at_call0`] relative to the current time.
    pub fn after_call0(&mut self, delay: SimDuration, f: fn(&mut W, &mut Sim<W>)) -> EventId {
        self.at_call0(self.now + delay, f)
    }

    /// [`Sim::at_call1`] relative to the current time.
    pub fn after_call1(
        &mut self,
        delay: SimDuration,
        f: fn(&mut W, &mut Sim<W>, u64),
        a: u64,
    ) -> EventId {
        self.at_call1(self.now + delay, f, a)
    }

    /// [`Sim::at_call2`] relative to the current time.
    pub fn after_call2(
        &mut self,
        delay: SimDuration,
        f: fn(&mut W, &mut Sim<W>, u64, u64),
        a: u64,
        b: u64,
    ) -> EventId {
        self.at_call2(self.now + delay, f, a, b)
    }

    /// [`Sim::at_call0`] at the current instant.
    pub fn soon_call0(&mut self, f: fn(&mut W, &mut Sim<W>)) -> EventId {
        self.at_call0(self.now, f)
    }

    /// [`Sim::at_call1`] at the current instant.
    pub fn soon_call1(&mut self, f: fn(&mut W, &mut Sim<W>, u64), a: u64) -> EventId {
        self.at_call1(self.now, f, a)
    }

    /// [`Sim::at_call2`] at the current instant.
    pub fn soon_call2(&mut self, f: fn(&mut W, &mut Sim<W>, u64, u64), a: u64, b: u64) -> EventId {
        self.at_call2(self.now, f, a, b)
    }

    /// Cancel a previously scheduled event. Cancelling an event that
    /// already fired (or was already cancelled) is a no-op: the id has
    /// gone stale and no longer matches its slot's generation.
    pub fn cancel(&mut self, id: EventId) {
        let idx = id.idx() as usize;
        if let Some(slot) = self.slots.get_mut(idx) {
            if slot.generation == id.generation() && slot.kind.is_live() {
                // Drop the payload now (releases captured resources);
                // the slot itself is reclaimed when the queue reaches it.
                slot.kind = EventKind::Cancelled;
                self.live -= 1;
            }
        }
    }

    /// Ask the run loop to return after the current event completes.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    // ----- queue advance -----

    /// First occupied bucket in circular order starting at `start`, or
    /// `None` if the wheel is empty.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let start = start & (BUCKETS - 1);
        let mut word = start / 64;
        let mut w = self.occ[word] & (!0u64 << (start % 64));
        for _ in 0..=OCC_WORDS {
            if w != 0 {
                return Some(word * 64 + w.trailing_zeros() as usize);
            }
            word = (word + 1) % OCC_WORDS;
            w = self.occ[word];
        }
        None
    }

    /// Earliest timestamp in the wheel and its bucket index. With
    /// one-instant buckets every entry in a bucket shares its timestamp,
    /// so this is one bitmap scan plus one slot read — no bucket scan.
    /// Cancelled entries keep their `at` until reclaimed, so they are
    /// counted here and skipped cheaply at ring pop.
    fn wheel_min(&mut self) -> Option<(usize, SimTime)> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = ((self.now.as_ns() >> BUCKET_SHIFT) as usize) & (BUCKETS - 1);
        let bi = self.next_occupied(start).expect("wheel_len > 0");
        let first = self.buckets[bi][0];
        Some((bi, self.slots[first as usize].at))
    }

    /// Earliest live overflow timestamp, popping cancelled tops.
    fn overflow_min(&mut self) -> Option<SimTime> {
        while let Some(top) = self.overflow.peek() {
            if self.slots[top.slot as usize].kind.is_live() {
                return Some(top.at);
            }
            let dead = self.overflow.pop().expect("peeked entry vanished");
            self.free(dead.slot);
        }
        None
    }

    /// Move every event at the next live instant onto the ring. Returns
    /// false if nothing is pending. Does not touch `now`; the clock
    /// advances only when an event executes (in [`Sim::step`]).
    fn advance(&mut self) -> bool {
        debug_assert!(self.ring.is_empty());
        let wheel = self.wheel_min();
        let over = self.overflow_min();
        let t = match (wheel, over) {
            (Some((_, wt)), Some(ot)) => wt.min(ot),
            (Some((_, wt)), None) => wt,
            (None, Some(ot)) => ot,
            (None, None) => return false,
        };
        let over_tie = over == Some(t);
        if !over_tie {
            // Common case: the instant lives entirely in one bucket.
            // Bucket pushes happen in schedule order and seqs increase
            // globally, so the bucket is already seq-sorted — move it
            // straight onto the ring without touching the slots.
            let (bi, _) = wheel.expect("no overflow tie implies a wheel hit");
            self.wheel_len -= self.buckets[bi].len();
            self.ring_at = t;
            for s in self.buckets[bi].drain(..) {
                self.ring.push_back(s);
            }
            self.occ[bi / 64] &= !(1u64 << (bi % 64));
            return !self.ring.is_empty();
        }
        self.scratch.clear();
        if let Some((bi, wt)) = wheel {
            if wt == t {
                // One-instant buckets: drain the whole bucket. Cancelled
                // entries ride along and are reclaimed at ring pop.
                self.wheel_len -= self.buckets[bi].len();
                for s in self.buckets[bi].drain(..) {
                    self.scratch.push((self.slots[s as usize].seq, s));
                }
                self.occ[bi / 64] &= !(1u64 << (bi % 64));
            }
        }
        while let Some(top) = self.overflow.peek() {
            if top.at != t {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry vanished");
            if self.slots[e.slot as usize].kind.is_live() {
                self.scratch.push((e.seq, e.slot));
            } else {
                self.free(e.slot);
            }
        }
        // Restore the total (time, seq) order within the instant.
        self.scratch.sort_unstable();
        self.ring_at = t;
        for &(_, s) in &self.scratch {
            self.ring.push_back(s);
        }
        !self.ring.is_empty()
    }

    /// Execute a single event if one is pending; returns whether an event
    /// ran. Cancelled events are skipped silently.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let idx = match self.ring.pop_front() {
                Some(idx) => idx,
                None => {
                    if !self.advance() {
                        return false;
                    }
                    continue;
                }
            };
            let kind = std::mem::replace(&mut self.slots[idx as usize].kind, EventKind::Vacant);
            debug_assert!(self.ring_at >= self.now, "time went backwards");
            match kind {
                EventKind::Vacant => unreachable!("vacant slot on the ring"),
                EventKind::Cancelled => {
                    self.free(idx);
                    continue;
                }
                live => {
                    self.now = self.ring_at;
                    self.executed += 1;
                    self.live -= 1;
                    // Free before dispatch so the slot is reusable and the
                    // event's own id is stale during its callback.
                    self.free(idx);
                    match live {
                        EventKind::Closure(f) => f(world, self),
                        EventKind::Call0(f) => f(world, self),
                        EventKind::Call1(f, a) => f(world, self, a),
                        EventKind::Call2(f, a, b) => f(world, self, a, b),
                        EventKind::Vacant | EventKind::Cancelled => unreachable!(),
                    }
                    return true;
                }
            }
        }
    }

    /// Run until the queue drains, [`Sim::stop`] is called, or the event
    /// limit is reached.
    pub fn run(&mut self, world: &mut W) -> RunOutcome {
        self.stop = false;
        loop {
            if self.stop {
                return RunOutcome::Stopped;
            }
            if self.executed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            if !self.step(world) {
                self.drained = true;
                return RunOutcome::Drained;
            }
        }
    }

    /// Run until simulated time would exceed `deadline` (events at exactly
    /// `deadline` still run), the queue drains, stop is requested, or the
    /// event limit is reached. The clock is left at
    /// `min(deadline, time of last executed event)`.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> RunOutcome {
        self.stop = false;
        loop {
            if self.stop {
                return RunOutcome::Stopped;
            }
            if self.executed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            match self.peek_time() {
                None => {
                    self.drained = true;
                    return RunOutcome::Drained;
                }
                Some(t) if t > deadline => {
                    self.now = self.now.max(deadline.min(t));
                    return RunOutcome::Drained;
                }
                Some(_) => {
                    self.step(world);
                }
            }
        }
    }

    // ----- teardown audit -----

    /// True when the last `run`/`run_until` drained the queue completely
    /// and nothing has been scheduled since.
    #[inline]
    pub fn quiesced(&self) -> bool {
        self.drained
    }

    /// Audit the slab arena: the number of slots still holding an event
    /// payload (live, or cancelled but not yet reclaimed). A fully
    /// drained run leaves zero — cancelled entries are reclaimed as the
    /// queue reaches their instant — so a nonzero count after quiesce
    /// means an event leaked (e.g. a retry layer re-arming a wakeup it
    /// believed cancelled). Debug builds run this check automatically
    /// when the `Sim` is dropped after quiesce.
    pub fn leak_check(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s.kind, EventKind::Vacant))
            .count()
    }

    /// Timestamp of the next live (non-cancelled) pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Clean cancelled entries off the ring front.
        while let Some(&idx) = self.ring.front() {
            if self.slots[idx as usize].kind.is_live() {
                return Some(self.ring_at);
            }
            self.ring.pop_front();
            self.free(idx);
        }
        loop {
            let wheel = self.wheel_min();
            let over = self.overflow_min();
            let (t, wheel_bi) = match (wheel, over) {
                (Some((bi, wt)), Some(ot)) if wt <= ot => (wt, Some(bi)),
                (_, Some(ot)) => (ot, None),
                (Some((bi, wt)), None) => (wt, Some(bi)),
                (None, None) => return None,
            };
            if let Some(bi) = wheel_bi {
                let all_dead = !self.buckets[bi]
                    .iter()
                    .any(|&s| self.slots[s as usize].kind.is_live());
                if all_dead {
                    // A live overflow entry can share the instant with a
                    // fully cancelled bucket; the instant is then live.
                    if over == Some(t) {
                        return Some(t);
                    }
                    self.wheel_len -= self.buckets[bi].len();
                    while let Some(s) = self.buckets[bi].pop() {
                        self.free(s);
                    }
                    self.occ[bi / 64] &= !(1u64 << (bi % 64));
                    continue;
                }
            }
            return Some(t);
        }
    }
}

impl<W> Drop for Sim<W> {
    fn drop(&mut self) {
        // Event-leak audit: a simulator dropped after quiescing must hold
        // no event payloads. Debug builds only, and never while unwinding
        // (the leak is then a symptom, not the bug).
        #[cfg(debug_assertions)]
        {
            if self.drained && !std::thread::panicking() {
                let leaked = self.leak_check();
                assert_eq!(
                    leaked, 0,
                    "event-leak audit: {leaked} slab slot(s) still occupied after quiesce \
                     (live counter = {})",
                    self.live
                );
                assert_eq!(
                    self.live, 0,
                    "event-leak audit: live counter nonzero after quiesce with empty slab"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<u32>;

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_ns(ns)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(30), |w: &mut World, _| w.push(3));
        sim.after(d(10), |w: &mut World, _| w.push(1));
        sim.after(d(20), |w: &mut World, _| w.push(2));
        assert_eq!(sim.run(&mut w), RunOutcome::Drained);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        for i in 0..100 {
            sim.after(d(5), move |w: &mut World, _| w.push(i));
        }
        sim.run(&mut w);
        assert_eq!(w, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn reset_restores_a_fresh_engine_bit_identically() {
        // The same schedule — near-time wheel buckets, ties, a cancel,
        // and a far-future overflow event — must execute identically on
        // a fresh engine and on a reset one.
        fn drive(sim: &mut Sim<World>) -> (Vec<u32>, u64, SimTime) {
            let mut w = Vec::new();
            for i in 0..50u32 {
                sim.after(d(u64::from(i) * 7 % 40), move |w: &mut World, _| w.push(i));
            }
            sim.after(d(200_000_000), |w: &mut World, _| w.push(999));
            let doomed = sim.after(d(5), |w: &mut World, _| w.push(777));
            sim.cancel(doomed);
            assert_eq!(sim.run(&mut w), RunOutcome::Drained);
            (w, sim.events_executed(), sim.now())
        }
        let mut fresh: Sim<World> = Sim::new();
        let expect = drive(&mut fresh);
        assert!(!expect.0.contains(&777), "cancelled event must not fire");

        let mut reused: Sim<World> = Sim::new();
        let first = drive(&mut reused);
        assert_eq!(first, expect);
        reused.reset();
        assert_eq!(reused.now(), SimTime::ZERO);
        assert_eq!(reused.events_executed(), 0);
        let second = drive(&mut reused);
        assert_eq!(second, expect, "reset engine must replay bit-identically");
    }

    #[test]
    fn snapshot_round_trip_replays_bit_identically() {
        // Same shape as the reset bit-identity pin, but closure-free so
        // the arena can be captured: wheel buckets, ties, a cancel, a
        // far-future overflow event, and events that schedule events.
        fn push(w: &mut World, _: &mut Sim<World>, a: u64) {
            w.push(a as u32);
        }
        fn spawn(w: &mut World, sim: &mut Sim<World>, a: u64) {
            w.push(a as u32);
            sim.after_call1(d(13), push, a + 1000);
        }
        fn build(sim: &mut Sim<World>) {
            for i in 0..40u64 {
                sim.at_call1(SimTime::from_ns(i * 9 % 70), spawn, i);
            }
            sim.at_call1(SimTime::from_ns(200_000_000), push, 999);
            let doomed = sim.at_call1(SimTime::from_ns(33), push, 777);
            sim.cancel(doomed);
        }

        // Unforked reference: one fresh engine runs start to finish.
        let mut reference: Sim<World> = Sim::new();
        let mut expect = Vec::new();
        build(&mut reference);
        assert_eq!(reference.run(&mut expect), RunOutcome::Drained);
        assert!(!expect.contains(&777), "cancelled event must not fire");
        let expect_executed = reference.events_executed();
        let expect_now = reference.now();

        // Forked run: execute the shared prefix once, snapshot mid-flight
        // (pending events in ring, wheel, and overflow), then finish.
        let mut sim: Sim<World> = Sim::new();
        let mut prefix = Vec::new();
        build(&mut sim);
        sim.run_until(&mut prefix, SimTime::from_ns(35));
        let snap = sim.snapshot().expect("closure-free schedule must capture");
        assert_eq!(snap.now(), sim.now());
        assert_eq!(snap.pending(), sim.pending());
        let snap_executed = sim.events_executed();

        let mut first = prefix.clone();
        sim.run(&mut first);
        assert_eq!(first, expect, "prefix + tail must equal the fresh run");
        assert_eq!(sim.events_executed(), expect_executed);
        assert_eq!(sim.now(), expect_now);

        // Restore over the drained engine and replay the tail again; the
        // same snapshot must fork any number of times.
        for round in 0..3 {
            sim.restore(&snap);
            assert_eq!(sim.events_executed(), snap_executed);
            assert_eq!(sim.now(), snap.now());
            let mut again = prefix.clone();
            sim.run(&mut again);
            assert_eq!(
                again, expect,
                "restored engine must replay bit-identically (round {round})"
            );
            assert_eq!(sim.events_executed(), expect_executed);
            assert_eq!(sim.now(), expect_now);
        }
    }

    #[test]
    fn snapshot_preserves_free_list_and_generations() {
        // EventIds minted after a restore must match those minted after
        // the original point: slot recycling order and generations are
        // part of the capture.
        fn nop(_: &mut World, _: &mut Sim<World>) {}
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        for _ in 0..8 {
            sim.after_call0(d(1), nop);
        }
        sim.after_call0(d(10), nop);
        sim.run_until(&mut w, SimTime::from_ns(5));
        let snap = sim.snapshot().expect("closure-free");
        let a = sim.after_call0(d(1), nop);
        let b = sim.after_call0(d(2), nop);
        sim.restore(&snap);
        let a2 = sim.after_call0(d(1), nop);
        let b2 = sim.after_call0(d(2), nop);
        assert_eq!((a, b), (a2, b2), "post-restore EventIds must replay");
        sim.run(&mut w);
    }

    #[test]
    fn snapshot_declines_pending_closures() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(5), |w: &mut World, _| w.push(1));
        assert_eq!(sim.snapshot().err(), Some(SnapshotError::ClosureEvent));
        // A cancelled closure drops its payload immediately, so the
        // remaining arena is capturable again once live closures fire.
        let doomed = sim.after(d(9), |_: &mut World, _| {});
        sim.cancel(doomed);
        sim.run(&mut w);
        assert_eq!(w, vec![1]);
        assert!(sim.snapshot().is_ok(), "fired/cancelled closures are gone");
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(10), |w: &mut World, sim: &mut Sim<World>| {
            w.push(1);
            sim.after(d(5), |w: &mut World, _| w.push(2));
        });
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_ns(15));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let id = sim.after(d(10), |w: &mut World, _| w.push(99));
        sim.after(d(20), |w: &mut World, _| w.push(1));
        sim.cancel(id);
        sim.run(&mut w);
        assert_eq!(w, vec![1]);
        // executed counts only live events
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let id = sim.after(d(1), |w: &mut World, _| w.push(7));
        sim.run(&mut w);
        sim.cancel(id);
        sim.after(d(1), |w: &mut World, _| w.push(8));
        sim.run(&mut w);
        assert_eq!(w, vec![7, 8]);
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(100), |w: &mut World, sim: &mut Sim<World>| {
            w.push(1);
            // Scheduling "in the past" runs at the current instant.
            sim.at(
                SimTime::from_ns(10),
                |w: &mut World, sim: &mut Sim<World>| {
                    w.push(2);
                    assert_eq!(sim.now(), SimTime::from_ns(100));
                },
            );
        });
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(1), |w: &mut World, sim: &mut Sim<World>| {
            w.push(1);
            sim.stop();
        });
        sim.after(d(2), |w: &mut World, _| w.push(2));
        assert_eq!(sim.run(&mut w), RunOutcome::Stopped);
        assert_eq!(w, vec![1]);
        // The remaining event is still pending and runs on the next run().
        assert_eq!(sim.run(&mut w), RunOutcome::Drained);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn event_limit_detects_livelock() {
        let mut sim: Sim<World> = Sim::new().with_event_limit(1000);
        let mut w = Vec::new();
        fn respawn(_: &mut World, sim: &mut Sim<World>) {
            sim.after(SimDuration::from_ns(1), respawn);
        }
        sim.after(d(1), respawn);
        assert_eq!(sim.run(&mut w), RunOutcome::EventLimit);
        assert_eq!(sim.events_executed(), 1000);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        for i in 1..=5 {
            sim.at(SimTime::from_ns(i * 10), move |w: &mut World, _| {
                w.push(i as u32)
            });
        }
        sim.run_until(&mut w, SimTime::from_ns(30));
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn soon_runs_after_current_instant_queue() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        sim.after(d(10), |w: &mut World, sim: &mut Sim<World>| {
            sim.soon(|w: &mut World, _| w.push(2));
            w.push(1);
        });
        sim.after(d(10), |w: &mut World, _| w.push(3));
        sim.run(&mut w);
        // Event at t=10 scheduled first runs first; `soon` lands after the
        // other already-queued t=10 event because of sequence ordering.
        assert_eq!(w, vec![1, 3, 2]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim: Sim<World> = Sim::new();
        let id = sim.after(d(5), |_: &mut World, _| {});
        sim.after(d(9), |_: &mut World, _| {});
        sim.cancel(id);
        assert_eq!(sim.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    fn fast_path_interleaves_with_closures_in_seq_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        fn push1(w: &mut World, _: &mut Sim<World>, a: u64) {
            w.push(a as u32);
        }
        fn push2(w: &mut World, _: &mut Sim<World>, a: u64, b: u64) {
            w.push((a + b) as u32);
        }
        sim.after_call1(d(10), push1, 1);
        sim.after(d(10), |w: &mut World, _| w.push(2));
        sim.after_call2(d(10), push2, 1, 2);
        sim.after_call0(d(5), |w: &mut World, _| w.push(0));
        sim.run(&mut w);
        assert_eq!(w, vec![0, 1, 2, 3]);
    }

    #[test]
    fn slots_are_recycled_and_stale_ids_stay_dead() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let a = sim.after(d(1), |w: &mut World, _| w.push(1));
        sim.run(&mut w);
        // The slot is recycled for the next event; the stale id must not
        // cancel the new occupant.
        let b = sim.after(d(1), |w: &mut World, _| w.push(2));
        assert_eq!(a.idx(), b.idx());
        assert_ne!(a.generation(), b.generation());
        sim.cancel(a);
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        // Events far beyond the wheel horizon (overflow heap) must still
        // interleave correctly with near events and same-time ties.
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let horizon = (BUCKETS as u64) << BUCKET_SHIFT;
        sim.at(SimTime::from_ns(3 * horizon), |w: &mut World, _| w.push(4));
        sim.at(SimTime::from_ns(2 * horizon + 7), |w: &mut World, _| {
            w.push(2)
        });
        sim.at(SimTime::from_ns(2 * horizon + 7), |w: &mut World, _| {
            w.push(3)
        });
        sim.at(SimTime::from_ns(5), |w: &mut World, _| w.push(1));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4]);
        assert_eq!(sim.now(), SimTime::from_ns(3 * horizon));
    }

    #[test]
    fn pending_reports_live_events_only() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let a = sim.after(d(1), |_: &mut World, _| {});
        sim.after(d(2), |_: &mut World, _| {});
        sim.after(d(3), |_: &mut World, _| {});
        assert_eq!(sim.pending(), 3);
        sim.cancel(a);
        assert_eq!(sim.pending(), 2, "cancelled events are not pending");
        assert_eq!(sim.peak_pending(), 3);
        sim.step(&mut w);
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn cancel_overflow_and_bucket_entries() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let horizon = (BUCKETS as u64) << BUCKET_SHIFT;
        let far = sim.at(SimTime::from_ns(2 * horizon), |w: &mut World, _| w.push(99));
        let near = sim.at(SimTime::from_ns(50), |w: &mut World, _| w.push(98));
        sim.at(SimTime::from_ns(60), |w: &mut World, _| w.push(1));
        sim.cancel(far);
        sim.cancel(near);
        assert_eq!(sim.peek_time(), Some(SimTime::from_ns(60)));
        sim.run(&mut w);
        assert_eq!(w, vec![1]);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn leak_audit_clean_after_drain() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = Vec::new();
        let horizon = (BUCKETS as u64) << BUCKET_SHIFT;
        let a = sim.after(d(5), |_: &mut World, _| {});
        let b = sim.at(SimTime::from_ns(2 * horizon), |_: &mut World, _| {});
        sim.after(d(7), |w: &mut World, _| w.push(1));
        sim.cancel(a);
        sim.cancel(b);
        assert!(!sim.quiesced());
        assert_eq!(sim.run(&mut w), RunOutcome::Drained);
        assert!(sim.quiesced());
        assert_eq!(sim.leak_check(), 0, "drained run must reclaim all slots");
        // Scheduling again un-quiesces.
        sim.after(d(1), |_: &mut World, _| {});
        assert!(!sim.quiesced());
        assert!(sim.leak_check() > 0);
        sim.run(&mut w);
        assert!(sim.quiesced());
    }

    #[test]
    fn leak_audit_ignores_mid_run_drop() {
        // Dropping with events still pending is legal (run_until, early
        // teardown): the audit only arms after a true quiesce.
        let mut sim: Sim<World> = Sim::new();
        sim.after(d(5), |_: &mut World, _| {});
        let mut w = Vec::new();
        sim.run_until(&mut w, SimTime::from_ns(1));
        assert!(!sim.quiesced());
        drop(sim);
    }
}
