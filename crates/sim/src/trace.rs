//! Execution tracing — the simulator's answer to NVIDIA Nsight Systems /
//! Charm++ Projections, which the paper used to find its host-device
//! synchronization and stream-concurrency optimizations (§III-C).
//!
//! A [`Tracer`] records labelled spans on numbered lanes (one lane per
//! PE, per GPU engine, etc.). It can summarize time per label and render
//! a coarse ASCII timeline for small runs. Tracing is off by default;
//! when disabled, [`Tracer::record`] is a no-op so the hot path stays
//! clean at scale.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::time::{SimDuration, SimTime};

/// One traced interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which timeline lane (e.g. PE index, device engine index).
    pub lane: u32,
    /// Category ("entry", "kernel", "d2h", ...).
    pub category: &'static str,
    /// Specific label ("update", "pack", ...).
    pub label: &'static str,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Aggregated statistics for one (category, label) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Category of the spans.
    pub category: &'static str,
    /// Label of the spans.
    pub label: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Total time across spans.
    pub total: SimDuration,
}

/// Span recorder.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<Span>,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// An enabled tracer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            spans: Vec::new(),
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span (no-op while disabled).
    #[inline]
    pub fn record(
        &mut self,
        lane: u32,
        category: &'static str,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if self.enabled {
            self.spans.push(Span {
                lane,
                category,
                label,
                start,
                end,
            });
        }
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Aggregate by (category, label), heaviest total first.
    pub fn summary(&self) -> Vec<SpanStats> {
        let mut agg: BTreeMap<(&'static str, &'static str), (u64, SimDuration)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg
                .entry((s.category, s.label))
                .or_insert((0, SimDuration::ZERO));
            e.0 += 1;
            e.1 += s.duration();
        }
        let mut out: Vec<SpanStats> = agg
            .into_iter()
            .map(|((category, label), (count, total))| SpanStats {
                category,
                label,
                count,
                total,
            })
            .collect();
        out.sort_by(|a, b| b.total.cmp(&a.total).then(a.label.cmp(b.label)));
        out
    }

    /// Busy time of a lane within `[from, to]` (spans clipped to the
    /// window; overlapping spans double-count, as concurrent engines
    /// should).
    pub fn lane_busy(&self, lane: u32, from: SimTime, to: SimTime) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.lane == lane && s.end > from && s.start < to)
            .map(|s| s.end.min(to).since(s.start.max(from)))
            .sum()
    }

    /// Append every span of `other`, shifting its lanes by
    /// `lane_offset`. Used to merge per-component tracers (machine,
    /// devices, fabric) into one timeline before export; spans are
    /// copied regardless of either tracer's enabled flag.
    pub fn extend_from(&mut self, other: &Tracer, lane_offset: u32) {
        self.spans.extend(other.spans.iter().map(|s| Span {
            lane: s.lane + lane_offset,
            ..*s
        }));
    }

    /// Write the trace as Chrome `trace_event` JSON (the format read by
    /// chrome://tracing and [Perfetto](https://ui.perfetto.dev)): one
    /// complete event (`"ph":"X"`) per span, timestamps in microseconds,
    /// one Chrome "thread" per lane.
    pub fn export_chrome(&self, path: &Path) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        w.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
        let mut first = true;
        let mut lanes_seen = std::collections::BTreeSet::new();
        for s in &self.spans {
            if lanes_seen.insert(s.lane) {
                if !first {
                    w.write_all(b",")?;
                }
                first = false;
                write!(
                    w,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":\"lane {}\"}}}}",
                    s.lane, s.lane
                )?;
            }
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{}}}",
                json_escape(s.label),
                json_escape(s.category),
                s.start.as_ns() as f64 / 1e3,
                s.duration().as_ns() as f64 / 1e3,
                s.lane
            )?;
        }
        w.write_all(b"]}")?;
        w.flush()
    }

    /// Render a coarse ASCII Gantt chart of `lanes` over `[from, to]`,
    /// `width` characters wide. Each cell shows the first letter of the
    /// label occupying the majority of that cell's time (`.` = idle).
    pub fn ascii_timeline(
        &self,
        lanes: &[(u32, &str)],
        from: SimTime,
        to: SimTime,
        width: usize,
    ) -> String {
        let window = to.since(from).as_ns().max(1);
        let cell_ns = (window as f64 / width as f64).max(1.0);
        let mut out = String::new();
        for &(lane, name) in lanes {
            let mut row = vec![(SimDuration::ZERO, '.'); width];
            for s in self.spans.iter().filter(|s| s.lane == lane) {
                if s.end <= from || s.start >= to {
                    continue;
                }
                let s0 = s.start.max(from).since(from).as_ns() as f64;
                let s1 = s.end.min(to).since(from).as_ns() as f64;
                let c0 = (s0 / cell_ns) as usize;
                let c1 = ((s1 / cell_ns).ceil() as usize).min(width);
                let ch = s.label.chars().next().unwrap_or('?');
                for cell in row.iter_mut().take(c1).skip(c0) {
                    let covered = SimDuration::from_ns(
                        ((s1.min((c0 + 1) as f64 * cell_ns) - s0).max(1.0)) as u64,
                    );
                    // Simple majority rule: longer coverage wins the cell.
                    if covered > cell.0 {
                        *cell = (covered, ch);
                    }
                }
            }
            out.push_str(&format!("{name:>12} |"));
            out.extend(row.into_iter().map(|(_, c)| c));
            out.push('\n');
        }
        out
    }
}

/// Minimal JSON string escaping for label/category text.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::new();
        tr.record(0, "k", "a", t(0), t(10));
        assert!(tr.spans().is_empty());
        tr.set_enabled(true);
        tr.record(0, "k", "a", t(0), t(10));
        assert_eq!(tr.spans().len(), 1);
    }

    #[test]
    fn summary_aggregates_by_label() {
        let mut tr = Tracer::enabled();
        tr.record(0, "kernel", "update", t(0), t(100));
        tr.record(1, "kernel", "update", t(50), t(250));
        tr.record(0, "kernel", "pack", t(100), t(110));
        let s = tr.summary();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].label, "update");
        assert_eq!(s[0].count, 2);
        assert_eq!(s[0].total.as_ns(), 300);
        assert_eq!(s[1].label, "pack");
        assert_eq!(s[1].total.as_ns(), 10);
    }

    #[test]
    fn lane_busy_clips_to_window() {
        let mut tr = Tracer::enabled();
        tr.record(2, "entry", "run", t(10), t(30));
        tr.record(2, "entry", "run", t(50), t(70));
        tr.record(3, "entry", "run", t(0), t(100));
        assert_eq!(tr.lane_busy(2, t(0), t(100)).as_ns(), 40);
        assert_eq!(tr.lane_busy(2, t(20), t(60)).as_ns(), 20);
        assert_eq!(tr.lane_busy(9, t(0), t(100)).as_ns(), 0);
    }

    #[test]
    fn ascii_timeline_shows_spans() {
        let mut tr = Tracer::enabled();
        tr.record(0, "kernel", "update", t(0), t(500));
        tr.record(0, "kernel", "pack", t(500), t(1000));
        let s = tr.ascii_timeline(&[(0, "gpu0")], t(0), t(1000), 10);
        let row = s.lines().next().expect("one lane");
        assert!(row.contains("gpu0"));
        let cells: String = row.chars().skip_while(|&c| c != '|').skip(1).collect();
        assert_eq!(cells.len(), 10);
        assert!(cells.starts_with("uuuu"), "{cells}");
        assert!(cells.ends_with("pppp"), "{cells}");
    }

    #[test]
    fn extend_from_shifts_lanes() {
        let mut a = Tracer::enabled();
        a.record(0, "entry", "run", t(0), t(10));
        let mut b = Tracer::enabled();
        b.record(1, "kernel", "update", t(5), t(15));
        a.extend_from(&b, 8);
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.spans()[1].lane, 9);
        assert_eq!(a.spans()[1].label, "update");
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let mut tr = Tracer::enabled();
        tr.record(0, "kernel", "update", t(1_000), t(3_500));
        tr.record(2, "net", "nic-up", t(2_000), t(2_400));
        let path = std::env::temp_dir().join("gaat_trace_test.json");
        tr.export_chrome(&path).expect("export");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"traceEvents\":["));
        // 1 µs start, 2.5 µs duration for the first span.
        assert!(text.contains("\"ph\":\"X\",\"ts\":1,\"dur\":2.5"), "{text}");
        assert!(text.contains("\"tid\":2"));
        assert!(text.contains("thread_name"));
        // Balanced braces/brackets — cheap well-formedness proxy without
        // a JSON parser dependency.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn timeline_idle_cells_are_dots() {
        let tr = Tracer::enabled();
        let s = tr.ascii_timeline(&[(0, "empty")], t(0), t(100), 8);
        assert!(s.contains("........"));
    }
}
