//! Virtual time for the discrete-event simulation.
//!
//! All simulated time is kept in integer **nanoseconds** so that event
//! ordering is exact and runs are bit-reproducible across platforms. Two
//! newtypes are provided: [`SimTime`] (a point on the simulation clock) and
//! [`SimDuration`] (a span between two points). Arithmetic between them is
//! defined the obvious way and saturates rather than wrapping, so a
//! mis-calibrated model produces a visibly huge time instead of silent
//! wraparound.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" for wakeups.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds as a float, for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Milliseconds as a float, for reporting only.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Microseconds as a float, for reporting only.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Span from an earlier instant to `self`, saturating to zero if
    /// `earlier` is actually later (callers normally guarantee ordering).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span; used as "infinite".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds as a float, for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Milliseconds as a float, for reporting only.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Microseconds as a float, for reporting only.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Multiply by a non-negative float factor (used for jitter and
    /// throughput-sharing), rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, f: f64) -> SimDuration {
        debug_assert!(f >= 0.0, "negative duration scale {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Pretty-print with an automatically chosen unit (ns / µs / ms / s).
fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns < 10_000 {
        write!(f, "{ns}ns")
    } else if ns < 10_000_000 {
        write!(f, "{:.2}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_ns(1_000);
        let d = SimDuration::from_us(3);
        assert_eq!((t + d).as_ns(), 4_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::from_ns(5);
        assert_eq!((t - SimDuration::from_ns(10)).as_ns(), 0);
        assert_eq!(t.since(SimTime::from_ns(100)), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_ns(1), SimTime::MAX);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_secs(2).as_ns(), 2_000_000_000);
        assert_eq!(SimDuration::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimDuration::from_us(2).as_ns(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn float_views() {
        let d = SimDuration::from_ms(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert!((d.as_micros_f64() - 1.5e6).abs() < 1e-6);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_ns(1000);
        assert_eq!(d.mul_f64(1.5).as_ns(), 1500);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(0.0004).as_ns(), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_ns(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_us(123).to_string(), "123.00us");
        assert_eq!(SimDuration::from_ms(45).to_string(), "45.000ms");
        assert_eq!(SimDuration::from_secs(45).to_string(), "45.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ns(3);
        let b = SimTime::from_ns(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_ns(3).max(SimDuration::from_ns(9)).as_ns(),
            9
        );
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4u64).map(SimDuration::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
    }
}
