//! Statistics collection for simulation runs.
//!
//! Small, allocation-light accumulators used by the device, network, and
//! runtime models to report utilization, latency distributions, and
//! per-iteration timings.

use crate::time::{SimDuration, SimTime};

/// Engine-level counters for one `Sim` (or one shard of a sharded run).
///
/// Merging is **associative and commutative** — counts add, high-water
/// marks take the max — so aggregating per-shard snapshots yields the
/// same totals regardless of merge order or shard count. The sharded
/// driver relies on this to report whole-run observability numbers that
/// don't undercount in parallel runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimStats {
    /// Events executed.
    pub events_executed: u64,
    /// Live events currently pending.
    pub pending: u64,
    /// High-water mark of the live pending-event count.
    ///
    /// Per-shard peaks need not coincide in simulated time, so the merged
    /// value is a lower bound on the true global peak — but it is the
    /// *same* lower bound for any shard count and merge order.
    pub peak_pending: u64,
}

impl SimStats {
    /// Fold another snapshot into this one (associative, commutative).
    pub fn merge(&mut self, other: &SimStats) {
        self.events_executed += other.events_executed;
        self.pending += other.pending;
        self.peak_pending = self.peak_pending.max(other.peak_pending);
    }
}

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_ns() as f64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 if fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Tracks what fraction of simulated time a resource spent busy.
///
/// Call [`BusyTracker::set_busy`] on every busy/idle transition; at the end
/// of the run, [`BusyTracker::utilization`] gives busy-time / elapsed-time.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BusyTracker {
    busy_since: Option<SimTime>,
    accumulated: SimDuration,
    transitions: u64,
}

impl BusyTracker {
    /// New tracker, initially idle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a busy/idle transition at `now`. Redundant transitions (busy
    /// while busy) are ignored.
    pub fn set_busy(&mut self, now: SimTime, busy: bool) {
        match (self.busy_since, busy) {
            (None, true) => {
                self.busy_since = Some(now);
                self.transitions += 1;
            }
            (Some(since), false) => {
                self.accumulated += now.since(since);
                self.busy_since = None;
                self.transitions += 1;
            }
            _ => {}
        }
    }

    /// Total busy time up to `now` (counting an open busy interval).
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.accumulated + now.since(since),
            None => self.accumulated,
        }
    }

    /// Busy fraction of the window `[start, now]`; 0 for an empty window.
    pub fn utilization(&self, start: SimTime, now: SimTime) -> f64 {
        let window = now.since(start).as_ns();
        if window == 0 {
            return 0.0;
        }
        self.busy_time(now).as_ns() as f64 / window as f64
    }

    /// Number of busy/idle transitions observed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

/// Fixed-boundary log-scale histogram of durations (ns), 1 ns .. ~18 s.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogHistogram {
    /// bucket `i` counts samples in `[2^i, 2^(i+1))` ns
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram with 64 power-of-two buckets.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns().max(1);
        let bucket = 63 - ns.leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (returns the upper bound of the bucket that
    /// contains the q-th sample). `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_ns(1u64 << (i + 1).min(63));
            }
        }
        SimDuration::MAX
    }
}

/// Per-iteration timing record for an application run.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IterationTimer {
    marks: Vec<SimTime>,
}

impl IterationTimer {
    /// New, empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the completion instant of the next iteration.
    pub fn mark(&mut self, now: SimTime) {
        self.marks.push(now);
    }

    /// Number of marks recorded.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True if no marks were recorded.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Mean time per iteration over marks `[skip, ..]`, measured from mark
    /// `skip - 1` (or time zero when `skip == 0`). `skip` implements the
    /// paper's warm-up iterations that are excluded from the timers.
    pub fn mean_per_iteration(&self, skip: usize) -> Option<SimDuration> {
        if self.marks.len() <= skip {
            return None;
        }
        let start = if skip == 0 {
            SimTime::ZERO
        } else {
            self.marks[skip - 1]
        };
        let end = *self.marks.last().expect("non-empty");
        let iters = (self.marks.len() - skip) as u64;
        Some(end.since(start) / iters)
    }

    /// All recorded marks.
    pub fn marks(&self) -> &[SimTime] {
        &self.marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_stats_merge_is_associative_and_commutative() {
        let snaps = [
            SimStats {
                events_executed: 10,
                pending: 3,
                peak_pending: 7,
            },
            SimStats {
                events_executed: 25,
                pending: 0,
                peak_pending: 19,
            },
            SimStats {
                events_executed: 1,
                pending: 12,
                peak_pending: 12,
            },
        ];
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = snaps[0];
        left.merge(&snaps[1]);
        left.merge(&snaps[2]);
        let mut bc = snaps[1];
        bc.merge(&snaps[2]);
        let mut right = snaps[0];
        right.merge(&bc);
        assert_eq!(left, right);
        // and any permutation gives the same fold
        let mut rev = snaps[2];
        rev.merge(&snaps[0]);
        rev.merge(&snaps[1]);
        assert_eq!(left, rev);
        assert_eq!(left.events_executed, 36);
        assert_eq!(left.pending, 15);
        assert_eq!(left.peak_pending, 19);
    }

    #[test]
    fn accumulator_basic_moments() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
        assert!((a.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_empty_is_zeroes() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.std_dev(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn busy_tracker_utilization() {
        let t = |ns| SimTime::from_ns(ns);
        let mut b = BusyTracker::new();
        b.set_busy(t(10), true);
        b.set_busy(t(30), false);
        b.set_busy(t(50), true);
        b.set_busy(t(60), false);
        assert_eq!(b.busy_time(t(100)).as_ns(), 30);
        assert!((b.utilization(t(0), t(100)) - 0.3).abs() < 1e-12);
        assert_eq!(b.transitions(), 4);
    }

    #[test]
    fn busy_tracker_open_interval_counts() {
        let t = |ns| SimTime::from_ns(ns);
        let mut b = BusyTracker::new();
        b.set_busy(t(0), true);
        assert_eq!(b.busy_time(t(40)).as_ns(), 40);
        // redundant busy is ignored
        b.set_busy(t(20), true);
        assert_eq!(b.busy_time(t(40)).as_ns(), 40);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_ns(i));
        }
        assert_eq!(h.count(), 1000);
        let q10 = h.quantile(0.1);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q10 <= q50 && q50 <= q99);
        assert!(q99.as_ns() >= 512);
    }

    #[test]
    fn iteration_timer_with_warmup() {
        let mut t = IterationTimer::new();
        // 2 warm-up iterations of 100 ns then 3 timed iterations of 10 ns.
        t.mark(SimTime::from_ns(100));
        t.mark(SimTime::from_ns(200));
        t.mark(SimTime::from_ns(210));
        t.mark(SimTime::from_ns(220));
        t.mark(SimTime::from_ns(230));
        let per = t.mean_per_iteration(2).expect("has timed iterations");
        assert_eq!(per.as_ns(), 10);
        assert!(t.mean_per_iteration(5).is_none());
        assert_eq!(t.mean_per_iteration(0).expect("all").as_ns(), 46);
    }
}
