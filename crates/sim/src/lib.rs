//! # gaat-sim — deterministic discrete-event simulation engine
//!
//! The foundation of the GAAT (GPU-Aware Asynchronous Tasks) stack: a
//! single-threaded, bit-deterministic discrete-event simulator with integer
//! nanosecond time, a splittable RNG, and statistics accumulators.
//!
//! Everything above this crate — the GPU device model, the interconnect,
//! the communication library, the task runtime, and the Jacobi3D proxy
//! application — executes as closures scheduled on [`Sim`] over a world
//! type the embedding crate chooses.
//!
//! ```
//! use gaat_sim::{Sim, SimDuration};
//!
//! let mut sim: Sim<u32> = Sim::new();
//! let mut counter = 0u32;
//! sim.after(SimDuration::from_us(5), |c: &mut u32, _| *c += 1);
//! sim.run(&mut counter);
//! assert_eq!(counter, 1);
//! assert_eq!(sim.now().as_ns(), 5_000);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{EventFn, EventId, RunOutcome, Sim, SimSnapshot, SnapshotError};
pub use fault::{FaultPlan, LinkFault, LinkFaultKind, MsgFate, PeFault, StragglerWindow};
pub use rng::{mix64, SimRng};
pub use shard::{Shard, ShardWorld, ShardedSim};
pub use stats::{Accumulator, BusyTracker, IterationTimer, LogHistogram, SimStats};
pub use time::{SimDuration, SimTime};
pub use trace::{Span, SpanStats, Tracer};
