//! Conservative time-windowed parallel DES across shards.
//!
//! A sharded run partitions the simulated world into `N` shards, each
//! owning a disjoint slice of the model's state and its own [`Sim`]
//! engine. Shards advance concurrently — one host thread per shard —
//! through a sequence of *windows* of width equal to the **lookahead**
//! `L`: the model-guaranteed minimum latency of any cross-shard
//! interaction. Within a window no shard can influence another, so each
//! engine runs its slab-arena/calendar-queue loop completely unsynchronized;
//! at the window barrier, the messages every shard produced for its peers
//! are exchanged through per-pair staging buffers and drained into the
//! destination engines in a deterministic order (sorted by
//! `(time, src, token)`), making the whole run bit-identical for any
//! worker count and any thread interleaving.
//!
//! # Protocol
//!
//! Each round (all shards in lockstep, two barriers per round):
//!
//! 1. every shard publishes the timestamp of its next pending event;
//! 2. **barrier** — every shard independently computes the global minimum
//!    `T`; if no shard has work, the run is over;
//! 3. every shard executes its local events in `[T, T + L)` (the engine's
//!    `run_until(T + L - 1ns)`), appending any cross-shard messages to
//!    the staging buffer of the `(src, dst)` pair;
//! 4. **barrier** — every shard drains the staging column addressed to
//!    it, sorts by the message key, and hands each message to the world's
//!    [`ShardWorld::deliver`], which schedules the corresponding local
//!    event (necessarily at `>= T + L`, which the driver asserts).
//!
//! Correctness of the conservative window: a message emitted at `t_s ∈
//! [T, T+L)` carries a delivery time `t_d >= t_s + L >= T + L`, so it can
//! never land inside the window that produced it — no shard ever executes
//! an event that a not-yet-exchanged message should have preceded.
//!
//! Determinism: shard-local execution is the sequential engine
//! (bit-deterministic on its own), staging buffers are per-`(src, dst)`
//! pair so there are no cross-thread append races to order, and the drain
//! sorts by a total key — so thread scheduling can change nothing
//! observable. Worker-count invariance is a property the *world* supplies
//! on top: shard state must be disjoint (interaction only through
//! messages) and message keys must not depend on the partition.
//!
//! `workers == 1` takes the exact single-engine fast path: `run()`
//! degenerates to `Sim::run` with no windows, no barriers, and no staging
//! in the hot loop.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Barrier, Mutex};

use crate::engine::{RunOutcome, Sim};
use crate::stats::SimStats;
use crate::time::{SimDuration, SimTime};

/// A world type that can be split into shards for windowed parallel
/// execution.
///
/// One value of the implementing type is *one shard*: it holds only its
/// slice of the model plus the staging outbox for messages addressed to
/// other shards. All cross-shard interaction must flow through
/// [`ShardWorld::deliver`]; shards must share no mutable state.
pub trait ShardWorld: Send + Sized + 'static {
    /// A message crossing a shard boundary. Plain data; must carry its
    /// delivery time and enough identity for a total ordering.
    type Msg: Send;

    /// Destination shard of a staged message.
    fn msg_dest(msg: &Self::Msg) -> usize;

    /// Deterministic merge key: `(delivery time, source rank, token)`.
    /// Must be unique per message and independent of the partition (use
    /// model-level identities — source PE, per-source sequence — not
    /// shard indices).
    fn msg_key(msg: &Self::Msg) -> (SimTime, u64, u64);

    /// Move the messages this shard produced for other shards during the
    /// last window out of the world, appending them to `out`.
    fn drain_outbox(&mut self, out: &mut Vec<Self::Msg>);

    /// Hand a staged message to this (destination) shard at a window
    /// barrier. Typically schedules a local event at the message's
    /// delivery time, which the driver guarantees has not yet been
    /// reached by this shard's clock.
    fn deliver(&mut self, sim: &mut Sim<Self>, msg: Self::Msg);
}

/// One shard: its world slice and its engine.
pub struct Shard<W: ShardWorld> {
    /// The shard's engine.
    pub sim: Sim<W>,
    /// The shard's slice of the world.
    pub world: W,
}

/// Driver for a conservatively windowed, multi-threaded sharded run.
pub struct ShardedSim<W: ShardWorld> {
    shards: Vec<Shard<W>>,
    lookahead: SimDuration,
    /// Windows executed by the last `run()` (1 window per barrier round;
    /// 0 for the single-shard fast path).
    windows: u64,
    /// Cross-shard messages exchanged by the last `run()`.
    exchanged: u64,
}

/// Internal: encode an optional next-event time as a u64 for the shared
/// publication slots (`u64::MAX` = shard has nothing pending).
const IDLE: u64 = u64::MAX;

/// Internal: global run status codes shared across workers.
const ST_RUNNING: u8 = 0;
const ST_STOPPED: u8 = 1;
const ST_LIMIT: u8 = 2;

impl<W: ShardWorld> ShardedSim<W> {
    /// Build a driver over pre-partitioned shards. `lookahead` is the
    /// model's minimum cross-shard latency; it must be at least 1 ns.
    pub fn new(shards: Vec<Shard<W>>, lookahead: SimDuration) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        assert!(lookahead.as_ns() >= 1, "lookahead must be positive");
        ShardedSim {
            shards,
            lookahead,
            windows: 0,
            exchanged: 0,
        }
    }

    /// Number of shards (= worker threads in a parallel run).
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The conservative window width.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Windows executed by the last [`ShardedSim::run`].
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-shard messages exchanged by the last [`ShardedSim::run`].
    pub fn exchanged(&self) -> u64 {
        self.exchanged
    }

    /// Shared access to the shards (e.g. to collect final world state).
    pub fn shards(&self) -> &[Shard<W>] {
        &self.shards
    }

    /// Mutable access to the shards (setup: scheduling initial events).
    pub fn shards_mut(&mut self) -> &mut [Shard<W>] {
        &mut self.shards
    }

    /// Consume the driver, returning the shards.
    pub fn into_shards(self) -> Vec<Shard<W>> {
        self.shards
    }

    /// Total live pending events across every shard.
    ///
    /// A single engine's `pending()` answers for its own arena only; in a
    /// sharded run the observable quantity is this sum.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.sim.pending()).sum()
    }

    /// Total events executed across every shard.
    pub fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.sim.events_executed()).sum()
    }

    /// Merged engine counters across every shard (associative fold of
    /// per-shard [`SimStats`]).
    pub fn stats(&self) -> SimStats {
        let mut agg = SimStats::default();
        for s in &self.shards {
            agg.merge(&s.sim.stats());
        }
        agg
    }

    /// Latest simulated time reached by any shard.
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.sim.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Run to completion. One shard runs the plain sequential engine
    /// loop; `N > 1` shards run the windowed protocol on `N` host
    /// threads.
    pub fn run(&mut self) -> RunOutcome {
        self.windows = 0;
        self.exchanged = 0;
        if self.shards.len() == 1 {
            let s = &mut self.shards[0];
            return s.sim.run(&mut s.world);
        }
        self.run_parallel()
    }

    fn run_parallel(&mut self) -> RunOutcome {
        let n = self.shards.len();
        let lookahead = self.lookahead;
        // Published next-event time per shard, refreshed at the top of
        // every round (after the previous round's deliveries landed).
        let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        // Per-(src, dst) staging buffers. Only `src`'s thread appends to
        // row `src` during a window; only `dst`'s thread drains column
        // `dst` after the barrier — the mutexes are uncontended and exist
        // to satisfy shared-access rules, not to order anything.
        let staging: Vec<Vec<Mutex<Vec<W::Msg>>>> = (0..n)
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = Barrier::new(n);
        let status = AtomicU8::new(ST_RUNNING);
        let windows = AtomicU64::new(0);
        let exchanged = AtomicU64::new(0);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (i, shard) in self.shards.iter_mut().enumerate() {
                let next = &next;
                let staging = &staging;
                let barrier = &barrier;
                let status = &status;
                let windows = &windows;
                let exchanged = &exchanged;
                handles.push(scope.spawn(move || {
                    let mut outbox: Vec<W::Msg> = Vec::new();
                    let mut inbox: Vec<W::Msg> = Vec::new();
                    loop {
                        // (1) publish my next event time.
                        let mine = shard.sim.peek_time().map(|t| t.as_ns()).unwrap_or(IDLE);
                        next[i].store(mine, Ordering::Release);
                        barrier.wait();
                        if status.load(Ordering::Acquire) != ST_RUNNING {
                            return;
                        }
                        // (2) everyone computes the same window start.
                        let t0 = next
                            .iter()
                            .map(|a| a.load(Ordering::Acquire))
                            .min()
                            .expect("n >= 1");
                        if t0 == IDLE {
                            return; // drained everywhere, nothing staged
                        }
                        if i == 0 {
                            windows.fetch_add(1, Ordering::Relaxed);
                        }
                        // (3) run my events in [t0, t0 + L).
                        let deadline = SimTime::from_ns(t0) + lookahead - SimDuration::from_ns(1);
                        match shard.sim.run_until(&mut shard.world, deadline) {
                            RunOutcome::Drained => {}
                            RunOutcome::Stopped => {
                                status.store(ST_STOPPED, Ordering::Release);
                            }
                            RunOutcome::EventLimit => {
                                status.store(ST_LIMIT, Ordering::Release);
                            }
                        }
                        shard.world.drain_outbox(&mut outbox);
                        if !outbox.is_empty() {
                            exchanged.fetch_add(outbox.len() as u64, Ordering::Relaxed);
                        }
                        for msg in outbox.drain(..) {
                            let dst = W::msg_dest(&msg);
                            debug_assert!(dst < n && dst != i, "outbox must be cross-shard");
                            staging[i][dst].lock().unwrap().push(msg);
                        }
                        // (4) barrier, then drain my column deterministically.
                        barrier.wait();
                        inbox.clear();
                        for row in staging.iter() {
                            inbox.append(&mut row[i].lock().unwrap());
                        }
                        inbox.sort_by_key(|m| W::msg_key(m));
                        for msg in inbox.drain(..) {
                            let (at, _, _) = W::msg_key(&msg);
                            assert!(
                                at > deadline,
                                "lookahead violation: staged message at {at} inside \
                                 the window ending at {deadline}"
                            );
                            shard.world.deliver(&mut shard.sim, msg);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("shard worker panicked");
            }
        });

        self.windows = windows.load(Ordering::Relaxed);
        self.exchanged = exchanged.load(Ordering::Relaxed);
        match status.load(Ordering::Acquire) {
            ST_STOPPED => RunOutcome::Stopped,
            ST_LIMIT => RunOutcome::EventLimit,
            _ => RunOutcome::Drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::mix64;

    /// Test world: `cells` independent little state machines spread
    /// across shards. Each cell runs a local event chain (hash-driven
    /// delays) and periodically mails a token to the next cell in a ring
    /// with a delay of at least the lookahead, so a multi-shard run
    /// exercises the window protocol on every partition. A cell keeps two
    /// accumulators: a *chain* hash folded over its own strictly-ordered
    /// step events, and an *additive* accumulator folded commutatively
    /// over arrivals — so a same-nanosecond tie between an arrival and a
    /// step (whose relative `seq` order legitimately differs between a
    /// sequential and a windowed run) cannot change the fingerprint. The
    /// run fingerprint folds per-cell values commutatively, so it is
    /// independent of the partition by construction; the tests check the
    /// driver delivers every message at its exact modeled time with its
    /// exact identity.
    struct GridShard {
        shard: usize,
        /// Partition: cell id -> shard index.
        cell_shard: Vec<usize>,
        /// Per LOCAL cell, keyed by cell id.
        state: std::collections::HashMap<u64, Cell>,
        outbox: Vec<GridMsg>,
        lookahead_ns: u64,
        cells: u64,
    }

    #[derive(Default)]
    struct Cell {
        /// Order-sensitive fold over this cell's own step chain.
        chain: u64,
        /// Commutative fold over arrivals (delivery time + token).
        acc: u64,
        /// Messages sent so far (also the per-source token sequence).
        sent: u32,
    }

    struct GridMsg {
        at: SimTime,
        src_cell: u64,
        dst_cell: u64,
        dst_shard: usize,
        token: u64,
    }

    const CHAIN: u32 = 60;

    impl GridShard {
        fn delay(cell: u64, step: u32) -> u64 {
            100 + mix64(cell ^ ((step as u64) << 32)) % 1200
        }

        fn cell_step(w: &mut Self, sim: &mut Sim<Self>, cell: u64, step: u64) {
            let step = step as u32;
            let now = sim.now();
            let c = w.state.get_mut(&cell).expect("local cell");
            c.chain = mix64(c.chain ^ now.as_ns() ^ cell);
            if step >= CHAIN {
                return;
            }
            // Every 7th step mails the next cell in the ring, with a
            // delay of at least the lookahead so the window protocol's
            // conservative invariant holds for every such message.
            if step % 7 == 3 {
                let dst_cell = (cell + 1) % w.cells;
                let token = cell << 32 | c.sent as u64;
                c.sent += 1;
                let at = now + SimDuration::from_ns(w.lookahead_ns + mix64(token) % 2000);
                let msg = GridMsg {
                    at,
                    src_cell: cell,
                    dst_cell,
                    dst_shard: w.cell_shard[dst_cell as usize],
                    token,
                };
                if msg.dst_shard == w.shard {
                    // Same shard: schedule directly, the same code path
                    // the barrier drain uses for cross-shard messages.
                    Self::schedule_arrival(sim, msg);
                } else {
                    w.outbox.push(msg);
                }
            }
            let d = Self::delay(cell, step);
            sim.after_call2(
                SimDuration::from_ns(d),
                Self::cell_step,
                cell,
                (step + 1) as u64,
            );
        }

        fn schedule_arrival(sim: &mut Sim<Self>, msg: GridMsg) {
            sim.at_call2(msg.at, Self::cell_arrive, msg.dst_cell, msg.token);
        }

        fn cell_arrive(w: &mut Self, sim: &mut Sim<Self>, cell: u64, token: u64) {
            let at = sim.now().as_ns();
            let c = w.state.get_mut(&cell).expect("local cell");
            c.acc = c.acc.wrapping_add(mix64(token.wrapping_mul(3) ^ at));
        }
    }

    impl ShardWorld for GridShard {
        type Msg = GridMsg;

        fn msg_dest(msg: &GridMsg) -> usize {
            msg.dst_shard
        }

        fn msg_key(msg: &GridMsg) -> (SimTime, u64, u64) {
            (msg.at, msg.src_cell, msg.token)
        }

        fn drain_outbox(&mut self, out: &mut Vec<GridMsg>) {
            out.append(&mut self.outbox);
        }

        fn deliver(&mut self, sim: &mut Sim<Self>, msg: GridMsg) {
            Self::schedule_arrival(sim, msg);
        }
    }

    fn build(cells: u64, partition: &[usize], lookahead_ns: u64) -> ShardedSim<GridShard> {
        let nshards = partition.iter().copied().max().unwrap_or(0) + 1;
        let mut shards: Vec<Shard<GridShard>> = (0..nshards)
            .map(|s| Shard {
                sim: Sim::new(),
                world: GridShard {
                    shard: s,
                    cell_shard: partition.to_vec(),
                    state: Default::default(),
                    outbox: Vec::new(),
                    lookahead_ns,
                    cells,
                },
            })
            .collect();
        for cell in 0..cells {
            let s = partition[cell as usize];
            let shard = &mut shards[s];
            shard.world.state.insert(cell, Cell::default());
            // Stagger starts so shards' first events differ.
            let t0 = SimTime::from_ns(mix64(cell ^ 0xfeed) % 500);
            shard.sim.at_call2(t0, GridShard::cell_step, cell, 0);
        }
        ShardedSim::new(shards, SimDuration::from_ns(lookahead_ns))
    }

    fn fingerprint(sharded: &ShardedSim<GridShard>) -> u64 {
        // Commutative fold over cells: partition-independent by design.
        let mut acc = 0u64;
        for s in sharded.shards() {
            for (&cell, c) in &s.world.state {
                acc = acc.wrapping_add(
                    mix64(c.chain ^ cell)
                        .wrapping_add(c.acc)
                        .wrapping_add(c.sent as u64),
                );
            }
        }
        acc
    }

    fn contiguous_partition(cells: u64, shards: usize) -> Vec<usize> {
        (0..cells as usize)
            .map(|c| c * shards / cells as usize)
            .collect()
    }

    #[test]
    fn worker_counts_give_identical_fingerprints() {
        let cells = 24;
        let la = 4096;
        let mut base = build(cells, &contiguous_partition(cells, 1), la);
        assert_eq!(base.run(), RunOutcome::Drained);
        let want = fingerprint(&base);
        let want_events = base.events_executed();
        for workers in [2usize, 3, 4] {
            let mut s = build(cells, &contiguous_partition(cells, workers), la);
            assert_eq!(s.run(), RunOutcome::Drained);
            assert_eq!(fingerprint(&s), want, "workers={workers}");
            assert_eq!(s.events_executed(), want_events, "workers={workers}");
            assert!(s.windows() > 0, "parallel run must use windows");
            assert!(s.exchanged() > 0, "ring traffic must cross shards");
        }
    }

    #[test]
    fn random_partitions_give_identical_fingerprints() {
        let cells = 24;
        let la = 4096;
        let mut base = build(cells, &contiguous_partition(cells, 1), la);
        assert_eq!(base.run(), RunOutcome::Drained);
        let want = fingerprint(&base);
        for seed in 0..6u64 {
            let raw: Vec<usize> = (0..cells)
                .map(|c| (mix64(c ^ seed.wrapping_mul(0x9e37)) % 4) as usize)
                .collect();
            // Normalize shard ids to a dense 0..n range.
            let mut ids = raw.clone();
            ids.sort_unstable();
            ids.dedup();
            let partition: Vec<usize> = raw
                .iter()
                .map(|p| ids.iter().position(|x| x == p).unwrap())
                .collect();
            let mut s = build(cells, &partition, la);
            assert_eq!(s.run(), RunOutcome::Drained);
            assert_eq!(fingerprint(&s), want, "seed={seed}");
        }
    }

    #[test]
    fn sharded_stats_aggregate() {
        let cells = 24;
        let mut s = build(cells, &contiguous_partition(cells, 3), 4096);
        assert_eq!(s.run(), RunOutcome::Drained);
        let agg = s.stats();
        assert_eq!(agg.events_executed, s.events_executed());
        assert_eq!(
            agg.events_executed,
            s.shards()
                .iter()
                .map(|sh| sh.sim.events_executed())
                .sum::<u64>()
        );
        assert_eq!(s.pending(), 0);
        assert_eq!(agg.pending, 0);
        assert!(agg.peak_pending >= 1);
    }

    #[test]
    fn single_shard_fast_path_is_plain_run() {
        let cells = 8;
        let mut s = build(cells, &contiguous_partition(cells, 1), 4096);
        assert_eq!(s.run(), RunOutcome::Drained);
        assert_eq!(s.windows(), 0, "fast path uses no windows");
        assert_eq!(s.exchanged(), 0);
        assert!(s.shards()[0].sim.quiesced());
    }
}
