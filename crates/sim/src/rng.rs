//! Deterministic, splittable random numbers.
//!
//! The simulation must be bit-reproducible across runs *and* across
//! versions of third-party crates, so the generator is implemented here:
//! xoshiro256** seeded through SplitMix64, the standard combination. Each
//! model component derives its own independent stream from a root seed and
//! a stable `u64` stream id, so adding RNG consumers in one subsystem never
//! perturbs the draw sequence of another.

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*state)
}

/// The SplitMix64 finalizer as a stateless `u64 -> u64` hash. Model code
/// uses this to derive per-entity randomness from stable identifiers
/// (e.g. per-message jitter from `(src, dst, token)`) so that unrelated
/// draws elsewhere cannot perturb the result.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator with stream splitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent stream for component `stream`. The derivation
    /// hashes (seed-state, stream) through SplitMix64 so streams with
    /// adjacent ids are uncorrelated.
    pub fn stream(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection-free approximation is fine for
        // simulation purposes (bias < 2^-64 * n).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Multiplicative jitter factor uniform in `[1 - eps, 1 + eps]`, used
    /// to perturb modeled durations so repeated "runs" differ like the
    /// paper's three-trial averages.
    #[inline]
    pub fn jitter(&mut self, eps: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&eps));
        1.0 + eps * (2.0 * self.next_f64() - 1.0)
    }

    /// Fisher–Yates shuffle (deterministic given the stream state).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_parent_draws() {
        let root = SimRng::new(7);
        let s1 = root.stream(3);
        let mut root2 = SimRng::new(7);
        let _ = root2.next_u64(); // consuming from a clone must not matter:
        let s2 = SimRng::new(7).stream(3);
        assert_eq!(s1, s2);
        assert_ne!(s1, root.stream(4));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} too skewed");
        }
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(13);
        for _ in 0..10_000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::new(19);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
