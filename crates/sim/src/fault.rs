//! Deterministic fault injection plan.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run: stochastic
//! message drops/corruption, scheduled link failures and degradations,
//! PE (process) failures, and GPU straggler windows. It deliberately
//! contains no mechanism — the fabric, the communication library, and
//! the runtime each consult the plan at their own injection points and
//! implement the consequences (retry, reroute, recovery) themselves.
//!
//! Two properties keep fault injection bit-deterministic:
//!
//! 1. **Hash-derived decisions.** Per-message outcomes (drop, corrupt)
//!    are pure functions of stable identifiers — `(src, dst, token,
//!    attempt)` hashed through [`mix64`] with the plan's seed — never of
//!    RNG draw order. Unrelated traffic cannot perturb whether a given
//!    message is dropped, and the same seed replays to the same faults.
//! 2. **Scheduled events.** Link and PE faults are explicit `(time,
//!    target)` entries armed through the ordinary event queue, so they
//!    interleave with the workload at exactly the same virtual instant
//!    on every run.
//!
//! The retransmission `attempt` participates in the hash so a dropped
//! message's retry gets a *fresh* drop decision; with a fixed attempt a
//! doomed message would be doomed forever.

use crate::rng::mix64;
use crate::time::SimTime;

/// Domain separator for drop decisions.
const DROP_SALT: u64 = 0x6F61_7564_726F_7021;
/// Domain separator for corruption decisions.
const CORRUPT_SALT: u64 = 0x632D_7275_7074_6564;

#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn msg_key(src: u64, dst: u64, token: u64, attempt: u32) -> u64 {
    src.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ dst.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ token.wrapping_mul(0x1656_67B1_9E37_79F9)
        ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

/// Outcome of the stochastic per-message fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Delivered normally.
    Deliver,
    /// Silently lost in the fabric (sender recovers by timeout).
    Drop,
    /// Corrupted in flight; the model treats this as checksum-detected
    /// at the receiver NIC and discarded, i.e. a drop with its own
    /// counter.
    Corrupt,
}

/// What happens to a link at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LinkFaultKind {
    /// The link goes down; routes fail over, in-flight flows abort.
    Down,
    /// The link comes back up at full capacity.
    Up,
    /// Transient degradation: capacity is multiplied by the factor
    /// (`0 < factor <= 1`). A later `Up` restores full bandwidth.
    Degrade(f64),
}

/// A scheduled link state change.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkFault {
    /// When the fault takes effect.
    pub at: SimTime,
    /// Directed-link index in the topology graph.
    pub link: u32,
    /// New state.
    pub kind: LinkFaultKind,
}

/// A scheduled permanent PE (process) failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeFault {
    /// When the PE dies.
    pub at: SimTime,
    /// The PE that dies.
    pub pe: usize,
}

/// A window during which one GPU runs slow (thermal throttling, a noisy
/// neighbour, a failing HBM stack).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StragglerWindow {
    /// The affected device.
    pub device: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Duration multiplier for work issued in the window (`>= 1`).
    pub slowdown: f64,
}

/// A complete, seeded description of the faults injected into one run.
///
/// The default plan injects nothing and is behaviourally invisible: no
/// events are armed and every fate draw returns [`MsgFate::Deliver`]
/// without hashing, so fault-free runs stay bit-identical to builds that
/// predate fault injection.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Seed for all hash-derived decisions.
    pub seed: u64,
    /// Probability that an inter-node message is silently dropped.
    pub drop_prob: f64,
    /// Probability that an inter-node message is corrupted (detected and
    /// discarded at the receiver).
    pub corrupt_prob: f64,
    /// Instant before which the stochastic drop/corrupt draws are
    /// suppressed (every fate check made at `now < onset` returns
    /// `Deliver` without hashing). `ZERO` — the default — applies the
    /// draws from the start. Because fates are pure hashes that arm no
    /// events, a run is bit-identical to a fault-free run up to the
    /// onset instant, which is what lets a sweep share one executed
    /// prefix across plans that differ only in their post-onset
    /// drop/corrupt behaviour.
    pub onset: SimTime,
    /// Scheduled link state changes, armed by the fabric.
    pub link_faults: Vec<LinkFault>,
    /// Scheduled permanent PE failures, armed by the runtime.
    pub pe_failures: Vec<PeFault>,
    /// GPU straggler windows, consulted by the device timing model.
    pub stragglers: Vec<StragglerWindow>,
    /// Delay between a PE failure and the runtime noticing it (failure
    /// detector latency before recovery starts).
    pub detection_delay: crate::time::SimDuration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            onset: SimTime::ZERO,
            link_faults: Vec::new(),
            pe_failures: Vec::new(),
            stragglers: Vec::new(),
            detection_delay: crate::time::SimDuration::from_us(50),
        }
    }
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if any fault source is configured. Callers use this to skip
    /// arming events and per-message draws entirely on the no-fault
    /// path.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.corrupt_prob > 0.0
            || !self.link_faults.is_empty()
            || !self.pe_failures.is_empty()
            || !self.stragglers.is_empty()
    }

    /// True if the stochastic message-fate draw can ever return
    /// something other than `Deliver`.
    #[inline]
    pub fn lossy(&self) -> bool {
        self.drop_prob > 0.0 || self.corrupt_prob > 0.0
    }

    /// True if a fate check made at instant `now` may return something
    /// other than `Deliver`: the plan is lossy and the onset has passed.
    /// Fabric injection points call this with the current virtual time so
    /// a plan with a late onset is behaviourally invisible before it.
    #[inline]
    pub fn lossy_at(&self, now: SimTime) -> bool {
        self.lossy() && now >= self.onset
    }

    /// Decide the fate of one message transmission attempt. Pure in
    /// `(seed, src, dst, token, attempt)`; the attempt number gives each
    /// retransmission an independent draw.
    #[inline]
    pub fn msg_fate(&self, src: u64, dst: u64, token: u64, attempt: u32) -> MsgFate {
        if !self.lossy() {
            return MsgFate::Deliver;
        }
        let key = msg_key(src, dst, token, attempt);
        if self.drop_prob > 0.0 && unit(mix64(self.seed ^ DROP_SALT ^ key)) < self.drop_prob {
            return MsgFate::Drop;
        }
        if self.corrupt_prob > 0.0
            && unit(mix64(self.seed ^ CORRUPT_SALT ^ key)) < self.corrupt_prob
        {
            return MsgFate::Corrupt;
        }
        MsgFate::Deliver
    }

    /// Deterministic backoff jitter factor in `[1, 2)` for retry
    /// attempt `attempt` of message `token`. Spreads synchronized
    /// timeouts without consuming RNG draws.
    #[inline]
    pub fn backoff_jitter(seed: u64, token: u64, attempt: u32) -> f64 {
        let h = mix64(
            seed ^ 0x6261_636B_6F66_6621
                ^ token.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        1.0 + unit(h)
    }

    /// The straggler slowdown factor for `device` at time `t` (1.0 when
    /// no window is active; overlapping windows multiply).
    pub fn straggler_slowdown(&self, device: usize, t: SimTime) -> f64 {
        let mut f = 1.0;
        for w in &self.stragglers {
            if w.device == device && w.from <= t && t < w.until {
                f *= w.slowdown.max(1.0);
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(!p.lossy());
        for t in 0..100 {
            assert_eq!(p.msg_fate(1, 2, t, 0), MsgFate::Deliver);
        }
    }

    #[test]
    fn fate_is_pure_and_seed_dependent() {
        let mut a = FaultPlan::none();
        a.drop_prob = 0.2;
        a.corrupt_prob = 0.05;
        a.seed = 42;
        let b = a.clone();
        let mut differs_from_other_seed = false;
        let mut c = a.clone();
        c.seed = 43;
        for token in 0..1000u64 {
            assert_eq!(a.msg_fate(3, 7, token, 0), b.msg_fate(3, 7, token, 0));
            if a.msg_fate(3, 7, token, 0) != c.msg_fate(3, 7, token, 0) {
                differs_from_other_seed = true;
            }
        }
        assert!(differs_from_other_seed);
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let mut p = FaultPlan::none();
        p.drop_prob = 0.10;
        p.seed = 7;
        let n = 100_000u64;
        let dropped = (0..n)
            .filter(|&t| p.msg_fate(1, 2, t, 0) == MsgFate::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!(
            (0.09..0.11).contains(&rate),
            "drop rate {rate} not near 0.10"
        );
    }

    #[test]
    fn attempts_redraw_fate() {
        let mut p = FaultPlan::none();
        p.drop_prob = 0.5;
        p.seed = 11;
        // A message dropped at attempt 0 must eventually get through on
        // some retry: attempts give independent draws.
        let mut all_attempts_identical = true;
        for token in 0..64u64 {
            let f0 = p.msg_fate(1, 2, token, 0);
            if (1..8).any(|a| p.msg_fate(1, 2, token, a) != f0) {
                all_attempts_identical = false;
            }
        }
        assert!(!all_attempts_identical);
    }

    #[test]
    fn onset_gates_fate_checks_without_changing_them() {
        let mut p = FaultPlan::none();
        p.drop_prob = 0.3;
        p.seed = 5;
        let t = |us| SimTime::ZERO + SimDuration::from_us(us);
        let mut late = p.clone();
        late.onset = t(100);
        assert!(p.lossy_at(SimTime::ZERO));
        assert!(!late.lossy_at(t(99)));
        assert!(late.lossy_at(t(100)));
        // The draw itself is onset-independent: once active, a message's
        // fate equals the onset-zero plan's fate for that message.
        for token in 0..200u64 {
            assert_eq!(p.msg_fate(1, 2, token, 0), late.msg_fate(1, 2, token, 0));
        }
    }

    #[test]
    fn backoff_jitter_in_range_and_deterministic() {
        for token in 0..100u64 {
            for attempt in 0..5 {
                let j = FaultPlan::backoff_jitter(9, token, attempt);
                assert!((1.0..2.0).contains(&j));
                assert_eq!(j, FaultPlan::backoff_jitter(9, token, attempt));
            }
        }
    }

    #[test]
    fn straggler_windows_multiply() {
        let mut p = FaultPlan::none();
        let t = |us| SimTime::ZERO + SimDuration::from_us(us);
        p.stragglers.push(StragglerWindow {
            device: 0,
            from: t(10),
            until: t(20),
            slowdown: 2.0,
        });
        p.stragglers.push(StragglerWindow {
            device: 0,
            from: t(15),
            until: t(30),
            slowdown: 1.5,
        });
        assert_eq!(p.straggler_slowdown(0, t(5)), 1.0);
        assert_eq!(p.straggler_slowdown(0, t(12)), 2.0);
        assert_eq!(p.straggler_slowdown(0, t(17)), 3.0);
        assert_eq!(p.straggler_slowdown(0, t(25)), 1.5);
        assert_eq!(p.straggler_slowdown(1, t(12)), 1.0);
        assert!(p.is_active());
    }
}
