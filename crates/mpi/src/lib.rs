//! # gaat-mpi — MPI-like baseline runtime
//!
//! The comparison point of the paper's evaluation (MPI-H and MPI-D): rank
//! processes with nonblocking point-to-point operations and `Waitall`
//! semantics, built over the same machine, UCX layer, and GPU model as
//! the task runtime.
//!
//! Ranks are implemented as chares pinned one per PE (the paper's
//! configuration: one MPI process per CPU core + GPU). Because processes
//! cannot literally block in a discrete-event world, a rank is written as
//! a state machine: `wait_all` registers a continuation entry that fires
//! when every outstanding request completes. While waiting, the rank
//! processes no application logic — faithfully reproducing MPI's blocking
//! `MPI_Waitall` (and its lost-overlap pitfall from the paper's Fig. 1
//! unless the *manual overlap* pattern is coded explicitly).
//!
//! AMPI-style virtualization (`ranks_per_pe > 1`) is supported as an
//! extension: multiple rank chares share a PE and the scheduler
//! interleaves them.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use gaat_rt::{Callback, Chare, ChareId, Ctx, EntryId, Envelope, MemLoc, Simulation};
use gaat_sim::SimDuration;
use gaat_ucx::Tag;

/// A nonblocking request handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Request(pub u64);

/// Per-rank MPI state, embedded in the application's rank chare.
#[derive(Debug)]
pub struct Mpi {
    /// This rank's index.
    pub rank: usize,
    /// Communicator size.
    pub size: usize,
    ranks: Arc<Vec<ChareId>>,
    req_entry: EntryId,
    next_req: u64,
    outstanding: HashMap<u64, bool>,
    wait: Option<Waiting>,
    /// CPU cost of each MPI call (Isend/Irecv/Waitall), charged to the PE.
    pub call_cost: SimDuration,
}

#[derive(Debug)]
struct Waiting {
    remaining: usize,
    resume: EntryId,
    refnum: u64,
}

impl Mpi {
    /// State for rank `rank` of `size`, where `ranks` maps rank → chare
    /// and `req_entry` is the entry id the application routes to
    /// [`Mpi::on_request_done`].
    pub fn new(rank: usize, ranks: Arc<Vec<ChareId>>, req_entry: EntryId) -> Self {
        Mpi {
            rank,
            size: ranks.len(),
            ranks,
            req_entry,
            next_req: 0,
            outstanding: HashMap::new(),
            wait: None,
            call_cost: SimDuration::from_ns(400),
        }
    }

    /// The chare implementing a rank.
    pub fn chare_of(&self, rank: usize) -> ChareId {
        self.ranks[rank]
    }

    fn new_request(&mut self) -> Request {
        let r = self.next_req;
        self.next_req += 1;
        self.outstanding.insert(r, false);
        Request(r)
    }

    /// Nonblocking send to `dst` with `tag` from the buffer at `loc`
    /// (host or device memory — device memory makes this CUDA-aware MPI).
    pub fn isend(&mut self, ctx: &mut Ctx<'_>, dst: usize, tag: u64, loc: MemLoc) -> Request {
        ctx.compute(self.call_cost);
        let req = self.new_request();
        let me = ctx.me();
        let dst_pe = ctx.machine.pe_of(self.ranks[dst]);
        let cb = Callback::to_ref(me, self.req_entry, req.0);
        ctx.ucx_isend(dst_pe, mpi_tag(self.rank, tag), loc, cb);
        req
    }

    /// Nonblocking receive from `src` with `tag` into the buffer at `loc`.
    pub fn irecv(&mut self, ctx: &mut Ctx<'_>, src: usize, tag: u64, loc: MemLoc) -> Request {
        ctx.compute(self.call_cost);
        let req = self.new_request();
        let me = ctx.me();
        let src_pe = ctx.machine.pe_of(self.ranks[src]);
        let cb = Callback::to_ref(me, self.req_entry, req.0);
        ctx.ucx_irecv(src_pe, mpi_tag(src, tag), loc, cb);
        req
    }

    /// Wait for every outstanding request; when the last one completes,
    /// `resume` is invoked on this rank with `refnum`. If nothing is
    /// outstanding the resume message is sent immediately.
    pub fn wait_all(&mut self, ctx: &mut Ctx<'_>, resume: EntryId, refnum: u64) {
        ctx.compute(self.call_cost);
        assert!(self.wait.is_none(), "nested wait_all");
        self.outstanding.retain(|_, done| !*done);
        let remaining = self.outstanding.len();
        if remaining == 0 {
            let me = ctx.me();
            ctx.send(
                me,
                Envelope::empty(resume).with_refnum(refnum).high_priority(),
            );
        } else {
            self.wait = Some(Waiting {
                remaining,
                resume,
                refnum,
            });
        }
    }

    /// Route request-completion callbacks here from the rank chare's
    /// `receive` (entry == the `req_entry` passed at construction).
    pub fn on_request_done(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let req = env.refnum;
        match self.outstanding.get_mut(&req) {
            Some(done) => *done = true,
            None => panic!("completion for unknown request {req}"),
        }
        if let Some(w) = &mut self.wait {
            w.remaining -= 1;
            if w.remaining == 0 {
                let Waiting { resume, refnum, .. } = self.wait.take().expect("present");
                self.outstanding.retain(|_, done| !*done);
                let me = ctx.me();
                ctx.send(
                    me,
                    Envelope::empty(resume).with_refnum(refnum).high_priority(),
                );
            }
        }
    }

    /// Number of incomplete requests.
    pub fn pending(&self) -> usize {
        self.outstanding.values().filter(|d| !**d).count()
    }
}

/// MPI tag namespace: disjoint from channel (bit 62) and GPU-message
/// (bit 63) tags; includes the source rank so (worker, tag) matching
/// behaves like MPI's (source, tag).
fn mpi_tag(src_rank: usize, tag: u64) -> Tag {
    debug_assert!(tag < (1 << 20), "MPI tag too large");
    Tag((1u64 << 62) | ((src_rank as u64) << 20) | tag)
}

/// Build `n` ranks (round-robin `ranks_per_pe` per PE; 1 = classic MPI,
/// more than one = AMPI-style virtualization) from a factory that
/// receives `(rank, mpi_state)`.
pub fn create_ranks<F, R>(
    sim: &mut Simulation,
    n: usize,
    ranks_per_pe: usize,
    req_entry: EntryId,
    mut factory: F,
) -> Vec<ChareId>
where
    F: FnMut(usize, Mpi) -> R,
    R: Chare,
{
    assert!(ranks_per_pe >= 1);
    let pes = sim.machine.pes.len();
    assert!(
        n <= pes * ranks_per_pe,
        "{n} ranks need more than {pes} PEs x {ranks_per_pe}"
    );
    // Reserve ids first so every rank knows the full mapping.
    let base = sim.machine.chare_count();
    let ids: Arc<Vec<ChareId>> = Arc::new((0..n).map(|i| ChareId(base + i)).collect());
    let mut out = Vec::with_capacity(n);
    for rank in 0..n {
        let pe = rank / ranks_per_pe;
        let mpi = Mpi::new(rank, ids.clone(), req_entry);
        let id = sim.machine.create_chare(pe, Box::new(factory(rank, mpi)));
        assert_eq!(id, ids[rank], "chare ids must match reservation");
        out.push(id);
    }
    out
}

/// Convenience: start every rank by injecting `entry` at time zero.
pub fn start_all(sim: &mut Simulation, ranks: &[ChareId], entry: EntryId) {
    let Simulation { sim, machine, .. } = sim;
    for &r in ranks {
        machine.inject(sim, r, Envelope::empty(entry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaat_rt::{MachineConfig, Space};
    use gaat_sim::RunOutcome;

    const E_START: EntryId = EntryId(0);
    const E_REQ: EntryId = EntryId(1);
    const E_DONE: EntryId = EntryId(2);

    /// Rank program: exchange a buffer with the partner rank and record
    /// completion time.
    struct Exchange {
        mpi: Mpi,
        sbuf: Option<MemLoc>,
        rbuf: Option<MemLoc>,
        finished_at: Option<gaat_sim::SimTime>,
    }

    impl Chare for Exchange {
        fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
            match env.entry {
                E_START => {
                    let partner = self.mpi.size - 1 - self.mpi.rank;
                    let (s, r) = (self.sbuf.expect("setup"), self.rbuf.expect("setup"));
                    self.mpi.irecv(ctx, partner, 0, r);
                    self.mpi.isend(ctx, partner, 0, s);
                    self.mpi.wait_all(ctx, E_DONE, 0);
                }
                E_REQ => self.mpi.on_request_done(ctx, env),
                E_DONE => self.finished_at = Some(ctx.start_time()),
                other => panic!("unexpected entry {other:?}"),
            }
        }
    }

    fn build_exchange(nodes: usize, pes: usize, ranks_per_pe: usize) -> (Simulation, Vec<ChareId>) {
        let mut sim = Simulation::new(MachineConfig::validation(nodes, pes));
        let n = nodes * pes * ranks_per_pe;
        let ranks = create_ranks(&mut sim, n, ranks_per_pe, E_REQ, |_r, mpi| Exchange {
            mpi,
            sbuf: None,
            rbuf: None,
            finished_at: None,
        });
        // Allocate buffers and poke them into the rank chares.
        for (i, &id) in ranks.iter().enumerate() {
            let pe = sim.machine.pe_of(id);
            let dev = sim.machine.pe_device(pe);
            let sbuf = sim.machine.devices[dev.0].mem.alloc_real(Space::Host, 128);
            let rbuf = sim.machine.devices[dev.0].mem.alloc_real(Space::Host, 128);
            sim.machine.devices[dev.0]
                .mem
                .write(gaat_rt::BufRange::whole(sbuf, 1), &[i as f64 + 1.0]);
            let loc = |b| MemLoc {
                device: dev,
                range: gaat_rt::BufRange::whole(b, 128),
            };
            // Direct state surgery during setup (chares are not running).
            let any: &mut dyn std::any::Any = sim.machine.chare_for_setup(id);
            let ex = any.downcast_mut::<Exchange>().expect("type");
            ex.sbuf = Some(loc(sbuf));
            ex.rbuf = Some(loc(rbuf));
        }
        (sim, ranks)
    }

    #[test]
    fn pairwise_exchange_completes() {
        let (mut sim, ranks) = build_exchange(2, 1, 1);
        start_all(&mut sim, &ranks, E_START);
        assert_eq!(sim.run(), RunOutcome::Drained);
        for &r in &ranks {
            let ex = sim.machine.chare_as::<Exchange>(r);
            assert!(ex.finished_at.is_some(), "rank did not finish");
            assert_eq!(ex.mpi.pending(), 0);
        }
        // Data actually moved: rank 0's recv buffer holds rank 1's value.
        let pe0_dev = 0;
        let got = sim.machine.devices[pe0_dev]
            .mem
            .read(gaat_rt::BufRange::new(gaat_rt::BufferId(1), 0, 1))
            .expect("real");
        assert_eq!(got[0], 2.0);
    }

    #[test]
    fn ampi_virtualization_two_ranks_per_pe() {
        let (mut sim, ranks) = build_exchange(1, 2, 2);
        assert_eq!(ranks.len(), 4);
        // Ranks 0,1 on PE0; 2,3 on PE1.
        assert_eq!(sim.machine.pe_of(ranks[0]), 0);
        assert_eq!(sim.machine.pe_of(ranks[1]), 0);
        assert_eq!(sim.machine.pe_of(ranks[3]), 1);
        start_all(&mut sim, &ranks, E_START);
        assert_eq!(sim.run(), RunOutcome::Drained);
        for &r in &ranks {
            assert!(sim.machine.chare_as::<Exchange>(r).finished_at.is_some());
        }
    }

    #[test]
    fn waitall_with_nothing_outstanding_resumes() {
        struct Trivial {
            mpi: Mpi,
            done: bool,
        }
        impl Chare for Trivial {
            fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
                match env.entry {
                    E_START => self.mpi.wait_all(ctx, E_DONE, 0),
                    E_REQ => self.mpi.on_request_done(ctx, env),
                    E_DONE => self.done = true,
                    _ => unreachable!(),
                }
            }
        }
        let mut sim = Simulation::new(MachineConfig::validation(1, 1));
        let ranks = create_ranks(&mut sim, 1, 1, E_REQ, |_r, mpi| Trivial {
            mpi,
            done: false,
        });
        start_all(&mut sim, &ranks, E_START);
        sim.run();
        assert!(sim.machine.chare_as::<Trivial>(ranks[0]).done);
    }

    #[test]
    fn requests_reset_between_phases() {
        // Two sequential exchanges through the same Mpi state must not
        // leak requests between wait_all phases.
        struct TwoPhase {
            mpi: Mpi,
            sbuf: Option<MemLoc>,
            rbuf: Option<MemLoc>,
            phase: u32,
        }
        impl Chare for TwoPhase {
            fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
                match env.entry {
                    E_START | E_DONE => {
                        if env.entry == E_DONE {
                            self.phase += 1;
                        }
                        if self.phase < 2 {
                            let partner = 1 - self.mpi.rank;
                            self.mpi
                                .irecv(ctx, partner, self.phase as u64, self.rbuf.expect("b"));
                            self.mpi
                                .isend(ctx, partner, self.phase as u64, self.sbuf.expect("b"));
                            self.mpi.wait_all(ctx, E_DONE, self.phase as u64);
                        }
                    }
                    E_REQ => self.mpi.on_request_done(ctx, env),
                    _ => unreachable!(),
                }
            }
        }
        let mut sim = Simulation::new(MachineConfig::validation(2, 1));
        let ranks = create_ranks(&mut sim, 2, 1, E_REQ, |_r, mpi| TwoPhase {
            mpi,
            sbuf: None,
            rbuf: None,
            phase: 0,
        });
        for &id in &ranks {
            let pe = sim.machine.pe_of(id);
            let dev = sim.machine.pe_device(pe);
            let sbuf = sim.machine.devices[dev.0].mem.alloc_real(Space::Host, 8);
            let rbuf = sim.machine.devices[dev.0].mem.alloc_real(Space::Host, 8);
            let any: &mut dyn std::any::Any = sim.machine.chare_for_setup(id);
            let tp = any.downcast_mut::<TwoPhase>().expect("type");
            tp.sbuf = Some(MemLoc {
                device: dev,
                range: gaat_rt::BufRange::whole(sbuf, 8),
            });
            tp.rbuf = Some(MemLoc {
                device: dev,
                range: gaat_rt::BufRange::whole(rbuf, 8),
            });
        }
        start_all(&mut sim, &ranks, E_START);
        assert_eq!(sim.run(), RunOutcome::Drained);
        for &r in &ranks {
            let tp = sim.machine.chare_as::<TwoPhase>(r);
            assert_eq!(tp.phase, 2);
            assert_eq!(tp.mpi.pending(), 0);
        }
    }
}
