//! Offline fault-injection smoke gate for `scripts/ci.sh`.
//!
//! Two checks, both sub-second:
//!
//! 1. **Deterministic replay diff** — the same lossy fault seed run
//!    twice in-process must produce bit-identical fingerprints (virtual
//!    time, field checksum, entry count, and every fault counter).
//! 2. **Convergence under loss** — with ~1% of inter-node messages
//!    dropped and the reliable transport on, Jacobi3D must still match
//!    the sequential reference solver bit for bit, and the run must
//!    actually have exercised the machinery (drops > 0, retransmits > 0,
//!    no peer falsely declared dead, no leaked protocol state).
//!
//! Exits nonzero on any mismatch. Usage: `fault_smoke [--sweep]`.
//!
//! `--sweep` additionally prints the fault-sweep ablation grid
//! (drop-rate x retry-on/off x ODF) recorded in EXPERIMENTS.md: time per
//! iteration and retransmit counts with retries on, and the number of
//! stalled blocks with retries off.

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat_rt::{MachineConfig, Simulation};
use gaat_sim::FaultPlan;

#[derive(Debug, PartialEq)]
struct Fingerprint {
    total_ns: u64,
    checksum: Option<f64>,
    entries: u64,
    drops: u64,
    corrupts: u64,
    retransmits: u64,
    timeouts: u64,
    duplicates: u64,
    acks_sent: u64,
}

fn lossy_cfg() -> JacobiConfig {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 1302,
        drop_prob: 0.01,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;
    let mut cfg = JacobiConfig::new(machine, Dims::cube(8));
    cfg.comm = CommMode::HostStaging;
    cfg.iters = 12;
    cfg.warmup = 2;
    cfg.odf = 2;
    cfg
}

fn run_once() -> (Fingerprint, usize) {
    let (mut sim, ids, sh) = charm::build(lossy_cfg());
    let r = charm::run(&mut sim, &ids, &sh);
    let ucx = sim.machine.ucx.stats();
    let net = sim.machine.fabric.stats();
    assert_eq!(sim.machine.ucx.in_flight(), 0, "transfers leak");
    assert_eq!(sim.machine.ucx.stashed(), 0, "tokens/timers leak");
    let blocks = charm::validate_against_reference(&sim, &ids, &sh);
    (
        Fingerprint {
            total_ns: r.total.as_ns(),
            checksum: r.checksum,
            entries: r.entries,
            drops: net.drops,
            corrupts: net.corrupts,
            retransmits: ucx.retransmits,
            timeouts: ucx.timeouts,
            duplicates: ucx.duplicates,
            acks_sent: ucx.acks_sent,
        },
        blocks,
    )
}

fn sweep_cfg(drop_prob: f64, retries: bool, odf: usize) -> JacobiConfig {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 42,
        drop_prob,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = retries;
    let mut cfg = JacobiConfig::new(machine, Dims::cube(8));
    cfg.comm = CommMode::HostStaging;
    cfg.iters = 8;
    cfg.warmup = 2;
    cfg.odf = odf;
    cfg
}

/// The fault-sweep ablation: how loss prices into iteration time with
/// the retry layer on, and how many blocks stall without it.
fn sweep() {
    println!("\nfault sweep (HostStaging, 2x2 validation machine, 8 iters):");
    println!(
        "{:>6} {:>4} {:>9} | {:>12} {:>11} {:>10}",
        "drop", "odf", "retries", "us/iter", "retransmits", "stalled"
    );
    for &drop in &[0.0, 0.01, 0.05, 0.10] {
        for &odf in &[1usize, 2, 4] {
            for &retries in &[true, false] {
                if !retries && drop == 0.0 {
                    continue; // identical to retries-on at zero loss
                }
                let (mut sim, ids, sh) = charm::build(sweep_cfg(drop, retries, odf));
                let (time_us, stalled) = if retries {
                    let r = charm::run(&mut sim, &ids, &sh);
                    (r.time_per_iter.as_micros_f64(), 0)
                } else {
                    // Without retries loss stalls blocks; run the raw
                    // event loop to drain and count the casualties.
                    {
                        let Simulation { sim, machine, .. } = &mut sim;
                        machine.broadcast(sim, &ids, charm::E_START, 0);
                    }
                    sim.run();
                    let stalled = ids
                        .iter()
                        .filter(|&&id| {
                            sim.machine
                                .chare_as::<charm::BlockChare>(id)
                                .done_at
                                .is_none()
                        })
                        .count();
                    (f64::NAN, stalled)
                };
                let st = sim.machine.ucx.stats();
                println!(
                    "{:>6.2} {:>4} {:>9} | {:>12.1} {:>11} {:>10}",
                    drop,
                    odf,
                    if retries { "on" } else { "off" },
                    time_us,
                    st.retransmits,
                    stalled
                );
            }
        }
    }
}

fn main() {
    let (a, blocks) = run_once();
    println!("fault smoke: {blocks} blocks bit-identical to the reference under 1% drop");
    println!("  {a:?}");
    assert!(a.drops > 0, "the 1% plan must actually drop something");
    assert!(a.retransmits > 0, "drops must be recovered by retransmit");

    let (b, _) = run_once();
    assert_eq!(a, b, "same fault seed must replay bit-identically");
    println!("fault smoke: replay diff clean (two runs, identical fingerprints)");

    if std::env::args().any(|a| a == "--sweep") {
        sweep();
    }
}
