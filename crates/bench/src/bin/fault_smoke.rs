//! Offline fault-injection smoke gate for `scripts/ci.sh`.
//!
//! Two checks, both sub-second:
//!
//! 1. **Deterministic replay diff** — the same lossy fault seed run
//!    twice in-process must produce bit-identical fingerprints (virtual
//!    time, field checksum, entry count, and every fault counter).
//! 2. **Convergence under loss** — with ~1% of inter-node messages
//!    dropped and the reliable transport on, Jacobi3D must still match
//!    the sequential reference solver bit for bit, and the run must
//!    actually have exercised the machinery (drops > 0, retransmits > 0,
//!    no peer falsely declared dead, no leaked protocol state).
//!
//! Exits nonzero on any mismatch. Usage: `fault_smoke [--sweep]`.
//!
//! `--sweep` additionally prints the fault-sweep ablation grid
//! (drop-rate x retry-on/off x ODF) recorded in EXPERIMENTS.md: time per
//! iteration and retransmit counts with retries on, and the number of
//! stalled blocks with retries off.

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat_rt::{LbPolicy, MachineConfig};
use gaat_sim::{FaultPlan, SimDuration};
use gaat_sweep::{run_sweep, ScenarioGrid, SweepOptions, Workload};

#[derive(Debug, PartialEq)]
struct Fingerprint {
    total_ns: u64,
    checksum: Option<f64>,
    entries: u64,
    drops: u64,
    corrupts: u64,
    retransmits: u64,
    timeouts: u64,
    duplicates: u64,
    acks_sent: u64,
}

fn lossy_cfg() -> JacobiConfig {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 1302,
        drop_prob: 0.01,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;
    let mut cfg = JacobiConfig::new(machine, Dims::cube(8));
    cfg.comm = CommMode::HostStaging;
    cfg.iters = 12;
    cfg.warmup = 2;
    cfg.odf = 2;
    cfg
}

fn run_once() -> (Fingerprint, usize) {
    let (mut sim, ids, sh) = charm::build(lossy_cfg());
    let r = charm::run(&mut sim, &ids, &sh);
    let ucx = sim.machine.ucx.stats();
    let net = sim.machine.fabric.stats();
    assert_eq!(sim.machine.ucx.in_flight(), 0, "transfers leak");
    assert_eq!(sim.machine.ucx.stashed(), 0, "tokens/timers leak");
    let blocks = charm::validate_against_reference(&sim, &ids, &sh);
    (
        Fingerprint {
            total_ns: r.total.as_ns(),
            checksum: r.checksum,
            entries: r.entries,
            drops: net.drops,
            corrupts: net.corrupts,
            retransmits: ucx.retransmits,
            timeouts: ucx.timeouts,
            duplicates: ucx.duplicates,
            acks_sent: ucx.acks_sent,
        },
        blocks,
    )
}

/// The fault-sweep ablation: how loss prices into iteration time with
/// the retry layer on, and how many blocks stall without it. Runs as a
/// `gaat-sweep` grid drained by the worker pool; per-scenario outcomes
/// are worker-count-independent, so the table is stable however the
/// queue is drained.
fn sweep() {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 42,
        drop_prob: 0.0,
        ..FaultPlan::none()
    };
    // A non-zero template period arms the balancer for the non-Off
    // policies on the `lb_policies` axis below.
    machine.lb.period = SimDuration::from_us(100);
    let mut grid = ScenarioGrid::new(machine);
    grid.workloads.push(Workload::Jacobi {
        global: Dims::cube(8),
        iters: 8,
        warmup: 2,
        comm: CommMode::HostStaging,
    });
    grid.odfs = vec![1, 2, 4];
    grid.drop_rates = vec![0.0, 0.01, 0.05, 0.10];
    grid.retries = vec![true, false];
    grid.lb_policies = vec![LbPolicy::Off, LbPolicy::Greedy, LbPolicy::Adaptive];
    // Retries-off at zero loss is identical to retries-on; skip it.
    // The balancer migrates over the reliable transport (`arm_lb`
    // asserts), so non-Off policies only run with retries on.
    grid.filter = Some(|sc| sc.retries || (sc.drop_rate != 0.0 && sc.lb_policy == LbPolicy::Off));
    let scenarios = grid.expand();
    let report = run_sweep(&scenarios, &SweepOptions::new()).expect("no sweep I/O configured");

    println!("\nfault sweep (HostStaging, 2x2 validation machine, 8 iters):");
    println!(
        "{:>6} {:>4} {:>9} {:>9} | {:>12} {:>11} {:>10}",
        "drop", "odf", "retries", "lb", "us/iter", "retransmits", "stalled"
    );
    // Grid nesting is odf-outer; the table reads best drop-outer.
    let mut order: Vec<usize> = (0..scenarios.len()).collect();
    order.sort_by(|&a, &b| {
        let (x, y) = (&scenarios[a], &scenarios[b]);
        x.drop_rate
            .partial_cmp(&y.drop_rate)
            .expect("finite drop rates")
            .then(x.odf.cmp(&y.odf))
            .then(y.retries.cmp(&x.retries))
    });
    for i in order {
        let sc = &scenarios[i];
        let rec = &report.records[i];
        let time_us = if rec.ok {
            rec.unit_ns as f64 / 1e3
        } else {
            f64::NAN
        };
        let lb = match sc.lb_policy {
            LbPolicy::Off => "off",
            LbPolicy::Greedy => "greedy",
            LbPolicy::Adaptive => "adaptive",
        };
        println!(
            "{:>6.2} {:>4} {:>9} {:>9} | {:>12.1} {:>11} {:>10}",
            sc.drop_rate,
            sc.odf,
            if sc.retries { "on" } else { "off" },
            lb,
            time_us,
            rec.ucx_retransmits,
            rec.stalled
        );
    }
}

fn main() {
    let (a, blocks) = run_once();
    println!("fault smoke: {blocks} blocks bit-identical to the reference under 1% drop");
    println!("  {a:?}");
    assert!(a.drops > 0, "the 1% plan must actually drop something");
    assert!(a.retransmits > 0, "drops must be recovered by retransmit");

    let (b, _) = run_once();
    assert_eq!(a, b, "same fault seed must replay bit-identically");
    println!("fault smoke: replay diff clean (two runs, identical fingerprints)");

    if std::env::args().any(|a| a == "--sweep") {
        sweep();
    }
}
