//! Sweep-engine benchmark: batch throughput, the world-reuse overhead
//! ablation, and the prefix-fork ablation, written to
//! `BENCH_sweep.json`.
//!
//! Four parts:
//!
//! - A sanity pin (exit code 1 on failure): a mixed grid swept at
//!   workers 1, 2, and 4 must produce identical per-scenario
//!   fingerprints, and those must match standalone one-off runs.
//! - `sweep`: scenarios/sec draining a Jacobi3D grid with world reuse
//!   on, plus the per-scenario wall/setup breakdown.
//! - `reuse_overhead`: the same grid with reuse off (a fresh engine
//!   allocation per scenario) vs on; reuse must cut mean per-scenario
//!   setup overhead by >= 25%. A miss is *flagged instead of failed*
//!   when the ThrottleGuard suspects host thermal throttling, since the
//!   comparison is then biased.
//! - `fork`: a fault-sweep-shaped grid (drop rate × onset axes that
//!   diverge late in the timeline) swept fork-off vs fork-on. The
//!   fingerprints must be identical (exit code 1 on mismatch — the
//!   fork cell's CI pin); throughput must be >= 2x (throttle-flagged,
//!   not failed, like the reuse cell).
//!
//! Usage: `sweep_speed [--smoke] [--out PATH]`

use gaat_jacobi3d::{CommMode, Dims, Placement};
use gaat_rt::MachineConfig;
use gaat_sim::{FaultPlan, SimDuration, SimTime};
use gaat_sweep::{run_standalone, run_sweep, ScenarioGrid, SweepOptions, SweepReport, Workload};

fn base_machine() -> MachineConfig {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 42,
        drop_prob: 0.0,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;
    machine
}

/// The throughput grid: Jacobi3D over seeds × ODF × placement × loss.
fn throughput_grid(smoke: bool) -> ScenarioGrid {
    let mut grid = ScenarioGrid::new(base_machine());
    grid.workloads.push(Workload::Jacobi {
        global: Dims::cube(8),
        iters: 4,
        warmup: 1,
        comm: CommMode::HostStaging,
    });
    grid.seeds = (1..=if smoke { 8 } else { 128 }).collect();
    grid.odfs = vec![1, 2];
    grid.placements = vec![Placement::Packed, Placement::RoundRobin];
    grid.drop_rates = vec![0.0, 0.05];
    grid
}

/// Fingerprint agreement: workers {1, 2, 4} against each other, then
/// against standalone runs of every scenario. The full (non-smoke) run
/// does this on a >1000-scenario grid including a stalling retries-off
/// arm; smoke shrinks the seed axis.
fn sanity_pin(smoke: bool) -> (bool, bool, usize) {
    let mut grid = throughput_grid(smoke);
    if smoke {
        grid.seeds = vec![1, 2];
    }
    grid.retries = vec![true, false];
    grid.filter = Some(|sc| sc.retries || sc.drop_rate > 0.0);
    let scenarios = grid.expand();

    let mut opts = SweepOptions::new();
    let mut prints = Vec::new();
    for workers in [1, 2, 4] {
        opts.workers = workers;
        match run_sweep(&scenarios, &opts) {
            Ok(r) => prints.push(r.fingerprints()),
            Err(_) => return (false, false, scenarios.len()),
        }
    }
    let workers_match = prints[1] == prints[0] && prints[2] == prints[0];
    let standalone_match = scenarios
        .iter()
        .zip(&prints[0])
        .all(|(sc, fp)| run_standalone(sc).fingerprint() == *fp);
    (workers_match, standalone_match, scenarios.len())
}

/// The fork ablation grid: scenarios within a machine seed differ only
/// in drop rate and fault onset, with onsets deep into the ~1.39 ms
/// timeline (83%+ shared prefix), so one executed prefix serves eight
/// branches. This is the fault-sweep shape the tentpole targets.
fn fork_grid(smoke: bool) -> ScenarioGrid {
    let t = |us: u64| SimTime::ZERO + SimDuration::from_us(us);
    let mut grid = ScenarioGrid::new(base_machine());
    grid.workloads.push(Workload::Jacobi {
        global: Dims::cube(8),
        iters: 8,
        warmup: 1,
        comm: CommMode::HostStaging,
    });
    grid.seeds = (1..=if smoke { 2 } else { 8 }).collect();
    grid.odfs = vec![2];
    grid.drop_rates = vec![0.0, 0.02, 0.05, 0.10];
    grid.fault_onsets = vec![t(1150), t(1300)];
    grid
}

struct ForkCell {
    scenarios: usize,
    groups: usize,
    snapshots: usize,
    forked: usize,
    declined: usize,
    snapshot_ns: u64,
    restore_ns: u64,
    nofork_per_sec: f64,
    fork_per_sec: f64,
    speedup: f64,
    fingerprints_match: bool,
}

/// Sweep the fork grid with prefix memoization off, then on, comparing
/// fingerprints and throughput.
fn fork_ablation(smoke: bool) -> ForkCell {
    let scenarios = fork_grid(smoke).expand();
    let mut opts = SweepOptions::new();
    opts.fork = false;
    let nofork = run_sweep(&scenarios, &opts).expect("no sweep I/O configured");
    opts.fork = true;
    let fork = run_sweep(&scenarios, &opts).expect("no sweep I/O configured");
    let nofork_per_sec = scenarios.len() as f64 / nofork.wall.as_secs_f64();
    let fork_per_sec = scenarios.len() as f64 / fork.wall.as_secs_f64();
    ForkCell {
        scenarios: scenarios.len(),
        groups: fork.fork.groups,
        snapshots: fork.fork.snapshots_taken,
        forked: fork.fork.scenarios_forked,
        declined: fork.fork.declined,
        snapshot_ns: fork.fork.snapshot_ns / fork.fork.snapshots_taken.max(1) as u64,
        restore_ns: fork.fork.restore_ns / fork.fork.scenarios_forked.max(1) as u64,
        nofork_per_sec,
        fork_per_sec,
        speedup: fork_per_sec / nofork_per_sec,
        fingerprints_match: fork.fingerprints() == nofork.fingerprints(),
    }
}

struct SweepNumbers {
    scenarios: usize,
    workers: usize,
    wall_s: f64,
    per_sec: f64,
    mean_wall_ns: f64,
    mean_setup_ns: f64,
    reused: u64,
}

fn numbers(report: &SweepReport) -> SweepNumbers {
    let n = report.records.len();
    SweepNumbers {
        scenarios: n,
        workers: report.workers,
        wall_s: report.wall.as_secs_f64(),
        per_sec: n as f64 / report.wall.as_secs_f64(),
        mean_wall_ns: report.records.iter().map(|r| r.wall_ns as f64).sum::<f64>() / n as f64,
        mean_setup_ns: report
            .records
            .iter()
            .map(|r| r.setup_ns as f64)
            .sum::<f64>()
            / n as f64,
        reused: report.slots.reused,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let mut guard = gaat_bench::throttle::ThrottleGuard::open(if smoke { 2 } else { 5 });

    let (pin_workers, pin_standalone, pin_scenarios) = sanity_pin(smoke);
    let pin_pass = pin_workers && pin_standalone;

    let scenarios = throughput_grid(smoke).expand();
    let mut opts = SweepOptions::new();
    let reuse = numbers(&run_sweep(&scenarios, &opts).expect("no sweep I/O configured"));
    opts.reuse_worlds = false;
    let fresh = numbers(&run_sweep(&scenarios, &opts).expect("no sweep I/O configured"));
    let fork = fork_ablation(smoke);
    guard.close();

    // How much of the per-scenario setup cost (engine allocation +
    // machine + application construction) world reuse removes.
    let reduction = 1.0 - reuse.mean_setup_ns / fresh.mean_setup_ns;
    let target = 0.25;
    let reuse_pass = reduction >= target;
    let flagged = !reuse_pass && guard.throttle_suspected();

    let fork_target = 2.0;
    let fork_speed_pass = fork.speedup >= fork_target;
    let fork_flagged = !fork_speed_pass && guard.throttle_suspected();
    let fork_pass = fork.fingerprints_match && fork_speed_pass;

    let mut obj = String::new();
    obj.push_str("{\n");
    obj.push_str(&format!("  \"smoke\": {smoke},\n"));
    obj.push_str(&format!(
        "  \"sanity_pin\": {{\"scenarios\": {pin_scenarios}, \"workers_match\": {pin_workers}, \"standalone_match\": {pin_standalone}, \"pass\": {pin_pass}}},\n"
    ));
    obj.push_str(&format!(
        "  \"sweep\": {{\"scenarios\": {}, \"workers\": {}, \"wall_s\": {:.6}, \"scenarios_per_sec\": {:.1}, \"mean_wall_ns\": {:.0}, \"mean_setup_ns\": {:.0}, \"worlds_reused\": {}}},\n",
        reuse.scenarios,
        reuse.workers,
        reuse.wall_s,
        reuse.per_sec,
        reuse.mean_wall_ns,
        reuse.mean_setup_ns,
        reuse.reused
    ));
    obj.push_str(&format!(
        "  \"reuse_overhead\": {{\"fresh_setup_ns\": {:.0}, \"reuse_setup_ns\": {:.0}, \"fresh_scenarios_per_sec\": {:.1}, \"reduction\": {:.3}, \"target\": {target}, \"pass\": {reuse_pass}, \"flagged\": {flagged}}},\n",
        fresh.mean_setup_ns, reuse.mean_setup_ns, fresh.per_sec, reduction
    ));
    obj.push_str(&format!(
        "  \"fork\": {{\"scenarios\": {}, \"groups\": {}, \"snapshots\": {}, \"forked\": {}, \"declined\": {}, \"snapshot_ns\": {}, \"restore_ns\": {}, \"nofork_scenarios_per_sec\": {:.1}, \"fork_scenarios_per_sec\": {:.1}, \"speedup\": {:.2}, \"fingerprints_match\": {}, \"target\": {fork_target}, \"pass\": {fork_pass}, \"flagged\": {fork_flagged}}},\n",
        fork.scenarios,
        fork.groups,
        fork.snapshots,
        fork.forked,
        fork.declined,
        fork.snapshot_ns,
        fork.restore_ns,
        fork.nofork_per_sec,
        fork.fork_per_sec,
        fork.speedup,
        fork.fingerprints_match,
    ));
    obj.push_str(&format!(
        "  \"steady_state\": {}\n}}\n",
        guard.json_object()
    ));

    println!(
        "sanity_pin     {} scenarios: workers {} standalone {}  {}",
        pin_scenarios,
        pin_workers,
        pin_standalone,
        if pin_pass { "OK" } else { "FAIL" }
    );
    println!(
        "sweep          {} scenarios on {} workers in {:.2}s  ({:.0} scenarios/sec, {} worlds recycled)",
        reuse.scenarios, reuse.workers, reuse.wall_s, reuse.per_sec, reuse.reused
    );
    println!(
        "setup          fresh {:.1} us/scenario  reuse {:.1} us/scenario  reduction {:.0}%  {}",
        fresh.mean_setup_ns / 1e3,
        reuse.mean_setup_ns / 1e3,
        reduction * 100.0,
        if reuse_pass {
            "OK"
        } else if flagged {
            "FLAGGED (throttle suspected)"
        } else {
            "FAIL"
        }
    );
    println!(
        "fork           {} scenarios, {} groups: {:.0} -> {:.0} scenarios/sec ({:.2}x, fingerprints {})  {}",
        fork.scenarios,
        fork.groups,
        fork.nofork_per_sec,
        fork.fork_per_sec,
        fork.speedup,
        if fork.fingerprints_match {
            "match"
        } else {
            "DIFFER"
        },
        if fork_pass {
            "OK"
        } else if fork_flagged {
            "FLAGGED (throttle suspected)"
        } else {
            "FAIL"
        }
    );
    println!(
        "steady-state drift {:.3}x{}",
        guard.slowdown_ratio(),
        if guard.throttle_suspected() {
            "  ** thermal throttle suspected — numbers are biased **"
        } else {
            ""
        }
    );
    std::fs::write(&out, obj).expect("write BENCH_sweep.json");
    println!("wrote {out}");
    if !pin_pass {
        eprintln!("sanity pin failed: sweep outcomes depend on worker count or differ from standalone runs");
        std::process::exit(1);
    }
    if !reuse_pass && !flagged {
        eprintln!(
            "reuse overhead check failed: {:.0}% reduction < {:.0}% target",
            reduction * 100.0,
            target * 100.0
        );
        std::process::exit(1);
    }
    // Fingerprint equality is a correctness pin, never throttle-excused;
    // the throughput half of the fork cell follows the reuse cell's
    // flagged-not-failed rule.
    if !fork.fingerprints_match {
        eprintln!("fork cell failed: forked sweep fingerprints differ from the unforked sweep");
        std::process::exit(1);
    }
    if !fork_speed_pass && !fork_flagged {
        eprintln!(
            "fork speedup check failed: {:.2}x < {fork_target:.1}x target",
            fork.speedup
        );
        std::process::exit(1);
    }
}
