//! Interconnect-model benchmark, tracked from PR 2 onward.
//!
//! Three parts, written to `BENCH_net.json`:
//!
//! - `flow_churn`: raw max-min-fair flow-simulation throughput (rate
//!   recomputations and flow-rate updates per second) under synthetic
//!   fat-tree traffic at a fixed concurrency — the perf baseline for
//!   future topology changes. Since the incremental solver landed this
//!   also reports the solver counters (dirty-component histogram,
//!   touched flows per recompute, rate updates avoided) and the tracked
//!   speedup over the recorded from-scratch baseline.
//! - A congestion ablation: the same Jacobi3D problem under `Flat` vs
//!   `FatTree` and `Packed` vs `RoundRobin` placement, recording run
//!   time and the hot-link counters that only the topology model can
//!   see.
//! - A sanity pin (exit code 1 on failure): a single unloaded same-leaf
//!   message under `FatTree` must agree with `Flat` within 1%, so the
//!   topology model stays calibrated to the alpha-beta constants.
//!
//! Usage: `net_speed [--smoke] [--out PATH]`

use std::time::Instant;

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig, Placement};
use gaat_net::{send, Fabric, NetHost, NetMsg, NetParams, NodeId, TopologyKind, TrafficClass};
use gaat_rt::MachineConfig;
use gaat_sim::{Sim, SimDuration, SimRng, SimTime};
use gaat_topo::{FatTreeGraph, FatTreeParams, FlowSim, SolverStats};

/// `flow_churn` rate-updates/s recorded in the committed BENCH_net.json
/// immediately before the incremental solver landed (PR 2's from-scratch
/// progressive water-filling on the identical workload). The tracked
/// speedup is rate-updates/s over this number.
const BASELINE_RATE_UPDATES_PER_SEC: f64 = 10_066_247.0;

/// Flow-simulation throughput: deterministic synthetic traffic over a
/// fat-tree link graph held at a target concurrency.
struct FlowChurnResult {
    flows: u64,
    /// Per-flow rate assignments the caller would observe (live flows at
    /// each admit/settle point) — the same accounting the from-scratch
    /// baseline used, so the speedup is apples to apples.
    rate_updates: u64,
    wall_s: f64,
    solver: SolverStats,
}

fn flow_churn(flows_total: u64, concurrency: usize, seed: u64) -> FlowChurnResult {
    let nodes = 72; // 4 leaves under the default radix
    let params = NetParams::default();
    let graph = FatTreeGraph::new(
        nodes,
        params.intra_bw,
        params.inter_bw,
        FatTreeParams::default(),
    );
    let mut flows = FlowSim::new(graph.links().to_vec());
    let mut rng = SimRng::new(seed);
    let mut route = Vec::new();
    let mut done = Vec::new();
    let mut started = 0u64;
    let mut rate_updates = 0u64;
    let mut now = SimTime::ZERO;

    let start = Instant::now();
    while started < flows_total || flows.active_flows() > 0 {
        // Keep the live population topped up to `concurrency`.
        while started < flows_total && flows.active_flows() < concurrency {
            let src = rng.below(nodes as u64) as usize;
            let dst = rng.below(nodes as u64) as usize;
            graph.route(src, dst, &mut route);
            let bytes = 1_000.0 + rng.below(4_000_000) as f64;
            flows.start(now, &route, bytes, started);
            started += 1;
            rate_updates += flows.active_flows() as u64;
        }
        let Some(wake) = flows.next_wakeup() else {
            break;
        };
        now = now.max(wake);
        done.clear();
        flows.advance(now, &mut done);
        rate_updates += flows.active_flows() as u64;
    }
    FlowChurnResult {
        flows: started,
        rate_updates,
        wall_s: start.elapsed().as_secs_f64(),
        solver: flows.solver_stats(),
    }
}

/// One congestion-ablation cell: a Jacobi3D run with its network
/// counters.
struct AblationResult {
    topology: &'static str,
    placement: &'static str,
    total_ns: u64,
    inter_bytes: u64,
    peak_link_flows: u32,
    max_link_utilization: f64,
    hottest_link: Option<u32>,
    wall_s: f64,
}

fn ablation_cell(topology: &'static str, placement: Placement, smoke: bool) -> AblationResult {
    let mut machine = if topology == "fattree" {
        MachineConfig::summit_fattree(4)
    } else {
        MachineConfig::summit(4)
    };
    machine.net.jitter = 0.0; // comparable cells
    let mut cfg = JacobiConfig::new(machine, Dims::cube(if smoke { 96 } else { 192 }));
    cfg.comm = CommMode::GpuAware;
    cfg.odf = 2;
    cfg.placement = placement;
    cfg.iters = if smoke { 4 } else { 16 };
    cfg.warmup = 1;
    let (mut sim, ids, sh) = charm::build(cfg);
    let start = Instant::now();
    let result = charm::run(&mut sim, &ids, &sh);
    let wall_s = start.elapsed().as_secs_f64();
    let stats = sim.machine.fabric.stats();
    AblationResult {
        topology,
        placement: match placement {
            Placement::Packed => "packed",
            Placement::RoundRobin => "round_robin",
        },
        total_ns: result.total.as_ns(),
        inter_bytes: stats.inter_bytes,
        peak_link_flows: stats.peak_link_flows,
        max_link_utilization: stats.max_link_utilization,
        hottest_link: stats.hottest_link.map(|l| l.0),
        wall_s,
    }
}

/// Sanity pin: one unloaded same-leaf message must cost the same (within
/// 1%) under both topology models.
struct SanityPin {
    flat_ns: u64,
    fattree_ns: u64,
    rel_err: f64,
    pass: bool,
}

struct PinWorld {
    fabric: Fabric,
    delivered: Option<SimTime>,
}
impl NetHost for PinWorld {
    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }
    fn on_net_deliver(&mut self, sim: &mut Sim<Self>, _msg: NetMsg) {
        self.delivered = Some(sim.now());
    }
}

fn sanity_pin() -> SanityPin {
    let bytes = 4u64 << 20; // large enough that a switch hop is < 1%
    let msg = NetMsg {
        src: NodeId(0),
        dst: NodeId(1),
        bytes,
        extra_latency: SimDuration::ZERO,
        token: 1,
        class: TrafficClass::Data,
        attempt: 0,
    };
    let mut params = NetParams {
        jitter: 0.0,
        ..NetParams::default()
    };

    let mut flat = Fabric::new(2, params.clone(), SimRng::new(1));
    let flat_ns = flat.commit(SimTime::ZERO, &msg).as_ns();

    params.topology = TopologyKind::FatTree(FatTreeParams::default());
    let mut w = PinWorld {
        fabric: Fabric::new(2, params, SimRng::new(1)),
        delivered: None,
    };
    let mut sim: Sim<PinWorld> = Sim::new();
    sim.soon(move |w: &mut PinWorld, sim: &mut Sim<PinWorld>| send(w, sim, msg));
    sim.run(&mut w);
    let fattree_ns = w.delivered.expect("pin message delivered").as_ns();

    let rel_err = (fattree_ns as f64 - flat_ns as f64).abs() / flat_ns as f64;
    SanityPin {
        flat_ns,
        fattree_ns,
        rel_err,
        pass: rel_err <= 0.01,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    // Smoke mode is a CI gate, not a measurement: a few thousand flows
    // exercise every solver path in well under a second, where the full
    // 400k churn budget would hold `scripts/ci.sh` hostage.
    let flows_total: u64 = if smoke { 4_000 } else { 400_000 };
    let concurrency = 256;

    // Bracket the run with steady-state probe windows (see
    // `gaat_bench::throttle`): a host that throttles mid-benchmark is
    // recorded in the JSON instead of silently biasing the numbers.
    let mut guard = gaat_bench::throttle::ThrottleGuard::open(if smoke { 2 } else { 5 });

    // Best-of-N on the churn microbenchmark to shed scheduler noise.
    let reps = if smoke { 1 } else { 5 };
    let mut churn = flow_churn(flows_total, concurrency, 42);
    for _ in 1..reps {
        let r = flow_churn(flows_total, concurrency, 42);
        if r.wall_s < churn.wall_s {
            churn = r;
        }
    }

    let cells = vec![
        ablation_cell("flat", Placement::Packed, smoke),
        ablation_cell("flat", Placement::RoundRobin, smoke),
        ablation_cell("fattree", Placement::Packed, smoke),
        ablation_cell("fattree", Placement::RoundRobin, smoke),
    ];

    let pin = sanity_pin();
    guard.close();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"net_speed\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    let rate_updates_per_sec = churn.rate_updates as f64 / churn.wall_s;
    json.push_str(&format!(
        "  \"flow_churn\": {{\"flows\": {}, \"recomputes\": {}, \"rate_updates\": {}, \"wall_s\": {:.6}, \"recomputes_per_sec\": {:.0}, \"rate_updates_per_sec\": {:.0}}},\n",
        churn.flows,
        churn.solver.recomputes,
        churn.rate_updates,
        churn.wall_s,
        churn.solver.recomputes as f64 / churn.wall_s,
        rate_updates_per_sec,
    ));
    json.push_str(&format!(
        "  \"baseline_rate_updates_per_sec\": {BASELINE_RATE_UPDATES_PER_SEC:.0},\n"
    ));
    json.push_str(&format!(
        "  \"rate_updates_speedup_vs_baseline\": {:.3},\n",
        rate_updates_per_sec / BASELINE_RATE_UPDATES_PER_SEC,
    ));
    let hist = churn
        .solver
        .dirty_hist
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    json.push_str(&format!(
        "  \"solver\": {{\"recomputes\": {}, \"empty_recomputes\": {}, \"touched_flows\": {}, \"touched_links\": {}, \"touched_flows_per_recompute\": {:.2}, \"rate_updates_avoided\": {}, \"dirty_hist\": [{}]}},\n",
        churn.solver.recomputes,
        churn.solver.empty_recomputes,
        churn.solver.touched_flows,
        churn.solver.touched_links,
        churn.solver.touched_flows_per_recompute(),
        churn.solver.rate_updates_avoided,
        hist,
    ));
    json.push_str("  \"congestion_ablation\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"placement\": \"{}\", \"total_ns\": {}, \"inter_bytes\": {}, \"peak_link_flows\": {}, \"max_link_utilization\": {:.4}, \"hottest_link\": {}, \"wall_s\": {:.6}}}{}\n",
            c.topology,
            c.placement,
            c.total_ns,
            c.inter_bytes,
            c.peak_link_flows,
            c.max_link_utilization,
            c.hottest_link
                .map(|l| l.to_string())
                .unwrap_or_else(|| "null".to_string()),
            c.wall_s,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sanity_pin\": {{\"flat_ns\": {}, \"fattree_ns\": {}, \"rel_err\": {:.6}, \"pass\": {}}},\n",
        pin.flat_ns, pin.fattree_ns, pin.rel_err, pin.pass
    ));
    json.push_str(&format!("  \"steady_state\": {}\n", guard.json_object()));
    json.push_str("}\n");

    println!(
        "flow_churn     {:>8} flows  {:>8} recomputes  {:>9.3} ms  {:>12.0} rate-updates/s  ({:.2}x vs baseline {:.0})",
        churn.flows,
        churn.solver.recomputes,
        churn.wall_s * 1e3,
        rate_updates_per_sec,
        rate_updates_per_sec / BASELINE_RATE_UPDATES_PER_SEC,
        BASELINE_RATE_UPDATES_PER_SEC,
    );
    println!(
        "solver         {:>8} empty  {:>8.1} touched-flows/recompute  {:>12} rate-updates avoided  hist [{}]",
        churn.solver.empty_recomputes,
        churn.solver.touched_flows_per_recompute(),
        churn.solver.rate_updates_avoided,
        SolverStats::HIST_LABELS
            .iter()
            .zip(churn.solver.dirty_hist.iter())
            .map(|(label, n)| format!("{label}:{n}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    for c in &cells {
        println!(
            "{:<8} {:<12} total {:>12} ns  inter {:>12} B  peak_flows {:>3}  max_util {:.3}",
            c.topology,
            c.placement,
            c.total_ns,
            c.inter_bytes,
            c.peak_link_flows,
            c.max_link_utilization
        );
    }
    println!(
        "sanity_pin     flat {} ns vs fattree {} ns  rel_err {:.4}  {}",
        pin.flat_ns,
        pin.fattree_ns,
        pin.rel_err,
        if pin.pass { "OK" } else { "FAIL" }
    );
    println!(
        "steady-state drift {:.3}x{}",
        guard.slowdown_ratio(),
        if guard.throttle_suspected() {
            "  ** thermal throttle suspected — numbers are biased **"
        } else {
            ""
        }
    );
    std::fs::write(&out, json).expect("write BENCH_net.json");
    println!("wrote {out}");
    if !pin.pass {
        eprintln!("sanity pin failed: FatTree unloaded cost diverged >1% from Flat");
        std::process::exit(1);
    }
}
