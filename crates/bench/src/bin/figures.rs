//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run --release -p gaat-bench --bin figures -- [--fig all|6|7a|7b|7c|8|9|ablations]
//!                                                    [--effort quick|standard|full]
//!                                                    [--out results]
//! ```
//!
//! Each figure is written as `results/figN.csv` and printed as an ASCII
//! table; Fig. 9 additionally prints the graph-execution speedups. The
//! `full` effort matches the paper's scale (512 nodes, 100 iterations,
//! 3 seeds) and takes a long time; `standard` (default) reproduces every
//! qualitative claim in minutes.

use std::path::PathBuf;

use gaat_bench::harness::{print_table, write_csv};
use gaat_bench::{ablation, best_per_point, fig6, fig7a, fig7b, fig7c, fig8, fig9, Effort};

fn main() {
    let mut fig = "all".to_string();
    let mut effort = Effort::standard();
    let mut effort_name = "standard".to_string();
    let mut out = PathBuf::from("results");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                fig = args.get(i + 1).expect("--fig needs a value").clone();
                i += 2;
            }
            "--effort" => {
                effort_name = args.get(i + 1).expect("--effort needs a value").clone();
                effort = match effort_name.as_str() {
                    "quick" => Effort::quick(),
                    "standard" => Effort::standard(),
                    "full" => Effort::full(),
                    other => panic!("unknown effort {other:?}"),
                };
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(args.get(i + 1).expect("--out needs a value"));
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!(
        "effort={effort_name}: iters={} warmup={} max_nodes={} odfs={:?} seeds={:?}",
        effort.iters, effort.warmup, effort.max_nodes, effort.odfs, effort.seeds
    );
    println!("machine model: {:?}", gaat_rt::MachineConfig::summit(1));

    let want = |name: &str| fig == "all" || fig == name || (name.starts_with(&fig) && fig == "7");

    if want("6") {
        let rows = fig6(&effort);
        write_csv(&out.join("fig6.csv"), &rows).expect("write fig6.csv");
        print_table(
            "Fig 6 — Charm-H host-staging, before vs after optimizations (6a weak 1536^3/node, 6b strong 3072^3)",
            &rows,
        );
    }
    if want("7a") {
        let rows = fig7a(&effort);
        write_csv(&out.join("fig7a.csv"), &rows).expect("write fig7a.csv");
        print_table("Fig 7a — weak scaling, 1536^3 per node (all ODFs)", &rows);
        print_table("Fig 7a — best ODF per point", &best_per_point(&rows));
    }
    if want("7b") {
        let rows = fig7b(&effort);
        write_csv(&out.join("fig7b.csv"), &rows).expect("write fig7b.csv");
        print_table("Fig 7b — weak scaling, 192^3 per node (all ODFs)", &rows);
        print_table("Fig 7b — best ODF per point", &best_per_point(&rows));
    }
    if want("7c") {
        let rows = fig7c(&effort);
        write_csv(&out.join("fig7c.csv"), &rows).expect("write fig7c.csv");
        print_table("Fig 7c — strong scaling, 3072^3 global (all ODFs)", &rows);
        print_table("Fig 7c — best ODF per point", &best_per_point(&rows));
    }
    if want("8") {
        let rows = fig8(&effort);
        write_csv(&out.join("fig8.csv"), &rows).expect("write fig8.csv");
        print_table("Fig 8 — kernel fusion on Charm-D, strong 768^3", &rows);
    }
    if want("9") {
        let rows = fig9(&effort);
        write_csv(&out.join("fig9.csv"), &rows).expect("write fig9.csv");
        print_table("Fig 9 — graph execution on Charm-D, strong 768^3", &rows);
        println!("\n=== Fig 9 — speedup from graphs (baseline / graphs) ===");
        for (series, nodes, speedup) in gaat_bench::figures::fig9_speedups(&rows) {
            println!("  {series:<22} {nodes:>4} nodes: {speedup:.2}x");
        }
    }
    if want("ablations") {
        let mut rows = Vec::new();
        rows.extend(ablation::comm_priority(&effort, 8.min(effort.max_nodes)));
        rows.extend(ablation::pipeline_threshold_sweep(&effort));
        rows.extend(ablation::ampi_virtualization(
            &effort,
            4.min(effort.max_nodes),
        ));
        write_csv(&out.join("ablations.csv"), &rows).expect("write ablations.csv");
        print_table("Ablations — stream priority & protocol threshold", &rows);

        let (ch, gm) = ablation::channel_vs_gpu_messaging(96 << 10, 20);
        println!("\n=== Ablation — Channel API vs GPU Messaging API (96 KiB device ping-pong) ===");
        println!("  Channel API       : {ch:.1} us/hop");
        println!(
            "  GPU Messaging API : {gm:.1} us/hop   ({:.2}x slower)",
            gm / ch
        );

        let (sync_us, async_us) = ablation::sync_vs_async_completion(4, 16, 50);
        println!("\n=== Ablation — Fig 4: completion detection (4 chares on one PE) ===");
        println!("  synchronous  : {sync_us:.1} us makespan");
        println!(
            "  asynchronous : {async_us:.1} us makespan ({:.2}x faster)",
            sync_us / async_us
        );
    }
    println!("\nCSV written under {}", out.display());
}
