//! Adaptive load-balancer benchmark + CI gate, tracked from PR 10.
//!
//! The headline robustness experiment: a Jacobi3D run on a two-node
//! fat-tree machine where one GPU straggles (4x throttle) and the
//! hottest inter-node link degrades to quarter capacity. Four cells,
//! spliced into `BENCH_net.json` under `"lb_speed"`:
//!
//! - `fault_free`: no faults, balancer off — the ideal makespan.
//! - `static`: faults on, balancer off — what the faults cost a
//!   placement frozen at startup.
//! - `greedy`: faults on, sensor-blind greedy policy — the ablation
//!   (it cannot see stragglers or link heat, so it has little to act on).
//! - `adaptive`: faults on, closed-loop policy — EWMA load meters,
//!   straggler factors, and fabric distress feed the periodic planner.
//!
//! The degraded link is self-calibrated: the fault-free probe run
//! reports its hottest link, and that is the one the fault plan
//! degrades.
//!
//! Sanity pin (exit code 1 on failure):
//!
//! - the adaptive run recovers at least 20% of the static-vs-fault-free
//!   makespan gap;
//! - a small real-buffer trio of the same scenario shape (the headline
//!   cells run phantom buffers for speed) checksums bit-identically
//!   across fault-free / static / adaptive, with at least one
//!   migration applied (rollbacks must not perturb the math);
//! - the adaptive cell replays bit-identically (same seed, two runs);
//! - a sweep of the {off, adaptive} policy pair fingerprints
//!   identically at pool workers 1, 2, and 4.
//!
//! Wall-clock numbers (host-side plan/apply latency) are flagged, not
//! failed, when the ThrottleGuard suspects host thermal throttling;
//! the pins above are all virtual-time or bit-equality checks and are
//! never excused.
//!
//! Usage: `lb_speed [--smoke] [--out PATH]`

use std::time::Instant;

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat_rt::{LbPolicy, LbStats, MachineConfig};
use gaat_sim::{FaultPlan, LinkFault, LinkFaultKind, SimDuration, SimTime, StragglerWindow};
use gaat_sweep::{run_sweep, ScenarioGrid, SweepOptions, Workload};

/// The GPU that straggles in the faulted cells.
const STRAGGLER_DEVICE: usize = 2;
/// Its duration multiplier while the window is open.
const STRAGGLER_SLOWDOWN: f64 = 4.0;
/// Capacity factor for the degraded link.
const LINK_DEGRADE: f64 = 0.25;
/// Minimum fraction of the static-vs-fault-free gap the adaptive run
/// must claw back.
const MIN_RECOVERY: f64 = 0.20;

struct Cell {
    name: &'static str,
    total_ns: u64,
    checksum: Option<f64>,
    entries: u64,
    lb: LbStats,
    wall_s: f64,
}

/// The machine every cell shares: two fat-tree nodes, jitter off for
/// comparable cells, reliable transport on (the balancer migrates over
/// it, and the transport must be identical across cells).
fn base_machine() -> MachineConfig {
    let mut machine = MachineConfig::summit_fattree(2);
    machine.net.jitter = 0.0;
    machine.ucx.reliability.enabled = true;
    machine
}

/// The fault plan for the degraded cells: one throttled GPU for the
/// whole run plus the (probed) hottest link at quarter capacity.
fn fault_plan(hot_link: Option<u32>) -> FaultPlan {
    let mut faults = FaultPlan::none();
    faults.stragglers.push(StragglerWindow {
        device: STRAGGLER_DEVICE,
        from: SimTime::ZERO,
        until: SimTime::ZERO + SimDuration::from_ms(60_000),
        slowdown: STRAGGLER_SLOWDOWN,
    });
    if let Some(link) = hot_link {
        faults.link_faults.push(LinkFault {
            at: SimTime::ZERO,
            link,
            kind: LinkFaultKind::Degrade(LINK_DEGRADE),
        });
    }
    faults
}

fn config(faults: FaultPlan, policy: LbPolicy, period: SimDuration, smoke: bool) -> JacobiConfig {
    let mut machine = base_machine();
    machine.faults = faults;
    machine.lb.policy = policy;
    machine.lb.period = period;
    // Each applied plan is a global rollback, so demand a sizeable
    // projected win before paying for one.
    machine.lb.hysteresis_pct = 15;
    machine.lb.budget = 2;
    let mut cfg = JacobiConfig::new(machine, Dims::cube(192));
    cfg.comm = CommMode::HostStaging;
    cfg.odf = 2;
    cfg.iters = if smoke { 12 } else { 16 };
    cfg.warmup = 2;
    if cfg.machine.lb.enabled() {
        cfg.checkpoint_every = 1;
    }
    cfg
}

fn run_cell(name: &'static str, cfg: JacobiConfig) -> (Cell, Option<u32>) {
    let (mut sim, ids, sh) = charm::build(cfg);
    let start = Instant::now();
    let r = charm::run(&mut sim, &ids, &sh);
    let wall_s = start.elapsed().as_secs_f64();
    let hot = sim.machine.fabric.stats().hottest_link.map(|l| l.0);
    (
        Cell {
            name,
            total_ns: r.total.as_ns(),
            checksum: r.checksum,
            entries: r.entries,
            lb: sim.machine.lb_stats(),
            wall_s,
        },
        hot,
    )
}

/// Solution-correctness pin: a small real-buffer instance of the same
/// scenario shape (throttled GPU + degraded link), run fault-free,
/// static, and adaptive. The headline cells run phantom buffers for
/// speed, so this trio is where actual field data flows through the
/// migration rollbacks — all three final-field checksums must be
/// bit-equal, and the adaptive run must actually migrate (otherwise
/// the pin would not be exercising the rollback path at all).
fn solutions_identical(hot_link: Option<u32>) -> bool {
    let run = |faults: FaultPlan, policy: LbPolicy, period: SimDuration| {
        let mut machine = base_machine();
        machine.real_buffers = true;
        machine.faults = faults;
        machine.lb.policy = policy;
        machine.lb.period = period;
        machine.lb.hysteresis_pct = 15;
        machine.lb.budget = 2;
        let mut cfg = JacobiConfig::new(machine, Dims::cube(48));
        cfg.comm = CommMode::HostStaging;
        cfg.odf = 2;
        cfg.iters = 6;
        cfg.warmup = 1;
        if cfg.machine.lb.enabled() {
            cfg.checkpoint_every = 1;
        }
        let (mut sim, ids, sh) = charm::build(cfg);
        let r = charm::run(&mut sim, &ids, &sh);
        (
            r.checksum.expect("real buffers yield a checksum"),
            sim.machine.lb_stats().migrations,
        )
    };
    let (ideal, _) = run(FaultPlan::none(), LbPolicy::Off, SimDuration::ZERO);
    let period = SimDuration::from_us(200);
    let (frozen, _) = run(fault_plan(hot_link), LbPolicy::Off, SimDuration::ZERO);
    let (balanced, migrations) = run(fault_plan(hot_link), LbPolicy::Adaptive, period);
    frozen == ideal && balanced == ideal && migrations > 0
}

/// Pool-worker determinism: the degraded scenario under {off, adaptive}
/// policies swept at 1, 2, and 4 workers must fingerprint identically.
fn workers_match(hot_link: Option<u32>, period: SimDuration, smoke: bool) -> bool {
    let mut machine = base_machine();
    machine.faults = fault_plan(hot_link);
    machine.lb.period = period;
    let mut grid = ScenarioGrid::new(machine);
    grid.workloads.push(Workload::Jacobi {
        global: Dims::cube(192),
        iters: if smoke { 12 } else { 16 },
        warmup: 2,
        comm: CommMode::HostStaging,
    });
    grid.odfs = vec![2];
    grid.lb_policies = vec![LbPolicy::Off, LbPolicy::Adaptive];
    let scenarios = grid.expand();
    let mut opts = SweepOptions::new();
    let mut prints = Vec::new();
    for workers in [1, 2, 4] {
        opts.workers = workers;
        let rep = run_sweep(&scenarios, &opts).expect("no sweep I/O configured");
        prints.push(rep.fingerprints());
    }
    prints[1] == prints[0] && prints[2] == prints[0]
}

/// Splice the `lb_speed` object into an existing BENCH_net.json,
/// replacing any previous `lb_speed` block — it is always the last key
/// — or creating the file from scratch.
fn merge_into(path: &str, obj: &str) -> String {
    let head = match std::fs::read_to_string(path) {
        Ok(s) => {
            let mut s = s.trim_end().to_string();
            assert!(s.ends_with('}'), "{path} is not a JSON object");
            s.truncate(s.len() - 1);
            if let Some(i) = s.find("\"lb_speed\"") {
                s.truncate(i);
            }
            let mut t = s.trim_end().to_string();
            if t.ends_with(',') {
                t.pop();
            }
            if t == "{" {
                "{\n".to_string()
            } else {
                format!("{t},\n")
            }
        }
        Err(_) => "{\n".to_string(),
    };
    format!("{head}  \"lb_speed\": {obj}\n}}\n")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    let mut guard = gaat_bench::throttle::ThrottleGuard::open(if smoke { 2 } else { 5 });

    // Probe: the fault-free run yields the ideal makespan, the LB tick
    // period (about one tick per iteration), and the hottest link for
    // the degradation fault — all virtual-time quantities, so the
    // calibration is deterministic.
    let (fault_free, hot_link) = run_cell(
        "fault_free",
        config(FaultPlan::none(), LbPolicy::Off, SimDuration::ZERO, smoke),
    );
    let iters = if smoke { 12 } else { 16 };
    let period = SimDuration::from_ns(fault_free.total_ns / iters);

    let (static_cell, _) = run_cell(
        "static",
        config(
            fault_plan(hot_link),
            LbPolicy::Off,
            SimDuration::ZERO,
            smoke,
        ),
    );
    let (greedy, _) = run_cell(
        "greedy",
        config(fault_plan(hot_link), LbPolicy::Greedy, period, smoke),
    );
    let (adaptive, _) = run_cell(
        "adaptive",
        config(fault_plan(hot_link), LbPolicy::Adaptive, period, smoke),
    );
    // Replay pin: the closed loop is a pure function of the seed.
    let (replay, _) = run_cell(
        "adaptive",
        config(fault_plan(hot_link), LbPolicy::Adaptive, period, smoke),
    );
    let replay_identical = replay.total_ns == adaptive.total_ns
        && replay.checksum == adaptive.checksum
        && replay.entries == adaptive.entries
        && replay.lb.migrations == adaptive.lb.migrations;

    let solutions_identical = solutions_identical(hot_link);

    let gap = static_cell.total_ns.saturating_sub(fault_free.total_ns) as f64;
    let recovered = static_cell.total_ns.saturating_sub(adaptive.total_ns) as f64;
    let recovery = if gap > 0.0 { recovered / gap } else { 0.0 };

    let pool_match = workers_match(hot_link, period, smoke);
    guard.close();

    let pass = recovery >= MIN_RECOVERY && replay_identical && solutions_identical && pool_match;

    let cells = [&fault_free, &static_cell, &greedy, &adaptive];
    let mut obj = String::new();
    obj.push_str("{\n");
    obj.push_str(&format!("    \"smoke\": {smoke},\n"));
    obj.push_str(&format!(
        "    \"scenario\": {{\"straggler_device\": {STRAGGLER_DEVICE}, \"straggler_slowdown\": {STRAGGLER_SLOWDOWN}, \"degraded_link\": {}, \"link_capacity_factor\": {LINK_DEGRADE}, \"lb_period_ns\": {}}},\n",
        hot_link.map(|l| l.to_string()).unwrap_or_else(|| "null".to_string()),
        period.as_ns(),
    ));
    obj.push_str("    \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        obj.push_str(&format!(
            "      {{\"name\": \"{}\", \"total_ns\": {}, \"checksum\": {}, \"entries\": {}, \"lb_rounds\": {}, \"lb_applied\": {}, \"migrations\": {}, \"plan_us_per_round\": {:.2}, \"apply_us_per_round\": {:.2}, \"wall_s\": {:.6}}}{}\n",
            c.name,
            c.total_ns,
            c.checksum.map(|x| format!("{x}")).unwrap_or_else(|| "null".to_string()),
            c.entries,
            c.lb.rounds,
            c.lb.applied,
            c.lb.migrations,
            c.lb.plan_host_ns as f64 / 1e3 / c.lb.rounds.max(1) as f64,
            c.lb.apply_host_ns as f64 / 1e3 / c.lb.applied.max(1) as f64,
            c.wall_s,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    obj.push_str("    ],\n");
    obj.push_str(&format!(
        "    \"sanity_pin\": {{\"recovery\": {recovery:.3}, \"min_recovery\": {MIN_RECOVERY}, \"replay_identical\": {replay_identical}, \"solutions_identical\": {solutions_identical}, \"workers_match\": {pool_match}, \"pass\": {pass}}},\n",
    ));
    obj.push_str(&format!("    \"steady_state\": {}\n", guard.json_object()));
    obj.push_str("  }");

    for c in &cells {
        println!(
            "{:<11} total {:>12} ns  lb {:>2} rounds / {:>2} applied / {:>2} migrations  plan {:>6.1} us/round",
            c.name,
            c.total_ns,
            c.lb.rounds,
            c.lb.applied,
            c.lb.migrations,
            c.lb.plan_host_ns as f64 / 1e3 / c.lb.rounds.max(1) as f64,
        );
    }
    println!(
        "recovery     {:.1}% of the static-vs-fault-free gap (gap {} ns, clawed back {} ns; floor {:.0}%)",
        100.0 * recovery,
        gap as u64,
        recovered as u64,
        100.0 * MIN_RECOVERY,
    );
    println!(
        "pins         replay_identical={replay_identical} solutions_identical={solutions_identical} workers_match={pool_match}"
    );
    if guard.throttle_suspected() {
        println!(
            "steady-state drift {:.3}x  ** thermal throttle suspected — wall-clock latencies are biased (virtual-time pins unaffected) **",
            guard.slowdown_ratio()
        );
    }

    let json = merge_into(&out, &obj);
    std::fs::write(&out, json).expect("write BENCH JSON");
    println!("wrote {out}");
    if !pass {
        eprintln!(
            "lb_speed sanity pin failed: recovery {:.3} (need >= {MIN_RECOVERY}), replay {replay_identical}, solutions {solutions_identical}, workers {pool_match}",
            recovery
        );
        std::process::exit(1);
    }
}
