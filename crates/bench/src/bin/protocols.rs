//! Print the OSU-style protocol landscape: one-way latency and effective
//! bandwidth for host- and device-memory messages across sizes, with the
//! protocol the communication layer selected.
//!
//! ```text
//! cargo run --release -p gaat-bench --bin protocols
//! ```

fn main() {
    println!(
        "{:>10}  {:<7} {:<18} {:>12} {:>12}",
        "bytes", "space", "protocol", "latency", "bandwidth"
    );
    for p in gaat_bench::protocols::landscape(32 << 20) {
        println!(
            "{:>10}  {:<7} {:<18} {:>9.1} us {:>9.2} GB/s",
            p.bytes, p.space, p.protocol, p.latency_us, p.bandwidth_gbs
        );
    }
    println!(
        "\nNote the pipelined-staging cliff past 512 KiB device messages —\n\
         the protocol switch behind the paper's Fig. 7a result."
    );
}
