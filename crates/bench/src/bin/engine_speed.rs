//! Engine throughput benchmark, tracked from PR 1 onward.
//!
//! Measures raw discrete-event-engine throughput (events/sec) on
//! workloads shaped like the runtime's real event traffic, plus one
//! Jacobi3D strong-scaling step, and writes `BENCH_engine.json` so the
//! perf trajectory is recorded in-repo. Self-contained: no external
//! crates, JSON written by hand.
//!
//! Workloads:
//! - `churn_boxed`: self-rescheduling boxed-closure events with the
//!   seed engine's API only — directly comparable to the seed
//!   `BinaryHeap<Box<dyn FnOnce>>` engine (the recorded baseline).
//! - `churn_fast`: the same schedule shape through the closure-free
//!   fn-pointer fast path.
//! - `burst_soon`: same-instant burst drains (`soon` chains), the
//!   zero-latency-callback pattern.
//! - `cancel_heavy`: schedule/cancel pairs, the retry/timeout pattern.
//! - `jacobi_step`: a real Jacobi3D strong-scaling step on the task
//!   runtime; events/sec here is end-to-end simulator speed.
//!
//! Usage: `engine_speed [--smoke] [--out PATH]`

use std::time::Instant;

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat_rt::MachineConfig;
use gaat_sim::{Sim, SimDuration, SimRng, SimTime};

/// Seed-engine (`BinaryHeap` + `Box<dyn FnOnce>` + `HashSet` tombstones)
/// throughput on `churn_boxed` with the default event count and depth,
/// measured on this repository's reference container with the identical
/// benchmark binary (the seed `engine.rs` dropped in, plus shims mapping
/// the `*_call*` API onto boxed closures — which is how the seed engine
/// represents every event). Best of 5 runs. The acceptance bar for the
/// slab-arena/calendar rewrite is >= 2x this.
const BASELINE_CHURN_EVENTS_PER_SEC: f64 = 2_463_075.0;

struct WorkloadResult {
    name: &'static str,
    events: u64,
    wall_s: f64,
    peak_pending: usize,
}

impl WorkloadResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

/// World for the churn workloads: an RNG driving the schedule shape, a
/// ring of cancellable ids, and a payload slab for the fast-path variant
/// (the same side-slab idiom the runtime uses for envelope delivery).
struct ChurnWorld {
    rng: SimRng,
    cancellable: Vec<gaat_sim::EventId>,
    fired: u64,
    acc: u64,
    payloads: Vec<[u64; 4]>,
    payload_free: Vec<u32>,
}

impl ChurnWorld {
    fn new(seed: u64) -> Self {
        ChurnWorld {
            rng: SimRng::new(seed),
            cancellable: Vec::new(),
            fired: 0,
            acc: 0,
            payloads: Vec::new(),
            payload_free: Vec::new(),
        }
    }

    fn fresh_payload(&mut self) -> [u64; 4] {
        let x = self.rng.next_u64();
        [x, x ^ 0xa5a5, x.rotate_left(17), x.wrapping_mul(3)]
    }

    fn stash(&mut self, p: [u64; 4]) -> u64 {
        match self.payload_free.pop() {
            Some(i) => {
                self.payloads[i as usize] = p;
                i as u64
            }
            None => {
                self.payloads.push(p);
                (self.payloads.len() - 1) as u64
            }
        }
    }

    fn consume(&mut self, p: [u64; 4]) {
        self.acc ^= p[0]
            .wrapping_add(p[1])
            .wrapping_add(p[2])
            .wrapping_add(p[3]);
    }
}

/// Draw the next delay in the runtime-shaped mixture: a same-instant
/// share (zero-latency callbacks), mostly short latencies, some medium
/// completions, and a small far tail that crosses the calendar horizon.
/// Every fired event schedules exactly one successor, so the pending
/// population stays at the seeded depth instead of ballooning.
fn churn_delay(rng: &mut SimRng) -> Option<SimDuration> {
    match rng.below(100) {
        0..=24 => None, // same instant (soon)
        25..=79 => Some(SimDuration::from_ns(1 + rng.below(4096))),
        80..=94 => Some(SimDuration::from_ns(4_096 + rng.below(28_672))),
        _ => Some(SimDuration::from_ns(32_768 + rng.below(968_232))),
    }
}

/// Pending-event depth for the churn workloads: the in-flight event
/// population of a strong-scaling sweep point (hundreds of nodes x
/// several GPUs x overdecomposition factor, each with messages, kernel
/// completions, and DMA events in flight), which is exactly the regime
/// the paper's launch-overhead results live in. Simulator throughput at
/// this depth bounds how many such configurations we can sweep.
const CHURN_DEPTH: u64 = 100_000;

/// One churn event under the seed engine's only representation: a boxed
/// closure capturing a 32-byte payload (one heap allocation per event,
/// exactly how the seed runtime carried envelopes and completions).
fn churn_boxed_event(w: &mut ChurnWorld, sim: &mut Sim<ChurnWorld>) {
    w.fired += 1;
    let p = w.fresh_payload();
    let next = move |w: &mut ChurnWorld, sim: &mut Sim<ChurnWorld>| {
        w.consume(p);
        churn_boxed_event(w, sim);
    };
    match churn_delay(&mut w.rng) {
        None => sim.soon(next),
        Some(d) => sim.after(d, next),
    };
    // Every 8th event also schedules a timeout-style victim and cancels
    // the oldest outstanding one, exercising the cancel path. Victim
    // delays (>= 4us) dwarf the ~64-mark cancellation window, so the
    // cancel always lands on a live event and the population holds at
    // the seeded depth (+ the 64-victim window).
    if w.fired.is_multiple_of(8) {
        let d = SimDuration::from_ns(4_096 + w.rng.below(28_672));
        let vid = sim.after(d, |_w: &mut ChurnWorld, _sim: &mut Sim<ChurnWorld>| {});
        w.cancellable.push(vid);
        if w.cancellable.len() > 64 {
            let victim = w.cancellable.remove(0);
            sim.cancel(victim);
        }
    }
}

/// The same schedule shape through the closure-free fast path: the
/// payload lives in a world-side slab and the event carries its index —
/// the conversion pattern used for envelope delivery and deferred GPU
/// enqueues in `gaat-rt`.
fn churn_fast_event(w: &mut ChurnWorld, sim: &mut Sim<ChurnWorld>, pidx: u64) {
    let p = w.payloads[pidx as usize];
    w.payload_free.push(pidx as u32);
    w.consume(p);
    w.fired += 1;
    let p = w.fresh_payload();
    let idx = w.stash(p);
    match churn_delay(&mut w.rng) {
        None => sim.soon_call1(churn_fast_event, idx),
        Some(d) => sim.after_call1(d, churn_fast_event, idx),
    };
    if w.fired.is_multiple_of(8) {
        let d = SimDuration::from_ns(4_096 + w.rng.below(28_672));
        let vid = sim.after_call0(d, churn_victim_event);
        w.cancellable.push(vid);
        if w.cancellable.len() > 64 {
            let victim = w.cancellable.remove(0);
            sim.cancel(victim);
        }
    }
}

/// A timeout that expired without being cancelled: nothing to do.
fn churn_victim_event(_w: &mut ChurnWorld, _sim: &mut Sim<ChurnWorld>) {}

fn churn_boxed(n: u64, depth: u64, seed: u64) -> WorkloadResult {
    let mut sim: Sim<ChurnWorld> = Sim::new().with_event_limit(n);
    let mut w = ChurnWorld::new(seed);
    for i in 0..depth {
        sim.at(SimTime::from_ns(i % 4096), churn_boxed_event);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "churn_boxed",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn churn_fast(n: u64, depth: u64, seed: u64) -> WorkloadResult {
    let mut sim: Sim<ChurnWorld> = Sim::new().with_event_limit(n);
    let mut w = ChurnWorld::new(seed);
    for i in 0..depth {
        let idx = w.stash([i, 0, 0, 0]);
        sim.at_call1(SimTime::from_ns(i % 4096), churn_fast_event, idx);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "churn_fast",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn burst_soon(n: u64) -> WorkloadResult {
    // Chains of same-instant events separated by short hops: the
    // zero-latency callback pattern (scheduler drains, eager send-done).
    fn hop(w: &mut u64, sim: &mut Sim<u64>) {
        *w += 1;
        if (*w).is_multiple_of(32) {
            sim.after(SimDuration::from_ns(100), hop);
        } else {
            sim.soon(hop);
        }
    }
    let mut sim: Sim<u64> = Sim::new().with_event_limit(n);
    let mut w = 0u64;
    for _ in 0..64 {
        sim.soon(hop);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "burst_soon",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn cancel_heavy(n: u64) -> WorkloadResult {
    // Every fired event schedules two futures and cancels one of them:
    // half of all scheduled events die before firing (timeout pattern).
    struct W {
        rng: SimRng,
    }
    fn ev(w: &mut W, sim: &mut Sim<W>) {
        let d1 = SimDuration::from_ns(1 + w.rng.below(10_000));
        let d2 = SimDuration::from_ns(1 + w.rng.below(10_000));
        let keep = sim.after(d1, ev);
        let kill = sim.after(d2, ev);
        let _ = keep;
        sim.cancel(kill);
    }
    let mut sim: Sim<W> = Sim::new().with_event_limit(n);
    let mut w = W {
        rng: SimRng::new(7),
    };
    for i in 0..1_000 {
        sim.at(SimTime::from_ns(i), ev);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "cancel_heavy",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn jacobi_step(smoke: bool) -> WorkloadResult {
    // One strong-scaling point: fixed global grid across a few nodes,
    // GPU-aware halo exchange, modest ODF.
    let mut cfg = JacobiConfig::new(
        MachineConfig::summit(if smoke { 2 } else { 4 }),
        Dims::cube(if smoke { 96 } else { 192 }),
    );
    cfg.comm = CommMode::GpuAware;
    cfg.odf = 4;
    cfg.iters = if smoke { 4 } else { 20 };
    cfg.warmup = 1;
    let (mut sim, ids, sh) = charm::build(cfg);
    let start = Instant::now();
    charm::run(&mut sim, &ids, &sh);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "jacobi_step",
        events: sim.sim.events_executed(),
        wall_s,
        peak_pending: sim.sim.peak_pending(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let churn_n: u64 = if smoke { 200_000 } else { 4_000_000 };
    let churn_depth: u64 = if smoke { 10_000 } else { CHURN_DEPTH };
    let burst_n: u64 = if smoke { 200_000 } else { 4_000_000 };
    let cancel_n: u64 = if smoke { 100_000 } else { 1_000_000 };

    // Bracket the whole benchmark with steady-state probe windows so a
    // thermally-throttling host is recorded in the JSON, not silently
    // baked into the numbers.
    let mut guard = gaat_bench::throttle::ThrottleGuard::open(if smoke { 2 } else { 5 });

    // Best-of-N to shed scheduler noise; each rep rebuilds its Sim.
    let reps = if smoke { 1 } else { 5 };
    let best = |f: &dyn Fn() -> WorkloadResult| {
        let mut best = f();
        for _ in 1..reps {
            let r = f();
            if r.wall_s < best.wall_s {
                best = r;
            }
        }
        best
    };
    let results = vec![
        best(&|| churn_boxed(churn_n, churn_depth, 42)),
        best(&|| churn_fast(churn_n, churn_depth, 42)),
        best(&|| burst_soon(burst_n)),
        best(&|| cancel_heavy(cancel_n)),
        best(&|| jacobi_step(smoke)),
    ];
    guard.close();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"engine_speed\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"baseline_churn_boxed_events_per_sec\": {:.0},\n",
        BASELINE_CHURN_EVENTS_PER_SEC
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.0}, \"peak_pending\": {}}}{}\n",
            r.name,
            r.events,
            r.wall_s,
            r.events_per_sec(),
            r.peak_pending,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let speedup_of = |eps: f64| {
        if BASELINE_CHURN_EVENTS_PER_SEC > 0.0 {
            eps / BASELINE_CHURN_EVENTS_PER_SEC
        } else {
            0.0
        }
    };
    let boxed_speedup = speedup_of(results[0].events_per_sec());
    let fast_speedup = speedup_of(results[1].events_per_sec());
    json.push_str(&format!(
        "  \"churn_boxed_speedup_vs_baseline\": {boxed_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"churn_fast_speedup_vs_baseline\": {fast_speedup:.3},\n"
    ));
    json.push_str(&format!("  \"steady_state\": {}\n", guard.json_object()));
    json.push_str("}\n");

    for r in &results {
        println!(
            "{:<14} {:>10} events  {:>9.3} ms  {:>12.0} events/s  peak_pending={}",
            r.name,
            r.events,
            r.wall_s * 1e3,
            r.events_per_sec(),
            r.peak_pending
        );
    }
    if boxed_speedup > 0.0 {
        println!(
            "churn speedup vs seed baseline: boxed {boxed_speedup:.2}x, fast {fast_speedup:.2}x"
        );
    }
    println!(
        "steady-state drift {:.3}x{}",
        guard.slowdown_ratio(),
        if guard.throttle_suspected() {
            "  ** thermal throttle suspected — numbers are biased **"
        } else {
            ""
        }
    );
    std::fs::write(&out, json).expect("write BENCH_engine.json");
    println!("wrote {out}");
}
