//! Engine throughput benchmark, tracked from PR 1 onward.
//!
//! Measures raw discrete-event-engine throughput (events/sec) on
//! workloads shaped like the runtime's real event traffic, plus one
//! Jacobi3D strong-scaling step, and writes `BENCH_engine.json` so the
//! perf trajectory is recorded in-repo. Self-contained: no external
//! crates, JSON written by hand.
//!
//! Workloads:
//! - `churn_boxed`: self-rescheduling boxed-closure events with the
//!   seed engine's API only — directly comparable to the seed
//!   `BinaryHeap<Box<dyn FnOnce>>` engine (the recorded baseline).
//! - `churn_fast`: the same schedule shape through the closure-free
//!   fn-pointer fast path.
//! - `burst_soon`: same-instant burst drains (`soon` chains), the
//!   zero-latency-callback pattern.
//! - `cancel_heavy`: schedule/cancel pairs, the retry/timeout pattern.
//! - `jacobi_step`: a real Jacobi3D strong-scaling step on the task
//!   runtime; events/sec here is end-to-end simulator speed.
//! - `shard_churn`: the same event shape spread over a sharded
//!   [`ShardedSim`] run at 1/2/4 worker threads — the thread-scaling
//!   sweep of the windowed parallel engine, with fingerprints asserted
//!   bit-identical across worker counts.
//!
//! Usage: `engine_speed [--smoke] [--out PATH]`

use std::time::Instant;

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat_rt::MachineConfig;
use gaat_sim::{mix64, Shard, ShardWorld, ShardedSim, Sim, SimDuration, SimRng, SimTime};

/// Seed-engine (`BinaryHeap` + `Box<dyn FnOnce>` + `HashSet` tombstones)
/// throughput on `churn_boxed` with the default event count and depth,
/// measured on this repository's reference container with the identical
/// benchmark binary (the seed `engine.rs` dropped in, plus shims mapping
/// the `*_call*` API onto boxed closures — which is how the seed engine
/// represents every event). Best of 5 runs. The acceptance bar for the
/// slab-arena/calendar rewrite is >= 2x this.
const BASELINE_CHURN_EVENTS_PER_SEC: f64 = 2_463_075.0;

struct WorkloadResult {
    name: &'static str,
    events: u64,
    wall_s: f64,
    peak_pending: usize,
}

impl WorkloadResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

/// World for the churn workloads: an RNG driving the schedule shape, a
/// ring of cancellable ids, and a payload slab for the fast-path variant
/// (the same side-slab idiom the runtime uses for envelope delivery).
struct ChurnWorld {
    rng: SimRng,
    cancellable: Vec<gaat_sim::EventId>,
    fired: u64,
    acc: u64,
    payloads: Vec<[u64; 4]>,
    payload_free: Vec<u32>,
}

impl ChurnWorld {
    fn new(seed: u64) -> Self {
        ChurnWorld {
            rng: SimRng::new(seed),
            cancellable: Vec::new(),
            fired: 0,
            acc: 0,
            payloads: Vec::new(),
            payload_free: Vec::new(),
        }
    }

    fn fresh_payload(&mut self) -> [u64; 4] {
        let x = self.rng.next_u64();
        [x, x ^ 0xa5a5, x.rotate_left(17), x.wrapping_mul(3)]
    }

    fn stash(&mut self, p: [u64; 4]) -> u64 {
        match self.payload_free.pop() {
            Some(i) => {
                self.payloads[i as usize] = p;
                i as u64
            }
            None => {
                self.payloads.push(p);
                (self.payloads.len() - 1) as u64
            }
        }
    }

    fn consume(&mut self, p: [u64; 4]) {
        self.acc ^= p[0]
            .wrapping_add(p[1])
            .wrapping_add(p[2])
            .wrapping_add(p[3]);
    }
}

/// Draw the next delay in the runtime-shaped mixture: a same-instant
/// share (zero-latency callbacks), mostly short latencies, some medium
/// completions, and a small far tail that crosses the calendar horizon.
/// Every fired event schedules exactly one successor, so the pending
/// population stays at the seeded depth instead of ballooning.
fn churn_delay(rng: &mut SimRng) -> Option<SimDuration> {
    match rng.below(100) {
        0..=24 => None, // same instant (soon)
        25..=79 => Some(SimDuration::from_ns(1 + rng.below(4096))),
        80..=94 => Some(SimDuration::from_ns(4_096 + rng.below(28_672))),
        _ => Some(SimDuration::from_ns(32_768 + rng.below(968_232))),
    }
}

/// Pending-event depth for the churn workloads: the in-flight event
/// population of a strong-scaling sweep point (hundreds of nodes x
/// several GPUs x overdecomposition factor, each with messages, kernel
/// completions, and DMA events in flight), which is exactly the regime
/// the paper's launch-overhead results live in. Simulator throughput at
/// this depth bounds how many such configurations we can sweep.
const CHURN_DEPTH: u64 = 100_000;

/// One churn event under the seed engine's only representation: a boxed
/// closure capturing a 32-byte payload (one heap allocation per event,
/// exactly how the seed runtime carried envelopes and completions).
fn churn_boxed_event(w: &mut ChurnWorld, sim: &mut Sim<ChurnWorld>) {
    w.fired += 1;
    let p = w.fresh_payload();
    let next = move |w: &mut ChurnWorld, sim: &mut Sim<ChurnWorld>| {
        w.consume(p);
        churn_boxed_event(w, sim);
    };
    match churn_delay(&mut w.rng) {
        None => sim.soon(next),
        Some(d) => sim.after(d, next),
    };
    // Every 8th event also schedules a timeout-style victim and cancels
    // the oldest outstanding one, exercising the cancel path. Victim
    // delays (>= 4us) dwarf the ~64-mark cancellation window, so the
    // cancel always lands on a live event and the population holds at
    // the seeded depth (+ the 64-victim window).
    if w.fired.is_multiple_of(8) {
        let d = SimDuration::from_ns(4_096 + w.rng.below(28_672));
        let vid = sim.after(d, |_w: &mut ChurnWorld, _sim: &mut Sim<ChurnWorld>| {});
        w.cancellable.push(vid);
        if w.cancellable.len() > 64 {
            let victim = w.cancellable.remove(0);
            sim.cancel(victim);
        }
    }
}

/// The same schedule shape through the closure-free fast path: the
/// payload lives in a world-side slab and the event carries its index —
/// the conversion pattern used for envelope delivery and deferred GPU
/// enqueues in `gaat-rt`.
fn churn_fast_event(w: &mut ChurnWorld, sim: &mut Sim<ChurnWorld>, pidx: u64) {
    let p = w.payloads[pidx as usize];
    w.payload_free.push(pidx as u32);
    w.consume(p);
    w.fired += 1;
    let p = w.fresh_payload();
    let idx = w.stash(p);
    match churn_delay(&mut w.rng) {
        None => sim.soon_call1(churn_fast_event, idx),
        Some(d) => sim.after_call1(d, churn_fast_event, idx),
    };
    if w.fired.is_multiple_of(8) {
        let d = SimDuration::from_ns(4_096 + w.rng.below(28_672));
        let vid = sim.after_call0(d, churn_victim_event);
        w.cancellable.push(vid);
        if w.cancellable.len() > 64 {
            let victim = w.cancellable.remove(0);
            sim.cancel(victim);
        }
    }
}

/// A timeout that expired without being cancelled: nothing to do.
fn churn_victim_event(_w: &mut ChurnWorld, _sim: &mut Sim<ChurnWorld>) {}

fn churn_boxed(n: u64, depth: u64, seed: u64) -> WorkloadResult {
    let mut sim: Sim<ChurnWorld> = Sim::new().with_event_limit(n);
    let mut w = ChurnWorld::new(seed);
    for i in 0..depth {
        sim.at(SimTime::from_ns(i % 4096), churn_boxed_event);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "churn_boxed",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn churn_fast(n: u64, depth: u64, seed: u64) -> WorkloadResult {
    let mut sim: Sim<ChurnWorld> = Sim::new().with_event_limit(n);
    let mut w = ChurnWorld::new(seed);
    for i in 0..depth {
        let idx = w.stash([i, 0, 0, 0]);
        sim.at_call1(SimTime::from_ns(i % 4096), churn_fast_event, idx);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "churn_fast",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn burst_soon(n: u64) -> WorkloadResult {
    // Chains of same-instant events separated by short hops: the
    // zero-latency callback pattern (scheduler drains, eager send-done).
    fn hop(w: &mut u64, sim: &mut Sim<u64>) {
        *w += 1;
        if (*w).is_multiple_of(32) {
            sim.after(SimDuration::from_ns(100), hop);
        } else {
            sim.soon(hop);
        }
    }
    let mut sim: Sim<u64> = Sim::new().with_event_limit(n);
    let mut w = 0u64;
    for _ in 0..64 {
        sim.soon(hop);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "burst_soon",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn cancel_heavy(n: u64) -> WorkloadResult {
    // Every fired event schedules two futures and cancels one of them:
    // half of all scheduled events die before firing (timeout pattern).
    struct W {
        rng: SimRng,
    }
    fn ev(w: &mut W, sim: &mut Sim<W>) {
        let d1 = SimDuration::from_ns(1 + w.rng.below(10_000));
        let d2 = SimDuration::from_ns(1 + w.rng.below(10_000));
        let keep = sim.after(d1, ev);
        let kill = sim.after(d2, ev);
        let _ = keep;
        sim.cancel(kill);
    }
    let mut sim: Sim<W> = Sim::new().with_event_limit(n);
    let mut w = W {
        rng: SimRng::new(7),
    };
    for i in 0..1_000 {
        sim.at(SimTime::from_ns(i), ev);
    }
    let start = Instant::now();
    sim.run(&mut w);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "cancel_heavy",
        events: sim.events_executed(),
        wall_s,
        peak_pending: sim.peak_pending(),
    }
}

fn jacobi_step(smoke: bool) -> WorkloadResult {
    // One strong-scaling point: fixed global grid across a few nodes,
    // GPU-aware halo exchange, modest ODF.
    let mut cfg = JacobiConfig::new(
        MachineConfig::summit(if smoke { 2 } else { 4 }),
        Dims::cube(if smoke { 96 } else { 192 }),
    );
    cfg.comm = CommMode::GpuAware;
    cfg.odf = 4;
    cfg.iters = if smoke { 4 } else { 20 };
    cfg.warmup = 1;
    let (mut sim, ids, sh) = charm::build(cfg);
    let start = Instant::now();
    charm::run(&mut sim, &ids, &sh);
    let wall_s = start.elapsed().as_secs_f64();
    WorkloadResult {
        name: "jacobi_step",
        events: sim.sim.events_executed(),
        wall_s,
        peak_pending: sim.sim.peak_pending(),
    }
}

/// Shardable churn world for the thread-scaling sweep: `cells` cells,
/// each running a self-rescheduling local event chain (hash-driven
/// 100–900 ns delays) and mailing the next cell in the ring every 6th
/// step with a delay of at least the lookahead. State is disjoint per
/// cell, so any cell→shard partition is valid and every partition
/// produces the same fingerprint — which the sweep asserts while it
/// times the runs.
struct BenchShard {
    shard: usize,
    cell_shard: Vec<usize>,
    /// Per LOCAL cell, keyed by cell id: (chain hash, arrival acc, sent).
    state: std::collections::HashMap<u64, (u64, u64, u32)>,
    outbox: Vec<BenchMsg>,
    lookahead_ns: u64,
    cells: u64,
    steps: u64,
}

struct BenchMsg {
    at: SimTime,
    src_cell: u64,
    dst_cell: u64,
    dst_shard: usize,
    token: u64,
}

impl BenchShard {
    fn cell_step(w: &mut Self, sim: &mut Sim<Self>, cell: u64, step: u64) {
        let now = sim.now();
        let c = w.state.get_mut(&cell).expect("local cell");
        c.0 = mix64(c.0 ^ now.as_ns() ^ cell);
        if step >= w.steps {
            return;
        }
        if step % 6 == 2 {
            let dst_cell = (cell + 1) % w.cells;
            let token = cell << 32 | c.2 as u64;
            c.2 += 1;
            let at = now + SimDuration::from_ns(w.lookahead_ns + mix64(token) % 4000);
            let msg = BenchMsg {
                at,
                src_cell: cell,
                dst_cell,
                dst_shard: w.cell_shard[dst_cell as usize],
                token,
            };
            if msg.dst_shard == w.shard {
                Self::arrive_later(sim, msg);
            } else {
                w.outbox.push(msg);
            }
        }
        let d = 100 + mix64(cell ^ (step << 20)) % 800;
        sim.after_call2(SimDuration::from_ns(d), Self::cell_step, cell, step + 1);
    }

    fn arrive_later(sim: &mut Sim<Self>, msg: BenchMsg) {
        sim.at_call2(msg.at, Self::cell_arrive, msg.dst_cell, msg.token);
    }

    fn cell_arrive(w: &mut Self, sim: &mut Sim<Self>, cell: u64, token: u64) {
        let at = sim.now().as_ns();
        let c = w.state.get_mut(&cell).expect("local cell");
        c.1 = c.1.wrapping_add(mix64(token.wrapping_mul(3) ^ at));
    }
}

impl ShardWorld for BenchShard {
    type Msg = BenchMsg;

    fn msg_dest(msg: &BenchMsg) -> usize {
        msg.dst_shard
    }

    fn msg_key(msg: &BenchMsg) -> (SimTime, u64, u64) {
        (msg.at, msg.src_cell, msg.token)
    }

    fn drain_outbox(&mut self, out: &mut Vec<BenchMsg>) {
        out.append(&mut self.outbox);
    }

    fn deliver(&mut self, sim: &mut Sim<Self>, msg: BenchMsg) {
        Self::arrive_later(sim, msg);
    }
}

struct ScalingPoint {
    workers: usize,
    events: u64,
    wall_s: f64,
    windows: u64,
    exchanged: u64,
    fingerprint: u64,
    max_shard_events: u64,
}

/// One point of the thread-scaling sweep: build `workers` shards over a
/// contiguous cell partition, run, and fingerprint the final state.
fn shard_churn(workers: usize, cells: u64, steps: u64, lookahead_ns: u64) -> ScalingPoint {
    let partition: Vec<usize> = (0..cells as usize)
        .map(|c| c * workers / cells as usize)
        .collect();
    let mut shards: Vec<Shard<BenchShard>> = (0..workers)
        .map(|s| Shard {
            sim: Sim::new(),
            world: BenchShard {
                shard: s,
                cell_shard: partition.clone(),
                state: Default::default(),
                outbox: Vec::new(),
                lookahead_ns,
                cells,
                steps,
            },
        })
        .collect();
    for cell in 0..cells {
        let shard = &mut shards[partition[cell as usize]];
        shard.world.state.insert(cell, (0, 0, 0));
        let t0 = SimTime::from_ns(mix64(cell ^ 0xbeef) % 500);
        shard.sim.at_call2(t0, BenchShard::cell_step, cell, 0);
    }
    let mut sharded = ShardedSim::new(shards, SimDuration::from_ns(lookahead_ns));
    let start = Instant::now();
    sharded.run();
    let wall_s = start.elapsed().as_secs_f64();
    let mut fingerprint = 0u64;
    let mut max_shard_events = 0u64;
    for s in sharded.shards() {
        max_shard_events = max_shard_events.max(s.sim.events_executed());
        for (&cell, &(chain, acc, sent)) in &s.world.state {
            fingerprint = fingerprint.wrapping_add(
                mix64(chain ^ cell)
                    .wrapping_add(acc)
                    .wrapping_add(sent as u64),
            );
        }
    }
    ScalingPoint {
        workers,
        events: sharded.events_executed(),
        wall_s,
        windows: sharded.windows(),
        exchanged: sharded.exchanged(),
        fingerprint,
        max_shard_events,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let churn_n: u64 = if smoke { 200_000 } else { 4_000_000 };
    let churn_depth: u64 = if smoke { 10_000 } else { CHURN_DEPTH };
    let burst_n: u64 = if smoke { 200_000 } else { 4_000_000 };
    let cancel_n: u64 = if smoke { 100_000 } else { 1_000_000 };

    // Bracket the whole benchmark with steady-state probe windows so a
    // thermally-throttling host is recorded in the JSON, not silently
    // baked into the numbers.
    let mut guard = gaat_bench::throttle::ThrottleGuard::open(if smoke { 2 } else { 5 });

    // Best-of-N to shed scheduler noise; each rep rebuilds its Sim.
    let reps = if smoke { 1 } else { 5 };
    let best = |f: &dyn Fn() -> WorkloadResult| {
        let mut best = f();
        for _ in 1..reps {
            let r = f();
            if r.wall_s < best.wall_s {
                best = r;
            }
        }
        best
    };
    let results = vec![
        best(&|| churn_boxed(churn_n, churn_depth, 42)),
        best(&|| churn_fast(churn_n, churn_depth, 42)),
        best(&|| burst_soon(burst_n)),
        best(&|| cancel_heavy(cancel_n)),
        best(&|| jacobi_step(smoke)),
    ];

    // Thread-scaling sweep over the sharded windowed driver: same total
    // work at every worker count, lookahead sized (32.8 us vs ~500 ns
    // mean delay) so each shard executes tens of thousands of events per
    // barrier round. Fingerprints are asserted identical across worker
    // counts — a live check of the deterministic cross-shard merge, not
    // just a perf number.
    let scale_cells: u64 = 64;
    let scale_steps: u64 = if smoke { 2_000 } else { 30_000 };
    let scale_lookahead: u64 = 32_768;
    let best_point = |workers: usize| {
        let mut best = shard_churn(workers, scale_cells, scale_steps, scale_lookahead);
        for _ in 1..reps {
            let r = shard_churn(workers, scale_cells, scale_steps, scale_lookahead);
            assert_eq!(r.fingerprint, best.fingerprint, "non-deterministic rep");
            if r.wall_s < best.wall_s {
                best = r;
            }
        }
        best
    };
    let scaling: Vec<ScalingPoint> = [1usize, 2, 4].iter().map(|&w| best_point(w)).collect();
    for p in &scaling[1..] {
        assert_eq!(
            p.fingerprint, scaling[0].fingerprint,
            "workers={} changed the result",
            p.workers
        );
        assert_eq!(p.events, scaling[0].events, "workers={}", p.workers);
    }
    guard.close();

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let eps = |p: &ScalingPoint| p.events as f64 / p.wall_s;
    // Measured wall-clock speedup at the widest point, and the
    // model-side bound it is chasing: with perfectly overlapped windows
    // the critical path is the busiest shard, so total / max-shard
    // events is the speedup a host with >= 4 idle cores would approach.
    let parallel_speedup = eps(scaling.last().unwrap()) / eps(&scaling[0]);
    // A wall-clock speedup measured with fewer physical cores than
    // workers says nothing about the engine — on a 1-core host every
    // point time-slices the same CPU and the "speedup" is noise.
    let speedup_reliable = host_cores >= scaling.last().unwrap().workers;
    let critical_path_speedup =
        scaling.last().unwrap().events as f64 / scaling.last().unwrap().max_shard_events as f64;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"engine_speed\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"baseline_churn_boxed_events_per_sec\": {:.0},\n",
        BASELINE_CHURN_EVENTS_PER_SEC
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.0}, \"peak_pending\": {}}}{}\n",
            r.name,
            r.events,
            r.wall_s,
            r.events_per_sec(),
            r.peak_pending,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let speedup_of = |eps: f64| {
        if BASELINE_CHURN_EVENTS_PER_SEC > 0.0 {
            eps / BASELINE_CHURN_EVENTS_PER_SEC
        } else {
            0.0
        }
    };
    let boxed_speedup = speedup_of(results[0].events_per_sec());
    let fast_speedup = speedup_of(results[1].events_per_sec());
    json.push_str(&format!(
        "  \"churn_boxed_speedup_vs_baseline\": {boxed_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"churn_fast_speedup_vs_baseline\": {fast_speedup:.3},\n"
    ));
    json.push_str("  \"thread_scaling\": {\n");
    json.push_str(&format!("    \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("    \"lookahead_ns\": {scale_lookahead},\n"));
    json.push_str("    \"points\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"workers\": {}, \"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.0}, \"windows\": {}, \"exchanged\": {}}}{}\n",
            p.workers,
            p.events,
            p.wall_s,
            eps(p),
            p.windows,
            p.exchanged,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"parallel_speedup\": {parallel_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "    \"parallel_speedup_reliable\": {speedup_reliable},\n"
    ));
    json.push_str(&format!(
        "    \"critical_path_speedup\": {critical_path_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "    \"fingerprints_identical\": true,\n    \"fingerprint\": {}\n",
        scaling[0].fingerprint
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"steady_state\": {}\n", guard.json_object()));
    json.push_str("}\n");

    for r in &results {
        println!(
            "{:<14} {:>10} events  {:>9.3} ms  {:>12.0} events/s  peak_pending={}",
            r.name,
            r.events,
            r.wall_s * 1e3,
            r.events_per_sec(),
            r.peak_pending
        );
    }
    if boxed_speedup > 0.0 {
        println!(
            "churn speedup vs seed baseline: boxed {boxed_speedup:.2}x, fast {fast_speedup:.2}x"
        );
    }
    for p in &scaling {
        println!(
            "shard_churn    workers={} {:>10} events  {:>9.3} ms  {:>12.0} events/s  windows={} exchanged={}",
            p.workers,
            p.events,
            p.wall_s * 1e3,
            eps(p),
            p.windows,
            p.exchanged
        );
    }
    println!(
        "thread scaling on {host_cores}-core host: measured {parallel_speedup:.2}x at {} workers, \
         critical-path bound {critical_path_speedup:.2}x (identical fingerprints){}",
        scaling.last().unwrap().workers,
        if speedup_reliable {
            ""
        } else {
            "  ** fewer cores than workers — wall-clock speedup unreliable **"
        }
    );
    println!(
        "steady-state drift {:.3}x{}",
        guard.slowdown_ratio(),
        if guard.throttle_suspected() {
            "  ** thermal throttle suspected — numbers are biased **"
        } else {
            ""
        }
    );
    std::fs::write(&out, json).expect("write BENCH_engine.json");
    println!("wrote {out}");
}
