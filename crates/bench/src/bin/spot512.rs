//! Spot check of the paper's headline: sub-millisecond time per
//! iteration for Charm-D at 512 nodes (3,072 GPUs), strong scaling of a
//! 3072^3 grid.
fn main() {
    use gaat_jacobi3d::*;
    use gaat_rt::MachineConfig;
    for (nodes, odf) in [(128usize, 4usize), (256, 2), (512, 2)] {
        let mut c = JacobiConfig::new(MachineConfig::summit(nodes), Dims::cube(3072));
        c.comm = CommMode::GpuAware;
        c.odf = odf;
        c.iters = 15;
        c.warmup = 3;
        let t0 = std::time::Instant::now();
        let r = run_charm(c);
        println!(
            "nodes={nodes:4} gpus={:5} odf={odf}: {:9.1} us/iter   (wall {:.1}s, {} entries)",
            nodes * 6,
            r.time_per_iter.as_micros_f64(),
            t0.elapsed().as_secs_f64(),
            r.entries,
        );
    }
}
