//! Quick calibration probe: prints time-per-iteration for the paper's
//! key configurations at small node counts. A development tool for
//! checking the performance model's shape; the real figure harness is in
//! `figures.rs`.

use gaat_jacobi3d::{run_charm, run_mpi, CommMode, Dims, Fusion, JacobiConfig, SyncMode};
use gaat_rt::MachineConfig;

fn cfg(nodes: usize, global: Dims) -> JacobiConfig {
    let mut c = JacobiConfig::new(MachineConfig::summit(nodes), global);
    c.iters = 20;
    c.warmup = 3;
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");

    if which == "all" || which == "7b" {
        println!("== Fig 7b shape: weak scaling 192^3/node, 1..8 nodes ==");
        for nodes in [1usize, 2, 4, 8] {
            let n = 192.0_f64 * (nodes as f64).cbrt();
            let global = Dims::cube(n.round() as usize);
            for (name, comm, odf) in [
                ("MPI-H ", CommMode::HostStaging, 0),
                ("MPI-D ", CommMode::GpuAware, 0),
                ("Charm-H o1", CommMode::HostStaging, 1),
                ("Charm-H o4", CommMode::HostStaging, 4),
                ("Charm-D o1", CommMode::GpuAware, 1),
                ("Charm-D o4", CommMode::GpuAware, 4),
            ] {
                let mut c = cfg(nodes, global);
                c.comm = comm;
                let r = if odf == 0 {
                    run_mpi(c)
                } else {
                    c.odf = odf;
                    run_charm(c)
                };
                println!(
                    "  n={nodes:3} {name}: {:9.1} us/iter  (cpu {:.2})",
                    r.time_per_iter.as_micros_f64(),
                    r.cpu_utilization
                );
            }
        }
    }

    if which == "all" || which == "7a" {
        println!("== Fig 7a shape: weak scaling 1536^3/node, 1..4 nodes ==");
        for nodes in [1usize, 2, 4] {
            let n = 1536.0_f64 * (nodes as f64).cbrt();
            let global = Dims::cube(n.round() as usize);
            for (name, comm, odf) in [
                ("MPI-H ", CommMode::HostStaging, 0),
                ("MPI-D ", CommMode::GpuAware, 0),
                ("Charm-H o4", CommMode::HostStaging, 4),
                ("Charm-D o4", CommMode::GpuAware, 4),
            ] {
                let mut c = cfg(nodes, global);
                c.comm = comm;
                let r = if odf == 0 {
                    run_mpi(c)
                } else {
                    c.odf = odf;
                    run_charm(c)
                };
                println!(
                    "  n={nodes:3} {name}: {:9.1} us/iter",
                    r.time_per_iter.as_micros_f64()
                );
            }
        }
    }

    if which == "all" || which == "6" {
        println!("== Fig 6 shape: Charm-H original vs optimized, 1536^3/node ==");
        for nodes in [1usize, 4] {
            let n = 1536.0_f64 * (nodes as f64).cbrt();
            let global = Dims::cube(n.round() as usize);
            for (name, sync) in [("orig", SyncMode::Original), ("opt ", SyncMode::Optimized)] {
                let mut c = cfg(nodes, global);
                c.comm = CommMode::HostStaging;
                c.odf = 4;
                c.sync = sync;
                let r = run_charm(c);
                println!(
                    "  n={nodes:3} {name}: {:9.1} us/iter",
                    r.time_per_iter.as_micros_f64()
                );
            }
        }
    }

    if which == "all" || which == "8" {
        println!("== Fig 8 shape: fusion, 768^3 strong, 8..32 nodes ==");
        for nodes in [8usize, 16, 32] {
            for odf in [1usize, 8] {
                for (name, fusion) in [
                    ("base", Fusion::None),
                    ("A   ", Fusion::A),
                    ("B   ", Fusion::B),
                    ("C   ", Fusion::C),
                ] {
                    let mut c = cfg(nodes, Dims::cube(768));
                    c.comm = CommMode::GpuAware;
                    c.odf = odf;
                    c.fusion = fusion;
                    let r = run_charm(c);
                    println!(
                        "  n={nodes:3} odf={odf} {name}: {:9.1} us/iter",
                        r.time_per_iter.as_micros_f64()
                    );
                }
            }
        }
    }

    if which == "all" || which == "6s" {
        println!("== Fig 6b shape: Charm-H original vs optimized, strong 768^3 ==");
        for nodes in [4usize, 8, 16, 32] {
            for (name, sync) in [("orig", SyncMode::Original), ("opt ", SyncMode::Optimized)] {
                let mut c = cfg(nodes, Dims::cube(768));
                c.comm = CommMode::HostStaging;
                c.odf = 4;
                c.sync = sync;
                let r = run_charm(c);
                println!(
                    "  n={nodes:3} {name}: {:9.1} us/iter",
                    r.time_per_iter.as_micros_f64()
                );
            }
        }
    }

    if which == "all" || which == "9" {
        println!("== Fig 9 shape: graphs speedup, 768^3, 32 nodes ==");
        for odf in [1usize, 8] {
            for fusion in [Fusion::None, Fusion::A, Fusion::B, Fusion::C] {
                let mut base = cfg(32, Dims::cube(768));
                base.comm = CommMode::GpuAware;
                base.odf = odf;
                base.fusion = fusion;
                let mut with = base.clone();
                with.graphs = true;
                let rb = run_charm(base);
                let rg = run_charm(with);
                println!(
                    "  odf={odf} fusion={fusion:?}: {:9.1} -> {:9.1} us/iter (speedup {:.2}x, cpu {:.2})",
                    rb.time_per_iter.as_micros_f64(),
                    rg.time_per_iter.as_micros_f64(),
                    rb.time_per_iter.as_ns() as f64 / rg.time_per_iter.as_ns() as f64,
                    rb.cpu_utilization
                );
            }
        }
    }
}
