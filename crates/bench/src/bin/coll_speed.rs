//! Collective-performance benchmark, tracked from the gaat-coll PR
//! onward. Merged into `BENCH_net.json` under the `coll_speed` key
//! (net_speed owns the rest of the file; this bench preserves it).
//!
//! Four parts:
//!
//! - A sanity pin (exit code 1 on failure): ring and tree allreduce and
//!   an MoE dispatch/combine round on a small validation machine must
//!   match their sequential scalar references bit for bit.
//! - `allreduce`: algorithm (ring/tree) × topology (flat/fat-tree)
//!   sweep on 4 Summit nodes — bus bandwidth, round time, and the
//!   fabric's link counters. Under spine contention ring's neighbour
//!   traffic and tree's incast behave measurably differently.
//! - `moe_alltoall`: the skew-routed MoE dispatch/combine under
//!   topology × placement. The hot experts concentrate incast, so
//!   Packed (hot experts share one node) and RoundRobin separate on the
//!   fat tree — the placement signal a uniform alltoall cannot show.
//! - `dptrain_overlap`: data-parallel training step time for the full
//!   overlapped step vs compute-only vs comm-only vs serialized
//!   (overlap off), demonstrating communication hiding.
//!
//! Usage: `coll_speed [--smoke] [--out PATH]`

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use gaat_coll::{
    build, payload_bytes, run, validate_against_reference, Algorithm, CollAppConfig, CollOp,
    RankPlacement,
};
use gaat_dptrain::moe::{build_moe, moe_payload_bytes, run_moe, validate_moe, MoeConfig};
use gaat_dptrain::{TrainConfig, TrainMode};
use gaat_rt::MachineConfig;

/// One allreduce sweep cell.
struct AllreduceCell {
    algorithm: &'static str,
    topology: &'static str,
    round_ns: u64,
    bus_gbps: f64,
    inter_bytes: u64,
    max_link_utilization: f64,
    wall_s: f64,
}

fn allreduce_cell(alg: Algorithm, topology: &'static str, smoke: bool) -> AllreduceCell {
    let mut machine = if topology == "fattree" {
        MachineConfig::summit_fattree(4)
    } else {
        MachineConfig::summit(4)
    };
    machine.net.jitter = 0.0;
    let count = if smoke { 1 << 18 } else { 1 << 22 };
    let mut cfg = CollAppConfig::new(machine, CollOp::AllReduce, alg, count);
    cfg.rounds = if smoke { 2 } else { 6 };
    cfg.warmup = 1;
    let ranks = cfg.effective_ranks();
    let start = Instant::now();
    let (mut sim, ids, sh) = build(cfg);
    let res = run(&mut sim, &ids, &sh);
    let wall_s = start.elapsed().as_secs_f64();
    let stats = sim.machine.fabric.stats();
    AllreduceCell {
        algorithm: match alg {
            Algorithm::Ring => "ring",
            Algorithm::Tree => "tree",
        },
        topology,
        round_ns: res.time_per_round.as_ns(),
        bus_gbps: res.bus_bandwidth(
            CollOp::AllReduce,
            ranks,
            payload_bytes(CollOp::AllReduce, ranks, count),
        ) / 1e9,
        inter_bytes: stats.inter_bytes,
        max_link_utilization: stats.max_link_utilization,
        wall_s,
    }
}

/// One MoE placement-ablation cell.
struct MoeCell {
    topology: &'static str,
    placement: &'static str,
    round_ns: u64,
    payload_bytes: u64,
    inter_bytes: u64,
    peak_link_flows: u32,
    max_link_utilization: f64,
    wall_s: f64,
}

fn moe_cell(topology: &'static str, placement: RankPlacement, smoke: bool) -> MoeCell {
    let mut machine = if topology == "fattree" {
        MachineConfig::summit_fattree(4)
    } else {
        MachineConfig::summit(4)
    };
    machine.net.jitter = 0.0;
    let (tokens, hidden) = if smoke { (256, 64) } else { (2048, 256) };
    let mut cfg = MoeConfig::new(machine, tokens, hidden);
    // One node's worth of hot experts drawing most tokens: Packed puts
    // them all behind one leaf, RoundRobin spreads the incast.
    cfg.hot_experts = cfg.machine.pes_per_node;
    cfg.hot_frac = 0.7;
    cfg.placement = placement;
    cfg.rounds = if smoke { 1 } else { 4 };
    cfg.warmup = 1;
    let start = Instant::now();
    let (mut sim, ids, sh) = build_moe(cfg);
    let res = run_moe(&mut sim, &ids, &sh);
    let wall_s = start.elapsed().as_secs_f64();
    let stats = sim.machine.fabric.stats();
    MoeCell {
        topology,
        placement: match placement {
            RankPlacement::Packed => "packed",
            RankPlacement::RoundRobin => "round_robin",
        },
        round_ns: res.time_per_round.as_ns(),
        payload_bytes: moe_payload_bytes(&sh),
        inter_bytes: stats.inter_bytes,
        peak_link_flows: stats.peak_link_flows,
        max_link_utilization: stats.max_link_utilization,
        wall_s,
    }
}

/// Training overlap measurement: the same step, decomposed.
struct OverlapResult {
    full_ns: u64,
    compute_ns: u64,
    comm_ns: u64,
    serial_ns: u64,
    /// Fraction of the comm time hidden under compute.
    comm_hidden: f64,
    pass: bool,
}

fn overlap_cells(smoke: bool) -> OverlapResult {
    let step = |mode: TrainMode, overlap: bool| {
        let params = if smoke { 1 << 18 } else { 1 << 22 };
        let mut cfg = TrainConfig::new(MachineConfig::summit(2), params);
        cfg.machine.net.jitter = 0.0;
        cfg.mode = mode;
        cfg.overlap = overlap;
        // Enough arithmetic per parameter that compute and comm are the
        // same order of magnitude — otherwise there is nothing to hide.
        cfg.intensity = 1024;
        cfg.buckets = 8;
        cfg.chunk = 1 << 14;
        cfg.steps = if smoke { 2 } else { 4 };
        cfg.warmup = 1;
        gaat_dptrain::train::train(cfg).time_per_step.as_ns()
    };
    let full_ns = step(TrainMode::Full, true);
    let compute_ns = step(TrainMode::ComputeOnly, true);
    let comm_ns = step(TrainMode::CommOnly, true);
    let serial_ns = step(TrainMode::Full, false);
    let comm_hidden = if comm_ns > 0 {
        (compute_ns + comm_ns).saturating_sub(full_ns) as f64 / comm_ns as f64
    } else {
        0.0
    };
    OverlapResult {
        full_ns,
        compute_ns,
        comm_ns,
        serial_ns,
        comm_hidden,
        pass: full_ns < compute_ns + comm_ns,
    }
}

/// Bit-identity pin on a small validation machine. Each closure panics
/// on divergence; `catch_unwind` turns that into a pass/fail bit.
fn sanity_pin() -> (bool, bool, bool) {
    let allreduce = |alg: Algorithm| {
        let mut cfg =
            CollAppConfig::new(MachineConfig::validation(2, 3), CollOp::AllReduce, alg, 501);
        cfg.chunk = 37;
        cfg.rounds = 2;
        cfg.warmup = 1;
        let (mut sim, ids, sh) = build(cfg);
        run(&mut sim, &ids, &sh);
        validate_against_reference(&sim, &ids, &sh)
    };
    let ring = catch_unwind(AssertUnwindSafe(|| allreduce(Algorithm::Ring) > 0)).unwrap_or(false);
    let tree = catch_unwind(AssertUnwindSafe(|| allreduce(Algorithm::Tree) > 0)).unwrap_or(false);
    let moe = catch_unwind(AssertUnwindSafe(|| {
        let mut cfg = MoeConfig::new(MachineConfig::validation(2, 3), 33, 5);
        cfg.hot_frac = 0.7;
        cfg.chunk = 11;
        let (mut sim, ids, sh) = build_moe(cfg);
        run_moe(&mut sim, &ids, &sh);
        validate_moe(&sim, &ids, &sh) > 0
    }))
    .unwrap_or(false);
    (ring, tree, moe)
}

/// Splice the `coll_speed` object into an existing BENCH_net.json
/// (written by net_speed), replacing any previous `coll_speed` block —
/// it is always the last key — or creating the file from scratch.
fn merge_into(path: &str, obj: &str) -> String {
    let head = match std::fs::read_to_string(path) {
        Ok(s) => {
            let mut s = s.trim_end().to_string();
            assert!(s.ends_with('}'), "{path} is not a JSON object");
            s.truncate(s.len() - 1);
            if let Some(i) = s.find("\"coll_speed\"") {
                s.truncate(i);
            }
            let mut t = s.trim_end().to_string();
            if t.ends_with(',') {
                t.pop();
            }
            if t == "{" {
                "{\n".to_string()
            } else {
                format!("{t},\n")
            }
        }
        Err(_) => "{\n".to_string(),
    };
    format!("{head}  \"coll_speed\": {obj}\n}}\n")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    let mut guard = gaat_bench::throttle::ThrottleGuard::open(if smoke { 2 } else { 5 });

    let (pin_ring, pin_tree, pin_moe) = sanity_pin();
    let pin_pass = pin_ring && pin_tree && pin_moe;

    let allreduce = vec![
        allreduce_cell(Algorithm::Ring, "flat", smoke),
        allreduce_cell(Algorithm::Tree, "flat", smoke),
        allreduce_cell(Algorithm::Ring, "fattree", smoke),
        allreduce_cell(Algorithm::Tree, "fattree", smoke),
    ];
    let moe = vec![
        moe_cell("flat", RankPlacement::Packed, smoke),
        moe_cell("flat", RankPlacement::RoundRobin, smoke),
        moe_cell("fattree", RankPlacement::Packed, smoke),
        moe_cell("fattree", RankPlacement::RoundRobin, smoke),
    ];
    let overlap = overlap_cells(smoke);
    guard.close();

    let mut obj = String::new();
    obj.push_str("{\n");
    obj.push_str(&format!("    \"smoke\": {smoke},\n"));
    obj.push_str(&format!(
        "    \"sanity_pin\": {{\"ring_allreduce\": {pin_ring}, \"tree_allreduce\": {pin_tree}, \"moe\": {pin_moe}, \"pass\": {pin_pass}}},\n"
    ));
    obj.push_str("    \"allreduce\": [\n");
    for (i, c) in allreduce.iter().enumerate() {
        obj.push_str(&format!(
            "      {{\"algorithm\": \"{}\", \"topology\": \"{}\", \"round_ns\": {}, \"bus_gbps\": {:.3}, \"inter_bytes\": {}, \"max_link_utilization\": {:.4}, \"wall_s\": {:.6}}}{}\n",
            c.algorithm,
            c.topology,
            c.round_ns,
            c.bus_gbps,
            c.inter_bytes,
            c.max_link_utilization,
            c.wall_s,
            if i + 1 < allreduce.len() { "," } else { "" }
        ));
    }
    obj.push_str("    ],\n");
    obj.push_str("    \"moe_alltoall\": [\n");
    for (i, c) in moe.iter().enumerate() {
        obj.push_str(&format!(
            "      {{\"topology\": \"{}\", \"placement\": \"{}\", \"round_ns\": {}, \"payload_bytes\": {}, \"inter_bytes\": {}, \"peak_link_flows\": {}, \"max_link_utilization\": {:.4}, \"wall_s\": {:.6}}}{}\n",
            c.topology,
            c.placement,
            c.round_ns,
            c.payload_bytes,
            c.inter_bytes,
            c.peak_link_flows,
            c.max_link_utilization,
            c.wall_s,
            if i + 1 < moe.len() { "," } else { "" }
        ));
    }
    obj.push_str("    ],\n");
    obj.push_str(&format!(
        "    \"dptrain_overlap\": {{\"full_ns\": {}, \"compute_ns\": {}, \"comm_ns\": {}, \"serial_ns\": {}, \"comm_hidden\": {:.3}, \"pass\": {}}},\n",
        overlap.full_ns,
        overlap.compute_ns,
        overlap.comm_ns,
        overlap.serial_ns,
        overlap.comm_hidden,
        overlap.pass
    ));
    obj.push_str(&format!(
        "    \"steady_state\": {}\n  }}",
        guard.json_object()
    ));

    println!(
        "sanity_pin     ring {} tree {} moe {}  {}",
        pin_ring,
        pin_tree,
        pin_moe,
        if pin_pass { "OK" } else { "FAIL" }
    );
    for c in &allreduce {
        println!(
            "allreduce {:<5} {:<8} round {:>12} ns  bus {:>8.2} GB/s  inter {:>12} B  max_util {:.3}",
            c.algorithm, c.topology, c.round_ns, c.bus_gbps, c.inter_bytes, c.max_link_utilization
        );
    }
    for c in &moe {
        println!(
            "moe      {:<8} {:<12} round {:>12} ns  inter {:>12} B  peak_flows {:>3}  max_util {:.3}",
            c.topology, c.placement, c.round_ns, c.inter_bytes, c.peak_link_flows, c.max_link_utilization
        );
    }
    println!(
        "overlap        full {} ns  compute {} ns  comm {} ns  serial {} ns  comm hidden {:.0}%  {}",
        overlap.full_ns,
        overlap.compute_ns,
        overlap.comm_ns,
        overlap.serial_ns,
        overlap.comm_hidden * 100.0,
        if overlap.pass { "OK" } else { "FAIL" }
    );
    println!(
        "steady-state drift {:.3}x{}",
        guard.slowdown_ratio(),
        if guard.throttle_suspected() {
            "  ** thermal throttle suspected — numbers are biased **"
        } else {
            ""
        }
    );
    let json = merge_into(&out, &obj);
    std::fs::write(&out, json).expect("write BENCH_net.json");
    println!("wrote {out}");
    if !pin_pass {
        eprintln!("sanity pin failed: a collective diverged from its scalar reference");
        std::process::exit(1);
    }
    if !overlap.pass {
        eprintln!("overlap check failed: full step did not beat compute + comm");
        std::process::exit(1);
    }
}
