//! # gaat-bench — figure-regeneration harness
//!
//! One function per figure of the paper's evaluation (Figs. 6–9), each
//! returning tabular rows that the `figures` binary renders as CSV and
//! ASCII tables and that the workspace integration tests assert shape
//! properties on.
//!
//! All runs are deterministic given their seeds; the paper's
//! three-trial averages map to three RNG seeds.

#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod harness;
pub mod protocols;
pub mod throttle;

pub use figures::{fig6, fig7a, fig7b, fig7c, fig8, fig9, weak_dims};
pub use harness::{best_per_point, Effort, Row, Variant};
