//! OSU-microbenchmark-style measurements of the communication stack:
//! one-way latency and effective bandwidth across message sizes for host
//! and device memory, annotated with the protocol UCX chose. This is the
//! "protocol landscape" behind the paper's Fig. 7 behaviour — the eager/
//! rendezvous boundary, the GPUDirect window, and the pipelined-staging
//! cliff are all directly visible here.

use gaat_gpu::{BufRange, Space};
use gaat_rt::{Callback, Chare, Ctx, EntryId, Envelope, MachineConfig, MemLoc, Simulation};
use gaat_sim::SimTime;

const E_GO: EntryId = EntryId(0);
const E_RECVD: EntryId = EntryId(1);

/// One measured point of the protocol landscape.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ProtocolPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// Buffer space ("host" / "device").
    pub space: &'static str,
    /// Protocol the communication layer selected.
    pub protocol: &'static str,
    /// One-way latency in microseconds (posted receive, warm path).
    pub latency_us: f64,
    /// Effective bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

/// Receiver chare: posts a receive; the completion time is the one-way
/// latency.
struct OneWay {
    peer_pe: usize,
    loc: MemLoc,
    tag_seq: u64,
    done_at: Option<SimTime>,
}

impl Chare for OneWay {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_GO => {
                let me = ctx.me();
                ctx.ucx_irecv(
                    self.peer_pe,
                    gaat_ucx::Tag(self.tag_seq),
                    self.loc,
                    Callback::to(me, E_RECVD),
                );
            }
            E_RECVD => self.done_at = Some(ctx.start_time()),
            _ => unreachable!(),
        }
    }
}

/// Sender chare: fires one message.
struct Shooter {
    peer_pe: usize,
    loc: MemLoc,
    tag_seq: u64,
}

impl Chare for Shooter {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        assert_eq!(env.entry, E_GO);
        ctx.ucx_isend(
            self.peer_pe,
            gaat_ucx::Tag(self.tag_seq),
            self.loc,
            Callback::Ignore,
        );
    }
}

/// Measure one-way latency for one size/space across two nodes.
pub fn measure(bytes: u64, space: Space) -> ProtocolPoint {
    let mut mc = MachineConfig::summit(2);
    mc.pes_per_node = 1;
    mc.net.jitter = 0.0;
    let mut sim = Simulation::new(mc);
    let elems = (bytes / 8).max(1) as usize;
    let sbuf = sim.machine.devices[0].mem.alloc_phantom(space, elems);
    let rbuf = sim.machine.devices[1].mem.alloc_phantom(space, elems);
    let sloc = MemLoc {
        device: gaat_gpu::DeviceId(0),
        range: BufRange::whole(sbuf, elems),
    };
    let rloc = MemLoc {
        device: gaat_gpu::DeviceId(1),
        range: BufRange::whole(rbuf, elems),
    };
    let recv = sim.machine.create_chare(
        1,
        Box::new(OneWay {
            peer_pe: 0,
            loc: rloc,
            tag_seq: 1,
            done_at: None,
        }),
    );
    let send = sim.machine.create_chare(
        0,
        Box::new(Shooter {
            peer_pe: 1,
            loc: sloc,
            tag_seq: 1,
        }),
    );
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, recv, Envelope::empty(E_GO));
        machine.inject(sim, send, Envelope::empty(E_GO));
    }
    sim.run();
    let done = sim
        .machine
        .chare_as::<OneWay>(recv)
        .done_at
        .expect("message delivered");
    let s = sim.machine.ucx.stats();
    let protocol = if s.eager > 0 {
        "eager"
    } else if s.rendezvous > 0 {
        "rendezvous"
    } else if s.pipelined > 0 {
        "pipelined-staging"
    } else {
        "gpudirect"
    };
    let latency_us = done.as_micros_f64();
    ProtocolPoint {
        bytes,
        space: match space {
            Space::Host => "host",
            Space::Device => "device",
        },
        protocol,
        latency_us,
        bandwidth_gbs: bytes as f64 / (latency_us * 1e-6) / 1e9,
    }
}

/// The full landscape: powers of two from 1 KiB to `max_bytes`, both
/// spaces.
pub fn landscape(max_bytes: u64) -> Vec<ProtocolPoint> {
    let mut out = Vec::new();
    for space in [Space::Host, Space::Device] {
        let mut bytes = 1024u64;
        while bytes <= max_bytes {
            out.push(measure(bytes, space));
            bytes *= 2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_monotone_in_size_per_space() {
        for space in [Space::Host, Space::Device] {
            let mut last = 0.0;
            let mut bytes = 1024;
            while bytes <= 8 << 20 {
                let p = measure(bytes, space);
                assert!(
                    p.latency_us >= last * 0.999,
                    "{space:?} {bytes}: latency {} dropped below {last}",
                    p.latency_us
                );
                last = p.latency_us;
                bytes *= 4;
            }
        }
    }

    #[test]
    fn protocols_switch_at_the_configured_thresholds() {
        assert_eq!(measure(16 << 10, Space::Host).protocol, "eager");
        assert_eq!(measure(256 << 10, Space::Host).protocol, "rendezvous");
        assert_eq!(measure(96 << 10, Space::Device).protocol, "gpudirect");
        assert_eq!(
            measure(9 << 20, Space::Device).protocol,
            "pipelined-staging"
        );
    }

    #[test]
    fn small_device_messages_beat_explicit_staging_times() {
        // GPUDirect latency for 96 KiB must be far below the DMA-latency
        // cost an application-level staging path would pay twice.
        let p = measure(96 << 10, Space::Device);
        let dma = gaat_gpu::GpuTimingModel::default().dma_time(96 << 10);
        assert!(p.latency_us * 1000.0 < 3.0 * dma.as_ns() as f64);
    }

    #[test]
    fn pipelined_bandwidth_sits_below_host_rendezvous() {
        // The Fig. 7a mechanism in one assertion: for the same large
        // size, device buffers (pipelined staging) achieve worse
        // effective bandwidth than host buffers (plain rendezvous).
        let host = measure(8 << 20, Space::Host);
        let device = measure(8 << 20, Space::Device);
        assert!(
            device.bandwidth_gbs < host.bandwidth_gbs * 0.8,
            "pipelined {} GB/s should sit well below host {} GB/s",
            device.bandwidth_gbs,
            host.bandwidth_gbs
        );
    }
}
