//! Ablation studies for the design choices the paper motivates in prose:
//!
//! - **Channel API vs GPU Messaging API** (§II-B): the older API's post
//!   entry method delays the receive posting; ping-pong latency shows it.
//! - **Asynchronous vs synchronous GPU completion** (§III-A / Fig. 4):
//!   blocking `cudaStreamSynchronize` freezes the PE's scheduler and
//!   serializes the chares mapped to it.
//! - **Communication-stream priority** (§III-A): unprioritized packing /
//!   staging kernels get stuck behind other chares' update kernels.
//! - **Device pipeline threshold** (§IV-B / Fig. 7a): where the
//!   GPUDirect → pipelined-staging protocol switch lands determines
//!   whether GPU-aware communication helps or hurts.

use gaat_gpu::{KernelSpec, Op, Space, StreamId};
use gaat_jacobi3d::{run_charm, CommMode, Dims, JacobiConfig};
use gaat_rt::{
    gpu_msg, BufRange, Callback, ChannelEnd, Chare, ChareId, Ctx, EntryId, Envelope, MachineConfig,
    MemLoc, Simulation,
};
use gaat_sim::{SimDuration, SimTime};

use crate::harness::{Effort, Row};

// ---------------------------------------------------------------------
// Channel API vs GPU Messaging API ping-pong
// ---------------------------------------------------------------------

const E_GO: EntryId = EntryId(0);
const E_RECVD: EntryId = EntryId(1);
const E_POST: EntryId = EntryId(2);
const E_READY: EntryId = EntryId(3);
const E_SENT: EntryId = EntryId(4);

/// Ping-pong chare using either the Channel API or the GPU Messaging API.
struct Pinger {
    peer: ChareId,
    channel: Option<ChannelEnd>,
    gpu_sender: gpu_msg::GpuMsgSender,
    use_channel: bool,
    buf_send: MemLoc,
    buf_recv: MemLoc,
    hops_left: u32,
    finished_at: Option<SimTime>,
}

impl Pinger {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        if self.use_channel {
            let mut ch = self.channel.take().expect("channel");
            ch.recv(ctx, self.buf_recv, Callback::to(me, E_RECVD));
            ch.send(ctx, self.buf_send, Callback::Ignore);
            self.channel = Some(ch);
        } else {
            // GPU Messaging API: metadata → peer's post entry → ready →
            // data. The matching receive posting is *delayed* by the post
            // entry method round trip — the API's documented weakness.
            self.gpu_sender.send(
                ctx,
                self.peer,
                E_POST,
                E_READY,
                self.buf_send,
                Callback::Ignore,
            );
        }
    }
}

impl Chare for Pinger {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_GO => self.fire(ctx),
            E_RECVD => {
                if self.hops_left == 0 {
                    self.finished_at = Some(ctx.start_time());
                } else {
                    self.hops_left -= 1;
                    self.fire(ctx);
                }
            }
            E_POST => {
                let meta = env.take::<gpu_msg::GpuMsgMeta>();
                let me = ctx.me();
                gpu_msg::post_recv(ctx, &meta, self.buf_recv, Callback::to(me, E_RECVD));
            }
            E_READY => self.gpu_sender.on_ready(ctx, env),
            E_SENT => {}
            other => panic!("unexpected entry {other:?}"),
        }
    }
}

/// Round-trip comparison: mean one-hop latency (µs) of the Channel API vs
/// the GPU Messaging API for a device buffer of `bytes`, across two
/// nodes.
pub fn channel_vs_gpu_messaging(bytes: u64, hops: u32) -> (f64, f64) {
    let run = |use_channel: bool| -> f64 {
        let mut cfg = MachineConfig::summit(2);
        cfg.pes_per_node = 1;
        cfg.net.jitter = 0.0;
        let mut sim = Simulation::new(cfg);
        let elems = (bytes / 8) as usize;
        let mk_bufs = |sim: &mut Simulation, pe: usize| {
            let dev = sim.machine.pe_device(pe);
            let s = sim.machine.devices[dev.0]
                .mem
                .alloc_phantom(Space::Device, elems);
            let r = sim.machine.devices[dev.0]
                .mem
                .alloc_phantom(Space::Device, elems);
            (
                MemLoc {
                    device: dev,
                    range: BufRange::whole(s, elems),
                },
                MemLoc {
                    device: dev,
                    range: BufRange::whole(r, elems),
                },
            )
        };
        let (s0, r0) = mk_bufs(&mut sim, 0);
        let (s1, r1) = mk_bufs(&mut sim, 1);
        let a = ChareId(0);
        let b = ChareId(1);
        let mk = |peer, buf_send, buf_recv, hops_left| Pinger {
            peer,
            channel: None,
            gpu_sender: gpu_msg::GpuMsgSender::new(),
            use_channel,
            buf_send,
            buf_recv,
            hops_left,
            finished_at: None,
        };
        let ca = sim.machine.create_chare(0, Box::new(mk(b, s0, r0, hops)));
        let cb = sim.machine.create_chare(1, Box::new(mk(a, s1, r1, hops)));
        assert_eq!((ca, cb), (a, b));
        if use_channel {
            let (ea, eb) = gaat_rt::create_channel(&mut sim.machine, a, b);
            sim.machine
                .chare_for_setup(a)
                .downcast_mut::<Pinger>()
                .expect("pinger")
                .channel = Some(ea);
            sim.machine
                .chare_for_setup(b)
                .downcast_mut::<Pinger>()
                .expect("pinger")
                .channel = Some(eb);
        }
        {
            let Simulation { sim, machine, .. } = &mut sim;
            machine.inject(sim, a, Envelope::empty(E_GO));
            machine.inject(sim, b, Envelope::empty(E_GO));
        }
        sim.run();
        let fa = sim
            .machine
            .chare_as::<Pinger>(a)
            .finished_at
            .expect("finished");
        fa.as_micros_f64() / (hops as f64 + 1.0)
    };
    (run(true), run(false))
}

// ---------------------------------------------------------------------
// Sync vs async completion (Fig. 4)
// ---------------------------------------------------------------------

/// A chare that repeatedly offloads a kernel, detecting completion either
/// synchronously (blocking the PE) or via HAPI.
struct Offloader {
    stream: StreamId,
    synchronous: bool,
    reps_left: u32,
    kernel_us: u64,
    cpu_us: u64,
    finished_at: Option<SimTime>,
}

impl Offloader {
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        ctx.launch(
            self.stream,
            Op::kernel(KernelSpec::phantom(
                "work",
                SimDuration::from_us(self.kernel_us),
            )),
        );
        if self.synchronous {
            ctx.stream_sync(self.stream, Callback::to(me, E_RECVD));
        } else {
            ctx.hapi(self.stream, Callback::to(me, E_RECVD));
        }
    }
}

impl Chare for Offloader {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_GO => self.step(ctx),
            E_RECVD => {
                // Host-side post-processing of the kernel's result — the
                // "useful work" the scheduler can overlap with other
                // chares' GPU time when completion is asynchronous.
                ctx.compute(SimDuration::from_us(self.cpu_us));
                if self.reps_left == 0 {
                    self.finished_at = Some(ctx.start_time());
                } else {
                    self.reps_left -= 1;
                    self.step(ctx);
                }
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }
}

/// Fig. 4 reproduction: `chares` chares on one PE, each running `reps`
/// cycles of (GPU kernel of `kernel_us`, host phase of `cpu_us`).
/// Returns (sync makespan µs, async makespan µs). With synchronous
/// completion the blocked PE can neither run other chares' host phases
/// nor launch their kernels; with HAPI everything overlaps.
pub fn sync_vs_async_completion(chares: usize, reps: u32, kernel_us: u64) -> (f64, f64) {
    let run = |synchronous: bool| -> f64 {
        let mut cfg = MachineConfig::summit(1);
        cfg.pes_per_node = 1;
        cfg.net.jitter = 0.0;
        let mut sim = Simulation::new(cfg);
        let mut ids = Vec::new();
        for _ in 0..chares {
            let stream = sim.machine.devices[0].create_stream(0);
            ids.push(sim.machine.create_chare(
                0,
                Box::new(Offloader {
                    stream,
                    synchronous,
                    reps_left: reps,
                    kernel_us,
                    cpu_us: kernel_us * 3 / 5,
                    finished_at: None,
                }),
            ));
        }
        {
            let Simulation { sim, machine, .. } = &mut sim;
            for &id in &ids {
                machine.inject(sim, id, Envelope::empty(E_GO));
            }
        }
        sim.run();
        ids.iter()
            .map(|&id| {
                sim.machine
                    .chare_as::<Offloader>(id)
                    .finished_at
                    .expect("finished")
                    .as_micros_f64()
            })
            .fold(0.0, f64::max)
    };
    (run(true), run(false))
}

// ---------------------------------------------------------------------
// Jacobi-level ablations
// ---------------------------------------------------------------------

/// Communication-stream priority ablation on Charm-D (§III-A): rows for
/// prioritized vs unprioritized communication streams.
pub fn comm_priority(e: &Effort, nodes: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, prio) in [("prioritized", 2usize), ("unprioritized", 0)] {
        let mut cfg = JacobiConfig::new(
            MachineConfig::summit(nodes),
            crate::figures::weak_dims(768, nodes),
        );
        cfg.comm = CommMode::GpuAware;
        cfg.odf = 4;
        cfg.comm_priority = prio;
        cfg.iters = e.iters;
        cfg.warmup = e.warmup;
        let r = run_charm(cfg);
        rows.push(Row {
            figure: "abl-priority".into(),
            series: label.into(),
            nodes,
            odf: 4,
            fusion: "None".into(),
            graphs: false,
            time_us: r.time_per_iter.as_micros_f64(),
            cpu_util: r.cpu_utilization,
            seeds: 1,
        });
    }
    rows
}

/// AMPI-style virtualization of the MPI version (the paper's stated
/// future work): plain MPI vs 2/4-way virtualized ranks on a workload
/// with substantial staging stalls for virtualization to fill.
pub fn ampi_virtualization(e: &Effort, nodes: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for vr in [1usize, 2, 4] {
        let mut cfg = JacobiConfig::new(MachineConfig::summit(nodes), Dims::cube(768));
        cfg.comm = CommMode::HostStaging;
        cfg.virtual_ranks = vr;
        cfg.iters = e.iters;
        cfg.warmup = e.warmup;
        let r = gaat_jacobi3d::run_mpi(cfg);
        rows.push(Row {
            figure: "abl-ampi".into(),
            series: if vr == 1 {
                "MPI-H".into()
            } else {
                format!("AMPI-H ({vr} ranks/PE)")
            },
            nodes,
            odf: vr,
            fusion: "None".into(),
            graphs: false,
            time_us: r.time_per_iter.as_micros_f64(),
            cpu_util: r.cpu_utilization,
            seeds: 1,
        });
    }
    rows
}

/// Pipeline-threshold sensitivity (the Fig. 7a protocol cliff): run a
/// fixed two-node workload with 9.4 MB halos while moving the device
/// rendezvous threshold, so the same messages flip between GPUDirect and
/// pipelined staging.
pub fn pipeline_threshold_sweep(e: &Effort) -> Vec<Row> {
    let mut rows = Vec::new();
    for threshold_mb in [1u64, 2, 4, 8, 16] {
        let mut cfg = JacobiConfig::new(MachineConfig::summit(2), Dims::new(1536, 1536, 3072));
        cfg.comm = CommMode::GpuAware;
        cfg.odf = 4;
        cfg.machine.ucx.pipeline_threshold = threshold_mb << 20;
        cfg.iters = e.iters;
        cfg.warmup = e.warmup;
        let r = run_charm(cfg);
        rows.push(Row {
            figure: "abl-threshold".into(),
            series: format!("threshold={threshold_mb}MiB"),
            nodes: 2,
            odf: 4,
            fusion: "None".into(),
            graphs: false,
            time_us: r.time_per_iter.as_micros_f64(),
            cpu_util: r.cpu_utilization,
            seeds: 1,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_api_beats_gpu_messaging_api() {
        let (channel_us, gpu_msg_us) = channel_vs_gpu_messaging(96 << 10, 4);
        assert!(
            channel_us < gpu_msg_us,
            "channel {channel_us} should beat gpu-msg {gpu_msg_us}"
        );
    }

    #[test]
    fn async_completion_beats_sync_with_many_chares() {
        let (sync_us, async_us) = sync_vs_async_completion(4, 8, 50);
        assert!(
            async_us < sync_us * 0.7,
            "async {async_us} should be far below sync {sync_us}"
        );
    }

    #[test]
    fn sync_vs_async_equal_for_single_chare() {
        // With one chare there is nothing to overlap; the two schemes
        // should be within a few percent.
        let (sync_us, async_us) = sync_vs_async_completion(1, 8, 50);
        let ratio = sync_us / async_us;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }
}
