//! Steady-state throttle guard for the wall-clock benchmarks.
//!
//! The committed `BENCH_*.json` numbers are only comparable across runs
//! if the host sustained a steady clock for the whole benchmark. A
//! thermally-throttled (or noisy-neighbour) host skews the later
//! workloads against the earlier ones — the sustained-vs-burst
//! discrepancies we have chased before came from exactly this. The
//! guard brackets the benchmark with windows of a fixed CPU-bound probe
//! kernel and records the drift: if the machine got materially slower
//! between the opening and closing window, the JSON says so instead of
//! silently recording biased numbers.

use std::time::Instant;

/// Probe-kernel iterations per sample: an integer-mix spin sized to run
/// for a few milliseconds on a contemporary core — long enough to be
/// scheduler-noise-tolerant, short enough that a window adds negligible
/// wall time to the benchmark.
const PROBE_ITERS: u64 = 8_000_000;

/// Slowdown of the closing window vs the opening window above which we
/// flag the run. 10% is far beyond timer noise for a multi-millisecond
/// probe but well within what sustained thermal throttling produces.
const SUSPECT_RATIO: f64 = 1.10;

/// One fixed CPU-bound probe sample; returns wall seconds.
fn probe_once() -> f64 {
    let start = Instant::now();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..PROBE_ITERS {
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (x >> 27) ^ i;
    }
    std::hint::black_box(x);
    start.elapsed().as_secs_f64()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Brackets a benchmark run with probe windows.
pub struct ThrottleGuard {
    window: usize,
    before: Vec<f64>,
    after: Vec<f64>,
}

impl ThrottleGuard {
    /// Open the guard and measure the opening window of `window` probe
    /// samples (call before the first workload).
    pub fn open(window: usize) -> Self {
        let before = (0..window).map(|_| probe_once()).collect();
        ThrottleGuard {
            window,
            before,
            after: Vec::new(),
        }
    }

    /// Measure the closing window (call after the last workload).
    pub fn close(&mut self) {
        self.after = (0..self.window).map(|_| probe_once()).collect();
    }

    /// Closing-window mean probe time over opening-window mean: > 1
    /// means the machine got slower while the benchmark ran.
    pub fn slowdown_ratio(&self) -> f64 {
        let b = mean(&self.before);
        if b > 0.0 {
            mean(&self.after) / b
        } else {
            1.0
        }
    }

    /// True when the drift between the windows exceeds the suspect
    /// threshold.
    pub fn throttle_suspected(&self) -> bool {
        self.slowdown_ratio() > SUSPECT_RATIO
    }

    /// The guard's verdict and window stats as a JSON object value
    /// (embed as `"steady_state": <this>`). Hand-formatted like the rest
    /// of the BENCH JSON.
    pub fn json_object(&self) -> String {
        let min = |xs: &[f64]| xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = |xs: &[f64]| xs.iter().cloned().fold(0.0f64, f64::max);
        format!(
            "{{\"window\": {}, \"probe_iters\": {}, \
             \"before_mean_ms\": {:.3}, \"before_min_ms\": {:.3}, \"before_max_ms\": {:.3}, \
             \"after_mean_ms\": {:.3}, \"after_min_ms\": {:.3}, \"after_max_ms\": {:.3}, \
             \"slowdown_ratio\": {:.4}, \"thermal_throttle_suspected\": {}}}",
            self.window,
            PROBE_ITERS,
            mean(&self.before) * 1e3,
            min(&self.before) * 1e3,
            max(&self.before) * 1e3,
            mean(&self.after) * 1e3,
            min(&self.after) * 1e3,
            max(&self.after) * 1e3,
            self.slowdown_ratio(),
            self.throttle_suspected(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_machine_is_not_flagged() {
        // Back-to-back windows with no benchmark in between: whatever
        // this host is doing, the two windows see the same machine.
        let mut g = ThrottleGuard::open(3);
        g.close();
        assert!(
            g.slowdown_ratio() < 1.5,
            "adjacent windows should be comparable: {}",
            g.slowdown_ratio()
        );
        let json = g.json_object();
        assert!(json.contains("\"thermal_throttle_suspected\": "));
        assert!(json.contains("\"slowdown_ratio\": "));
    }

    #[test]
    fn synthetic_drift_is_flagged() {
        let g = ThrottleGuard {
            window: 2,
            before: vec![0.010, 0.010],
            after: vec![0.013, 0.013],
        };
        assert!(g.slowdown_ratio() > 1.25);
        assert!(g.throttle_suspected());
        assert!(g
            .json_object()
            .contains("\"thermal_throttle_suspected\": true"));
    }
}
